//! Iterative solver: conjugate gradients on a block-structured SPD system
//! with *multiple right-hand sides* solved in lockstep, every batch of
//! A·p products running on the simulated SPASM accelerator in one
//! `execute_batch_into` call.
//!
//! This is the paper's amortisation argument (Section V-E4) made concrete
//! twice over: preprocessing is paid once and reused across thousands of
//! SpMVs, and within each iteration the batched execution pads x once,
//! streams the pre-decoded instance stream once per tile row for the whole
//! batch, and amortises accelerator initialisation across the right-hand
//! sides.
//!
//! ```text
//! cargo run --release -p spasm --example iterative_solver
//! ```

use spasm::Pipeline;
use spasm_sparse::Coo;

/// Right-hand sides solved in lockstep.
const K: usize = 4;

/// Builds a block-tridiagonal SPD matrix (4x4 blocks, diagonally
/// dominant).
fn spd_block_tridiagonal(nb: u32) -> Coo {
    let n = nb * 4;
    let mut t = Vec::new();
    for b in 0..nb {
        for r in 0..4u32 {
            for c in 0..4u32 {
                // Diagonal block: strongly diagonally dominant.
                let v = if r == c { 8.0 } else { -0.5 };
                t.push((b * 4 + r, b * 4 + c, v));
            }
            if b + 1 < nb {
                // Symmetric off-diagonal coupling (diagonal of the block).
                t.push((b * 4 + r, (b + 1) * 4 + r, -1.0));
                t.push(((b + 1) * 4 + r, b * 4 + r, -1.0));
            }
        }
    }
    Coo::from_triplets(n, n, t).expect("entries in bounds")
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| *x as f64 * *y as f64).sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = spd_block_tridiagonal(512);
    let n = a.rows() as usize;
    println!(
        "SPD system: {}x{}, {} non-zeros, {K} right-hand sides",
        a.rows(),
        a.cols(),
        a.nnz()
    );

    let prep_start = std::time::Instant::now();
    let mut prepared = Pipeline::new().prepare(&a)?;
    let prep_wall = prep_start.elapsed();
    println!(
        "preprocessing: {:?} host time; selected {} @ tile {}",
        prep_wall, prepared.best.config.name, prepared.best.tile_size
    );

    // Solve A x_k = b_k for K right-hand sides with lockstep CG: one
    // batched A·p per iteration covers every system. Converged systems
    // keep riding the batch (the batch shape stays fixed, which keeps the
    // plan's scratch steady-state) but skip their scalar updates.
    let bs: Vec<Vec<f32>> = (0..K)
        .map(|k| {
            (0..n)
                .map(|i| (((i + 5 * k) % 17) as f32) * 0.125 + 1.0 + k as f32 * 0.25)
                .collect()
        })
        .collect();
    let mut xs = vec![vec![0.0f32; n]; K];
    let mut rs: Vec<Vec<f32>> = bs.clone(); // r = b - A*0
    let mut ps: Vec<Vec<f32>> = rs.clone();
    let mut rs_old: Vec<f64> = rs.iter().map(|r| dot(r, r)).collect();
    let mut done = [false; K];
    let mut iters = [0usize; K];
    let tol = 1e-5 * (n as f64).sqrt();

    // The pipeline built one execution plan at prepare time; every CG
    // iteration reuses it through `execute_batch_into`, which runs all K
    // products in a single batched pass and returns the cached report by
    // reference. `report.batch` prices the batch with initialisation paid
    // once instead of K times.
    let mut simulated_seconds = 0.0f64;
    let mut looped_equivalent_seconds = 0.0f64;
    let mut batched_iterations = 0usize;
    let mut aps = vec![vec![0.0f32; n]; K];
    for _ in 0..500 {
        if done.iter().all(|&d| d) {
            break;
        }
        for ap in aps.iter_mut() {
            ap.fill(0.0);
        }
        let exec = prepared.execute_batch_into(&ps, &mut aps)?;
        batched_iterations += 1;
        if let Some(batch) = exec.batch {
            simulated_seconds += batch.seconds;
            // What K independent single-vector runs would have cost.
            looped_equivalent_seconds += exec.seconds * K as f64;
        }

        for k in 0..K {
            if done[k] {
                continue;
            }
            let alpha = rs_old[k] / dot(&ps[k], &aps[k]);
            for i in 0..n {
                xs[k][i] += (alpha * ps[k][i] as f64) as f32;
                rs[k][i] -= (alpha * aps[k][i] as f64) as f32;
            }
            let rs_new = dot(&rs[k], &rs[k]);
            iters[k] += 1;
            if rs_new.sqrt() < tol {
                done[k] = true;
                continue;
            }
            let beta = rs_new / rs_old[k];
            for i in 0..n {
                ps[k][i] = rs[k][i] + (beta * ps[k][i] as f64) as f32;
            }
            rs_old[k] = rs_new;
        }
    }
    for (k, it) in iters.iter().enumerate() {
        println!("CG system {k}: converged in {it} iterations");
    }

    // Verify every solution residual with an independent host-side SpMV —
    // the row-partitioned parallel CSR kernel (bit-identical to the serial
    // one; serial fallback without the `parallel` feature).
    let csr = spasm_sparse::Csr::from(&a);
    for k in 0..K {
        let mut ax = vec![0.0f32; n];
        csr.spmv_parallel(&xs[k], &mut ax)?;
        let resid = (ax
            .iter()
            .zip(&bs[k])
            .map(|(u, v)| ((u - v) as f64).powi(2))
            .sum::<f64>())
        .sqrt();
        println!("system {k}: final residual |Ax - b| = {resid:.3e}");
    }

    println!(
        "simulated accelerator time over {batched_iterations} batched SpMVs \
         ({} vector products): {:.3} ms batched vs {:.3} ms looped \
         ({:.2}x from batch amortisation) — preprocessing amortises across \
         iterations, initialisation across the batch",
        batched_iterations * K,
        simulated_seconds * 1e3,
        looped_equivalent_seconds * 1e3,
        looped_equivalent_seconds / simulated_seconds.max(1e-12),
    );
    Ok(())
}
