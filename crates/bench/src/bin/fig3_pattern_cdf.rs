//! Fig. 3: CDF of the top-n occurring local patterns across the workload
//! suite — the evidence that a handful of patterns dominates each matrix.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin fig3_pattern_cdf [-- --scale paper]
//! ```

use spasm_bench::{rule, scale_from_args, scale_name};
use spasm_patterns::{GridSize, PatternHistogram};

const POINTS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 3 — CDF of top-n local patterns ({})",
        scale_name(scale)
    );
    rule(14 + 2 + POINTS.len() * 8 + 10);
    print!("{:<14}", "matrix");
    for p in POINTS {
        print!(" {:>7}", format!("n={p}"));
    }
    println!(" {:>9}", "distinct");
    rule(14 + 2 + POINTS.len() * 8 + 10);
    spasm_bench::for_each_workload(scale, |w, m| {
        let hist = PatternHistogram::analyze(&m, GridSize::S4);
        print!("{:<14}", w.to_string());
        for p in POINTS {
            print!(" {:>6.1}%", 100.0 * hist.top_n_coverage(p));
        }
        println!(" {:>9}", hist.distinct_patterns());
    });
    rule(14 + 2 + POINTS.len() * 8 + 10);
    println!("(series: coverage fraction after the n most frequent patterns)");
}
