//! Streaming matrix updates: the delta representation applied by the
//! plan layer (`spasm::Prepared::apply_delta`).
//!
//! A [`MatrixDelta`] is an ordered batch of cell-level operations against
//! a matrix of fixed shape:
//!
//! * [`DeltaOp::Patch`] — change the value of an *existing* nonzero
//!   (values-only; never changes the sparsity pattern);
//! * [`DeltaOp::Insert`] — add a nonzero at a currently-empty cell;
//! * [`DeltaOp::Delete`] — remove an existing nonzero.
//!
//! Deltas never resize the matrix. Explicit zeros are banned
//! ([`DeltaError::ZeroValue`]): the position-encoded stream uses value
//! slots of exactly 0.0 as decomposition padding, so a stored zero would
//! be indistinguishable from an absent cell when splicing tiles.
//!
//! Validation ([`MatrixDelta::validate`]) is transactional: a delta
//! either passes entirely against a [`Csr`] snapshot of the current
//! matrix, or fails with a typed [`DeltaError`] and the caller leaves
//! the plan untouched.

use std::collections::HashSet;
use std::fmt;

use crate::{Csr, Index, Value};

/// One cell-level operation within a [`MatrixDelta`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaOp {
    /// Overwrite the value of an existing nonzero at `(row, col)`.
    Patch {
        /// Row of the existing entry.
        row: Index,
        /// Column of the existing entry.
        col: Index,
        /// New value (must be non-zero).
        value: Value,
    },
    /// Add a new nonzero at a currently-empty `(row, col)`.
    Insert {
        /// Row of the new entry.
        row: Index,
        /// Column of the new entry.
        col: Index,
        /// Value of the new entry (must be non-zero).
        value: Value,
    },
    /// Remove the existing nonzero at `(row, col)`.
    Delete {
        /// Row of the entry to remove.
        row: Index,
        /// Column of the entry to remove.
        col: Index,
    },
}

impl DeltaOp {
    /// The `(row, col)` coordinate this operation targets.
    pub fn coord(&self) -> (Index, Index) {
        match *self {
            DeltaOp::Patch { row, col, .. }
            | DeltaOp::Insert { row, col, .. }
            | DeltaOp::Delete { row, col } => (row, col),
        }
    }

    /// `true` for [`DeltaOp::Patch`] — the only op that preserves the
    /// sparsity pattern.
    pub fn is_values_only(&self) -> bool {
        matches!(self, DeltaOp::Patch { .. })
    }
}

/// Why a delta was rejected. The plan is untouched when any of these is
/// returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeltaError {
    /// An op targets a coordinate outside the matrix shape.
    OutOfBounds {
        /// Offending row.
        row: Index,
        /// Offending column.
        col: Index,
        /// Matrix row count.
        rows: Index,
        /// Matrix column count.
        cols: Index,
    },
    /// A patch or insert carries the value 0.0 (reserved for stream
    /// padding slots; store-a-zero must be expressed as a delete).
    ZeroValue {
        /// Row of the zero-valued op.
        row: Index,
        /// Column of the zero-valued op.
        col: Index,
    },
    /// Two ops in the same delta target the same coordinate.
    Conflict {
        /// Row of the contested cell.
        row: Index,
        /// Column of the contested cell.
        col: Index,
    },
    /// A patch or delete targets a cell that holds no entry.
    MissingEntry {
        /// Row of the absent cell.
        row: Index,
        /// Column of the absent cell.
        col: Index,
    },
    /// An insert targets a cell that already holds an entry.
    DuplicateEntry {
        /// Row of the occupied cell.
        row: Index,
        /// Column of the occupied cell.
        col: Index,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeltaError::OutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "delta op at ({row}, {col}) is outside the {rows}x{cols} matrix"
            ),
            DeltaError::ZeroValue { row, col } => write!(
                f,
                "delta op at ({row}, {col}) carries value 0.0 (use a delete to clear a cell)"
            ),
            DeltaError::Conflict { row, col } => {
                write!(f, "multiple delta ops target cell ({row}, {col})")
            }
            DeltaError::MissingEntry { row, col } => {
                write!(f, "delta patches or deletes absent cell ({row}, {col})")
            }
            DeltaError::DuplicateEntry { row, col } => {
                write!(f, "delta inserts into occupied cell ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// An ordered, shape-preserving batch of cell updates.
///
/// Built with the fluent constructors and applied through the plan layer;
/// see the module docs for semantics.
///
/// ```
/// use spasm_sparse::{Coo, Csr, MatrixDelta};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let coo = Coo::from_triplets(4, 4, vec![(0, 0, 1.0), (2, 3, 2.0)])?;
/// let csr = Csr::from(&coo);
/// let delta = MatrixDelta::new()
///     .patch(0, 0, 5.0)
///     .delete(2, 3)
///     .insert(3, 1, -1.0);
/// delta.validate(&csr)?;
/// assert!(!delta.is_values_only());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatrixDelta {
    ops: Vec<DeltaOp>,
}

impl MatrixDelta {
    /// An empty delta (a no-op when applied).
    pub fn new() -> Self {
        MatrixDelta::default()
    }

    /// Wraps a pre-built op list.
    pub fn from_ops(ops: Vec<DeltaOp>) -> Self {
        MatrixDelta { ops }
    }

    /// Adds a value patch for the existing entry at `(row, col)`.
    #[must_use]
    pub fn patch(mut self, row: Index, col: Index, value: Value) -> Self {
        self.ops.push(DeltaOp::Patch { row, col, value });
        self
    }

    /// Adds an insert of `value` at the empty cell `(row, col)`.
    #[must_use]
    pub fn insert(mut self, row: Index, col: Index, value: Value) -> Self {
        self.ops.push(DeltaOp::Insert { row, col, value });
        self
    }

    /// Adds a delete of the existing entry at `(row, col)`.
    #[must_use]
    pub fn delete(mut self, row: Index, col: Index) -> Self {
        self.ops.push(DeltaOp::Delete { row, col });
        self
    }

    /// Appends a single op in place.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// The operations, in insertion order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the delta contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// `true` when every op is a value patch — the sparsity pattern is
    /// unchanged and the delta qualifies for the copy-on-write fast path.
    pub fn is_values_only(&self) -> bool {
        self.ops.iter().all(DeltaOp::is_values_only)
    }

    /// Checks the whole delta against `current`, the CSR snapshot of the
    /// matrix it would apply to.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in op order: out-of-bounds
    /// coordinates, zero values on patch/insert, two ops on one cell,
    /// patch/delete of an absent cell, or insert into an occupied cell.
    pub fn validate(&self, current: &Csr) -> Result<(), DeltaError> {
        let (rows, cols) = (current.rows(), current.cols());
        let mut seen: HashSet<(Index, Index)> = HashSet::with_capacity(self.ops.len());
        for op in &self.ops {
            let (row, col) = op.coord();
            if row >= rows || col >= cols {
                return Err(DeltaError::OutOfBounds {
                    row,
                    col,
                    rows,
                    cols,
                });
            }
            if !seen.insert((row, col)) {
                return Err(DeltaError::Conflict { row, col });
            }
            let present = current.get(row, col).is_some();
            match *op {
                DeltaOp::Patch { value, .. } => {
                    if value == 0.0 {
                        return Err(DeltaError::ZeroValue { row, col });
                    }
                    if !present {
                        return Err(DeltaError::MissingEntry { row, col });
                    }
                }
                DeltaOp::Insert { value, .. } => {
                    if value == 0.0 {
                        return Err(DeltaError::ZeroValue { row, col });
                    }
                    if present {
                        return Err(DeltaError::DuplicateEntry { row, col });
                    }
                }
                DeltaOp::Delete { .. } => {
                    if !present {
                        return Err(DeltaError::MissingEntry { row, col });
                    }
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<DeltaOp> for MatrixDelta {
    fn from_iter<I: IntoIterator<Item = DeltaOp>>(iter: I) -> Self {
        MatrixDelta {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn csr() -> Csr {
        let coo = Coo::from_triplets(
            4,
            5,
            vec![(0, 0, 1.0), (1, 2, 2.0), (3, 4, 3.0), (3, 0, 4.0)],
        )
        .unwrap();
        Csr::from(&coo)
    }

    #[test]
    fn valid_mixed_delta_passes() {
        let d = MatrixDelta::new()
            .patch(0, 0, 9.0)
            .delete(1, 2)
            .insert(2, 2, -1.5);
        assert!(d.validate(&csr()).is_ok());
        assert!(!d.is_values_only());
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn values_only_detection() {
        assert!(MatrixDelta::new().patch(0, 0, 2.0).is_values_only());
        assert!(MatrixDelta::new().is_values_only());
        assert!(!MatrixDelta::new().delete(0, 0).is_values_only());
        assert!(!MatrixDelta::new().insert(0, 1, 1.0).is_values_only());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let d = MatrixDelta::new().patch(4, 0, 1.0);
        assert_eq!(
            d.validate(&csr()),
            Err(DeltaError::OutOfBounds {
                row: 4,
                col: 0,
                rows: 4,
                cols: 5
            })
        );
        let d = MatrixDelta::new().insert(0, 5, 1.0);
        assert!(matches!(
            d.validate(&csr()),
            Err(DeltaError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn zero_values_rejected() {
        let d = MatrixDelta::new().patch(0, 0, 0.0);
        assert_eq!(
            d.validate(&csr()),
            Err(DeltaError::ZeroValue { row: 0, col: 0 })
        );
        let d = MatrixDelta::new().insert(2, 2, 0.0);
        assert_eq!(
            d.validate(&csr()),
            Err(DeltaError::ZeroValue { row: 2, col: 2 })
        );
    }

    #[test]
    fn conflicting_coordinates_rejected() {
        let d = MatrixDelta::new().patch(0, 0, 1.0).delete(0, 0);
        assert_eq!(
            d.validate(&csr()),
            Err(DeltaError::Conflict { row: 0, col: 0 })
        );
    }

    #[test]
    fn presence_checks() {
        // Patch of an absent cell.
        let d = MatrixDelta::new().patch(2, 2, 1.0);
        assert_eq!(
            d.validate(&csr()),
            Err(DeltaError::MissingEntry { row: 2, col: 2 })
        );
        // Delete of an absent cell.
        let d = MatrixDelta::new().delete(0, 1);
        assert_eq!(
            d.validate(&csr()),
            Err(DeltaError::MissingEntry { row: 0, col: 1 })
        );
        // Insert into an occupied cell.
        let d = MatrixDelta::new().insert(3, 4, 1.0);
        assert_eq!(
            d.validate(&csr()),
            Err(DeltaError::DuplicateEntry { row: 3, col: 4 })
        );
    }

    #[test]
    fn empty_delta_is_trivially_valid() {
        let d = MatrixDelta::new();
        assert!(d.validate(&csr()).is_ok());
        assert!(d.is_empty());
    }
}
