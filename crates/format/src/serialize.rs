//! Binary (wire/HBM) layout of the SPASM format.
//!
//! This is the byte stream a host would DMA into the accelerator's HBM
//! channels: a fixed header, the portfolio's template masks (the opcode
//! LUT content), the COO tile directory, then per tile the interleaved
//! position-encoding words and value quadruples, all little-endian.
//!
//! Layout:
//!
//! ```text
//! header   : magic "SPSM" | version u32 | rows u32 | cols u32 |
//!            tile_size u32 | nnz u64 | paddings u64 |
//!            n_templates u32 | n_tiles u32 | n_instances u64
//! templates: n_templates × u16 (padded to 4-byte alignment)
//! tiles    : n_tiles × (tile_row u32 | tile_col u32 | n_instances u32)
//! stream   : n_instances × (encoding u32 | 4 × f32)
//! checksum : crc32 u32 over all preceding bytes   (version ≥ 2 only)
//! ```
//!
//! Version 2 (the current writer) appends a CRC-32 over the header,
//! template, tile and stream sections, so corruption is detected before
//! any structural parsing trusts the bytes; version-1 streams (no
//! checksum) still decode. Deserialisation additionally validates the
//! header, directory consistency and field ranges, so a corrupted stream
//! is rejected rather than mis-executed.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::crc::crc32;
use crate::encoding::PositionEncoding;
use crate::matrix::{SpasmMatrix, Tile};

/// Magic number opening every serialised SPASM stream.
pub const MAGIC: [u8; 4] = *b"SPSM";

/// Current wire-format version (written by [`SpasmMatrix::to_bytes`]).
pub const VERSION: u32 = 2;

/// Oldest wire-format version [`SpasmMatrix::from_bytes`] still decodes.
pub const MIN_VERSION: u32 = 1;

/// Size of the fixed header in bytes.
pub const HEADER_BYTES: usize = 52;

/// Size of the trailing checksum in bytes (version ≥ 2).
pub const CHECKSUM_BYTES: usize = 4;

/// Errors when decoding a serialised stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The stream does not start with the SPASM magic.
    BadMagic,
    /// Unsupported wire-format version.
    BadVersion(u32),
    /// The stream ended before the declared payload.
    Truncated {
        /// What was being read.
        reading: &'static str,
    },
    /// A header or directory field is inconsistent.
    Inconsistent(&'static str),
    /// The stream's trailing CRC-32 does not match its contents
    /// (version ≥ 2): the bytes were corrupted in flight or at rest.
    ChecksumMismatch {
        /// The checksum stored in the stream.
        stored: u32,
        /// The checksum computed over the received bytes.
        computed: u32,
    },
    /// A v3 container is missing a section the reader requires.
    MissingSection {
        /// The absent section's id.
        id: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "stream does not start with the SPSM magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated { reading } => {
                write!(f, "stream truncated while reading {reading}")
            }
            WireError::Inconsistent(what) => write!(f, "inconsistent stream: {what}"),
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "stream checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            WireError::MissingSection { id } => {
                write!(f, "container is missing required section {id}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl SpasmMatrix {
    /// Serialises the matrix into its wire/HBM byte layout (version 2,
    /// with a trailing CRC-32).
    ///
    /// # Examples
    ///
    /// ```
    /// use spasm_format::{SpasmMatrix, SubmatrixMap};
    /// use spasm_patterns::{DecompositionTable, TemplateSet};
    /// use spasm_sparse::Coo;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let coo = Coo::from_triplets(4, 4, vec![(1, 2, 3.0)])?;
    /// let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
    /// let m = SpasmMatrix::encode(&SubmatrixMap::from_coo(&coo), &table, 4)?;
    /// let bytes = m.to_bytes();
    /// assert_eq!(SpasmMatrix::from_bytes(&bytes)?, m);
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = self.serialize_sections(VERSION);
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Serialises the matrix in the legacy version-1 layout (no trailing
    /// checksum). Kept for compatibility testing and for peers that have
    /// not upgraded; new streams should use [`SpasmMatrix::to_bytes`].
    pub fn to_bytes_v1(&self) -> Bytes {
        self.serialize_sections(1).freeze()
    }

    /// The header, template, tile and stream sections, with `version`
    /// stamped in the header.
    fn serialize_sections(&self, version: u32) -> BytesMut {
        let n_instances = self.n_instances();
        let mut buf = BytesMut::with_capacity(
            HEADER_BYTES
                + self.template_masks().len() * 2
                + self.tiles().len() * 12
                + n_instances * 20
                + CHECKSUM_BYTES,
        );
        buf.put_slice(&MAGIC);
        buf.put_u32_le(version);
        buf.put_u32_le(self.rows());
        buf.put_u32_le(self.cols());
        buf.put_u32_le(self.tile_size());
        buf.put_u64_le(self.nnz() as u64);
        buf.put_u64_le(self.paddings());
        buf.put_u32_le(self.template_masks().len() as u32);
        buf.put_u32_le(self.tiles().len() as u32);
        buf.put_u64_le(n_instances as u64);
        for &mask in self.template_masks() {
            buf.put_u16_le(mask);
        }
        if self.template_masks().len() % 2 == 1 {
            buf.put_u16_le(0); // alignment pad
        }
        for t in self.tiles() {
            buf.put_u32_le(t.tile_row);
            buf.put_u32_le(t.tile_col);
            buf.put_u32_le(t.n_instances as u32);
        }
        let values = self.values();
        for (i, e) in self.encodings().iter().enumerate() {
            buf.put_u32_le(e.bits());
            for k in 0..4 {
                buf.put_f32_le(values[i * 4 + k]);
            }
        }
        buf
    }

    /// Reconstructs a matrix from its wire layout (versions 1 and 2).
    ///
    /// For version-2 streams the trailing CRC-32 is verified over the
    /// declared payload before the template, tile and stream sections are
    /// parsed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on bad magic/version, truncation, checksum
    /// mismatch, or any internal inconsistency (directory sums, field
    /// ranges).
    pub fn from_bytes(data: &[u8]) -> Result<SpasmMatrix, WireError> {
        fn need(data: &[u8], n: usize, reading: &'static str) -> Result<(), WireError> {
            if data.len() < n {
                Err(WireError::Truncated { reading })
            } else {
                Ok(())
            }
        }
        let full = data;
        let mut data = data;
        need(data, HEADER_BYTES, "header")?;
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = data.get_u32_le();
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(WireError::BadVersion(version));
        }
        let rows = data.get_u32_le();
        let cols = data.get_u32_le();
        let tile_size = data.get_u32_le();
        let nnz = data.get_u64_le() as usize;
        let paddings = data.get_u64_le();
        let n_templates = data.get_u32_le() as usize;
        let n_tiles = data.get_u32_le() as usize;
        let n_instances64 = data.get_u64_le();

        if tile_size == 0 || !tile_size.is_multiple_of(4) || tile_size > crate::MAX_TILE_SIZE {
            return Err(WireError::Inconsistent("tile size out of range"));
        }
        if n_templates == 0 || n_templates > 16 {
            return Err(WireError::Inconsistent("template count out of range"));
        }
        if u128::from(n_instances64) * 4 < nnz as u128 {
            return Err(WireError::Inconsistent("fewer value slots than non-zeros"));
        }

        // Sizes in u128 so hostile counts cannot overflow the arithmetic;
        // anything bigger than the buffer is simply truncated.
        let padded_templates = n_templates + n_templates % 2;
        let payload_len = HEADER_BYTES as u128
            + padded_templates as u128 * 2
            + n_tiles as u128 * 12
            + u128::from(n_instances64) * 20;
        if payload_len > full.len() as u128 {
            return Err(WireError::Truncated { reading: "payload" });
        }
        let payload_len = payload_len as usize;
        let n_instances = n_instances64 as usize;

        if version >= 2 {
            need(full, payload_len + CHECKSUM_BYTES, "checksum")?;
            let stored = u32::from_le_bytes([
                full[payload_len],
                full[payload_len + 1],
                full[payload_len + 2],
                full[payload_len + 3],
            ]);
            let computed = crc32(&full[..payload_len]);
            if stored != computed {
                return Err(WireError::ChecksumMismatch { stored, computed });
            }
        }

        need(data, padded_templates * 2, "template masks")?;
        let mut templates = Vec::with_capacity(n_templates);
        for i in 0..padded_templates {
            let m = data.get_u16_le();
            if i < n_templates {
                templates.push(m);
            }
        }

        need(data, n_tiles * 12, "tile directory")?;
        let mut tiles = Vec::with_capacity(n_tiles);
        let mut cursor = 0usize;
        let mut last: Option<(u32, u32)> = None;
        for _ in 0..n_tiles {
            let tile_row = data.get_u32_le();
            let tile_col = data.get_u32_le();
            let count = data.get_u32_le() as usize;
            if let Some(prev) = last {
                if prev >= (tile_row, tile_col) {
                    return Err(WireError::Inconsistent("tile directory not sorted"));
                }
            }
            last = Some((tile_row, tile_col));
            tiles.push(Tile {
                tile_row,
                tile_col,
                first_instance: cursor,
                n_instances: count,
            });
            cursor = cursor
                .checked_add(count)
                .ok_or(WireError::Inconsistent("tile directory overflows"))?;
        }
        if cursor != n_instances {
            return Err(WireError::Inconsistent(
                "tile directory does not sum to stream",
            ));
        }

        need(data, n_instances * 20, "instance stream")?;
        let mut encodings = Vec::with_capacity(n_instances);
        let mut values = Vec::with_capacity(n_instances * 4);
        for _ in 0..n_instances {
            let e = PositionEncoding::from_bits(data.get_u32_le());
            if usize::from(e.t_idx()) >= n_templates {
                return Err(WireError::Inconsistent("t_idx beyond portfolio"));
            }
            encodings.push(e);
            for _ in 0..4 {
                values.push(data.get_f32_le());
            }
        }

        Ok(SpasmMatrix::from_raw_parts(
            rows, cols, tile_size, nnz, paddings, templates, tiles, encodings, values,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submatrix::SubmatrixMap;
    use spasm_patterns::{DecompositionTable, TemplateSet};
    use spasm_sparse::Coo;

    fn sample() -> SpasmMatrix {
        let mut t = vec![];
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((r, c, (r * 4 + c + 1) as f32));
            }
        }
        t.push((10, 3, -2.5));
        t.push((3, 12, 7.0));
        let coo = Coo::from_triplets(16, 16, t).unwrap();
        let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
        SpasmMatrix::encode(&SubmatrixMap::from_coo(&coo), &table, 8).unwrap()
    }

    /// Recomputes and restamps the trailing CRC of a mutated v2 buffer,
    /// so tests can exercise the structural validators behind it.
    fn restamp(b: &mut [u8]) {
        let payload = b.len() - CHECKSUM_BYTES;
        let crc = crc32(&b[..payload]).to_le_bytes();
        b[payload..].copy_from_slice(&crc);
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = SpasmMatrix::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn writes_current_version() {
        let b = sample().to_bytes();
        assert_eq!(u32::from_le_bytes([b[4], b[5], b[6], b[7]]), VERSION);
        assert_eq!(VERSION, 2);
    }

    #[test]
    fn version_1_streams_still_decode() {
        let m = sample();
        let v1 = m.to_bytes_v1();
        assert_eq!(u32::from_le_bytes([v1[4], v1[5], v1[6], v1[7]]), 1);
        // No checksum trailer in v1.
        assert_eq!(v1.len() + CHECKSUM_BYTES, m.to_bytes().len());
        let back = SpasmMatrix::from_bytes(&v1).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn stream_size_matches_accounting() {
        let m = sample();
        let bytes = m.to_bytes();
        let expected = HEADER_BYTES
            + (m.template_masks().len() + m.template_masks().len() % 2) * 2
            + m.tiles().len() * 12
            + m.n_instances() * 20
            + CHECKSUM_BYTES;
        assert_eq!(bytes.len(), expected);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = sample().to_bytes().to_vec();
        b[0] = b'X';
        assert_eq!(SpasmMatrix::from_bytes(&b), Err(WireError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = sample().to_bytes().to_vec();
        b[4] = 99;
        assert!(matches!(
            SpasmMatrix::from_bytes(&b),
            Err(WireError::BadVersion(99))
        ));
        let mut b0 = sample().to_bytes().to_vec();
        b0[4] = 0;
        assert!(matches!(
            SpasmMatrix::from_bytes(&b0),
            Err(WireError::BadVersion(0))
        ));
    }

    #[test]
    fn truncation_rejected_at_every_boundary() {
        let b = sample().to_bytes();
        for cut in [3usize, 20, 47, 50, 70, b.len() - 1] {
            let r = SpasmMatrix::from_bytes(&b[..cut.min(b.len() - 1)]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn missing_checksum_is_truncation() {
        let m = sample();
        let b = m.to_bytes();
        let r = SpasmMatrix::from_bytes(&b[..b.len() - CHECKSUM_BYTES]);
        assert_eq!(
            r,
            Err(WireError::Truncated {
                reading: "checksum"
            })
        );
    }

    #[test]
    fn checksum_detects_stream_corruption() {
        let m = sample();
        let b = m.to_bytes().to_vec();
        // Flip one bit in each section past the magic/version and check
        // the CRC (or a header-derived truncation) catches it.
        for byte in [8usize, 40, HEADER_BYTES + 1, b.len() - CHECKSUM_BYTES - 3] {
            let mut c = b.clone();
            c[byte] ^= 0x10;
            let r = SpasmMatrix::from_bytes(&c);
            assert!(
                matches!(
                    r,
                    Err(WireError::ChecksumMismatch { .. })
                        | Err(WireError::Truncated { .. })
                        | Err(WireError::Inconsistent(_))
                ),
                "flip at {byte} gave {r:?}"
            );
        }
    }

    #[test]
    fn corrupt_directory_rejected_by_checksum() {
        let m = sample();
        let mut b = m.to_bytes().to_vec();
        let dir_off = HEADER_BYTES + (m.template_masks().len() + m.template_masks().len() % 2) * 2;
        b[dir_off + 8] = 0xFF;
        assert!(matches!(
            SpasmMatrix::from_bytes(&b),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_directory_rejected_structurally() {
        // Restamp the CRC after corrupting the count, so the structural
        // validator (directory sums) is what rejects the stream.
        let m = sample();
        let mut b = m.to_bytes().to_vec();
        let dir_off = HEADER_BYTES + (m.template_masks().len() + m.template_masks().len() % 2) * 2;
        b[dir_off + 8] = 0xFF;
        restamp(&mut b);
        assert!(matches!(
            SpasmMatrix::from_bytes(&b),
            Err(WireError::Inconsistent(_)) | Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn out_of_range_t_idx_rejected() {
        let m = sample();
        let mut b = m.to_bytes().to_vec();
        // Declare a 15-template portfolio (the 16-slot padded layout is
        // unchanged) and point the first instance at t_idx 15.
        b[36] = 15; // n_templates, little-endian u32 at offset 36
        let stream_off = HEADER_BYTES + 16 * 2 + m.tiles().len() * 12;
        b[stream_off + 3] = 0xF0 | (b[stream_off + 3] & 0x0F);
        restamp(&mut b);
        assert_eq!(
            SpasmMatrix::from_bytes(&b),
            Err(WireError::Inconsistent("t_idx beyond portfolio"))
        );
    }

    #[test]
    fn hostile_instance_count_is_rejected_without_allocating() {
        // A header declaring ~10^18 instances must fail fast on
        // truncation, not overflow size arithmetic or try to allocate.
        let m = sample();
        let mut b = m.to_bytes().to_vec();
        b[44..52].copy_from_slice(&u64::MAX.to_le_bytes());
        restamp(&mut b);
        assert_eq!(
            SpasmMatrix::from_bytes(&b),
            Err(WireError::Truncated { reading: "payload" })
        );
    }

    #[test]
    fn decoded_stream_executes_identically() {
        let m = sample();
        let back = SpasmMatrix::from_bytes(&m.to_bytes()).unwrap();
        let x: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
        assert_eq!(m.spmv_alloc(&x).unwrap(), back.spmv_alloc(&x).unwrap());
    }
}
