//! Fig. 14: ablation study — performance gained by ⑤ workload-schedule
//! exploration and ② template-pattern selection over the fixed baseline
//! (SPASM_4_1, tile 1024, template set 0).
//!
//! ```text
//! cargo run --release -p spasm-bench --bin fig14_ablation [-- --scale paper]
//! ```

use spasm::{Pipeline, PipelineOptions};
use spasm_bench::{geomean, rule, scale_from_args, scale_name};
use spasm_hw::HwConfig;
use spasm_patterns::TemplateSet;

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 14 — ablation: gains from ⑤ and ② ({})",
        scale_name(scale)
    );
    rule(86);
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>9} {:>9} {:>14}",
        "matrix", "base", "+⑤", "+⑤+②", "⑤ gain", "② gain", "selected"
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>9} {:>9} {:>14}",
        "", "GFLOP/s", "GFLOP/s", "GFLOP/s", "", "", ""
    );
    rule(86);

    let base_pipe = Pipeline::with_options(
        PipelineOptions::default()
            .fixed_portfolio(TemplateSet::table_v_set(0))
            .fixed_schedule(1024, HwConfig::spasm_4_1()),
    );
    let sched_pipe = Pipeline::with_options(
        PipelineOptions::default().fixed_portfolio(TemplateSet::table_v_set(0)),
    );
    let full_pipe = Pipeline::new();

    let mut sched_gains = Vec::new();
    let mut select_gains = Vec::new();
    spasm_bench::for_each_workload(scale, |w, m| {
        let run = |pipe: &Pipeline| {
            let mut prepared = pipe.prepare(&m).expect("pipeline");
            let x = vec![1.0f32; m.cols() as usize];
            let mut y = vec![0.0f32; m.rows() as usize];
            let exec = prepared.execute(&x, &mut y).expect("simulate");
            (exec.gflops, prepared)
        };
        let (g_base, _) = run(&base_pipe);
        let (g_sched, _) = run(&sched_pipe);
        let (g_full, full_prep) = run(&full_pipe);
        let sched_gain = g_sched / g_base;
        let select_gain = g_full / g_sched;
        sched_gains.push(sched_gain);
        select_gains.push(select_gain);
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>10.2} {:>8.2}x {:>8.2}x {:>9}@{}",
            w.to_string(),
            g_base,
            g_sched,
            g_full,
            sched_gain,
            select_gain,
            full_prep.selection.set.name(),
            full_prep.best.tile_size,
        );
    });
    rule(86);
    println!(
        "geomean gains: ⑤ schedule exploration {:.2}x (paper 1.13x), \
         ② template selection {:.2}x (paper 1.04x)",
        geomean(sched_gains.iter().copied()),
        geomean(select_gains.iter().copied())
    );
    println!(
        "(paper highlights: mip1 gains 1.82x from dynamic scheduling; \
         anti-diagonal-dominated c-73 gains 1.36x from pattern selection)"
    );
}
