//! Cycle-approximate simulator of the SPASM hardware accelerator
//! (Section IV-D of the paper).
//!
//! The paper's accelerator is an HBM-attached FPGA design:
//!
//! * a **VALU** per PE — 4 multipliers and 3 adders behind a mux network,
//!   steered by a ≤30-bit opcode decoded from the 4-bit template id
//!   ([`ValuOpcode`]);
//! * a **PE** — double-buffered x-vector buffer, partial-sum y buffer and
//!   the opcode look-up table ([`Pe`]);
//! * **PE groups** of 16 PEs: every 4 PEs share one HBM channel for matrix
//!   values, all 16 share one channel for position encodings, and the
//!   group owns `NUM_XVEC_CH` channels for loading x ([`HwConfig`]);
//! * one HBM channel for the y vector, shared by the whole accelerator.
//!
//! The FPGA itself is not available in this reproduction, so execution is
//! simulated: [`Accelerator::run`] performs the *bit-faithful functional
//! computation* (every MAC goes through the VALU model) and a
//! *cycle-approximate timing model* whose terms are per-channel bandwidth,
//! double-buffered x prefetch, pipeline issue rate, tile-switch overhead
//! and per-PE load imbalance. The same timing code estimates cycles from a
//! [`spasm_format::TilingSummary`] without touching values
//! ([`perf::estimate_cycles`]) — that is the `PERF_MODEL` of Algorithm 4,
//! and tests pin it to the full simulation exactly.
//!
//! For repeated-SpMV workloads (iterative solvers, serving), use
//! [`Accelerator::prepare`] to build an [`ExecutionPlan`] once per
//! `(matrix, config)` pair: the plan caches the decoded instance stream,
//! tile-row layout, LPT schedule and the full [`ExecReport`], and its
//! [`ExecutionPlan::run`] is allocation-free at steady state while staying
//! bit-identical to [`Accelerator::run`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod config;
#[cfg(feature = "fault-injection")]
pub mod fault;
mod integrity;
mod kernel;
mod pe;
pub mod perf;
mod plan;
mod sim;
mod stream;
pub mod timing;
pub mod trace;
mod valu;

pub use config::{ChannelRole, HwConfig, HBM_CHANNEL_GBS, PES_PER_GROUP, PES_PER_VALUE_CHANNEL};
pub use integrity::{merge_health, HealthReport, IntegrityCheck, VerifyScope};
pub use kernel::ClassRun;
pub use pe::Pe;
pub use plan::{Dispatch, ExecutionPlan, FrozenTile, PlanParts, PlanStreams};
pub use sim::{Accelerator, BatchReport, ExecReport, SimError, Traffic};
pub use stream::{StableBytes, Stream};
pub use trace::{EventKind, ExecutionTrace, TraceEvent};
pub use valu::{OpcodeError, OutNode, ValuOpcode};
