//! The serving front-end: catalog + admission queue + batch execution.
//!
//! [`SpmvServer`] ties the pieces together. Ingest routes a matrix
//! through the pipeline into the [`PlanCatalog`]; [`SpmvServer::submit`]
//! admits one request against a cached plan; the shared
//! [`VirtualClock`] drives deadline flushes. Batch *composition* is
//! decided inside the queue lock before any execution starts, so the
//! number of worker threads executing flushed batches can never change
//! which requests batch together — and since
//! `Prepared::execute_batch` is itself bit-identical to looped
//! single-vector execution for any thread count, every served result is
//! bit-identical to a batch-1 serve of the same trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use spasm::{IntegrityPolicy, Pipeline, PipelineError, Prepared};
use spasm_format::MatrixFingerprint;
use spasm_hw::HealthReport;
use spasm_sparse::Coo;

use crate::catalog::{CatalogConfig, CatalogError, PlanCatalog};
use crate::clock::{Tick, VirtualClock};
use crate::queue::{AdmissionQueue, BatchSpec, FlushTrigger, QueueConfig, QueuedRequest};

/// Configuration for an [`SpmvServer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Admission-queue coalescing parameters.
    pub queue: QueueConfig,
    /// Plan-catalog byte budget.
    pub catalog: CatalogConfig,
    /// Worker threads executing flushed batches concurrently. `0` and
    /// `1` both mean "execute on the calling thread". Only throughput
    /// depends on this — never batch composition or results.
    pub workers: usize,
}

/// Errors surfaced to a single request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The fingerprint is not resident in the catalog.
    UnknownMatrix(MatrixFingerprint),
    /// The request vector's length does not match the matrix.
    Shape {
        /// The matrix's column count.
        expected: usize,
        /// The supplied vector length.
        actual: usize,
    },
    /// Catalog ingest failed.
    Catalog(CatalogError),
    /// The underlying execution failed.
    Pipeline(PipelineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownMatrix(fp) => {
                write!(f, "matrix {} is not in the catalog", fp.token())
            }
            ServeError::Shape { expected, actual } => {
                write!(f, "request vector has length {actual}, expected {expected}")
            }
            ServeError::Catalog(e) => write!(f, "catalog: {e}"),
            ServeError::Pipeline(e) => write!(f, "execution: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CatalogError> for ServeError {
    fn from(e: CatalogError) -> Self {
        ServeError::Catalog(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

/// A successfully served request.
#[derive(Debug, Clone, PartialEq)]
pub struct Output {
    /// The product `A·x`.
    pub y: Vec<f32>,
    /// This vector's health under the request's integrity policy.
    pub health: HealthReport,
    /// How many requests were coalesced into the executing batch.
    pub batch_size: usize,
    /// Ticks spent queued (flush tick − arrival tick).
    pub queued_ticks: Tick,
    /// Simulated seconds of the whole batch execution on the modelled
    /// accelerator (shared by all members of the batch).
    pub exec_seconds: f64,
    /// The tick at which the batch left the queue.
    pub flushed_at: Tick,
    /// Why the batch flushed.
    pub trigger: FlushTrigger,
}

/// The outcome of one admitted request.
#[derive(Debug)]
pub struct Completion {
    /// The id [`SpmvServer::submit`] returned for the request.
    pub id: u64,
    /// The served output, or a per-request error.
    pub result: Result<Output, ServeError>,
}

/// One line of the batch log: which requests executed together and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// The matrix the batch ran against.
    pub fingerprint: MatrixFingerprint,
    /// Member request ids, in admission order.
    pub request_ids: Vec<u64>,
    /// The tick the batch left the queue.
    pub flushed_at: Tick,
    /// Why it flushed.
    pub trigger: FlushTrigger,
}

/// The SpMV serving front-end. See the module docs.
#[derive(Debug)]
pub struct SpmvServer {
    catalog: PlanCatalog,
    queue: Mutex<AdmissionQueue>,
    clock: VirtualClock,
    pipeline: Pipeline,
    next_id: AtomicU64,
    workers: usize,
    log: Mutex<Vec<BatchRecord>>,
}

impl SpmvServer {
    /// A server with the default ingest pipeline.
    pub fn new(config: ServerConfig) -> Self {
        Self::with_pipeline(config, Pipeline::new())
    }

    /// A server whose ingest runs a custom-configured pipeline (pinned
    /// portfolio, integrity defaults, thread budget, …).
    pub fn with_pipeline(config: ServerConfig, pipeline: Pipeline) -> Self {
        SpmvServer {
            catalog: PlanCatalog::new(config.catalog),
            queue: Mutex::new(AdmissionQueue::new(config.queue)),
            clock: VirtualClock::new(),
            pipeline,
            next_id: AtomicU64::new(0),
            workers: config.workers.max(1),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> Tick {
        self.clock.now()
    }

    /// The plan catalog (for inspection and direct management).
    pub fn catalog(&self) -> &PlanCatalog {
        &self.catalog
    }

    /// Prepares a COO matrix through the server's pipeline and caches
    /// the plan. Returns the catalog key.
    ///
    /// # Errors
    ///
    /// [`ServeError::Pipeline`] when prepare fails, [`ServeError::Catalog`]
    /// when the plan cannot fit the cache budget.
    pub fn ingest_coo(&self, matrix: &Coo) -> Result<MatrixFingerprint, ServeError> {
        let prepared = self.pipeline.prepare(matrix)?;
        Ok(self.catalog.insert_prepared(prepared)?)
    }

    /// Ingests a v2 wire stream: decode, prepare, cache — keyed by the
    /// *ingested stream's* canonical fingerprint, which remote clients
    /// can compute locally. Cheap no-op when already resident.
    ///
    /// # Errors
    ///
    /// [`ServeError::Catalog`] wrapping decode, prepare or budget
    /// failures.
    pub fn ingest_wire(&self, bytes: &[u8]) -> Result<MatrixFingerprint, ServeError> {
        Ok(self.catalog.insert_wire(bytes, &self.pipeline)?)
    }

    /// Admits one request against the cached plan for `fingerprint`.
    ///
    /// Returns the request id plus any completions produced *right now*
    /// (the admission filled a batch to the size trigger). Otherwise the
    /// request waits for its group's deadline: drive the clock with
    /// [`SpmvServer::advance_to`] / [`SpmvServer::advance`], or flush
    /// unconditionally with [`SpmvServer::drain`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownMatrix`] and [`ServeError::Shape`] reject the
    /// request up front; nothing is queued on error.
    pub fn submit(
        &self,
        fingerprint: MatrixFingerprint,
        x: Vec<f32>,
        policy: IntegrityPolicy,
    ) -> Result<(u64, Vec<Completion>), ServeError> {
        let lease = self
            .catalog
            .get(&fingerprint)
            .ok_or(ServeError::UnknownMatrix(fingerprint))?;
        if x.len() != lease.cols() as usize {
            return Err(ServeError::Shape {
                expected: lease.cols() as usize,
                actual: x.len(),
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let flushed = {
            let mut queue = self.lock_queue();
            let now = self.clock.now();
            queue.push(
                QueuedRequest {
                    id,
                    policy,
                    x,
                    arrival: now,
                    lease,
                },
                now,
            )
        };
        let completions = match flushed {
            Some(batch) => self.execute_batches(vec![batch]),
            None => Vec::new(),
        };
        Ok((id, completions))
    }

    /// Advances the clock to `t` and executes every batch whose deadline
    /// has passed. Completions are returned in (deadline, admission)
    /// order regardless of worker count.
    pub fn advance_to(&self, t: Tick) -> Vec<Completion> {
        let now = self.clock.advance_to(t);
        let due = self.lock_queue().due(now);
        self.execute_batches(due)
    }

    /// Advances the clock by `ticks`; see [`SpmvServer::advance_to`].
    pub fn advance(&self, ticks: Tick) -> Vec<Completion> {
        let now = self.clock.advance(ticks);
        let due = self.lock_queue().due(now);
        self.execute_batches(due)
    }

    /// Flushes and executes everything still queued, without waiting for
    /// deadlines.
    pub fn drain(&self) -> Vec<Completion> {
        let now = self.clock.now();
        let batches = self.lock_queue().drain(now);
        self.execute_batches(batches)
    }

    /// The earliest pending deadline, if any request is queued.
    pub fn next_deadline(&self) -> Option<Tick> {
        self.lock_queue().next_deadline()
    }

    /// Requests currently waiting in the queue.
    pub fn pending(&self) -> usize {
        self.lock_queue().len()
    }

    /// A copy of the batch log: every executed batch, in execution-issue
    /// order, with membership and flush metadata. Deterministic for a
    /// fixed trace and clock schedule.
    pub fn batch_log(&self) -> Vec<BatchRecord> {
        self.lock_log().clone()
    }

    /// Clears the batch log (e.g. between measurement phases).
    pub fn clear_batch_log(&self) {
        self.lock_log().clear();
    }

    /// Runs `f` against the cached plan for `fingerprint`, serialised
    /// with batch execution. Intended for maintenance and tests (e.g.
    /// arming fault campaigns on a served plan).
    pub fn with_prepared<R>(
        &self,
        fingerprint: MatrixFingerprint,
        f: impl FnOnce(&mut Prepared) -> R,
    ) -> Option<R> {
        let lease = self.catalog.get(&fingerprint)?;
        let mut prepared = lease.prepared();
        Some(f(&mut prepared))
    }

    fn lock_queue(&self) -> MutexGuard<'_, AdmissionQueue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_log(&self) -> MutexGuard<'_, Vec<BatchRecord>> {
        self.log.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Executes flushed batches, fanning out across up to
    /// `self.workers` scoped threads. Compositions were already fixed by
    /// the queue; this only affects wall-clock concurrency. Completions
    /// come back grouped per batch in flush order, ids ascending within
    /// a batch.
    fn execute_batches(&self, batches: Vec<BatchSpec>) -> Vec<Completion> {
        if batches.is_empty() {
            return Vec::new();
        }
        {
            let mut log = self.lock_log();
            for b in &batches {
                log.push(BatchRecord {
                    fingerprint: b.fingerprint,
                    request_ids: b.requests.iter().map(|r| r.id).collect(),
                    flushed_at: b.flushed_at,
                    trigger: b.trigger,
                });
            }
        }
        let workers = self.workers.min(batches.len());
        if workers <= 1 {
            return batches
                .into_iter()
                .flat_map(|b| self.execute_one(b))
                .collect();
        }
        // Round-robin the batches over `workers` scoped threads, then
        // reassemble in flush order so the caller-visible order is
        // independent of scheduling.
        let mut slots: Vec<Vec<Completion>> = Vec::new();
        let indexed: Vec<(usize, BatchSpec)> = batches.into_iter().enumerate().collect();
        let mut shards: Vec<Vec<(usize, BatchSpec)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, b) in indexed {
            shards[i % workers].push((i, b));
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| {
                    scope.spawn(move || {
                        shard
                            .into_iter()
                            .map(|(i, b)| (i, self.execute_one(b)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut all: Vec<(usize, Vec<Completion>)> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_default())
                .collect();
            all.sort_by_key(|(i, _)| *i);
            slots = all.into_iter().map(|(_, c)| c).collect();
        });
        slots.into_iter().flatten().collect()
    }

    /// Executes one batch against its leased plan. On an indexed shape
    /// error (which submit-time validation should have made impossible)
    /// the offending request alone is rejected and the rest retried.
    fn execute_one(&self, batch: BatchSpec) -> Vec<Completion> {
        let BatchSpec {
            policy,
            mut requests,
            flushed_at,
            trigger,
            ..
        } = batch;
        let mut completions: Vec<Completion> = Vec::with_capacity(requests.len());
        while !requests.is_empty() {
            let size = requests.len();
            let outcome = {
                let lease = requests[0].lease.clone();
                let rows = lease.rows() as usize;
                let xs: Vec<&[f32]> = requests.iter().map(|r| r.x.as_slice()).collect();
                let mut ys = vec![vec![0.0f32; rows]; size];
                let mut prepared = lease.prepared();
                prepared.set_integrity(policy);
                match prepared.execute_batch_into(&xs, &mut ys) {
                    Ok(report) => {
                        let exec_seconds = report
                            .batch
                            .as_ref()
                            .map(|b| b.seconds)
                            .unwrap_or(report.seconds);
                        Ok((ys, prepared.batch_health().to_vec(), exec_seconds))
                    }
                    Err(e) => Err(e),
                }
            };
            match outcome {
                Ok((ys, health, exec_seconds)) => {
                    for ((request, y), h) in requests.drain(..).zip(ys).zip(health) {
                        completions.push(Completion {
                            id: request.id,
                            result: Ok(Output {
                                y,
                                health: h,
                                batch_size: size,
                                queued_ticks: flushed_at.saturating_sub(request.arrival),
                                exec_seconds,
                                flushed_at,
                                trigger,
                            }),
                        });
                    }
                }
                Err(PipelineError::BatchDimensionMismatch {
                    vector,
                    expected,
                    actual,
                    ..
                }) if vector < requests.len() => {
                    let bad = requests.remove(vector);
                    completions.push(Completion {
                        id: bad.id,
                        result: Err(ServeError::Shape { expected, actual }),
                    });
                }
                Err(e) => {
                    for request in requests.drain(..) {
                        completions.push(Completion {
                            id: request.id,
                            result: Err(ServeError::Pipeline(e.clone())),
                        });
                    }
                }
            }
        }
        completions.sort_by_key(|c| c.id);
        completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::PolicyClass;
    use spasm_sparse::Coo;

    fn diag(n: u32) -> Coo {
        Coo::from_triplets(n, n, (0..n).map(|i| (i, i, 1.0 + i as f32)).collect())
            .expect("valid triplets")
    }

    fn server(max_batch: usize, max_delay: Tick) -> SpmvServer {
        SpmvServer::new(ServerConfig {
            queue: QueueConfig {
                max_batch,
                max_delay,
            },
            ..ServerConfig::default()
        })
    }

    #[test]
    fn submit_rejects_unknown_and_misshapen_requests() {
        let s = server(4, 10);
        let fp = s.ingest_coo(&diag(16)).expect("ingest");
        let ghost = diag(8).clone();
        let ghost_fp = {
            let other = server(1, 0);
            other.ingest_coo(&ghost).expect("ingest")
        };
        assert!(matches!(
            s.submit(ghost_fp, vec![1.0; 8], IntegrityPolicy::off()),
            Err(ServeError::UnknownMatrix(_))
        ));
        assert!(matches!(
            s.submit(fp, vec![1.0; 5], IntegrityPolicy::off()),
            Err(ServeError::Shape {
                expected: 16,
                actual: 5
            })
        ));
        assert_eq!(s.pending(), 0, "rejected requests are never queued");
    }

    #[test]
    fn size_trigger_fires_on_the_filling_submit() {
        let s = server(2, 1_000);
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        let (id0, first) = s.submit(fp, vec![1.0; 8], IntegrityPolicy::off()).unwrap();
        assert!(first.is_empty());
        let (id1, second) = s.submit(fp, vec![2.0; 8], IntegrityPolicy::off()).unwrap();
        assert_eq!(second.len(), 2);
        assert_eq!(
            second.iter().map(|c| c.id).collect::<Vec<_>>(),
            vec![id0, id1]
        );
        for c in &second {
            let out = c.result.as_ref().expect("served");
            assert_eq!(out.batch_size, 2);
            assert_eq!(out.trigger, FlushTrigger::Size);
        }
        assert_eq!(s.batch_log().len(), 1);
        assert_eq!(s.batch_log()[0].request_ids, vec![id0, id1]);
    }

    #[test]
    fn policies_do_not_mix_within_a_batch() {
        let s = server(2, 100);
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        s.submit(fp, vec![1.0; 8], IntegrityPolicy::off()).unwrap();
        let (_, flushed) = s.submit(fp, vec![1.0; 8], IntegrityPolicy::full()).unwrap();
        assert!(
            flushed.is_empty(),
            "different policy classes must not coalesce"
        );
        assert_eq!(s.pending(), 2);
        let done = s.drain();
        assert_eq!(done.len(), 2);
        assert_eq!(s.batch_log().len(), 2, "two singleton batches");
        assert_ne!(
            PolicyClass::from(IntegrityPolicy::off()),
            PolicyClass::from(IntegrityPolicy::full())
        );
    }

    #[test]
    fn indexed_shape_error_evicts_only_the_offender() {
        // Submit-time validation makes this unreachable through the public
        // API, so drive execute_one directly with a malformed member.
        let s = server(4, 10);
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        let lease = s.catalog().get(&fp).expect("resident");
        let mk = |id: u64, len: usize| QueuedRequest {
            id,
            policy: IntegrityPolicy::off(),
            x: vec![1.0; len],
            arrival: 0,
            lease: lease.clone(),
        };
        let batch = BatchSpec {
            fingerprint: fp,
            policy: IntegrityPolicy::off(),
            requests: vec![mk(0, 8), mk(1, 3), mk(2, 8)],
            flushed_at: 5,
            trigger: FlushTrigger::Drain,
        };
        let completions = s.execute_one(batch);
        assert_eq!(completions.len(), 3);
        assert!(matches!(
            completions[1].result,
            Err(ServeError::Shape {
                expected: 8,
                actual: 3
            })
        ));
        for c in [&completions[0], &completions[2]] {
            let out = c.result.as_ref().expect("healthy members still serve");
            assert_eq!(out.batch_size, 2, "retried without the offender");
        }
    }
}
