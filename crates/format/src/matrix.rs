//! The encoded SPASM matrix: global tile directory + per-tile instance
//! streams.

use std::sync::Arc;

use spasm_patterns::DecompositionTable;

use crate::encoding::{PositionEncoding, MAX_TILE_SIZE, PATTERN_EDGE};
use crate::error::FormatError;
use crate::submatrix::SubmatrixMap;

/// One entry of the global composition: a non-empty tile in COO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Tile row index (`matrix_row / tile_size`).
    pub tile_row: u32,
    /// Tile column index (`matrix_col / tile_size`).
    pub tile_col: u32,
    /// First instance of this tile in the stream.
    pub first_instance: usize,
    /// Number of instances belonging to this tile.
    pub n_instances: usize,
}

/// A decoded view of one template-pattern instance: the position word plus
/// its four value slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateInstance {
    /// The shared position-encoding word.
    pub encoding: PositionEncoding,
    /// Four value slots in template cell order (padding slots are 0.0).
    pub values: [f32; 4],
}

/// A sparse matrix encoded in the SPASM data format.
///
/// Construction validates the tile size and requires a decomposition table
/// whose portfolio covers every occurring local pattern; see
/// [`SpasmMatrix::encode`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpasmMatrix {
    rows: u32,
    cols: u32,
    tile_size: u32,
    nnz: usize,
    paddings: u64,
    /// Portfolio template masks in `t_idx` order (the opcode LUT content).
    templates: Vec<u16>,
    tiles: Vec<Tile>,
    encodings: Vec<PositionEncoding>,
    /// Four values per encoding, concatenated. Reference-counted so
    /// execution plans (and their clones) can share the buffer instead of
    /// copying `4 × n_instances` floats per plan; the stream is immutable
    /// after encoding, so sharing is free.
    values: Arc<[f32]>,
}

impl SpasmMatrix {
    /// Encodes a matrix into the SPASM format: decomposes every occupied
    /// submatrix with `table`, tiles the instances at `tile_size`, and
    /// emits the COO tile directory plus the position-encoded stream.
    ///
    /// Instances within a tile are ordered by `(r_idx, c_idx)`; tiles are
    /// ordered by `(tile_row, tile_col)`. The final instance of each tile
    /// carries `CE = 1`, and additionally `RE = 1` when the tile is the
    /// last of its tile row.
    ///
    /// # Errors
    ///
    /// * [`FormatError::InvalidTileSize`] unless `tile_size` is a positive
    ///   multiple of 4 at most [`MAX_TILE_SIZE`];
    /// * [`FormatError::UncoverablePattern`] if the portfolio cannot cover
    ///   an occurring local pattern.
    pub fn encode(
        map: &SubmatrixMap,
        table: &DecompositionTable,
        tile_size: u32,
    ) -> Result<Self, FormatError> {
        if tile_size == 0 || !tile_size.is_multiple_of(PATTERN_EDGE) || tile_size > MAX_TILE_SIZE {
            return Err(FormatError::InvalidTileSize(tile_size));
        }
        let subs_per_tile = tile_size / PATTERN_EDGE;
        let templates: Vec<u16> = table.template_masks().to_vec();

        // Group submatrices by tile. The map is sorted by (sub_r, sub_c),
        // which sorts by tile_row but interleaves tile columns, so collect
        // then sort tile keys.
        let mut order: Vec<usize> = (0..map.blocks().len()).collect();
        let tile_of = |i: usize| {
            let b = &map.blocks()[i];
            (b.sub_r / subs_per_tile, b.sub_c / subs_per_tile)
        };
        order.sort_by_key(|&i| {
            let (tr, tc) = tile_of(i);
            let b = &map.blocks()[i];
            (tr, tc, b.sub_r, b.sub_c)
        });

        let mut tiles: Vec<Tile> = Vec::new();
        let mut encodings: Vec<PositionEncoding> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        let mut paddings: u64 = 0;

        let mut i = 0usize;
        while i < order.len() {
            let (tile_row, tile_col) = tile_of(order[i]);
            let first_instance = encodings.len();
            while i < order.len() && tile_of(order[i]) == (tile_row, tile_col) {
                let b = &map.blocks()[order[i]];
                let d = table
                    .decompose(b.mask)
                    .ok_or(FormatError::UncoverablePattern { mask: b.mask })?;
                paddings += u64::from(d.paddings);
                let r_idx = b.sub_r % subs_per_tile;
                let c_idx = b.sub_c % subs_per_tile;
                // First template instance covering a cell carries its
                // value; later overlapping instances pad with zero.
                let mut remaining = b.mask;
                for &t_id in &d.template_ids {
                    let tmask = templates[t_id as usize];
                    let mut slot_values = [0.0f32; 4];
                    let mut slot = 0usize;
                    for bit in 0..16u16 {
                        if tmask & (1 << bit) != 0 {
                            if remaining & (1 << bit) != 0 {
                                slot_values[slot] = b.values[bit as usize];
                                remaining &= !(1 << bit);
                            }
                            slot += 1;
                        }
                    }
                    debug_assert_eq!(slot, 4, "templates have exactly 4 cells");
                    encodings.push(PositionEncoding::new(c_idx, r_idx, false, false, t_id));
                    values.extend_from_slice(&slot_values);
                }
                i += 1;
            }
            tiles.push(Tile {
                tile_row,
                tile_col,
                first_instance,
                n_instances: encodings.len() - first_instance,
            });
        }

        // Stamp CE on each tile's last instance and RE on the last tile of
        // each tile row.
        for (t, tile) in tiles.iter().enumerate() {
            if tile.n_instances == 0 {
                continue;
            }
            let last = tile.first_instance + tile.n_instances - 1;
            let e = encodings[last];
            let row_end = t + 1 == tiles.len() || tiles[t + 1].tile_row != tile.tile_row;
            encodings[last] = PositionEncoding::new(e.c_idx(), e.r_idx(), true, row_end, e.t_idx());
        }

        Ok(SpasmMatrix {
            rows: map.rows(),
            cols: map.cols(),
            tile_size,
            nnz: map.nnz(),
            paddings,
            templates,
            tiles,
            encodings,
            values: values.into(),
        })
    }

    /// Reassembles a matrix from pre-validated parts (wire
    /// deserialisation).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        rows: u32,
        cols: u32,
        tile_size: u32,
        nnz: usize,
        paddings: u64,
        templates: Vec<u16>,
        tiles: Vec<Tile>,
        encodings: Vec<PositionEncoding>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(values.len(), encodings.len() * 4);
        SpasmMatrix {
            rows,
            cols,
            tile_size,
            nnz,
            paddings,
            templates,
            tiles,
            encodings,
            values: values.into(),
        }
    }

    /// Number of matrix rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of matrix columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The tile edge length used for the global composition.
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Non-zero count of the source matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total padded (zero-filled) value slots in the stream.
    pub fn paddings(&self) -> u64 {
        self.paddings
    }

    /// Number of template-pattern instances in the stream.
    pub fn n_instances(&self) -> usize {
        self.encodings.len()
    }

    /// Fraction of value slots that are padding.
    pub fn padding_rate(&self) -> f64 {
        let slots = self.n_instances() * 4;
        if slots == 0 {
            return 0.0;
        }
        self.paddings as f64 / slots as f64
    }

    /// The portfolio's template masks in `t_idx` order (what the hardware
    /// loads into the opcode LUT at initialisation).
    pub fn template_masks(&self) -> &[u16] {
        &self.templates
    }

    /// The global composition: non-empty tiles in COO order.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// The raw position-encoding stream.
    pub fn encodings(&self) -> &[PositionEncoding] {
        &self.encodings
    }

    /// The raw value stream (four values per encoding).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The value stream's shared buffer. Cloning the returned `Arc` (as
    /// `spasm_hw`'s execution plans do) shares the allocation instead of
    /// copying it — see `tests/alloc_free.rs` for the proof.
    pub fn shared_values(&self) -> &Arc<[f32]> {
        &self.values
    }

    /// Iterates the instances of one tile.
    pub fn tile_instances(&self, tile: &Tile) -> impl Iterator<Item = TemplateInstance> + '_ {
        let span = tile.first_instance..tile.first_instance + tile.n_instances;
        span.map(move |i| TemplateInstance {
            encoding: self.encodings[i],
            values: [
                self.values[i * 4],
                self.values[i * 4 + 1],
                self.values[i * 4 + 2],
                self.values[i * 4 + 3],
            ],
        })
    }

    /// Storage cost in bytes under the paper's accounting: 20 bytes per
    /// instance (one 32-bit position encoding + four `f32` values); the
    /// first-level tile directory is ignored as negligible, as in
    /// Section V-D.
    pub fn storage_bytes(&self) -> usize {
        20 * self.n_instances()
    }

    /// Storage cost including the tile directory (12 bytes per non-empty
    /// tile: two 32-bit tile indices plus a 32-bit instance count) — the
    /// honest full accounting.
    pub fn storage_bytes_full(&self) -> usize {
        self.storage_bytes() + 12 * self.tiles.len()
    }

    /// Functional SpMV `y += A·x` executed directly on the encoded stream.
    ///
    /// This is the software reference for the hardware simulator: the
    /// per-slot arithmetic matches what each VALU lane performs.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] on operand length
    /// mismatches.
    pub fn spmv(&self, x: &[f32], y: &mut [f32]) -> Result<(), FormatError> {
        if x.len() != self.cols as usize {
            return Err(FormatError::DimensionMismatch {
                expected: self.cols as usize,
                actual: x.len(),
                operand: "x",
            });
        }
        if y.len() != self.rows as usize {
            return Err(FormatError::DimensionMismatch {
                expected: self.rows as usize,
                actual: y.len(),
                operand: "y",
            });
        }
        for tile in &self.tiles {
            let row_base = tile.tile_row * self.tile_size;
            let col_base = tile.tile_col * self.tile_size;
            for inst in self.tile_instances(tile) {
                let e = inst.encoding;
                let tmask = self.templates[e.t_idx() as usize];
                let r0 = row_base + e.r_idx() * PATTERN_EDGE;
                let c0 = col_base + e.c_idx() * PATTERN_EDGE;
                let mut slot = 0usize;
                for bit in 0..16u32 {
                    if tmask & (1 << bit) != 0 {
                        let v = inst.values[slot];
                        slot += 1;
                        if v != 0.0 {
                            let r = r0 + bit / PATTERN_EDGE;
                            let c = c0 + bit % PATTERN_EDGE;
                            y[r as usize] += v * x[c as usize];
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Convenience wrapper computing `A·x` into a fresh zero vector.
    ///
    /// # Errors
    ///
    /// Propagates [`SpasmMatrix::spmv`]'s dimension check.
    pub fn spmv_alloc(&self, x: &[f32]) -> Result<Vec<f32>, FormatError> {
        let mut y = vec![0.0; self.rows as usize];
        self.spmv(x, &mut y)?;
        Ok(y)
    }

    /// Decodes the matrix back to COO (padding slots and explicit zeros are
    /// dropped).
    pub fn to_coo(&self) -> spasm_sparse::Coo {
        let mut triplets = Vec::with_capacity(self.nnz);
        for tile in &self.tiles {
            let row_base = tile.tile_row * self.tile_size;
            let col_base = tile.tile_col * self.tile_size;
            for inst in self.tile_instances(tile) {
                let e = inst.encoding;
                let tmask = self.templates[e.t_idx() as usize];
                let r0 = row_base + e.r_idx() * PATTERN_EDGE;
                let c0 = col_base + e.c_idx() * PATTERN_EDGE;
                let mut slot = 0usize;
                for bit in 0..16u32 {
                    if tmask & (1 << bit) != 0 {
                        let v = inst.values[slot];
                        slot += 1;
                        if v != 0.0 {
                            triplets.push((r0 + bit / PATTERN_EDGE, c0 + bit % PATTERN_EDGE, v));
                        }
                    }
                }
            }
        }
        spasm_sparse::Coo::from_triplets(self.rows, self.cols, triplets)
            .expect("decoded entries are in bounds by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_patterns::TemplateSet;
    use spasm_sparse::{Coo, SpMv};

    fn table() -> DecompositionTable {
        DecompositionTable::build(&TemplateSet::table_v_set(0))
    }

    fn encode(coo: &Coo, tile: u32) -> SpasmMatrix {
        SpasmMatrix::encode(&SubmatrixMap::from_coo(coo), &table(), tile).unwrap()
    }

    fn sample() -> Coo {
        let mut t = vec![];
        // dense 4x4 block at (0,0), diagonal at (8..12, 8..12), scattered
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((r, c, (r * 4 + c + 1) as f32));
            }
        }
        for i in 0..4u32 {
            t.push((8 + i, 8 + i, 1.5 * (i + 1) as f32));
        }
        t.push((14, 2, -3.0));
        Coo::from_triplets(16, 16, t).unwrap()
    }

    #[test]
    fn tile_size_validation() {
        let map = SubmatrixMap::from_coo(&sample());
        assert!(matches!(
            SpasmMatrix::encode(&map, &table(), 0),
            Err(FormatError::InvalidTileSize(0))
        ));
        assert!(matches!(
            SpasmMatrix::encode(&map, &table(), 6),
            Err(FormatError::InvalidTileSize(6))
        ));
        assert!(matches!(
            SpasmMatrix::encode(&map, &table(), MAX_TILE_SIZE + 4),
            Err(FormatError::InvalidTileSize(_))
        ));
        assert!(SpasmMatrix::encode(&map, &table(), MAX_TILE_SIZE).is_ok());
    }

    #[test]
    fn decode_round_trip() {
        let coo = sample();
        for tile in [4, 8, 16] {
            assert_eq!(encode(&coo, tile).to_coo(), coo, "tile {tile}");
        }
    }

    #[test]
    fn spmv_matches_reference() {
        let coo = sample();
        let x: Vec<f32> = (0..16).map(|i| (i as f32) * 0.5 - 3.0).collect();
        let mut want = vec![1.0f32; 16];
        coo.spmv(&x, &mut want).unwrap();
        for tile in [4, 8, 16] {
            let mut got = vec![1.0f32; 16];
            encode(&coo, tile).spmv(&x, &mut got).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-4, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn ce_re_flags() {
        let coo = sample();
        let m = encode(&coo, 8); // 16x16 with 8-tiles -> 2x2 tile grid
                                 // Tiles present: (0,0) block, (1,1) diag, (1,0) scattered entry.
        let coords: Vec<_> = m.tiles().iter().map(|t| (t.tile_row, t.tile_col)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (1, 1)]);
        for tile in m.tiles() {
            let insts: Vec<_> = m.tile_instances(tile).collect();
            // CE set exactly on the last instance
            for (k, inst) in insts.iter().enumerate() {
                assert_eq!(inst.encoding.ce(), k + 1 == insts.len());
            }
        }
        // RE on last tile of each tile row
        let last_of_rows: Vec<bool> = m
            .tiles()
            .iter()
            .map(|t| m.tile_instances(t).last().unwrap().encoding.re())
            .collect();
        assert_eq!(last_of_rows, vec![true, false, true]);
    }

    #[test]
    fn full_block_uses_four_instances_no_padding() {
        let mut t = vec![];
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((r, c, 1.0));
            }
        }
        let coo = Coo::from_triplets(4, 4, t).unwrap();
        let m = encode(&coo, 4);
        assert_eq!(m.n_instances(), 4);
        assert_eq!(m.paddings(), 0);
        assert_eq!(m.storage_bytes(), 80);
        assert_eq!(m.padding_rate(), 0.0);
    }

    #[test]
    fn lone_entry_pads_three_slots() {
        let coo = Coo::from_triplets(4, 4, vec![(2, 1, 5.0)]).unwrap();
        let m = encode(&coo, 4);
        assert_eq!(m.n_instances(), 1);
        assert_eq!(m.paddings(), 3);
        assert!((m.padding_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn storage_accounting() {
        let m = encode(&sample(), 8);
        assert_eq!(m.storage_bytes(), 20 * m.n_instances());
        assert_eq!(
            m.storage_bytes_full(),
            m.storage_bytes() + 12 * m.tiles().len()
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let m = encode(&sample(), 8);
        let mut y = [0.0; 16];
        assert!(m.spmv(&[0.0; 3], &mut y).is_err());
        let mut y_short = vec![0.0; 3];
        assert!(m.spmv(&[0.0; 16], &mut y_short).is_err());
    }

    #[test]
    fn empty_matrix_encodes_empty() {
        let m = encode(&Coo::new(8, 8), 8);
        assert_eq!(m.n_instances(), 0);
        assert_eq!(m.tiles().len(), 0);
        assert_eq!(m.spmv_alloc(&[1.0; 8]).unwrap(), vec![0.0; 8]);
    }
}
