//! Seeded load generator for the SPASM serving front-end.
//!
//! Replays deterministic request streams (Zipf-skewed matrix popularity,
//! seeded vectors, virtual-clock pacing) against two server configs —
//! coalescing and batch-1 baseline — in open- and closed-loop modes, and
//! writes p50/p99 latency plus throughput per corpus matrix to
//! `BENCH_serving.json` at the workspace root.
//!
//! ```text
//! cargo run -p spasm-serve --release --bin loadgen -- [--smoke]
//!     [--seed N] [--requests N] [--zipf S] [--clients N] [--mode open|closed|both]
//! ```
//!
//! `--smoke` bounds the run for CI (few requests, small corpus scale);
//! everything is virtual-clock driven, so even full runs never sleep.

use spasm::IntegrityPolicy;
use spasm_format::MatrixFingerprint;
use spasm_serve::loadgen::{drive_closed, drive_open, RunStats, TraceGen, TICKS_PER_SECOND};
use spasm_serve::{QueueConfig, ServerConfig, SpmvServer};
use spasm_workloads::{Scale, Workload};

struct Args {
    smoke: bool,
    seed: u64,
    requests: usize,
    zipf: f64,
    clients: usize,
    mode: String,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let value = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    Args {
        smoke,
        seed: value("--seed").and_then(|v| v.parse().ok()).unwrap_or(42),
        requests: value("--requests")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 64 } else { 2000 }),
        zipf: value("--zipf").and_then(|v| v.parse().ok()).unwrap_or(1.1),
        clients: value("--clients")
            .and_then(|v| v.parse().ok())
            .unwrap_or(16),
        mode: value("--mode").unwrap_or_else(|| "both".to_string()),
    }
}

const CORPUS: [Workload; 4] = [
    Workload::Raefsky3,
    Workload::C73,
    Workload::TmtSym,
    Workload::Cfd2,
];

/// Mean open-loop interarrival gap and closed-loop think time, in ticks.
const MEAN_GAP: u64 = 50;
const THINK_MEAN: u64 = 100;

fn build_server(
    coalesced: bool,
    corpus_coos: &[spasm_sparse::Coo],
) -> (SpmvServer, Vec<(MatrixFingerprint, usize)>) {
    let queue = if coalesced {
        QueueConfig {
            max_batch: 8,
            max_delay: 200,
        }
    } else {
        QueueConfig {
            max_batch: 1,
            max_delay: 0,
        }
    };
    let server = SpmvServer::new(ServerConfig {
        queue,
        workers: if coalesced { 2 } else { 1 },
        ..ServerConfig::default()
    });
    let corpus: Vec<(MatrixFingerprint, usize)> = corpus_coos
        .iter()
        .map(|coo| {
            let fp = server.ingest_coo(coo).expect("corpus matrix must prepare");
            (fp, coo.cols() as usize)
        })
        .collect();
    (server, corpus)
}

fn stats_json(stats: &RunStats, names: &[&str]) -> String {
    let per_matrix: Vec<String> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let lat = stats.per_matrix.get(i).map(Vec::as_slice).unwrap_or(&[]);
            format!(
                "\"{}\": {{\"requests\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
                name,
                lat.len(),
                spasm_serve::loadgen::percentile(lat, 50.0),
                spasm_serve::loadgen::percentile(lat, 99.0)
            )
        })
        .collect();
    format!(
        "{{\"completed\": {}, \"errors\": {}, \"throughput_rps\": {:.1}, \
         \"p50_us\": {}, \"p99_us\": {}, \"mean_batch\": {:.3}, \"batches\": {}, \
         \"virtual_seconds\": {:.6}, \"per_matrix\": {{{}}}}}",
        stats.completed,
        stats.errors,
        stats.throughput_rps(),
        stats.percentile(50.0),
        stats.percentile(99.0),
        stats.mean_batch(),
        stats.batches,
        stats.end_tick as f64 / TICKS_PER_SECOND,
        per_matrix.join(", ")
    )
}

fn print_stats(label: &str, stats: &RunStats) {
    println!(
        "  {label:<22} {:>7} reqs  p50 {:>6} µs  p99 {:>6} µs  {:>10.1} req/s  mean batch {:.2}",
        stats.completed,
        stats.percentile(50.0),
        stats.percentile(99.0),
        stats.throughput_rps(),
        stats.mean_batch()
    );
}

fn main() {
    let args = parse_args();
    let scale = Scale::Small;
    let names: Vec<&str> = CORPUS.iter().map(|w| w.spec().name).collect();
    println!(
        "serving loadgen: seed={} requests={} zipf={} corpus={:?} ({scale:?}){}",
        args.seed,
        args.requests,
        args.zipf,
        names,
        if args.smoke { " [smoke]" } else { "" }
    );
    let coos: Vec<spasm_sparse::Coo> = CORPUS.iter().map(|w| w.generate(scale)).collect();

    let policy = IntegrityPolicy::off();
    let mut sections: Vec<String> = Vec::new();

    for mode in ["open", "closed"] {
        if args.mode != "both" && args.mode != mode {
            continue;
        }
        println!("mode: {mode}");
        let mut mode_parts: Vec<String> = Vec::new();
        let mut p50 = [0u64; 2];
        for (slot, coalesced) in [true, false].into_iter().enumerate() {
            let (server, corpus) = build_server(coalesced, &coos);
            let stats = if mode == "open" {
                let trace = TraceGen::new(args.seed, corpus.len(), args.zipf, MEAN_GAP);
                drive_open(&server, &corpus, trace, args.requests, policy)
            } else {
                drive_closed(
                    &server,
                    &corpus,
                    args.seed,
                    args.zipf,
                    args.clients,
                    THINK_MEAN,
                    args.requests,
                    policy,
                )
            };
            let label = if coalesced { "coalesced" } else { "batch1" };
            assert_eq!(
                stats.completed + stats.errors,
                args.requests,
                "every request must complete"
            );
            assert_eq!(stats.errors, 0, "no request may error in a clean run");
            print_stats(label, &stats);
            p50[slot] = stats.percentile(50.0).max(1);
            mode_parts.push(format!("\"{}\": {}", label, stats_json(&stats, &names)));
        }
        println!(
            "  p50 coalesced/batch1 = {:.2}x",
            p50[0] as f64 / p50[1] as f64
        );
        sections.push(format!("\"{}\": {{{}}}", mode, mode_parts.join(", ")));
    }

    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"smoke\": {},\n  \"seed\": {},\n  \"requests\": {},\n  \
         \"zipf_s\": {},\n  \"clients\": {},\n  \"ticks_per_second\": {},\n  \
         \"corpus\": [{}],\n  \"coalesced_config\": {{\"max_batch\": 8, \"max_delay_us\": 200}},\n  \
         \"modes\": {{{}}}\n}}\n",
        args.smoke,
        args.seed,
        args.requests,
        args.zipf,
        args.clients,
        TICKS_PER_SECOND as u64,
        names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", "),
        sections.join(", ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("wrote {path}");
}
