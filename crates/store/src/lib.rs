//! Zero-copy plan persistence: freeze a prepared [`ExecutionPlan`] into a
//! wire-v3 container, map it back in milliseconds.
//!
//! Wire versions 1 and 2 (`spasm-format`) serialise the *encoding*: a
//! loader must decode the instance stream and re-run the whole prepare
//! pipeline (template selection, schedule search, plan build) before the
//! first SpMV — tens to hundreds of milliseconds per matrix. Version 3
//! serialises the *plan*: its frozen structure-of-arrays streams are laid
//! out on disk 64-byte aligned, exactly as the kernels read them, so a
//! cold start is `open → validate → point` with zero bytes copied from
//! the stream sections.
//!
//! The pieces:
//!
//! * [`save_v3`] — freezes a `(matrix, plan)` pair into a v3 buffer;
//! * [`PlanBuffer`] — a 64-byte-aligned pinned buffer, heap- or
//!   mmap-backed, implementing [`spasm_hw::StableBytes`];
//! * [`FrozenPlan`] — a validated view over a buffer; [`FrozenPlan::into_plan`]
//!   reassembles an [`ExecutionPlan`] whose streams borrow the buffer;
//! * [`PlanStore`] — a directory of v3 files keyed by matrix fingerprint,
//!   written atomically and loaded via mmap.
//!
//! Every load path validates before trusting: container CRCs
//! (header, directory, per section), then the structural invariants in
//! [`ExecutionPlan::from_parts`]. Hostile bytes produce a typed
//! [`StoreError`], never a panic, and a plan that passes validation
//! executes bit-identically to one freshly prepared from the same matrix.
//!
//! [`ExecutionPlan`]: spasm_hw::ExecutionPlan
//! [`ExecutionPlan::from_parts`]: spasm_hw::ExecutionPlan::from_parts

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod buffer;
mod frozen;
mod save;
mod store_dir;

pub use buffer::PlanBuffer;
pub use frozen::FrozenPlan;
pub use save::{save_v3, section};
pub use store_dir::PlanStore;

use spasm_format::WireError;
use spasm_hw::SimError;

/// Errors raised while saving, opening or thawing a stored plan.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The container bytes are malformed or corrupted.
    Wire(WireError),
    /// The container parsed but its parts do not assemble into a
    /// consistent plan.
    Sim(SimError),
    /// The backing file could not be read or written.
    Io(std::io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Wire(e) => write!(f, "wire error: {e}"),
            StoreError::Sim(e) => write!(f, "plan error: {e}"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Wire(e) => Some(e),
            StoreError::Sim(e) => Some(e),
            StoreError::Io(e) => Some(e),
        }
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Wire(e)
    }
}

impl From<SimError> for StoreError {
    fn from(e: SimError) -> Self {
        StoreError::Sim(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
