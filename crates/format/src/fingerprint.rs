//! Content fingerprints over the canonical v2 wire stream.
//!
//! A [`MatrixFingerprint`] identifies a matrix by *content*, not by
//! identity: it combines the CRC-32 of the full canonical byte stream
//! (the same [`crate::crc32`] that guards the wire checksum) with the
//! stream length and the shape fields a serving front-end routes on
//! (rows, cols, tile size, instance count). Two matrices share a
//! fingerprint exactly when their canonical v2 serialisations are
//! byte-for-byte equal — matrices that differ only in their values
//! produce different streams and therefore different fingerprints.
//!
//! The extra length/shape fields make accidental collisions require a
//! simultaneous CRC-32 collision *and* identical length and shape, so
//! false sharing between distinct catalog entries is negligible in
//! practice (and impossible between matrices of different sizes).

use crate::crc::crc32;
use crate::matrix::SpasmMatrix;
use crate::serialize::{WireError, CHECKSUM_BYTES, HEADER_BYTES, MAGIC, VERSION};

/// A content fingerprint of a matrix's canonical v2 wire stream.
///
/// Cheap to copy, hash and order — suitable as a catalog key. Construct
/// one with [`SpasmMatrix::fingerprint`] (canonicalises through
/// [`SpasmMatrix::to_bytes`]) or [`MatrixFingerprint::of_wire_bytes`]
/// when the v2 stream is already in hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatrixFingerprint {
    /// CRC-32 (IEEE) over the canonical stream's payload — everything up
    /// to the trailing wire checksum. The checksum itself is excluded
    /// because a CRC computed over a message followed by its own CRC
    /// collapses to a content-independent residue.
    crc: u32,
    /// Length of the canonical stream in bytes.
    len: u64,
    /// Dense row count.
    rows: u32,
    /// Dense column count.
    cols: u32,
    /// Tile edge length.
    tile_size: u32,
    /// Template-pattern instances in the stream.
    n_instances: u64,
}

impl MatrixFingerprint {
    /// Fingerprints an in-memory v2 wire stream without decoding it.
    ///
    /// Only the fixed-size header is parsed (magic, version and the shape
    /// fields); the CRC runs over the whole buffer. The stream must be a
    /// version-2 stream — the canonical serialisation — because the
    /// fingerprint is defined over canonical bytes; decode legacy v1
    /// streams first and fingerprint via [`SpasmMatrix::fingerprint`].
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when shorter than a header,
    /// [`WireError::BadMagic`] / [`WireError::BadVersion`] when the
    /// stream is not a v2 SPASM stream.
    pub fn of_wire_bytes(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < HEADER_BYTES {
            return Err(WireError::Truncated { reading: "header" });
        }
        let word =
            |at: usize| u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]]);
        if data[0..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = word(4);
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let mut wide = [0u8; 8];
        wide.copy_from_slice(&data[44..52]);
        let payload = data.len().saturating_sub(CHECKSUM_BYTES);
        Ok(MatrixFingerprint {
            crc: crc32(&data[..payload]),
            len: data.len() as u64,
            rows: word(8),
            cols: word(12),
            tile_size: word(16),
            n_instances: u64::from_le_bytes(wide),
        })
    }

    /// Dense row count recorded in the fingerprint.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Dense column count recorded in the fingerprint.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Canonical stream length in bytes.
    pub fn stream_len(&self) -> u64 {
        self.len
    }

    /// CRC-32 of the canonical stream — handy for log lines.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// A compact `crc:len` display token for logs and reports.
    pub fn token(&self) -> String {
        format!("{:08x}:{}", self.crc, self.len)
    }
}

impl SpasmMatrix {
    /// Computes the content fingerprint of this matrix's canonical v2
    /// serialisation (see [`MatrixFingerprint`]).
    ///
    /// Equivalent to `MatrixFingerprint::of_wire_bytes(&self.to_bytes())`
    /// but infallible: the shape fields come straight from the matrix.
    pub fn fingerprint(&self) -> MatrixFingerprint {
        let bytes = self.to_bytes();
        let payload = bytes.len().saturating_sub(CHECKSUM_BYTES);
        MatrixFingerprint {
            crc: crc32(&bytes[..payload]),
            len: bytes.len() as u64,
            rows: self.rows(),
            cols: self.cols(),
            tile_size: self.tile_size(),
            n_instances: self.n_instances() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submatrix::SubmatrixMap;
    use spasm_patterns::{DecompositionTable, TemplateSet};
    use spasm_sparse::Coo;

    fn encode(triplets: Vec<(u32, u32, f32)>) -> SpasmMatrix {
        let coo = Coo::from_triplets(16, 16, triplets).unwrap();
        let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
        SpasmMatrix::encode(&SubmatrixMap::from_coo(&coo), &table, 16).unwrap()
    }

    #[test]
    fn fingerprint_matches_wire_bytes() {
        let m = encode(vec![(0, 0, 1.0), (3, 7, 2.0), (15, 15, -0.5)]);
        let direct = m.fingerprint();
        let from_wire = MatrixFingerprint::of_wire_bytes(&m.to_bytes()).unwrap();
        assert_eq!(direct, from_wire);
        assert_eq!(direct.rows(), 16);
        assert_eq!(direct.cols(), 16);
        assert_eq!(direct.stream_len(), m.to_bytes().len() as u64);
    }

    #[test]
    fn value_only_differences_change_the_fingerprint() {
        let a = encode(vec![(0, 0, 1.0), (3, 7, 2.0)]);
        let b = encode(vec![(0, 0, 1.0), (3, 7, 2.5)]);
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn identical_content_shares_a_fingerprint() {
        let a = encode(vec![(1, 2, 3.0), (9, 4, -1.0)]);
        let b = encode(vec![(1, 2, 3.0), (9, 4, -1.0)]);
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn rejects_foreign_and_legacy_streams() {
        let m = encode(vec![(0, 0, 1.0)]);
        assert_eq!(
            MatrixFingerprint::of_wire_bytes(&[0u8; 8]),
            Err(WireError::Truncated { reading: "header" })
        );
        let mut bad = m.to_bytes().to_vec();
        bad[0] = b'X';
        assert_eq!(
            MatrixFingerprint::of_wire_bytes(&bad),
            Err(WireError::BadMagic)
        );
        assert_eq!(
            MatrixFingerprint::of_wire_bytes(&m.to_bytes_v1()),
            Err(WireError::BadVersion(1))
        );
    }

    #[test]
    fn token_is_stable_per_content() {
        let m = encode(vec![(2, 2, 4.0)]);
        assert_eq!(m.fingerprint().token(), m.fingerprint().token());
        assert!(m.fingerprint().token().contains(':'));
    }
}
