//! Borrowed-capable instance streams: the owned-vs-mapped seam behind
//! [`crate::ExecutionPlan`].
//!
//! A prepared plan's immutable SoA streams (x/y bases, class indices,
//! value quadruples, bucket tables) are either built in memory at prepare
//! time or mapped straight out of a wire-v3 buffer (`spasm-store`). Both
//! flavours execute through the same kernels: [`Stream`] dereferences to
//! `&[T]` and the hot paths never know which variant they read.
//!
//! The mapped variant does not copy. It pins the backing buffer alive via
//! an `Arc<dyn StableBytes>` and carries a raw pointer/length pair into
//! it, validated (alignment, bounds) by the reader that constructed it.
//!
//! Streams additionally carry a **version stamp** for the live-update
//! path: replacing a plan's value stream copy-on-write
//! (`ExecutionPlan::adopt_values`) installs a new buffer under a bumped
//! version while clones held by in-flight executions keep reading the
//! old one. The stamp never affects execution — it exists so callers can
//! observe which generation of the data a plan (or a lease on it) serves.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A heap- or mmap-backed byte buffer whose contents and address are
/// stable for the lifetime of the handle.
///
/// # Safety
///
/// Implementors must guarantee that the slice returned by
/// [`StableBytes::bytes`] (a) never changes contents, (b) never moves,
/// and (c) stays valid until the implementor is dropped. `Stream::mapped`
/// relies on this to hold raw pointers into the buffer across clones and
/// threads.
pub unsafe trait StableBytes: Send + Sync + fmt::Debug {
    /// The stable backing bytes.
    fn bytes(&self) -> &[u8];
}

/// The two backing flavours of a [`Stream`].
enum Repr<T> {
    /// Heap-allocated, shared by reference count (the prepare path).
    Owned(Arc<[T]>),
    /// A typed view into a pinned buffer (the wire-v3 map path).
    Mapped {
        /// Keeps the backing buffer alive; never read through directly.
        _keep: Arc<dyn StableBytes>,
        /// First element; aligned and in-bounds, checked at construction.
        ptr: *const T,
        /// Element count.
        len: usize,
    },
}

/// An immutable stream of `T`: either an owned (`Arc`-shared) slice or a
/// zero-copy view into a pinned [`StableBytes`] buffer, stamped with a
/// copy-on-write generation number (0 for freshly built streams).
pub struct Stream<T> {
    repr: Repr<T>,
    version: u64,
}

// SAFETY: `Owned` is an Arc<[T]>; `Mapped` is an immutable view into a
// buffer that is itself Send + Sync (per the StableBytes bound) and
// pinned by `_keep`. No interior mutability anywhere.
unsafe impl<T: Send + Sync> Send for Stream<T> {}
unsafe impl<T: Send + Sync> Sync for Stream<T> {}

impl<T> Stream<T> {
    /// Wraps a freshly built vector (the prepare path).
    pub fn from_vec(v: Vec<T>) -> Self {
        Stream {
            repr: Repr::Owned(v.into()),
            version: 0,
        }
    }

    /// Wraps an already-shared slice.
    pub fn owned(a: Arc<[T]>) -> Self {
        Stream {
            repr: Repr::Owned(a),
            version: 0,
        }
    }

    /// Builds a zero-copy stream over `len` elements starting at byte
    /// offset `offset` of `keep`'s buffer.
    ///
    /// # Safety
    ///
    /// The caller must have checked that `offset` is aligned for `T`,
    /// that `offset + len * size_of::<T>()` is within `keep.bytes()`,
    /// and that the bytes at that range are valid values of `T` (`T`
    /// must be a plain-old-data type with no invalid bit patterns).
    pub unsafe fn mapped(keep: Arc<dyn StableBytes>, offset: usize, len: usize) -> Self {
        let ptr = keep.bytes().as_ptr().add(offset) as *const T;
        debug_assert_eq!(ptr as usize % std::mem::align_of::<T>(), 0);
        debug_assert!(offset + len * std::mem::size_of::<T>() <= keep.bytes().len());
        Stream {
            repr: Repr::Mapped {
                _keep: keep,
                ptr,
                len,
            },
            version: 0,
        }
    }

    /// `true` when this stream borrows a mapped buffer (no owned bytes).
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped { .. })
    }

    /// The shared owning allocation, if this stream is owned.
    pub fn as_owned(&self) -> Option<&Arc<[T]>> {
        match &self.repr {
            Repr::Owned(a) => Some(a),
            Repr::Mapped { .. } => None,
        }
    }

    /// The copy-on-write generation of this stream (0 when freshly
    /// built or mapped; bumped each time a plan adopts replacement
    /// content).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The same stream stamped with `version`.
    #[must_use]
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }
}

impl<T> Deref for Stream<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(a) => a,
            // SAFETY: constructed via `Stream::mapped`, whose contract
            // guarantees `ptr..ptr+len` is aligned, in-bounds and valid
            // for the lifetime of `_keep` (held by self).
            Repr::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T> Clone for Stream<T> {
    fn clone(&self) -> Self {
        let repr = match &self.repr {
            Repr::Owned(a) => Repr::Owned(a.clone()),
            Repr::Mapped { _keep, ptr, len } => Repr::Mapped {
                _keep: _keep.clone(),
                ptr: *ptr,
                len: *len,
            },
        };
        Stream {
            repr,
            version: self.version,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Stream<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Owned(a) => f
                .debug_struct("Stream::Owned")
                .field("len", &a.len())
                .field("version", &self.version)
                .finish(),
            Repr::Mapped { len, .. } => f
                .debug_struct("Stream::Mapped")
                .field("len", len)
                .field("version", &self.version)
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct HeapBuf(Vec<u8>);

    // SAFETY: the Vec is never touched after construction and HeapBuf is
    // only dropped when the last Arc goes away.
    unsafe impl StableBytes for HeapBuf {
        fn bytes(&self) -> &[u8] {
            &self.0
        }
    }

    #[test]
    fn owned_stream_derefs_and_clones() {
        let s = Stream::from_vec(vec![1u32, 2, 3]);
        assert_eq!(&*s, &[1, 2, 3]);
        assert!(!s.is_mapped());
        let c = s.clone();
        assert_eq!(&*c, &[1, 2, 3]);
        let (a, b) = (s.as_owned().unwrap(), c.as_owned().unwrap());
        assert!(Arc::ptr_eq(a, b));
    }

    #[test]
    fn mapped_stream_reads_backing_bytes_without_copy() {
        let mut bytes = vec![0u8; 16];
        bytes[4..8].copy_from_slice(&7u32.to_le_bytes());
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        let keep: Arc<dyn StableBytes> = Arc::new(HeapBuf(bytes));
        let want = keep.bytes()[4..].as_ptr() as usize;
        let s: Stream<u32> = unsafe { Stream::mapped(keep, 4, 2) };
        assert!(s.is_mapped());
        assert!(s.as_owned().is_none());
        assert_eq!(&*s, &[7, 9]);
        assert_eq!(s.as_ptr() as usize, want, "zero copy: same address");
        let c = s.clone();
        assert_eq!(c.as_ptr() as usize, want);
    }

    #[test]
    fn version_stamps_survive_clones_and_default_to_zero() {
        let s = Stream::from_vec(vec![1u8]);
        assert_eq!(s.version(), 0);
        let s = s.with_version(3);
        assert_eq!(s.version(), 3);
        assert_eq!(s.clone().version(), 3);
        let o = Stream::owned(Arc::from(vec![1u8].as_slice()));
        assert_eq!(o.version(), 0);
    }
}
