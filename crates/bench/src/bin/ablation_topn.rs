//! Design-choice ablation: top-n restriction in template selection
//! (Algorithm 3).
//!
//! The paper scores only the top-n local patterns during selection
//! because they "account for the majority of patterns" (Section IV-B ②).
//! This harness sweeps n and reports whether the restricted selection
//! still picks a portfolio whose *full-histogram* paddings match scoring
//! everything — i.e. how small n can be before selection quality
//! degrades.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin ablation_topn [-- --scale paper]
//! ```

use spasm_bench::{rule, scale_from_args, scale_name};
use spasm_patterns::selection::TopN;
use spasm_patterns::{
    select_template_set, DecompositionTable, GridSize, PatternHistogram, TemplateSet,
};

const NS: [usize; 5] = [1, 4, 16, 64, 256];

fn main() {
    let scale = scale_from_args();
    println!("Top-n selection ablation ({})", scale_name(scale));
    rule(100);
    print!("{:<14}", "matrix");
    for n in NS {
        print!(" {:>12}", format!("top-{n}"));
    }
    println!(" {:>12} {:>8}", "exhaustive", "min n*");
    rule(100);
    let candidates = TemplateSet::table_v_candidates();
    spasm_bench::for_each_workload(scale, |w, m| {
        let hist = PatternHistogram::analyze(&m, GridSize::S4);
        // Full-histogram paddings of a portfolio chosen with budget n.
        let full_paddings = |top_n: TopN| -> u64 {
            let out = select_template_set(&hist, &candidates, top_n);
            let table = DecompositionTable::build(&out.set);
            table
                .weighted_paddings(hist.iter())
                .expect("candidates cover")
        };
        let exhaustive = full_paddings(TopN::All);
        print!("{:<14}", w.to_string());
        let mut min_n: Option<usize> = None;
        for n in NS {
            let p = full_paddings(TopN::Count(n));
            print!(" {:>12}", p);
            if p == exhaustive && min_n.is_none() {
                min_n = Some(n);
            }
        }
        println!(
            " {:>12} {:>8}",
            exhaustive,
            min_n.map_or(">256".to_string(), |n| n.to_string())
        );
    });
    rule(100);
    println!(
        "(min n* = smallest scored budget whose selected portfolio already achieves the \
         exhaustive-selection paddings — the paper's claim that scoring only dominant \
         patterns suffices)"
    );
}
