//! The multi-tenant plan catalog: content-addressed prepared plans under
//! a byte budget.
//!
//! Entries are keyed by [`MatrixFingerprint`] — the CRC-32 + length +
//! shape of the matrix's canonical v2 wire stream — so two tenants
//! uploading the same matrix share one [`spasm::Prepared`] (and, through
//! it, the `Arc`-shared value stream). Eviction is LRU under a
//! configurable byte budget, where an entry's size is its plan's
//! resident footprint ([`spasm_hw::ExecutionPlan::memory_bytes`]) plus
//! the encoded matrix and the golden CSR reference. Plans that are
//! *leased* (queued or executing requests hold a [`PlanLease`]) are
//! pinned and never evicted; inserting a plan that cannot fit alongside
//! the pinned set fails loudly instead of evicting in-flight work.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use spasm::{DeltaOutcome, Pipeline, PipelineError, Prepared};
use spasm_format::{is_v3, MatrixFingerprint, SpasmMatrix, WireError};
use spasm_sparse::MatrixDelta;
use spasm_store::{FrozenPlan, PlanBuffer, StoreError};

use crate::breaker::{BreakerConfig, BreakerEvent, BreakerState, ExecRoute, PlanHealth};
use crate::clock::Tick;

/// Configuration for a [`PlanCatalog`].
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    /// Total resident-byte budget across all cached plans.
    pub byte_budget: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            byte_budget: 512 << 20,
        }
    }
}

/// Errors from catalog ingest and lookup.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CatalogError {
    /// The wire stream did not decode.
    Wire(WireError),
    /// The pipeline could not prepare the matrix.
    Pipeline(PipelineError),
    /// The plan alone exceeds the whole budget; it can never be cached.
    PlanTooLarge {
        /// Resident bytes the plan needs.
        bytes: usize,
        /// The catalog's budget.
        budget: usize,
    },
    /// The requested fingerprint is not resident in the catalog.
    NotResident,
    /// The plan fits the budget, but not alongside the currently pinned
    /// (in-flight) plans — nothing evictable is large enough.
    BudgetPinned {
        /// Resident bytes the plan needs.
        bytes: usize,
        /// Bytes held by pinned entries after evicting everything else.
        pinned: usize,
        /// The catalog's budget.
        budget: usize,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Wire(e) => write!(f, "wire decode failed: {e}"),
            CatalogError::Pipeline(e) => write!(f, "prepare failed: {e}"),
            CatalogError::PlanTooLarge { bytes, budget } => {
                write!(f, "plan needs {bytes} bytes, catalog budget is {budget}")
            }
            CatalogError::NotResident => write!(f, "no resident plan under that fingerprint"),
            CatalogError::BudgetPinned {
                bytes,
                pinned,
                budget,
            } => write!(
                f,
                "plan needs {bytes} bytes but {pinned} of the {budget}-byte \
                 budget is pinned by in-flight plans"
            ),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<WireError> for CatalogError {
    fn from(e: WireError) -> Self {
        CatalogError::Wire(e)
    }
}

impl From<PipelineError> for CatalogError {
    fn from(e: PipelineError) -> Self {
        CatalogError::Pipeline(e)
    }
}

/// Maps store-layer failures onto the catalog's error surface: container
/// corruption is a wire error, inconsistent plan parts surface through
/// the pipeline's simulator mapping. I/O cannot occur on the in-memory
/// ingest path; it is reported as an inconsistent stream for
/// completeness.
fn map_store(e: StoreError) -> CatalogError {
    match e {
        StoreError::Wire(w) => CatalogError::Wire(w),
        StoreError::Sim(s) => CatalogError::Pipeline(s.into()),
        _ => CatalogError::Wire(WireError::Inconsistent("plan store i/o failure")),
    }
}

/// The *owned* resident footprint of a prepared plan for budgeting
/// purposes: the execution plan's owned streams, layout and scratch
/// ([`spasm_hw::ExecutionPlan::memory_bytes`], which excludes mapped
/// wire-v3 sections — those are priced separately as the container's
/// bytes), the encoded matrix's storage, and the golden CSR reference
/// kept for the degradation ladder (priced at its materialised size
/// whether or not a lazy one has been forced yet).
pub fn prepared_bytes(p: &Prepared) -> usize {
    p.plan.memory_bytes() + p.encoded.storage_bytes_full() + p.golden_bytes()
}

/// One cached plan. Accessed through a [`PlanLease`].
///
/// The fingerprint, byte price and latency estimate are interior-mutable:
/// a streaming update ([`PlanCatalog::apply_delta`]) re-keys and reprices
/// the entry in place, without evicting it or invalidating live leases.
#[derive(Debug)]
pub struct CatalogEntry {
    fingerprint: Mutex<MatrixFingerprint>,
    prepared: Mutex<Prepared>,
    bytes: AtomicUsize,
    /// Bytes of a pinned wire-v3 container the plan's streams borrow
    /// (0 for plans prepared in process).
    mapped: usize,
    rows: u32,
    cols: u32,
    /// Predicted simulated seconds of one single-vector execution (f64
    /// bits), from the plan's cycle model: the price the server charges
    /// a golden-CSR (quarantine) serve per vector, since the golden path
    /// has no cycle model of its own.
    seconds_estimate: AtomicU64,
    /// Circuit-breaker bookkeeping: recent execution outcomes and the
    /// Healthy → Quarantined → HalfOpen state (see [`crate::breaker`]).
    health: Mutex<PlanHealth>,
    pins: AtomicUsize,
    last_used: AtomicU64,
}

impl CatalogEntry {
    /// Locks the prepared plan for execution. Batches against the same
    /// matrix serialise here; the plan's own scratch is reused across
    /// them.
    pub fn prepared(&self) -> MutexGuard<'_, Prepared> {
        self.prepared.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The entry's content fingerprint (the current one — a streaming
    /// update re-keys the entry under its mutated content).
    pub fn fingerprint(&self) -> MatrixFingerprint {
        *self.fingerprint.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resident bytes charged against the catalog budget (owned plan
    /// state plus any mapped container; repriced by streaming updates).
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::SeqCst)
    }

    /// Bytes of this entry backed by a pinned wire-v3 container rather
    /// than owned allocations — zero for plans prepared in process. The
    /// plan's stream sections borrow these bytes; nothing was copied out
    /// of them at ingest.
    pub fn mapped_bytes(&self) -> usize {
        self.mapped
    }

    /// Dense row count of the cached matrix.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Dense column count of the cached matrix (the request-vector
    /// length the server validates against).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Predicted simulated seconds of one single-vector execution (the
    /// plan's cycle model; repriced by streaming updates) — the
    /// deterministic price of a golden-CSR serve.
    pub fn seconds_estimate(&self) -> f64 {
        f64::from_bits(self.seconds_estimate.load(Ordering::SeqCst))
    }

    /// The plan's current circuit-breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.lock_health().state()
    }

    /// How many times this plan has tripped into quarantine.
    pub fn breaker_trips(&self) -> u64 {
        self.lock_health().trips()
    }

    /// Routes the plan's next batch at `now` (see
    /// [`PlanHealth::route`]). The server calls this serially, in flush
    /// order, so the decision is independent of worker count.
    pub fn route(&self, now: Tick, config: &BreakerConfig) -> ExecRoute {
        self.lock_health().route(now, config)
    }

    /// Records a finished batch's per-vector outcomes (`true` = needed
    /// the golden fallback or errored) for the route it was issued
    /// under; returns the breaker transition, if one fired. The server
    /// calls this in flush order after the round's barrier.
    pub fn record_outcomes(
        &self,
        route: ExecRoute,
        outcomes: &[bool],
        now: Tick,
        config: &BreakerConfig,
    ) -> Option<BreakerEvent> {
        self.lock_health().record(route, outcomes, now, config)
    }

    fn lock_health(&self) -> MutexGuard<'_, PlanHealth> {
        self.health.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// An RAII pin on a catalog entry: while any lease is alive the entry is
/// in flight and will not be evicted. Cloning a lease re-pins.
///
/// **Removal guarantee:** [`PlanCatalog::remove`] on a leased entry
/// never invalidates the lease. The entry leaves the index immediately
/// (no new leases can be taken), but its plan — and its bytes in the
/// budget ledger — stay resident until the last live lease drops; the
/// catalog reaps it on its next operation after that. A lease is
/// therefore always safe to execute against, even across an explicit
/// removal.
#[derive(Debug)]
pub struct PlanLease {
    entry: Arc<CatalogEntry>,
}

impl PlanLease {
    fn new(entry: Arc<CatalogEntry>) -> Self {
        entry.pins.fetch_add(1, Ordering::SeqCst);
        PlanLease { entry }
    }

    /// The leased entry.
    pub fn entry(&self) -> &CatalogEntry {
        &self.entry
    }
}

impl Clone for PlanLease {
    fn clone(&self) -> Self {
        PlanLease::new(Arc::clone(&self.entry))
    }
}

impl Drop for PlanLease {
    fn drop(&mut self) {
        self.entry.pins.fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::ops::Deref for PlanLease {
    type Target = CatalogEntry;

    fn deref(&self) -> &CatalogEntry {
        &self.entry
    }
}

#[derive(Debug, Default)]
struct Inner {
    entries: BTreeMap<MatrixFingerprint, Arc<CatalogEntry>>,
    /// Entries removed while leased: out of the index (no new leases),
    /// but still charged to `resident` until their last lease drops.
    doomed: Vec<Arc<CatalogEntry>>,
    resident: usize,
    use_counter: u64,
}

impl Inner {
    /// Frees doomed entries whose last lease has dropped.
    fn reap(&mut self) {
        self.doomed.retain(|entry| {
            if entry.pins.load(Ordering::SeqCst) == 0 {
                self.resident -= entry.bytes();
                false
            } else {
                true
            }
        });
    }
}

/// The content-addressed plan cache. See the module docs for semantics.
#[derive(Debug)]
pub struct PlanCatalog {
    budget: usize,
    inner: Mutex<Inner>,
    /// Full pipeline prepares performed on behalf of ingest — the work
    /// residency checks and the wire-v3 fast path exist to avoid.
    prepares: AtomicU64,
}

impl PlanCatalog {
    /// An empty catalog with the given budget.
    pub fn new(config: CatalogConfig) -> Self {
        PlanCatalog {
            budget: config.byte_budget,
            inner: Mutex::new(Inner::default()),
            prepares: AtomicU64::new(0),
        }
    }

    /// How many full pipeline prepares ingest has performed so far.
    /// Residency hits and wire-v3 ingests do not count — tests pin the
    /// re-ingest and cold-start fast paths on this staying flat.
    pub fn prepares_performed(&self) -> u64 {
        self.prepares.load(Ordering::SeqCst)
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.reap();
        inner
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently resident across all entries.
    pub fn resident_bytes(&self) -> usize {
        self.lock().resident
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lock().entries.is_empty()
    }

    /// `true` when `fingerprint` is resident.
    pub fn contains(&self, fingerprint: &MatrixFingerprint) -> bool {
        self.lock().entries.contains_key(fingerprint)
    }

    /// The resident fingerprints, in key order.
    pub fn fingerprints(&self) -> Vec<MatrixFingerprint> {
        self.lock().entries.keys().copied().collect()
    }

    /// Leases the plan for `fingerprint`, bumping its recency and pinning
    /// it against eviction for the lease's lifetime.
    pub fn get(&self, fingerprint: &MatrixFingerprint) -> Option<PlanLease> {
        let mut inner = self.lock();
        inner.use_counter += 1;
        let stamp = inner.use_counter;
        let entry = inner.entries.get(fingerprint)?;
        entry.last_used.store(stamp, Ordering::SeqCst);
        Some(PlanLease::new(Arc::clone(entry)))
    }

    /// Caches `prepared` under the fingerprint of its own encoded matrix
    /// (the canonical content the pipeline produced). Returns the key.
    ///
    /// # Errors
    ///
    /// [`CatalogError::PlanTooLarge`] / [`CatalogError::BudgetPinned`]
    /// when the plan cannot fit (see the module docs).
    pub fn insert_prepared(&self, prepared: Prepared) -> Result<MatrixFingerprint, CatalogError> {
        let key = prepared.encoded.fingerprint();
        self.insert_keyed(key, prepared, 0)?;
        Ok(key)
    }

    /// Ingests a wire stream, keyed by the *ingested stream's* canonical
    /// fingerprint (which is what remote clients can compute), not the
    /// re-encoded one. If the key is already resident this is a cheap
    /// no-op — decided from the stream *header* alone, before any decode
    /// or prepare work.
    ///
    /// Three stream generations route differently:
    ///
    /// * **v3** — the zero-copy fast path: the container is copied once
    ///   into an aligned buffer, validated, and the plan's streams point
    ///   into it. No pipeline prepare runs.
    /// * **v2** — fingerprint from the header; on a miss, decode and
    ///   fully re-prepare through `pipeline`.
    /// * **v1** — no trailing CRC, so the fingerprint requires the full
    ///   decode; then as v2.
    ///
    /// # Errors
    ///
    /// [`CatalogError::Wire`] on undecodable or corrupt bytes,
    /// [`CatalogError::Pipeline`] when prepare (or a frozen plan's
    /// validation) fails, and the budget errors of
    /// [`PlanCatalog::insert_prepared`].
    pub fn insert_wire(
        &self,
        bytes: &[u8],
        pipeline: &Pipeline,
    ) -> Result<MatrixFingerprint, CatalogError> {
        if is_v3(bytes) {
            return self.insert_wire_v3(bytes, pipeline);
        }
        // v2 headers carry the fingerprint; check residency before
        // spending any decode or prepare work on a stream we already
        // hold. (v1 streams have no CRC in the header, so their key
        // genuinely needs the decode below.)
        if let Ok(key) = MatrixFingerprint::of_wire_bytes(bytes) {
            if self.contains(&key) {
                return Ok(key);
            }
        }
        let decoded = SpasmMatrix::from_bytes(bytes)?;
        let key = decoded.fingerprint();
        if self.contains(&key) {
            return Ok(key);
        }
        // Re-prepare from COO: the pipeline re-runs selection and
        // scheduling for this corpus member. Freezing the prepared plan
        // to wire v3 (`spasm-store`) removes this cost on the next cold
        // start; the catalog's key is the same either way.
        self.prepares.fetch_add(1, Ordering::SeqCst);
        let prepared = pipeline.prepare(&decoded.to_coo())?;
        self.insert_keyed(key, prepared, 0)?;
        Ok(key)
    }

    /// The wire-v3 ingest fast path: one aligned copy of the container,
    /// container + plan validation, then a [`Prepared`] whose immutable
    /// streams borrow the pinned buffer. No pipeline prepare runs.
    fn insert_wire_v3(
        &self,
        bytes: &[u8],
        pipeline: &Pipeline,
    ) -> Result<MatrixFingerprint, CatalogError> {
        let buffer = PlanBuffer::from_bytes(bytes);
        let frozen = FrozenPlan::open(buffer).map_err(map_store)?;
        let key = frozen.fingerprint().map_err(map_store)?;
        if self.contains(&key) {
            return Ok(key);
        }
        let mapped = frozen.mapped_len();
        let encoded = frozen.matrix().map_err(map_store)?;
        let plan = frozen.into_plan().map_err(map_store)?;
        let prepared = Prepared::restore(
            encoded,
            plan,
            pipeline.options().parallelism,
            pipeline.options().integrity,
        )?;
        self.insert_keyed(key, prepared, mapped)?;
        Ok(key)
    }

    /// Inserts under an explicit key. No-op when the key is resident
    /// (entries are content-addressed: same key, same content).
    /// `mapped` is the pinned container size for wire-v3 entries (0 for
    /// in-process plans); it is charged to the budget alongside the
    /// owned footprint.
    pub(crate) fn insert_keyed(
        &self,
        key: MatrixFingerprint,
        prepared: Prepared,
        mapped: usize,
    ) -> Result<(), CatalogError> {
        let bytes = prepared_bytes(&prepared) + mapped;
        if bytes > self.budget {
            return Err(CatalogError::PlanTooLarge {
                bytes,
                budget: self.budget,
            });
        }
        let mut inner = self.lock();
        if inner.entries.contains_key(&key) {
            return Ok(());
        }
        Self::evict_to_fit(&mut inner, self.budget, bytes)?;
        inner.use_counter += 1;
        let stamp = inner.use_counter;
        let entry = Arc::new(CatalogEntry {
            fingerprint: Mutex::new(key),
            rows: prepared.plan.rows(),
            cols: prepared.plan.cols(),
            seconds_estimate: AtomicU64::new(prepared.report().seconds.to_bits()),
            prepared: Mutex::new(prepared),
            bytes: AtomicUsize::new(bytes),
            mapped,
            health: Mutex::new(PlanHealth::default()),
            pins: AtomicUsize::new(0),
            last_used: AtomicU64::new(stamp),
        });
        inner.resident += bytes;
        inner.entries.insert(key, entry);
        Ok(())
    }

    /// Evicts least-recently-used unpinned entries until `incoming` fits.
    fn evict_to_fit(inner: &mut Inner, budget: usize, incoming: usize) -> Result<(), CatalogError> {
        while inner.resident + incoming > budget {
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| e.pins.load(Ordering::SeqCst) == 0)
                .min_by_key(|(_, e)| e.last_used.load(Ordering::SeqCst))
                .map(|(k, _)| *k);
            match victim {
                Some(fp) => {
                    if let Some(e) = inner.entries.remove(&fp) {
                        inner.resident -= e.bytes();
                    }
                }
                None => {
                    return Err(CatalogError::BudgetPinned {
                        bytes: incoming,
                        pinned: inner.resident,
                        budget,
                    });
                }
            }
        }
        Ok(())
    }

    /// Explicitly removes an entry. Returns `false` when the key is
    /// absent.
    ///
    /// Removal while [`PlanLease`]s are live is *deferred*: the entry
    /// leaves the index at once (`contains` turns false, `get` stops
    /// issuing leases), but its plan and bytes stay resident until the
    /// last lease drops — in-flight requests are never invalidated. The
    /// catalog reaps the bytes on its next operation after the final
    /// drop.
    pub fn remove(&self, fingerprint: &MatrixFingerprint) -> bool {
        let mut inner = self.lock();
        let Some(entry) = inner.entries.remove(fingerprint) else {
            return false;
        };
        if entry.pins.load(Ordering::SeqCst) > 0 {
            inner.doomed.push(entry);
        } else {
            inner.resident -= entry.bytes();
        }
        true
    }

    /// Applies a streaming update to the resident plan for `fingerprint`
    /// *in place*: the entry's [`spasm::Prepared`] absorbs the delta
    /// through [`Prepared::apply_delta`], and the entry is re-keyed under
    /// the mutated content's fingerprint and repriced (bytes, predicted
    /// seconds) without being evicted — live [`PlanLease`]s, queued
    /// requests and in-flight batches stay valid throughout. An in-flight
    /// batch that cloned the plan's value stream before the update keeps
    /// serving the old generation; the next flush reads the new one
    /// (observable through [`spasm_hw::ExecutionPlan::version`]).
    ///
    /// Returns the new fingerprint (the key subsequent requests must use)
    /// and how the delta was absorbed.
    ///
    /// If the update *grows* the entry past the byte budget, unpinned
    /// siblings are evicted best-effort; the updated entry itself is
    /// leased during the operation and never a victim. A transient
    /// overrun can remain when everything else is pinned — it drains as
    /// leases drop.
    ///
    /// # Errors
    ///
    /// [`CatalogError::NotResident`] when the key is unknown, and
    /// [`CatalogError::Pipeline`] when the delta fails validation (the
    /// plan and its catalog entry are untouched).
    pub fn apply_delta(
        &self,
        fingerprint: &MatrixFingerprint,
        delta: &MatrixDelta,
    ) -> Result<(MatrixFingerprint, DeltaOutcome), CatalogError> {
        // Lease the entry: pinned against eviction for the duration.
        let lease = self.get(fingerprint).ok_or(CatalogError::NotResident)?;
        let entry = lease.entry();
        let (outcome, new_key, new_bytes, seconds) = {
            let mut p = entry.prepared();
            let outcome = p.apply_delta(delta).map_err(CatalogError::Pipeline)?;
            (
                outcome,
                p.encoded.fingerprint(),
                prepared_bytes(&p) + entry.mapped,
                p.report().seconds,
            )
        };

        let old_key = *fingerprint;
        let mut inner = self.lock();
        let old_bytes = entry.bytes.swap(new_bytes, Ordering::SeqCst);
        entry
            .seconds_estimate
            .store(seconds.to_bits(), Ordering::SeqCst);
        *entry.fingerprint.lock().unwrap_or_else(|e| e.into_inner()) = new_key;
        inner.resident = inner.resident - old_bytes + new_bytes;
        if new_key != old_key {
            if let Some(arc) = inner.entries.remove(&old_key) {
                // Content addressing: if the mutated content collides
                // with another resident entry, the updated plan replaces
                // it (same key ⇒ same content; the displaced entry is
                // doomed if leased, freed otherwise).
                if let Some(displaced) = inner.entries.insert(new_key, arc) {
                    if displaced.pins.load(Ordering::SeqCst) > 0 {
                        inner.doomed.push(displaced);
                    } else {
                        inner.resident -= displaced.bytes();
                    }
                }
            }
        }
        // Growth may overrun the budget; shed unpinned siblings
        // best-effort (a fully pinned catalog drains as leases drop).
        let _ = Self::evict_to_fit(&mut inner, self.budget, 0);
        drop(inner);
        Ok((new_key, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm::PipelineOptions;
    use spasm_hw::HwConfig;
    use spasm_patterns::TemplateSet;
    use spasm_sparse::Coo;

    fn prepared(n: u32) -> Prepared {
        let t: Vec<(u32, u32, f32)> = (0..n)
            .flat_map(|i| (0..3u32).map(move |k| (i, (i * 37 + k * 13) % n, 0.5 + k as f32)))
            .collect();
        let coo = Coo::from_triplets(n, n, t).expect("valid triplets");
        Pipeline::with_options(
            PipelineOptions::default()
                .fixed_portfolio(TemplateSet::table_v_set(0))
                .fixed_schedule(256, HwConfig::spasm_4_1()),
        )
        .prepare(&coo)
        .expect("prepare")
    }

    /// Satellite regression: removal while a lease is live defers the
    /// eviction until the lease drops — the lease stays executable, the
    /// bytes stay charged, and no new lease can be taken in between.
    #[test]
    fn remove_of_leased_entry_defers_eviction_until_lease_drops() {
        let catalog = PlanCatalog::new(CatalogConfig::default());
        let fp = catalog.insert_prepared(prepared(64)).expect("insert");
        let bytes = catalog.resident_bytes();
        assert!(bytes > 0);

        let lease = catalog.get(&fp).expect("lease");
        assert!(catalog.remove(&fp), "removal of a leased entry is accepted");
        assert!(
            !catalog.contains(&fp),
            "a doomed entry leaves the index immediately"
        );
        assert!(catalog.get(&fp).is_none(), "no new leases after removal");
        assert_eq!(
            catalog.resident_bytes(),
            bytes,
            "bytes stay charged while the lease is live"
        );
        // The live lease still executes against the doomed plan.
        {
            let mut p = lease.prepared();
            let cols = lease.cols() as usize;
            let mut y = vec![0.0f32; lease.rows() as usize];
            p.execute(&vec![1.0f32; cols], &mut y).expect("execute");
        }
        drop(lease);
        assert_eq!(
            catalog.resident_bytes(),
            0,
            "the last lease drop releases the bytes (reaped on the next op)"
        );
        assert!(!catalog.remove(&fp), "second removal finds nothing");
    }

    #[test]
    fn remove_of_unleased_entry_is_immediate() {
        let catalog = PlanCatalog::new(CatalogConfig::default());
        let fp = catalog.insert_prepared(prepared(64)).expect("insert");
        assert!(catalog.remove(&fp));
        assert!(!catalog.contains(&fp));
        assert_eq!(catalog.resident_bytes(), 0);
    }

    /// A doomed entry's bytes still count against the budget: an insert
    /// that cannot fit alongside doomed-but-leased plans fails loudly
    /// rather than overrunning.
    #[test]
    fn doomed_entries_still_count_against_the_budget() {
        let seed = prepared(64);
        let bytes = prepared_bytes(&seed);
        let catalog = PlanCatalog::new(CatalogConfig {
            byte_budget: bytes + bytes / 2,
        });
        let fp = catalog.insert_prepared(seed).expect("insert");
        let lease = catalog.get(&fp).expect("lease");
        assert!(catalog.remove(&fp));
        let err = catalog
            .insert_prepared(prepared(72))
            .expect_err("doomed bytes are still pinned");
        assert!(
            matches!(err, CatalogError::BudgetPinned { .. }),
            "got {err:?}"
        );
        drop(lease);
        catalog
            .insert_prepared(prepared(72))
            .expect("fits after reap");
    }
}
