//! Fig. 13: percentage of peak bandwidth and peak compute utilised on each
//! platform.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin fig13_utilization [-- --scale paper]
//! ```

use spasm::{spasm_report, Pipeline};
use spasm_baselines::{CusparseGpu, HiSparse, MatrixProfile, Platform, Serpens};
use spasm_bench::{geomean, rule, scale_from_args, scale_name};

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 13 — peak bandwidth / compute utilisation ({})",
        scale_name(scale)
    );
    rule(112);
    println!(
        "{:<14} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "", "HiSp", "", "Srp16", "", "Srp24", "", "GPU", "", "SPASM", ""
    );
    println!(
        "{:<14} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "matrix", "bw%", "comp%", "bw%", "comp%", "bw%", "comp%", "bw%", "comp%", "bw%", "comp%"
    );
    rule(112);

    let platforms: [&dyn Platform; 4] = [
        &HiSparse::new(),
        &Serpens::a16(),
        &Serpens::a24(),
        &CusparseGpu::new(),
    ];
    let pipeline = Pipeline::new();
    let mut acc: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); 5];
    spasm_bench::for_each_workload(scale, |w, m| {
        let profile = MatrixProfile::from_coo(&m);
        print!("{:<14}", w.to_string());
        for (i, p) in platforms.iter().enumerate() {
            let r = p.report(&profile);
            print!(
                " | {:>8.1} {:>8.1}",
                100.0 * r.bandwidth_utilization,
                100.0 * r.compute_utilization
            );
            acc[i].0.push(r.bandwidth_utilization);
            acc[i].1.push(r.compute_utilization);
        }
        let mut prepared = pipeline.prepare(&m).expect("pipeline");
        let x = vec![1.0f32; m.cols() as usize];
        let mut y = vec![0.0f32; m.rows() as usize];
        let exec = prepared.execute(&x, &mut y).expect("simulate");
        let r = spasm_report(&prepared, &exec);
        println!(
            " | {:>8.1} {:>8.1}",
            100.0 * r.bandwidth_utilization,
            100.0 * r.compute_utilization
        );
        acc[4].0.push(r.bandwidth_utilization);
        acc[4].1.push(r.compute_utilization);
    });
    rule(112);
    print!("{:<14}", "geomean");
    for (bw, comp) in &acc {
        print!(
            " | {:>8.1} {:>8.1}",
            100.0 * geomean(bw.iter().copied()),
            100.0 * geomean(comp.iter().copied())
        );
    }
    println!();
    println!(
        "(paper: SPASM utilises a much higher percentage of both peak compute and \
         bandwidth than every baseline)"
    );
}
