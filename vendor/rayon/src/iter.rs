//! Order-preserving parallel iterators (subset of `rayon::iter`).
//!
//! The model is deliberately simple: every parallel iterator knows its exact
//! length, can be split at an index into two contiguous halves, and can be
//! lowered to a sequential `Iterator`. Terminals split the input into at
//! most [`crate::current_num_threads`] contiguous parts, run each part
//! sequentially on a scoped thread, and recombine results in input order —
//! so all outputs are independent of thread count and scheduling.

use std::ops::Range;

/// A splittable, exactly-sized, order-preserving parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;
    /// The sequential lowering of this iterator.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of remaining elements.
    fn par_len(&self) -> usize;

    /// Splits into `[0, index)` and `[index, len)` parts.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Lowers to a sequential iterator.
    fn into_seq(self) -> Self::Seq;

    /// Maps every element through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send,
        R: Send,
    {
        Map { inner: self, f }
    }

    /// Pairs every element with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            inner: self,
            base: 0,
        }
    }

    /// Runs `f` on every element, in parallel across contiguous parts.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let parts = split_for_budget(self);
        let f = &f;
        crate::drive(parts, move |part| part.into_seq().for_each(f));
    }

    /// Collects into `C`, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Marker mirroring `rayon::iter::IndexedParallelIterator`; every iterator
/// in this shim is indexed.
pub trait IndexedParallelIterator: ParallelIterator {}

impl<I: ParallelIterator> IndexedParallelIterator for I {}

/// Splits `iter` into at most [`crate::current_num_threads`] contiguous
/// parts of near-equal size.
pub(crate) fn split_for_budget<I: ParallelIterator>(mut iter: I) -> Vec<I> {
    let spans = crate::partition(iter.par_len(), crate::current_num_threads());
    if spans.len() <= 1 {
        return vec![iter];
    }
    let mut parts = Vec::with_capacity(spans.len());
    for &(start, end) in &spans[..spans.len() - 1] {
        let (head, tail) = iter.split_at(end - start);
        parts.push(head);
        iter = tail;
    }
    parts.push(iter);
    parts
}

/// Conversion into a parallel iterator (stub of
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;

    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on borrowed collections (stub of
/// `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send + 'a;

    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = <&'a C as IntoParallelIterator>::Item;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collection types buildable from a parallel iterator (stub of
/// `rayon::iter::FromParallelIterator`).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection, preserving input order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Vec<T> {
        let parts = split_for_budget(iter);
        let chunks = crate::drive(parts, |part| part.into_seq().collect::<Vec<_>>());
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<I::Seq, F>;

    fn par_len(&self) -> usize {
        self.inner.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(index);
        (
            Map {
                inner: a,
                f: self.f.clone(),
            },
            Map {
                inner: b,
                f: self.f,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.inner.into_seq().map(self.f)
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
    base: usize,
}

/// Sequential lowering of [`Enumerate`].
pub struct EnumerateSeq<S> {
    inner: S,
    next: usize,
}

impl<S: Iterator> Iterator for EnumerateSeq<S> {
    type Item = (usize, S::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Seq = EnumerateSeq<I::Seq>;

    fn par_len(&self) -> usize {
        self.inner.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(index);
        (
            Enumerate {
                inner: a,
                base: self.base,
            },
            Enumerate {
                inner: b,
                base: self.base + index,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            inner: self.inner.into_seq(),
            next: self.base,
        }
    }
}

/// Parallel iterator over a borrowed slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T> SliceIter<'a, T> {
    pub(crate) fn new(slice: &'a [T]) -> Self {
        SliceIter { slice }
    }
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (SliceIter { slice: a }, SliceIter { slice: b })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter::new(self)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter::new(self)
    }
}

/// Parallel iterator owning a `Vec`.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn par_len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, VecIter { items: tail })
    }

    fn into_seq(self) -> Self::Seq {
        self.items.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: Range<T>,
}

macro_rules! impl_range_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            type Seq = Range<$t>;

            fn par_len(&self) -> usize {
                (self.range.end.saturating_sub(self.range.start)) as usize
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }

            fn into_seq(self) -> Self::Seq {
                self.range
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { range: self }
            }
        }
    )*};
}

impl_range_iter!(u32, u64, usize);
