//! Prepared execution plans: amortise per-run setup for repeated SpMV.
//!
//! [`crate::Accelerator::run`] rebuilds everything that depends only on
//! `(matrix, config)` on every call: the opcode LUT, the tile-row layout,
//! the LPT assignment, cycle pricing and fresh scratch vectors. Iterative
//! solvers and serving workloads run thousands of SpMVs against one
//! prepared matrix, so [`crate::Accelerator::prepare`] hoists all of that
//! into an [`ExecutionPlan`] built once:
//!
//! * the instance stream is pre-decoded into flat structure-of-arrays
//!   form — per instance, the padded-x segment base, the y offset within
//!   the owning tile row's window, a 1-byte opcode-class index into the
//!   compiled portfolio LUT, and the four value slots — so the hot loop
//!   never re-parses 32-bit position encodings or re-derives tile bases;
//! * each tile row's instance span is cut into fixed-size blocks whose
//!   indices are stably sorted by opcode class at prepare time, feeding
//!   the branch-free class kernels of the default [`Dispatch::Classed`]
//!   executor (see the `kernel` module) — bit-identical to the
//!   per-instance reference walk, which [`Dispatch::PerInstance`] keeps
//!   available for differential testing and baselining;
//! * the tile-row layout (instance spans, disjoint y windows), per-tile
//!   lane statistics, [`TileJob`]s, the LPT assignment, per-group cycles,
//!   traffic and the full [`ExecReport`] are computed once — the report is
//!   a pure function of `(matrix, config)` (plus the health of the most
//!   recent execution), so [`ExecutionPlan::run`] returns a reference to
//!   the cached value;
//! * padded `x`/`y` scratch buffers are owned by the plan and reused, so
//!   a steady-state [`ExecutionPlan::run`] performs no heap allocation
//!   (asserted by the workspace's counting-allocator test).
//!
//! Thread fan-out across tile rows is gated on the `parallel` cargo
//! feature and the ambient worker budget (`rayon::current_num_threads`
//! from the vendored shim — the same budget `Parallelism` installs), with
//! tile rows chunked contiguously and balanced by instance count. Tile
//! rows own disjoint y windows and each row is processed in stream order,
//! so the result is bit-identical for every thread count.
//!
//! # Batched serving
//!
//! [`ExecutionPlan::run_batch`] executes one prepared matrix against many
//! x-vectors in a single call — the serving shape of iterative solvers
//! with multiple right-hand sides and of SpMM-as-batched-SpMV inference.
//! All vectors are padded once into a strided scratch, the pre-decoded SoA
//! stream is walked once per tile row and applied to every vector while
//! its instances are hot in cache, and the parallel fan-out chunks
//! (vector × tile-row) *pairs* balanced by instance count — so small
//! matrices with large batches still saturate threads. The per-vector
//! output is bit-identical to looped [`ExecutionPlan::run`] calls for
//! every batch size and thread count, and the cached report gains an
//! amortised [`BatchReport`] (initialisation and the matrix stream are
//! paid once per batch). The value stream itself is an `Arc<[f32]>` shared
//! with the owning [`SpasmMatrix`], so preparing several plans — or
//! cloning one per batch worker — does not duplicate the multi-GB buffer.
//!
//! # Integrity and fault tolerance
//!
//! Building a plan re-validates the stream beyond what the wire decoder
//! checks: the tile directory must tile the instance stream exactly
//! ([`IntegrityCheck::InstanceCount`]) and every position encoding must
//! address inside its tile, inside the padded operand buffers, and name a
//! template in the portfolio ([`IntegrityCheck::EncodingRange`]) — hostile
//! streams fail `prepare` with [`SimError::Integrity`] instead of
//! mis-executing.
//!
//! At run time, [`ExecutionPlan::run_deferred`] executes without touching
//! `y`, re-verifies selected tile rows against a pristine re-computation
//! of the stream, quarantines and re-executes rows that disagree, and
//! returns a [`HealthReport`]; [`ExecutionPlan::commit`] then folds the
//! (healed) result into `y`. Under the `fault-injection` cargo feature a
//! seeded [`crate::fault::FaultPlan`] can be armed on the plan to strike
//! the decode path deterministically; production builds carry none of
//! that state.

use std::sync::Arc;

use spasm_format::SpasmMatrix;

use crate::config::HwConfig;
use crate::integrity::{HealthReport, IntegrityCheck, VerifyScope};
use crate::kernel::{self, BucketRef, ClassKernel, ClassRun, SoaRef};
use crate::pe::Pe;
use crate::sim::{BatchReport, ExecReport, SimError, Traffic};
use crate::stream::Stream;
use crate::timing::{self, TileJob};
use crate::valu::ValuOpcode;

#[cfg(feature = "fault-injection")]
use crate::fault::{Fault, FaultPlan};
#[cfg(feature = "fault-injection")]
use spasm_format::PositionEncoding;

/// How [`ExecutionPlan`]'s functional pass walks the instance stream.
///
/// Both dispatchers produce bit-identical output for every matrix, batch
/// size and thread count — the per-y-element accumulation order is the
/// stream order in either case (see the `kernel` module docs for why the
/// classed executor preserves it). [`Dispatch::Classed`] is the default;
/// [`Dispatch::PerInstance`] is retained as the reference baseline for
/// differential tests and scalar-vs-classed benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// The reference executor: one enum-dispatched
    /// [`ValuOpcode::execute`] per instance, in stream order.
    PerInstance,
    /// Class-bucketed two-pass kernels: branch-free per-class compute
    /// into a staging buffer, then a stream-order scatter — with batch
    /// lanes fused so one instance walk feeds up to
    /// [`ExecutionPlan::LANE_BLOCK`] vectors.
    #[default]
    Classed,
}

/// Everything derivable from `(matrix, config)` alone, plus reusable
/// scratch — see the [module docs](self) for the full inventory.
///
/// Build one with [`crate::Accelerator::prepare`], then call
/// [`ExecutionPlan::run`] per SpMV. The output is bit-identical to
/// [`crate::Accelerator::run`] on the same matrix.
///
/// # Examples
///
/// ```
/// use spasm_format::{SpasmMatrix, SubmatrixMap};
/// use spasm_hw::{Accelerator, HwConfig};
/// use spasm_patterns::{DecompositionTable, TemplateSet};
/// use spasm_sparse::Coo;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let coo = Coo::from_triplets(4, 4, vec![(0, 0, 2.0), (3, 1, -1.0)])?;
/// let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
/// let m = SpasmMatrix::encode(&SubmatrixMap::from_coo(&coo), &table, 4)?;
///
/// let acc = Accelerator::new(HwConfig::spasm_4_1());
/// let mut plan = acc.prepare(&m)?;
/// for _ in 0..3 {
///     let mut y = vec![0.0f32; 4];
///     let report = plan.run(&[1.0, 2.0, 3.0, 4.0], &mut y)?;
///     assert_eq!(y, vec![2.0, 0.0, 0.0, -2.0]);
///     assert!(report.cycles > 0);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    config: HwConfig,
    rows: u32,
    cols: u32,
    tile_size: u32,
    // Pre-decoded SoA instance stream, in stream (tile) order. `x_base[i]`
    // indexes the padded x scratch; `y_base[i]` is relative to the owning
    // tile row's y window; `op_idx[i]` is the instance's template (opcode
    // class) — an index into the `lut`/`kernels` portfolio tables, 1 byte
    // per instance instead of a full decoded `ValuOpcode`; `values` holds
    // four slots per instance. All of these are immutable `Stream`s:
    // either owned (`prepare`) or zero-copy views into a mapped wire-v3
    // buffer (`ExecutionPlan::from_parts` via `spasm-store`).
    x_base: Stream<u32>,
    y_base: Stream<u32>,
    op_idx: Stream<u8>,
    // The compiled portfolio: one `ValuOpcode` per template (the PE's
    // opcode LUT) and the same opcodes predigested for the class kernels.
    lut: Vec<ValuOpcode>,
    kernels: Vec<ClassKernel>,
    // When owned, shared with the owning `SpasmMatrix` (and any sibling
    // plans): the stream is immutable after encoding, so plans clone the
    // `Arc`, not the buffer. Mapped plans read it straight from the
    // wire-v3 buffer.
    values: Stream<f32>,
    // Prepare-time pattern-class bucketing (see `crate::kernel`): per
    // `kernel::EXEC_BLOCK`-sized block of each tile row's instance span,
    // the instance indices stably sorted by class, plus the
    // run/block/row directory over them.
    bucket_idx: Stream<u32>,
    class_runs: Stream<ClassRun>,
    block_runs: Stream<u32>,
    row_blocks: Stream<u32>,
    // Which executor the functional pass uses; `Dispatch::Classed` by
    // default, the per-instance reference path kept for differential
    // testing and baseline benchmarking.
    dispatch: Dispatch,
    // Per worked tile row: instance span in the stream, y window in `yp`,
    // the tile-row id, a prefix sum of instance counts for balanced
    // chunking, and a prefix sum of window lengths addressing the packed
    // batch output scratch `yb`.
    inst_ranges: Vec<(usize, usize)>,
    window_spans: Vec<(usize, usize)>,
    tile_row_ids: Vec<u32>,
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    cum_instances: Vec<usize>,
    window_prefix: Vec<usize>,
    // Scheduling state, for introspection and the cached report.
    assignment: Vec<Vec<TileJob>>,
    report: ExecReport,
    // Reusable padded scratch: `xp` for the operand, `yp` for the disjoint
    // tile-row windows, `chunks` for the fan-out's row boundaries, and
    // `vp`/`vq` (sized to the largest tile-row window) for the pristine
    // verification oracle and the quarantine re-execution.
    xp: Vec<f32>,
    yp: Vec<f32>,
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    chunks: Vec<usize>,
    vp: Vec<f32>,
    vq: Vec<f32>,
    // Staging scratch for the class-bucketed kernels: one
    // `kernel::STAGE_STRIDE` stripe per worker (grown before a parallel
    // fan-out; the serial stripe is allocated at build so steady-state
    // serial runs stay allocation-free).
    stage: Vec<f32>,
    // Batched-run scratch, grown on first use and reused: `xb` holds every
    // padded x vector at stride `xp.len()`; `yb` packs each (tile-row,
    // vector) window contiguously in pair order (`window_prefix[r] * batch
    // + j * window_len(r)`), so parallel chunks of pairs own contiguous
    // ascending spans.
    xb: Vec<f32>,
    yb: Vec<f32>,
    // Fault-injection state: the raw encoding words and per-instance tile
    // column bases let the faulted executor re-decode the stream (against
    // the shared `lut`) as the hardware would after a bit flip.
    #[cfg(feature = "fault-injection")]
    enc_bits: Vec<u32>,
    #[cfg(feature = "fault-injection")]
    col_base: Vec<u32>,
    #[cfg(feature = "fault-injection")]
    armed: Option<ArmedFaults>,
    // Which batch lane single-vector executions act on behalf of, so a
    // fault plan armed for one vector of a batch strikes only that vector.
    #[cfg(feature = "fault-injection")]
    active_lane: usize,
}

/// Borrowed views of an [`ExecutionPlan`]'s immutable stream sections —
/// exactly the content wire v3 freezes (see [`ExecutionPlan::streams`]).
#[derive(Debug, Clone, Copy)]
pub struct PlanStreams<'a> {
    /// Per instance: base of its 4-wide x segment in the padded operand.
    pub x_base: &'a [u32],
    /// Per instance: y offset within the owning tile row's window.
    pub y_base: &'a [u32],
    /// Per instance: opcode class (template LUT index).
    pub op_idx: &'a [u8],
    /// Four value slots per instance.
    pub values: &'a [f32],
    /// Classed execution order (see [`ExecutionPlan::bucket_order`]).
    pub bucket_idx: &'a [u32],
    /// Class runs into `bucket_idx`, in block order.
    pub class_runs: &'a [ClassRun],
    /// Per block: prefix of run counts into `class_runs` (len blocks+1).
    pub block_runs: &'a [u32],
    /// Per tile row: prefix of block counts (len rows+1).
    pub row_blocks: &'a [u32],
}

/// One tile of a frozen plan's directory: the stream span it owns plus
/// its grid position. The wire-v3 TILES section stores exactly these
/// fields; everything else about the layout is derived from them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrozenTile {
    /// Tile-row index in the tiling grid.
    pub row: u32,
    /// Tile-column index in the tiling grid.
    pub col: u32,
    /// First instance of this tile in the stream.
    pub first_instance: usize,
    /// Instances this tile owns.
    pub n_instances: usize,
}

/// Everything [`ExecutionPlan::from_parts`] needs to reassemble a plan
/// from frozen streams without re-preparing: the shape and schedule
/// inputs, the tile directory, and the eight immutable stream sections
/// (owned or mapped — the plan executes identically either way).
#[derive(Debug)]
pub struct PlanParts {
    /// The hardware configuration the plan prices against.
    pub config: HwConfig,
    /// Matrix rows.
    pub rows: u32,
    /// Matrix columns.
    pub cols: u32,
    /// Tile edge length of the encoding.
    pub tile_size: u32,
    /// Structural nonzeros of the original matrix (for FLOP pricing).
    pub nnz: u64,
    /// The portfolio's template masks, in LUT order.
    pub template_masks: Vec<u16>,
    /// The tile directory, in stream order.
    pub tiles: Vec<FrozenTile>,
    /// Per instance: base of its 4-wide x segment in the padded operand.
    pub x_base: Stream<u32>,
    /// Per instance: y offset within the owning tile row's window.
    pub y_base: Stream<u32>,
    /// Per instance: opcode class (template LUT index).
    pub op_idx: Stream<u8>,
    /// Four value slots per instance.
    pub values: Stream<f32>,
    /// Classed execution order.
    pub bucket_idx: Stream<u32>,
    /// Class runs into `bucket_idx`, in block order.
    pub class_runs: Stream<ClassRun>,
    /// Per block: prefix of run counts into `class_runs`.
    pub block_runs: Stream<u32>,
    /// Per tile row: prefix of block counts.
    pub row_blocks: Stream<u32>,
    /// Raw 32-bit position-encoding words, one per instance. Required
    /// (`Some` with matching length) by builds with the `fault-injection`
    /// feature, whose executors re-decode the raw stream; ignored
    /// otherwise.
    pub encodings: Option<Vec<u32>>,
}

impl ExecutionPlan {
    /// Builds the plan: validates the stream's structural invariants,
    /// pre-decodes it, lays out tile rows, runs the LPT assignment and
    /// prices the execution once.
    pub(crate) fn build(config: HwConfig, matrix: &SpasmMatrix) -> Result<Self, SimError> {
        let pe = Pe::new(matrix.template_masks())?;
        let xp_len = (matrix.cols() as usize).div_ceil(4) * 4;
        let yp_len = (matrix.rows() as usize).div_ceil(4) * 4;

        validate_stream(matrix, &pe, xp_len as u64, yp_len as u64)?;

        // Pre-decode every instance into SoA form.
        let tile_size = matrix.tile_size();
        let n = matrix.n_instances();
        let mut x_base = Vec::with_capacity(n);
        let mut y_base = Vec::with_capacity(n);
        let mut op_idx = Vec::with_capacity(n);
        let encodings = matrix.encodings();
        for tile in matrix.tiles() {
            let col_base = tile.tile_col * tile_size;
            for e in &encodings[tile.first_instance..tile.first_instance + tile.n_instances] {
                x_base.push(col_base + e.c_idx() * 4);
                y_base.push(e.r_idx() * 4);
                op_idx.push(e.t_idx());
            }
        }

        Self::assemble(
            config,
            matrix,
            x_base,
            y_base,
            op_idx,
            Stream::owned(matrix.shared_values().clone()),
            Dispatch::default(),
        )
    }

    /// Assembles a plan around an already-decoded SoA instance stream:
    /// tile-row layout, compiled portfolio, class buckets, LPT schedule,
    /// cycle pricing and scratch — everything [`ExecutionPlan::build`]
    /// derives after the decode loop, shared with the splice path
    /// ([`ExecutionPlan::respliced`]) so both produce identical plans.
    ///
    /// `x_base`/`y_base`/`op_idx` must agree with `matrix`'s stream (the
    /// callers either decode them from it or splice spans that decode
    /// equal).
    fn assemble(
        config: HwConfig,
        matrix: &SpasmMatrix,
        x_base: Vec<u32>,
        y_base: Vec<u32>,
        op_idx: Vec<u8>,
        values: Stream<f32>,
        dispatch: Dispatch,
    ) -> Result<Self, SimError> {
        let tile_size = matrix.tile_size();
        let xp_len = (matrix.cols() as usize).div_ceil(4) * 4;
        let yp_len = (matrix.rows() as usize).div_ceil(4) * 4;
        let n = matrix.n_instances();

        // Contiguous spans of same-tile-row tiles, in stream order.
        let mut row_spans: Vec<(u32, usize, usize)> = Vec::new(); // (row, first, last)
        for (i, tile) in matrix.tiles().iter().enumerate() {
            match row_spans.last_mut() {
                Some((row, _, end)) if *row == tile.tile_row => *end = i + 1,
                _ => row_spans.push((tile.tile_row, i, i + 1)),
            }
        }

        // Per-tile lane statistics for the LPT schedule, read back from
        // the SoA form (`y_base[i] / 4` is the instance's `r_idx`).
        let mut jobs = Vec::with_capacity(matrix.tiles().len());
        for tile in matrix.tiles() {
            let mut lanes = [0usize; 16];
            for i in tile.first_instance..tile.first_instance + tile.n_instances {
                lanes[(y_base[i] as usize / 4) % 16] += 1;
            }
            jobs.push(TileJob {
                tile_row: tile.tile_row,
                tile_col: tile.tile_col,
                n_instances: tile.n_instances,
                max_lane_instances: timing::max_lane(&lanes),
            });
        }

        // Fault-injection builds carry the raw encoding words so the
        // faulted executors can re-decode the stream. These always come
        // from the (current) matrix — after a splice, CE/RE flags of
        // untouched tiles may have changed, so spans cannot be reused.
        #[cfg(feature = "fault-injection")]
        let (enc_bits, col_bases) = {
            let mut enc_bits = Vec::with_capacity(n);
            let mut col_bases = Vec::with_capacity(n);
            for tile in matrix.tiles() {
                let col_base = tile.tile_col * tile_size;
                for e in
                    &matrix.encodings()[tile.first_instance..tile.first_instance + tile.n_instances]
                {
                    enc_bits.push(e.bits());
                    col_bases.push(col_base);
                }
            }
            (enc_bits, col_bases)
        };

        // Tile-row layout: instance spans (tiles of a row are contiguous
        // in the stream) and disjoint y windows over the padded scratch.
        let mut inst_ranges = Vec::with_capacity(row_spans.len());
        let mut window_spans = Vec::with_capacity(row_spans.len());
        let mut tile_row_ids = Vec::with_capacity(row_spans.len());
        let mut cum_instances = Vec::with_capacity(row_spans.len() + 1);
        let mut running = 0usize;
        cum_instances.push(running);
        for &(row, first, last) in &row_spans {
            let i0 = matrix.tiles()[first].first_instance;
            let t = &matrix.tiles()[last - 1];
            let i1 = t.first_instance + t.n_instances;
            inst_ranges.push((i0, i1));
            running += i1 - i0;
            cum_instances.push(running);
            let start = (row * tile_size) as usize;
            let end = (((row + 1) * tile_size) as usize).min(yp_len);
            window_spans.push((start, end));
            tile_row_ids.push(row);
        }
        let max_window = window_spans
            .iter()
            .map(|&(start, end)| end - start)
            .max()
            .unwrap_or(0);
        let mut window_prefix = Vec::with_capacity(window_spans.len() + 1);
        window_prefix.push(0usize);
        let mut wsum = 0usize;
        for &(start, end) in &window_spans {
            wsum += end - start;
            window_prefix.push(wsum);
        }

        // Compiled portfolio tables (the PE's opcode LUT, shared by the
        // faulted decoder, plus the class kernels), and the prepare-time
        // pattern-class bucketing over the instance stream.
        let lut = matrix
            .template_masks()
            .iter()
            .map(|&m| ValuOpcode::compile(m))
            .collect::<Result<Vec<_>, _>>()?;
        let kernels: Vec<ClassKernel> =
            lut.iter().map(|&op| ClassKernel::from_opcode(op)).collect();
        let (bucket_idx, class_runs, block_runs, row_blocks) =
            kernel::build_buckets(&inst_ranges, &op_idx);

        // Timing: the same LPT assignment and cycle pricing the per-run
        // simulator used, computed once.
        let worked_row_heights = row_spans.iter().map(|&(row, _, _)| {
            (matrix.rows() - (row * tile_size).min(matrix.rows())).min(tile_size)
        });
        let y_traffic = timing::y_bytes(worked_row_heights);
        let x_traffic = matrix.tiles().len() as u64 * u64::from(tile_size) * 4;
        let assignment = timing::lpt_assign(jobs, config.num_pe_groups, tile_size, &config);
        let per_group_cycles: Vec<u64> = assignment
            .iter()
            .map(|a| timing::group_cycles(a, tile_size, &config))
            .collect();

        let traffic = Traffic {
            matrix: 20 * n as u64,
            x: x_traffic,
            y: y_traffic,
        };
        let cycles = timing::total_cycles(&per_group_cycles, y_traffic, &config);
        let seconds = config.cycles_to_seconds(cycles);
        let flops = 2.0 * matrix.nnz() as f64 + matrix.rows() as f64;
        let gflops = flops / seconds / 1e9;
        let achieved_bandwidth_gbs = traffic.total() as f64 / seconds / 1e9;
        let compute_utilization = gflops / config.peak_gflops();
        let estimated_power_w = config.power_estimate_w(compute_utilization);
        let report = ExecReport {
            cycles,
            seconds,
            gflops,
            achieved_bandwidth_gbs,
            compute_utilization,
            bandwidth_utilization: achieved_bandwidth_gbs / config.bandwidth_gbs(),
            per_group_cycles,
            traffic,
            estimated_power_w,
            energy_j: estimated_power_w * seconds,
            health: HealthReport::default(),
            batch: None,
        };

        Ok(ExecutionPlan {
            rows: matrix.rows(),
            cols: matrix.cols(),
            tile_size,
            x_base: Stream::from_vec(x_base),
            y_base: Stream::from_vec(y_base),
            op_idx: Stream::from_vec(op_idx),
            lut,
            kernels,
            values,
            bucket_idx: Stream::from_vec(bucket_idx),
            class_runs: Stream::from_vec(class_runs),
            block_runs: Stream::from_vec(block_runs),
            row_blocks: Stream::from_vec(row_blocks),
            dispatch,
            inst_ranges,
            window_spans,
            tile_row_ids,
            cum_instances,
            window_prefix,
            assignment,
            report,
            xp: vec![0.0; xp_len],
            yp: vec![0.0; yp_len],
            chunks: Vec::with_capacity(worker_budget().max(1) + 1),
            vp: vec![0.0; max_window],
            vq: vec![0.0; max_window],
            stage: vec![0.0; kernel::STAGE_STRIDE],
            xb: Vec::new(),
            yb: Vec::new(),
            #[cfg(feature = "fault-injection")]
            enc_bits,
            #[cfg(feature = "fault-injection")]
            col_base: col_bases,
            #[cfg(feature = "fault-injection")]
            armed: None,
            #[cfg(feature = "fault-injection")]
            active_lane: 0,
            config,
        })
    }

    /// Replaces the plan's value stream copy-on-write: installs `values`
    /// (typically the buffer returned by `SpasmMatrix::patch_values`)
    /// under a bumped [`ExecutionPlan::version`].
    ///
    /// Clones of this plan — and executions already reading the old
    /// buffer — keep the previous values; only subsequent runs of *this*
    /// plan see the new ones. Works on mapped plans too (the value
    /// stream becomes owned; [`ExecutionPlan::memory_bytes`] reprices
    /// accordingly).
    ///
    /// # Errors
    ///
    /// [`SimError::Plan`] when `values` does not hold exactly four slots
    /// per instance; the plan is untouched.
    pub fn adopt_values(&mut self, values: Arc<[f32]>) -> Result<(), SimError> {
        if values.len() != self.values.len() {
            return Err(SimError::Plan("adopted value stream has the wrong length"));
        }
        let next = self.values.version() + 1;
        self.values = Stream::owned(values).with_version(next);
        Ok(())
    }

    /// The plan's content generation: 0 as prepared, bumped by every
    /// [`ExecutionPlan::adopt_values`] and [`ExecutionPlan::respliced`].
    pub fn version(&self) -> u64 {
        self.values.version()
    }

    /// Restamps the plan's content generation without touching its data.
    /// The update path uses this to keep version stamps monotonic when a
    /// drifting delta forces a full re-prepare (which otherwise builds a
    /// fresh plan at generation 0).
    pub fn restamp_version(&mut self, version: u64) {
        self.values = self.values.clone().with_version(version);
    }

    /// Builds the successor plan for a structurally spliced matrix,
    /// reusing this plan's decoded SoA spans for untouched tiles.
    ///
    /// `matrix` is the spliced encoding (`SpasmMatrix::spliced`),
    /// `old_tiles` the *pre-splice* tile directory (the plan itself keeps
    /// no directory), and `touched` the `(tile_row, tile_col)` keys of
    /// re-encoded tiles. Untouched tiles' x/y-base and opcode-class
    /// spans are copied from this plan verbatim — their decode is a pure
    /// function of tile-local content, which did not change; CE/RE
    /// boundary flags are not part of the SoA form, so global restamping
    /// does not invalidate the spans. Touched tiles are decoded from the
    /// new stream. Derived state (buckets, schedule, pricing, scratch)
    /// is rebuilt exactly as a fresh prepare would, so the result is
    /// bit-identical to preparing the mutated matrix from scratch, with
    /// the [`Dispatch`] setting preserved and the version bumped.
    ///
    /// # Errors
    ///
    /// [`SimError::Plan`] when the spliced matrix changed shape, tiling
    /// or portfolio; [`SimError::Integrity`] when its stream fails
    /// validation. The plan is untouched on error.
    pub fn respliced(
        &self,
        matrix: &SpasmMatrix,
        old_tiles: &[spasm_format::Tile],
        touched: &[(u32, u32)],
    ) -> Result<ExecutionPlan, SimError> {
        if matrix.rows() != self.rows
            || matrix.cols() != self.cols
            || matrix.tile_size() != self.tile_size
        {
            return Err(SimError::Plan("spliced matrix changed shape or tiling"));
        }
        if matrix.template_masks().len() != self.lut.len() {
            return Err(SimError::Plan("spliced matrix changed the portfolio"));
        }
        let pe = Pe::new(matrix.template_masks())?;
        let xp_len = (matrix.cols() as usize).div_ceil(4) * 4;
        let yp_len = (matrix.rows() as usize).div_ceil(4) * 4;
        validate_stream(matrix, &pe, xp_len as u64, yp_len as u64)?;

        let touched: std::collections::HashSet<(u32, u32)> = touched.iter().copied().collect();
        let tile_size = self.tile_size;
        let n = matrix.n_instances();
        let mut x_base = Vec::with_capacity(n);
        let mut y_base = Vec::with_capacity(n);
        let mut op_idx = Vec::with_capacity(n);
        let encodings = matrix.encodings();
        for tile in matrix.tiles() {
            let key = (tile.tile_row, tile.tile_col);
            let old_span = if touched.contains(&key) {
                None
            } else {
                old_tiles
                    .binary_search_by_key(&key, |t| (t.tile_row, t.tile_col))
                    .ok()
                    .map(|i| &old_tiles[i])
                    .filter(|ot| ot.n_instances == tile.n_instances)
            };
            match old_span {
                Some(ot) => {
                    // Splice: the old plan's SoA span decodes this
                    // tile's unchanged content.
                    let s = ot.first_instance..ot.first_instance + ot.n_instances;
                    x_base.extend_from_slice(&self.x_base[s.clone()]);
                    y_base.extend_from_slice(&self.y_base[s.clone()]);
                    op_idx.extend_from_slice(&self.op_idx[s]);
                }
                None => {
                    let col_base = tile.tile_col * tile_size;
                    for e in &encodings[tile.first_instance..tile.first_instance + tile.n_instances]
                    {
                        x_base.push(col_base + e.c_idx() * 4);
                        y_base.push(e.r_idx() * 4);
                        op_idx.push(e.t_idx());
                    }
                }
            }
        }

        let values =
            Stream::owned(matrix.shared_values().clone()).with_version(self.values.version() + 1);
        Self::assemble(
            self.config.clone(),
            matrix,
            x_base,
            y_base,
            op_idx,
            values,
            self.dispatch,
        )
    }

    /// Reassembles an executable plan from frozen parts — the wire-v3
    /// load path. The streams may be owned or mapped; either way the
    /// resulting plan executes bit-identically to one built by
    /// `prepare` from the same matrix, through the same dispatch paths.
    ///
    /// Every structural invariant `build` establishes by construction is
    /// checked here instead, because the parts may come from a hostile or
    /// corrupted buffer: tile-directory contiguity and bounds,
    /// per-instance x/y bases against the padded operand layout, opcode
    /// classes against the portfolio, and the full bucket directory
    /// (blocks partition each tile row, runs partition each block,
    /// indices are an in-block permutation agreeing with `op_idx`).
    /// Derived state (portfolio LUT, tile-row layout, LPT schedule,
    /// report, scratch) is rebuilt exactly as `build` does.
    ///
    /// # Errors
    ///
    /// [`SimError::Plan`] naming the violated invariant; never panics.
    pub fn from_parts(parts: PlanParts) -> Result<Self, SimError> {
        let config = parts.config.checked().map_err(SimError::Plan)?;
        let tile_size = parts.tile_size;
        if tile_size == 0 || !tile_size.is_multiple_of(4) {
            return Err(SimError::Plan("tile size must be a positive multiple of 4"));
        }
        if parts.template_masks.is_empty() || parts.template_masks.len() > 16 {
            return Err(SimError::Plan("portfolio must hold 1..=16 templates"));
        }
        let n = parts.op_idx.len();
        if parts.x_base.len() != n
            || parts.y_base.len() != n
            || parts.bucket_idx.len() != n
            || parts.values.len() != 4 * n
        {
            return Err(SimError::Plan("stream section lengths disagree"));
        }
        if parts.nnz > 4 * n as u64 {
            return Err(SimError::Plan("nnz exceeds the stream's value slots"));
        }
        let xp_len = (parts.cols as usize).div_ceil(4) * 4;
        let yp_len = (parts.rows as usize).div_ceil(4) * 4;
        let ts64 = u64::from(tile_size);

        // Tile directory: tiles the stream contiguously, strictly
        // ascending (row, col), every tile inside the matrix.
        let mut cursor = 0usize;
        let mut prev: Option<(u32, u32)> = None;
        for t in &parts.tiles {
            if t.first_instance != cursor {
                return Err(SimError::Plan("tile directory does not tile the stream"));
            }
            cursor = cursor
                .checked_add(t.n_instances)
                .filter(|&c| c <= n)
                .ok_or(SimError::Plan("tile instance counts overflow the stream"))?;
            if prev.is_some_and(|p| (t.row, t.col) <= p) {
                return Err(SimError::Plan("tile directory not strictly ascending"));
            }
            prev = Some((t.row, t.col));
            if u64::from(t.row) * ts64 >= u64::from(parts.rows)
                || u64::from(t.col) * ts64 >= u64::from(parts.cols)
            {
                return Err(SimError::Plan("tile outside the matrix"));
            }
        }
        if cursor != n {
            return Err(SimError::Plan("tile directory does not cover the stream"));
        }

        // Per-instance stream invariants, mirroring `validate_stream` on
        // the already-decoded SoA form (u64 math: hostile coordinates
        // cannot wrap).
        let x_base = &parts.x_base;
        let y_base = &parts.y_base;
        let op_idx = &parts.op_idx;
        let n_templates = parts.template_masks.len();
        for t in &parts.tiles {
            let col_base = u64::from(t.col) * ts64;
            let w_start = u64::from(t.row) * ts64;
            let w_end = (w_start + ts64).min(yp_len as u64);
            let wlen = w_end - w_start;
            for i in t.first_instance..t.first_instance + t.n_instances {
                let xb = u64::from(x_base[i]);
                if xb < col_base
                    || (xb - col_base) % 4 != 0
                    || xb + 4 > col_base + ts64
                    || xb + 4 > xp_len as u64
                {
                    return Err(SimError::Plan("instance x base outside its tile"));
                }
                let yb = u64::from(y_base[i]);
                if yb % 4 != 0 || yb + 4 > wlen {
                    return Err(SimError::Plan("instance y base outside its window"));
                }
                if usize::from(op_idx[i]) >= n_templates {
                    return Err(SimError::Plan("opcode class outside the portfolio"));
                }
            }
        }

        // Tile-row layout, exactly as `build` derives it.
        let mut row_spans: Vec<(u32, usize, usize)> = Vec::new();
        for (i, t) in parts.tiles.iter().enumerate() {
            match row_spans.last_mut() {
                Some((row, _, end)) if *row == t.row => *end = i + 1,
                _ => row_spans.push((t.row, i, i + 1)),
            }
        }
        let mut inst_ranges = Vec::with_capacity(row_spans.len());
        let mut window_spans = Vec::with_capacity(row_spans.len());
        let mut tile_row_ids = Vec::with_capacity(row_spans.len());
        let mut cum_instances = Vec::with_capacity(row_spans.len() + 1);
        let mut running = 0usize;
        cum_instances.push(running);
        for &(row, first, last) in &row_spans {
            let i0 = parts.tiles[first].first_instance;
            let t = &parts.tiles[last - 1];
            let i1 = t.first_instance + t.n_instances;
            inst_ranges.push((i0, i1));
            running += i1 - i0;
            cum_instances.push(running);
            let start = (row as usize) * tile_size as usize;
            let end = ((row as usize + 1) * tile_size as usize).min(yp_len);
            window_spans.push((start, end));
            tile_row_ids.push(row);
        }
        let max_window = window_spans
            .iter()
            .map(|&(start, end)| end - start)
            .max()
            .unwrap_or(0);
        let mut window_prefix = Vec::with_capacity(window_spans.len() + 1);
        window_prefix.push(0usize);
        let mut wsum = 0usize;
        for &(start, end) in &window_spans {
            wsum += end - start;
            window_prefix.push(wsum);
        }

        // Bucket directory: blocks partition each tile row, runs
        // partition each block with strictly ascending classes, and each
        // block's indices are a permutation of its instance span whose
        // classes agree with `op_idx`.
        let bucket_idx = &parts.bucket_idx;
        let class_runs = &parts.class_runs;
        let block_runs = &parts.block_runs;
        let row_blocks = &parts.row_blocks;
        let n_tile_rows = inst_ranges.len();
        if row_blocks.len() != n_tile_rows + 1 || row_blocks.first() != Some(&0) {
            return Err(SimError::Plan("row-block prefix has the wrong shape"));
        }
        for (r, &(i0, i1)) in inst_ranges.iter().enumerate() {
            let want = (i1 - i0).div_ceil(kernel::EXEC_BLOCK) as u32;
            if row_blocks[r + 1].checked_sub(row_blocks[r]) != Some(want) {
                return Err(SimError::Plan("row-block prefix disagrees with the layout"));
            }
        }
        let n_blocks = row_blocks.last().map_or(0, |&b| b as usize);
        if block_runs.len() != n_blocks + 1
            || block_runs.first() != Some(&0)
            || block_runs.last() != Some(&(class_runs.len() as u32))
            || block_runs.windows(2).any(|w| w[0] > w[1])
        {
            return Err(SimError::Plan("block-run prefix has the wrong shape"));
        }
        let mut seen = vec![u32::MAX; kernel::EXEC_BLOCK];
        let mut b = 0usize;
        for &(i0, i1) in &inst_ranges {
            let mut blk_i0 = i0;
            while blk_i0 < i1 {
                let blk_i1 = (blk_i0 + kernel::EXEC_BLOCK).min(i1);
                let mut cur = blk_i0 as u32;
                let mut last_class: Option<u32> = None;
                for run in block_runs[b] as usize..block_runs[b + 1] as usize {
                    let cr = class_runs[run];
                    if cr.start != cur || cr.end <= cr.start || cr.end as usize > blk_i1 {
                        return Err(SimError::Plan("class runs do not partition their block"));
                    }
                    cur = cr.end;
                    if cr.class as usize >= n_templates {
                        return Err(SimError::Plan(
                            "class run names a template outside the portfolio",
                        ));
                    }
                    if last_class.is_some_and(|lc| cr.class <= lc) {
                        return Err(SimError::Plan(
                            "class runs must strictly ascend within a block",
                        ));
                    }
                    last_class = Some(cr.class);
                    for &idx in &bucket_idx[cr.start as usize..cr.end as usize] {
                        let i = idx as usize;
                        if i < blk_i0 || i >= blk_i1 {
                            return Err(SimError::Plan("bucket index outside its block"));
                        }
                        if u32::from(op_idx[i]) != cr.class {
                            return Err(SimError::Plan(
                                "bucket index class disagrees with the stream",
                            ));
                        }
                        let slot = i - blk_i0;
                        if seen[slot] == b as u32 {
                            return Err(SimError::Plan("duplicate bucket index in a block"));
                        }
                        seen[slot] = b as u32;
                    }
                }
                if cur as usize != blk_i1 {
                    return Err(SimError::Plan("class runs do not cover their block"));
                }
                blk_i0 = blk_i1;
                b += 1;
            }
        }

        // Fault-injection builds re-decode the raw encoding words; they
        // are part of the frozen form there.
        #[cfg(feature = "fault-injection")]
        let (enc_bits, col_bases) = {
            let enc = parts.encodings.ok_or(SimError::Plan(
                "fault-injection builds need the encoding words",
            ))?;
            if enc.len() != n {
                return Err(SimError::Plan("encoding-word section length disagrees"));
            }
            let mut col_bases = Vec::with_capacity(n);
            for t in &parts.tiles {
                for _ in 0..t.n_instances {
                    col_bases.push(t.col * tile_size);
                }
            }
            (enc, col_bases)
        };
        #[cfg(not(feature = "fault-injection"))]
        let _ = parts.encodings;

        // Compiled portfolio and timing, exactly as `build` computes them.
        let lut = parts
            .template_masks
            .iter()
            .map(|&m| ValuOpcode::compile(m))
            .collect::<Result<Vec<_>, _>>()?;
        let kernels: Vec<ClassKernel> =
            lut.iter().map(|&op| ClassKernel::from_opcode(op)).collect();
        let mut jobs = Vec::with_capacity(parts.tiles.len());
        for t in &parts.tiles {
            let mut lanes = [0usize; 16];
            for i in t.first_instance..t.first_instance + t.n_instances {
                lanes[(y_base[i] as usize / 4) % 16] += 1;
            }
            jobs.push(TileJob {
                tile_row: t.row,
                tile_col: t.col,
                n_instances: t.n_instances,
                max_lane_instances: timing::max_lane(&lanes),
            });
        }
        let worked_row_heights = row_spans
            .iter()
            .map(|&(row, _, _)| (parts.rows - (row * tile_size).min(parts.rows)).min(tile_size));
        let y_traffic = timing::y_bytes(worked_row_heights);
        let x_traffic = parts.tiles.len() as u64 * ts64 * 4;
        let assignment = timing::lpt_assign(jobs, config.num_pe_groups, tile_size, &config);
        let per_group_cycles: Vec<u64> = assignment
            .iter()
            .map(|a| timing::group_cycles(a, tile_size, &config))
            .collect();
        let traffic = Traffic {
            matrix: 20 * n as u64,
            x: x_traffic,
            y: y_traffic,
        };
        let cycles = timing::total_cycles(&per_group_cycles, y_traffic, &config);
        let seconds = config.cycles_to_seconds(cycles);
        let flops = 2.0 * parts.nnz as f64 + parts.rows as f64;
        let gflops = flops / seconds / 1e9;
        let achieved_bandwidth_gbs = traffic.total() as f64 / seconds / 1e9;
        let compute_utilization = gflops / config.peak_gflops();
        let estimated_power_w = config.power_estimate_w(compute_utilization);
        let report = ExecReport {
            cycles,
            seconds,
            gflops,
            achieved_bandwidth_gbs,
            compute_utilization,
            bandwidth_utilization: achieved_bandwidth_gbs / config.bandwidth_gbs(),
            per_group_cycles,
            traffic,
            estimated_power_w,
            energy_j: estimated_power_w * seconds,
            health: HealthReport::default(),
            batch: None,
        };

        Ok(ExecutionPlan {
            rows: parts.rows,
            cols: parts.cols,
            tile_size,
            x_base: parts.x_base,
            y_base: parts.y_base,
            op_idx: parts.op_idx,
            lut,
            kernels,
            values: parts.values,
            bucket_idx: parts.bucket_idx,
            class_runs: parts.class_runs,
            block_runs: parts.block_runs,
            row_blocks: parts.row_blocks,
            dispatch: Dispatch::default(),
            inst_ranges,
            window_spans,
            tile_row_ids,
            cum_instances,
            window_prefix,
            assignment,
            report,
            xp: vec![0.0; xp_len],
            yp: vec![0.0; yp_len],
            chunks: Vec::with_capacity(worker_budget().max(1) + 1),
            vp: vec![0.0; max_window],
            vq: vec![0.0; max_window],
            stage: vec![0.0; kernel::STAGE_STRIDE],
            xb: Vec::new(),
            yb: Vec::new(),
            #[cfg(feature = "fault-injection")]
            enc_bits,
            #[cfg(feature = "fault-injection")]
            col_base: col_bases,
            #[cfg(feature = "fault-injection")]
            armed: None,
            #[cfg(feature = "fault-injection")]
            active_lane: 0,
            config,
        })
    }

    /// The hardware configuration this plan was priced on.
    pub fn config(&self) -> &HwConfig {
        &self.config
    }

    /// Matrix rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The tile edge length of the encoded matrix.
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Instances per execution block: the pattern-class bucketing (and
    /// kernel staging) granule of the classed dispatcher.
    pub const EXEC_BLOCK: usize = kernel::EXEC_BLOCK;

    /// Batch vectors fused per instance walk by the classed dispatcher.
    pub const LANE_BLOCK: usize = kernel::LANE_BLOCK;

    /// Template instances in the pre-decoded stream.
    pub fn n_instances(&self) -> usize {
        self.op_idx.len()
    }

    /// Worked tile rows (each owns a disjoint y window).
    pub fn n_tile_rows(&self) -> usize {
        self.inst_ranges.len()
    }

    /// Selects the executor for subsequent runs (default
    /// [`Dispatch::Classed`]). Output bits are unaffected — both
    /// dispatchers are bit-identical; this exists for differential
    /// testing and baseline benchmarking.
    pub fn set_dispatch(&mut self, dispatch: Dispatch) {
        self.dispatch = dispatch;
    }

    /// The active executor (see [`ExecutionPlan::set_dispatch`]).
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// The instance span of worked tile row `r` in the pre-decoded
    /// stream, if `r` is in range.
    pub fn instance_range(&self, r: usize) -> Option<(usize, usize)> {
        self.inst_ranges.get(r).copied()
    }

    /// The classed dispatcher's execution order: instance indices,
    /// block-wise stably sorted by opcode class. Each
    /// [`ExecutionPlan::EXEC_BLOCK`]-aligned slice of a tile row's span
    /// is a permutation of the corresponding stream positions (the
    /// bucketing property test pins this down).
    pub fn bucket_order(&self) -> &[u32] {
        &self.bucket_idx
    }

    /// Per-instance opcode class: the template LUT index driving both
    /// dispatchers (1 byte per instance).
    pub fn opcode_classes(&self) -> &[u8] {
        &self.op_idx
    }

    /// The LPT tile-to-group assignment computed at prepare time.
    pub fn assignment(&self) -> &[Vec<TileJob>] {
        &self.assignment
    }

    /// The plan's flattened value stream when it is heap-owned — the same
    /// `Arc` as [`SpasmMatrix::shared_values`] of the matrix it was
    /// prepared from (shared, never copied; `tests/alloc_free.rs` asserts
    /// this). `None` for plans whose streams are mapped out of a wire-v3
    /// buffer (those own no value bytes at all).
    pub fn shared_values(&self) -> Option<&Arc<[f32]>> {
        self.values.as_owned()
    }

    /// The cached execution report — a pure function of `(matrix,
    /// config)` except for [`ExecReport::health`], which reflects the most
    /// recent execution (all-clean until a run observes otherwise).
    pub fn report(&self) -> &ExecReport {
        &self.report
    }

    /// Executes `y += A·x` against the prepared matrix, returning the
    /// cached report.
    ///
    /// Bit-identical to [`crate::Accelerator::run`] on the same matrix and
    /// configuration, for every thread budget. Performs no heap allocation
    /// at steady state when running serially (the parallel fan-out spawns
    /// scoped threads, which allocate their stacks).
    ///
    /// This is the unguarded path: armed faults (under the
    /// `fault-injection` feature) strike the execution and are *not*
    /// detected — use [`ExecutionPlan::run_deferred`] +
    /// [`ExecutionPlan::commit`] for verified execution.
    ///
    /// # Errors
    ///
    /// [`SimError::DimensionMismatch`] on operand length mismatches.
    pub fn run(&mut self, x: &[f32], y: &mut [f32]) -> Result<&ExecReport, SimError> {
        self.check_x(x)?;
        self.check_y(y)?;
        self.load_and_execute(x);
        self.report.health = self.armed_health();
        self.report.batch = None;
        self.add_into(y);
        Ok(&self.report)
    }

    /// Executes `ys[j] += A·xs[j]` for every vector of the batch in one
    /// call — the serving shape of multi-RHS solvers and
    /// SpMM-as-batched-SpMV inference.
    ///
    /// All x-vectors are padded once into a strided scratch; the
    /// pre-decoded instance stream is then walked once per tile row and
    /// applied to every vector while it is hot in cache, instead of being
    /// re-streamed per vector. Under the `parallel` feature the fan-out
    /// chunks (vector × tile-row) pairs balanced by instance count, so a
    /// small matrix with a large batch still saturates threads. Each
    /// output is bit-identical to a looped [`ExecutionPlan::run`] over the
    /// same vectors, for every batch size and thread count, and the scratch
    /// is reused: after the first call at a given batch size the steady
    /// state performs no heap allocation (when running serially).
    ///
    /// On success the cached report carries a [`BatchReport`] with the
    /// amortised batch pricing (initialisation and the matrix stream are
    /// paid once per batch).
    ///
    /// Armed faults (under the `fault-injection` feature) strike batched
    /// execution too: the batch degrades to a deterministic vector-serial
    /// pass so fault application order matches looped [`ExecutionPlan::run`]
    /// calls, with plans armed via `arm_faults_for_vector` striking only
    /// their target vector.
    ///
    /// # Errors
    ///
    /// [`SimError::DimensionMismatch`] when `xs` and `ys` disagree in
    /// length (operand `"batch"`), or [`SimError::BatchDimensionMismatch`]
    /// naming the offending vector index when any individual vector has
    /// the wrong length. All shapes are validated up front: on error no
    /// output vector has been touched.
    pub fn run_batch<X, Y>(&mut self, xs: &[X], ys: &mut [Y]) -> Result<&ExecReport, SimError>
    where
        X: AsRef<[f32]>,
        Y: AsMut<[f32]>,
    {
        if xs.len() != ys.len() {
            return Err(SimError::DimensionMismatch {
                expected: xs.len(),
                actual: ys.len(),
                operand: "batch",
            });
        }
        for (j, x) in xs.iter().enumerate() {
            if x.as_ref().len() != self.cols as usize {
                return Err(SimError::BatchDimensionMismatch {
                    vector: j,
                    expected: self.cols as usize,
                    actual: x.as_ref().len(),
                    operand: "x",
                });
            }
        }
        for (j, y) in ys.iter_mut().enumerate() {
            if y.as_mut().len() != self.rows as usize {
                return Err(SimError::BatchDimensionMismatch {
                    vector: j,
                    expected: self.rows as usize,
                    actual: y.as_mut().len(),
                    operand: "y",
                });
            }
        }

        #[cfg(feature = "fault-injection")]
        if self.armed.is_some() {
            return self.run_batch_faulted(xs, ys);
        }

        let batch = xs.len();
        self.load_batch(xs);
        self.execute_batch_rows(batch);
        self.add_into_batch(ys);
        self.report.health = HealthReport::default();
        self.stamp_batch(batch);
        Ok(&self.report)
    }

    /// Stamps the cached report with amortised pricing for a
    /// `vectors`-sized batch. [`ExecutionPlan::run_batch`] does this
    /// itself; front-ends that drive a batch through the per-vector
    /// verified ladder call it once at the end so the report they hand out
    /// reflects the batch.
    pub fn stamp_batch(&mut self, vectors: usize) {
        let cycles = timing::batch_cycles(self.report.cycles, vectors);
        let seconds = self.config.cycles_to_seconds(cycles);
        let t = self.report.traffic;
        let div = vectors.max(1) as f64;
        self.report.batch = Some(BatchReport {
            vectors,
            cycles,
            seconds,
            amortised_cycles_per_vector: cycles as f64 / div,
            amortised_seconds_per_vector: seconds / div,
            traffic: Traffic {
                matrix: t.matrix,
                x: t.x * vectors as u64,
                y: t.y * vectors as u64,
            },
        });
    }

    /// Executes `A·x` into the plan's internal window buffer *without*
    /// touching `y`, then re-verifies the tile rows selected by `scope`
    /// against a pristine re-computation of the stream.
    ///
    /// Rows whose output disagrees are quarantined and re-executed once
    /// from the pristine stream (persistent lane faults remain in effect);
    /// the outcome is recorded in the returned [`HealthReport`]. Call
    /// [`ExecutionPlan::commit`] afterwards to fold the (healed) result
    /// into `y`, or discard it — e.g. to fall back to a golden path —
    /// by simply not committing.
    ///
    /// # Errors
    ///
    /// [`SimError::DimensionMismatch`] if `x` has the wrong length.
    pub fn run_deferred(
        &mut self,
        x: &[f32],
        scope: VerifyScope<'_>,
    ) -> Result<HealthReport, SimError> {
        self.check_x(x)?;
        self.load_and_execute(x);
        let health = self.verify_and_heal(scope);
        self.report.health = health;
        self.report.batch = None;
        Ok(health)
    }

    /// Folds the result of the last [`ExecutionPlan::run_deferred`] into
    /// `y` (`y += A·x`) and returns the cached report.
    ///
    /// # Errors
    ///
    /// [`SimError::DimensionMismatch`] if `y` has the wrong length.
    pub fn commit(&mut self, y: &mut [f32]) -> Result<&ExecReport, SimError> {
        self.check_y(y)?;
        self.add_into(y);
        Ok(&self.report)
    }

    /// The contribution `(A·x)[row]` computed by the last execution
    /// (zero for rows outside the matrix or in unworked tile rows).
    ///
    /// Meaningful between [`ExecutionPlan::run_deferred`] and the next
    /// execution; used for sampled residual cross-checks against a golden
    /// reference before committing.
    pub fn contribution(&self, row: usize) -> f32 {
        self.yp.get(row).copied().unwrap_or(0.0)
    }

    /// The index (into the plan's worked tile rows, as accepted by
    /// [`VerifyScope::TileRows`]) of the tile row whose y window contains
    /// output row `y_row`, if that row is worked.
    pub fn tile_row_index_containing(&self, y_row: usize) -> Option<usize> {
        let idx = self.window_spans.partition_point(|&(_, end)| end <= y_row);
        (idx < self.window_spans.len() && self.window_spans[idx].0 <= y_row).then_some(idx)
    }

    /// The matrix-level tile-row id of the worked tile row at `index`
    /// (as returned by [`ExecutionPlan::tile_row_index_containing`]).
    pub fn tile_row_id(&self, index: usize) -> Option<u32> {
        self.tile_row_ids.get(index).copied()
    }

    /// Overwrites the cached report's [`ExecReport::health`]. For
    /// front-ends that extend verification beyond the plan (e.g. residual
    /// cross-checks against a golden reference, or a fallback taken on the
    /// plan's behalf) so the report they hand out reflects the full story.
    pub fn annotate_health(&mut self, health: HealthReport) {
        self.report.health = health;
    }

    /// The *owned* resident size of this plan in bytes: the pre-decoded
    /// SoA stream (1-byte opcode classes plus the portfolio LUT), the
    /// pattern-class bucket directory, tile-row layout, scheduling state
    /// and reusable scratch (including the kernel staging stripes), plus
    /// the value stream — counting only heap-owned stream sections.
    /// Sections mapped out of a wire-v3 buffer are excluded here and
    /// reported by [`ExecutionPlan::mapped_bytes`] instead, so a cache
    /// can price owned memory and pinned file mappings separately.
    ///
    /// An owned value stream is `Arc`-shared with the owning matrix and
    /// any sibling plans, but it is counted here in full so the figure is
    /// a safe upper bound for cache budgeting — evicting the plan may or
    /// may not actually free those bytes depending on other holders.
    /// Buffer lengths (not capacities) are counted, and the batch scratch
    /// `xb`/`yb` grows with the largest batch seen, so the figure can
    /// grow across calls.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        fn owned<T>(s: &Stream<T>) -> usize {
            if s.is_mapped() {
                0
            } else {
                std::mem::size_of_val(&**s)
            }
        }
        let f32s = self.xp.len()
            + self.yp.len()
            + self.vp.len()
            + self.vq.len()
            + self.stage.len()
            + self.xb.len()
            + self.yb.len();
        let bytes = size_of::<Self>()
            + f32s * size_of::<f32>()
            + owned(&self.values)
            + owned(&self.x_base)
            + owned(&self.y_base)
            + owned(&self.op_idx)
            + self.lut.len() * size_of::<ValuOpcode>()
            + self.kernels.len() * size_of::<ClassKernel>()
            + owned(&self.bucket_idx)
            + owned(&self.class_runs)
            + owned(&self.block_runs)
            + owned(&self.row_blocks)
            + self.inst_ranges.len() * size_of::<(usize, usize)>()
            + self.window_spans.len() * size_of::<(usize, usize)>()
            + self.tile_row_ids.len() * size_of::<u32>()
            + self.cum_instances.len() * size_of::<usize>()
            + self.window_prefix.len() * size_of::<usize>()
            + self.chunks.len() * size_of::<usize>()
            + self
                .assignment
                .iter()
                .map(|jobs| size_of::<Vec<TileJob>>() + jobs.len() * size_of::<TileJob>())
                .sum::<usize>();
        #[cfg(feature = "fault-injection")]
        let bytes =
            bytes + self.enc_bits.len() * size_of::<u32>() + self.col_base.len() * size_of::<u32>();
        bytes
    }

    /// Bytes this plan reads zero-copy out of a mapped wire-v3 buffer
    /// (0 for plans built by `prepare`). These bytes are pinned in the
    /// backing buffer, not owned by the plan; together with
    /// [`ExecutionPlan::memory_bytes`] they describe the plan's full
    /// working set.
    pub fn mapped_bytes(&self) -> usize {
        fn mapped<T>(s: &Stream<T>) -> usize {
            if s.is_mapped() {
                std::mem::size_of_val(&**s)
            } else {
                0
            }
        }
        mapped(&self.values)
            + mapped(&self.x_base)
            + mapped(&self.y_base)
            + mapped(&self.op_idx)
            + mapped(&self.bucket_idx)
            + mapped(&self.class_runs)
            + mapped(&self.block_runs)
            + mapped(&self.row_blocks)
    }

    /// Borrowed views of the plan's immutable stream sections — exactly
    /// the byte content wire v3 freezes. The `spasm-store` serialiser
    /// reads these; everything else about the plan (portfolio LUT,
    /// tile-row layout, schedule, scratch) is derived from them plus the
    /// tile directory at load time.
    pub fn streams(&self) -> PlanStreams<'_> {
        PlanStreams {
            x_base: &self.x_base,
            y_base: &self.y_base,
            op_idx: &self.op_idx,
            values: &self.values,
            bucket_idx: &self.bucket_idx,
            class_runs: &self.class_runs,
            block_runs: &self.block_runs,
            row_blocks: &self.row_blocks,
        }
    }

    fn check_x(&self, x: &[f32]) -> Result<(), SimError> {
        if x.len() != self.cols as usize {
            return Err(SimError::DimensionMismatch {
                expected: self.cols as usize,
                actual: x.len(),
                operand: "x",
            });
        }
        Ok(())
    }

    fn check_y(&self, y: &[f32]) -> Result<(), SimError> {
        if y.len() != self.rows as usize {
            return Err(SimError::DimensionMismatch {
                expected: self.rows as usize,
                actual: y.len(),
                operand: "y",
            });
        }
        Ok(())
    }

    /// Loads `x` into the padded scratch and executes all tile rows into
    /// the (zeroed) window buffer.
    fn load_and_execute(&mut self, x: &[f32]) {
        // The scratch tails beyond `x.len()` / the worked windows stay
        // zero from construction, as the hardware's aligned buffers do.
        self.xp[..x.len()].copy_from_slice(x);
        self.yp.fill(0.0);
        self.execute_tile_rows();
    }

    fn add_into(&mut self, y: &mut [f32]) {
        for (dst, src) in y.iter_mut().zip(&self.yp) {
            *dst += *src;
        }
    }

    /// Pads every x vector into the strided batch scratch and zeroes the
    /// active region of the packed window scratch. Both buffers grow on
    /// first use and are reused afterwards; the pad lanes beyond each
    /// vector's `cols` entries are written zero at growth and never
    /// touched again (every accepted x has exactly `cols` entries).
    fn load_batch<X: AsRef<[f32]>>(&mut self, xs: &[X]) {
        let xstride = self.xp.len();
        let need_x = xstride * xs.len();
        if self.xb.len() < need_x {
            self.xb.resize(need_x, 0.0);
        }
        for (j, x) in xs.iter().enumerate() {
            let x = x.as_ref();
            self.xb[j * xstride..j * xstride + x.len()].copy_from_slice(x);
        }
        let need_y = self.window_prefix.last().copied().unwrap_or(0) * xs.len();
        if self.yb.len() < need_y {
            self.yb.resize(need_y, 0.0);
        }
        self.yb[..need_y].fill(0.0);
    }

    /// The batched functional pass: tile rows outermost, vectors innermost,
    /// so each tile row's span of the SoA stream is applied to every
    /// vector while it is hot in cache. Per vector, the accumulation order
    /// within each window is exactly the single-run order, so the packed
    /// windows are bitwise what `run` would have produced.
    fn execute_batch_rows(&mut self, batch: usize) {
        let n_rows = self.inst_ranges.len();
        if n_rows == 0 || batch == 0 {
            return;
        }
        #[cfg(feature = "parallel")]
        {
            let budget = worker_budget();
            if budget >= 2 && n_rows * batch >= 2 {
                self.execute_batch_parallel(batch, budget);
                return;
            }
        }
        match self.dispatch {
            Dispatch::PerInstance => {
                let xstride = self.xp.len();
                for r in 0..n_rows {
                    let (i0, i1) = self.inst_ranges[r];
                    let (w0, w1) = self.window_spans[r];
                    let wlen = w1 - w0;
                    let base = self.window_prefix[r] * batch;
                    for j in 0..batch {
                        process_span(
                            &self.x_base,
                            &self.y_base,
                            &self.op_idx,
                            &self.lut,
                            &self.values,
                            &self.xb[j * xstride..(j + 1) * xstride],
                            &mut self.yb[base + j * wlen..base + (j + 1) * wlen],
                            i0,
                            i1,
                        );
                    }
                }
            }
            // Batch-lane fusion: one instance walk feeds up to LANE_BLOCK
            // vectors, and each vector's window still accumulates in
            // stream order — the lane blocking only changes how often the
            // instance metadata is re-read, not any per-window order.
            Dispatch::Classed => {
                let v = self.kernel_views();
                let xstride = v.xp.len();
                for (r, &(w0, w1)) in v.window_spans.iter().enumerate() {
                    let wlen = w1 - w0;
                    let base = v.window_prefix[r] * batch;
                    let mut lb = 0usize;
                    while lb < batch {
                        let lanes = kernel::LANE_BLOCK.min(batch - lb);
                        kernel::execute_row_classed(
                            v.soa,
                            v.buckets,
                            r,
                            v.xb,
                            xstride,
                            lb,
                            lanes,
                            &mut v.yb[base + lb * wlen..base + (lb + lanes) * wlen],
                            wlen,
                            v.stage,
                        );
                        lb += lanes;
                    }
                }
            }
        }
    }

    /// Parallel batched fan-out over (tile-row × vector) pairs, in pair
    /// order `p = r·batch + j`: chunk boundaries are binary-searched on the
    /// pairs' cumulative instance weight, and each chunk's packed windows
    /// form one contiguous ascending span of `yb` (that is what the pair
    /// ordering of `yb`'s layout buys), handed out with `split_at_mut`.
    /// Workers process their pairs in order, so every window's accumulation
    /// sequence is identical to the serial pass.
    #[cfg(feature = "parallel")]
    fn execute_batch_parallel(&mut self, batch: usize, budget: usize) {
        let n_rows = self.inst_ranges.len();
        let n_pairs = n_rows * batch;
        let parts = budget.min(n_pairs);
        let total = self.cum_instances.last().copied().unwrap_or(0) * batch;
        self.chunks.clear();
        self.chunks.push(0);
        let mut last_boundary = 0usize;
        for t in 1..parts {
            let target = total * t / parts;
            // Smallest pair whose cumulative weight reaches this worker's
            // share of the instance stream; clamped strictly increasing.
            let (mut lo, mut hi) = (0usize, n_pairs);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let (r, j) = (mid / batch, mid % batch);
                let w = batch * self.cum_instances[r]
                    + j * (self.cum_instances[r + 1] - self.cum_instances[r]);
                if w < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if lo > last_boundary && lo < n_pairs {
                self.chunks.push(lo);
                last_boundary = lo;
            }
        }
        self.chunks.push(n_pairs);

        // One staging stripe per chunk worker.
        let n_chunks = self.chunks.len() - 1;
        if self.dispatch == Dispatch::Classed && self.stage.len() < n_chunks * kernel::STAGE_STRIDE
        {
            self.stage.resize(n_chunks * kernel::STAGE_STRIDE, 0.0);
        }
        let dispatch = self.dispatch;
        let v = self.kernel_views();
        let (soa, buckets) = (v.soa, v.buckets);
        let (op_idx, lut) = (v.op_idx, v.lut);
        let (inst_ranges, window_spans) = (buckets.inst_ranges, v.window_spans);
        let window_prefix = v.window_prefix;
        let xb = v.xb;
        let xstride = v.xp.len();
        // Packed offset of pair `p`'s window; `p == n_pairs` is the end of
        // the active region.
        let offset = |p: usize| {
            if p == n_pairs {
                return window_prefix[n_rows] * batch;
            }
            let (r, j) = (p / batch, p % batch);
            let (w0, w1) = window_spans[r];
            window_prefix[r] * batch + j * (w1 - w0)
        };
        std::thread::scope(|scope| {
            let mut rest: &mut [f32] = &mut v.yb[..window_prefix[n_rows] * batch];
            let mut stage_rest: &mut [f32] = v.stage;
            let mut consumed = 0usize;
            for w in v.chunks.windows(2) {
                let (p0, p1) = (w[0], w[1]);
                let (start, end) = (offset(p0), offset(p1));
                let (chunk_y, tail) = rest.split_at_mut(end - start);
                rest = tail;
                debug_assert_eq!(start, consumed);
                consumed = end;
                match dispatch {
                    Dispatch::PerInstance => {
                        scope.spawn(move || {
                            for p in p0..p1 {
                                let (r, j) = (p / batch, p % batch);
                                let (i0, i1) = inst_ranges[r];
                                let (w0, w1) = window_spans[r];
                                let wlen = w1 - w0;
                                let off = window_prefix[r] * batch + j * wlen - start;
                                process_span(
                                    soa.x_base,
                                    soa.y_base,
                                    op_idx,
                                    lut,
                                    soa.values,
                                    &xb[j * xstride..(j + 1) * xstride],
                                    &mut chunk_y[off..off + wlen],
                                    i0,
                                    i1,
                                );
                            }
                        });
                    }
                    // A chunk's pairs are consecutive, so pairs sharing a
                    // tile row form runs of consecutive vectors — each run
                    // is lane-blocked through the fused kernel. Every
                    // (row, vector) window is still produced in stream
                    // order, so chunk boundaries cannot change any bits.
                    Dispatch::Classed => {
                        let (chunk_stage, s_tail) = stage_rest.split_at_mut(kernel::STAGE_STRIDE);
                        stage_rest = s_tail;
                        scope.spawn(move || {
                            let mut p = p0;
                            while p < p1 {
                                let r = p / batch;
                                let (w0, w1) = window_spans[r];
                                let wlen = w1 - w0;
                                let row_end = ((r + 1) * batch).min(p1);
                                let jend = row_end - r * batch;
                                let mut j = p % batch;
                                while j < jend {
                                    let lanes = kernel::LANE_BLOCK.min(jend - j);
                                    let off = window_prefix[r] * batch + j * wlen - start;
                                    kernel::execute_row_classed(
                                        soa,
                                        buckets,
                                        r,
                                        xb,
                                        xstride,
                                        j,
                                        lanes,
                                        &mut chunk_y[off..off + lanes * wlen],
                                        wlen,
                                        chunk_stage,
                                    );
                                    j += lanes;
                                }
                                p = row_end;
                            }
                        });
                    }
                }
            }
        });
    }

    /// Folds the packed batch windows into the output vectors,
    /// reproducing single-run [`ExecutionPlan::add_into`] bit-for-bit —
    /// including the `+= 0.0` it performs on rows outside every worked
    /// window (which normalises a caller's `-0.0` to `+0.0`), so batched
    /// and looped execution cannot be told apart even on signed zeros.
    fn add_into_batch<Y: AsMut<[f32]>>(&mut self, ys: &mut [Y]) {
        let batch = ys.len();
        let rows = self.rows as usize;
        for y in ys.iter_mut() {
            let y = y.as_mut();
            let mut cursor = 0usize;
            for &(w0, w1) in &self.window_spans {
                for dst in &mut y[cursor..w0.min(rows)] {
                    *dst += 0.0;
                }
                cursor = cursor.max(w1.min(rows));
            }
            for dst in &mut y[cursor..] {
                *dst += 0.0;
            }
        }
        for (r, &(w0, w1)) in self.window_spans.iter().enumerate() {
            let wlen = w1 - w0;
            let base = self.window_prefix[r] * batch;
            let hi = w1.min(rows);
            for (j, y) in ys.iter_mut().enumerate() {
                let y = y.as_mut();
                let src = &self.yb[base + j * wlen..base + j * wlen + (hi - w0)];
                for (dst, s) in y[w0..hi].iter_mut().zip(src) {
                    *dst += *s;
                }
            }
        }
    }

    /// The faulted batch path: vector-serial through the single-vector
    /// machinery, so fault application order is identical to looped
    /// [`ExecutionPlan::run`] calls with the matching active lane.
    #[cfg(feature = "fault-injection")]
    fn run_batch_faulted<X, Y>(&mut self, xs: &[X], ys: &mut [Y]) -> Result<&ExecReport, SimError>
    where
        X: AsRef<[f32]>,
        Y: AsMut<[f32]>,
    {
        let prev = self.active_lane;
        let mut health = HealthReport::default();
        for (j, (x, y)) in xs.iter().zip(ys.iter_mut()).enumerate() {
            self.active_lane = j;
            self.load_and_execute(x.as_ref());
            let h = self.armed_health();
            health.faults_injected += h.faults_injected;
            health.stall_cycles += h.stall_cycles;
            self.add_into(y.as_mut());
        }
        self.active_lane = prev;
        self.report.health = health;
        self.stamp_batch(xs.len());
        Ok(&self.report)
    }

    /// Injection-level health: what is armed on the plan *and striking the
    /// active lane*, before any verification has looked at the output.
    fn armed_health(&self) -> HealthReport {
        #[cfg(feature = "fault-injection")]
        if let Some(af) = &self.armed {
            if af.strikes_lane(self.active_lane) {
                return HealthReport {
                    faults_injected: af.applied,
                    stall_cycles: af.stall_cycles,
                    ..HealthReport::default()
                };
            }
        }
        HealthReport::default()
    }

    /// Re-verifies the selected tile rows against a pristine
    /// re-computation, quarantining and re-executing rows that disagree.
    fn verify_and_heal(&mut self, scope: VerifyScope<'_>) -> HealthReport {
        let mut health = self.armed_health();
        match scope {
            VerifyScope::None => {}
            VerifyScope::All => {
                for r in 0..self.inst_ranges.len() {
                    self.verify_row(r, &mut health);
                }
            }
            VerifyScope::TileRows(rows) => {
                for &r in rows {
                    if r < self.inst_ranges.len() {
                        self.verify_row(r, &mut health);
                    }
                }
            }
        }
        health
    }

    /// Verifies one tile row's window bit-for-bit against the pristine
    /// oracle; on mismatch, quarantines it and re-executes it once from
    /// the pristine stream (transient stream faults heal, persistent lane
    /// faults do not).
    fn verify_row(&mut self, r: usize, health: &mut HealthReport) {
        let (w0, w1) = self.window_spans[r];
        let (i0, i1) = self.inst_ranges[r];
        let wlen = w1 - w0;
        health.tile_rows_verified += 1;

        let oracle = &mut self.vp[..wlen];
        oracle.fill(0.0);
        // The oracle is always the per-instance reference walk, whatever
        // dispatcher produced the window — the two are bit-identical, so
        // this doubles as a cross-dispatch check on every verified row.
        process_span(
            &self.x_base,
            &self.y_base,
            &self.op_idx,
            &self.lut,
            &self.values,
            &self.xp,
            oracle,
            i0,
            i1,
        );
        if bits_equal(&self.yp[w0..w1], &self.vp[..wlen]) {
            return;
        }
        health.tile_rows_quarantined += 1;

        // One-shot re-execution from the pristine stream. Transient faults
        // (in-flight bit flips) do not recur; persistent faults (a stuck
        // VALU lane) strike the retry too and stay uncorrected.
        let retry = &mut self.vq[..wlen];
        retry.fill(0.0);
        self.reexecute_span(r, wlen);
        self.yp[w0..w1].copy_from_slice(&self.vq[..wlen]);
        if bits_equal(&self.yp[w0..w1], &self.vp[..wlen]) {
            health.tile_rows_corrected += 1;
        } else {
            health.tile_rows_uncorrected += 1;
            if health.first_failed_tile_row.is_none() {
                health.first_failed_tile_row = Some(self.tile_row_ids[r]);
            }
        }
    }

    /// Re-executes tile row `r` from the pristine stream into
    /// `vq[..wlen]`, keeping persistent (lane) faults in effect.
    #[cfg(feature = "fault-injection")]
    fn reexecute_span(&mut self, r: usize, wlen: usize) {
        let (i0, i1) = self.inst_ranges[r];
        match &self.armed {
            Some(af) if af.strikes_lane(self.active_lane) => process_span_faulted(
                af,
                false,
                &self.enc_bits,
                &self.col_base,
                &self.lut,
                &self.values,
                &self.xp,
                &mut self.vq[..wlen],
                i0,
                i1,
            ),
            _ => self.reexecute_pristine(r, wlen),
        }
    }

    /// Re-executes tile row `r` from the pristine stream into
    /// `vq[..wlen]` (without fault injection compiled in, the pristine
    /// stream is the only stream).
    #[cfg(not(feature = "fault-injection"))]
    fn reexecute_span(&mut self, r: usize, wlen: usize) {
        self.reexecute_pristine(r, wlen);
    }

    /// The pristine retry, run through the *active* dispatcher — when the
    /// plan executes classed, the quarantine re-execution replays the same
    /// bucketed order (and the same staging/scatter passes) the original
    /// execution used, so a healed window is exactly what a fault-free
    /// run would have produced.
    fn reexecute_pristine(&mut self, r: usize, wlen: usize) {
        match self.dispatch {
            Dispatch::PerInstance => {
                let (i0, i1) = self.inst_ranges[r];
                process_span(
                    &self.x_base,
                    &self.y_base,
                    &self.op_idx,
                    &self.lut,
                    &self.values,
                    &self.xp,
                    &mut self.vq[..wlen],
                    i0,
                    i1,
                );
            }
            Dispatch::Classed => {
                let v = self.kernel_views();
                let xstride = v.xp.len();
                kernel::execute_row_classed(
                    v.soa,
                    v.buckets,
                    r,
                    v.xp,
                    xstride,
                    0,
                    1,
                    &mut v.vq[..wlen],
                    wlen,
                    v.stage,
                );
            }
        }
    }

    /// Dispatches the functional pass over tile rows, fanning out only
    /// when the `parallel` feature is on and the ambient budget allows.
    fn execute_tile_rows(&mut self) {
        #[cfg(feature = "fault-injection")]
        if self
            .armed
            .as_ref()
            .is_some_and(|af| af.strikes_lane(self.active_lane))
        {
            self.execute_tile_rows_faulted();
            return;
        }
        #[cfg(feature = "parallel")]
        {
            let budget = worker_budget();
            if budget >= 2 && self.inst_ranges.len() >= 2 {
                self.execute_parallel(budget);
                return;
            }
        }
        match self.dispatch {
            Dispatch::PerInstance => {
                for r in 0..self.inst_ranges.len() {
                    let (w0, w1) = self.window_spans[r];
                    let (i0, i1) = self.inst_ranges[r];
                    process_span(
                        &self.x_base,
                        &self.y_base,
                        &self.op_idx,
                        &self.lut,
                        &self.values,
                        &self.xp,
                        &mut self.yp[w0..w1],
                        i0,
                        i1,
                    );
                }
            }
            Dispatch::Classed => {
                let v = self.kernel_views();
                let xstride = v.xp.len();
                for (r, &(w0, w1)) in v.window_spans.iter().enumerate() {
                    kernel::execute_row_classed(
                        v.soa,
                        v.buckets,
                        r,
                        v.xp,
                        xstride,
                        0,
                        1,
                        &mut v.yp[w0..w1],
                        w1 - w0,
                        v.stage,
                    );
                }
            }
        }
    }

    /// Splits `self` into the disjoint borrows the classed executors
    /// need: shared views of the SoA stream, portfolio tables and bucket
    /// directory alongside mutable scratch — one destructure instead of
    /// per-call-site field juggling.
    fn kernel_views(&mut self) -> KernelViews<'_> {
        let ExecutionPlan {
            x_base,
            y_base,
            op_idx,
            lut,
            kernels,
            values,
            bucket_idx,
            class_runs,
            block_runs,
            row_blocks,
            inst_ranges,
            window_spans,
            window_prefix,
            chunks,
            xp,
            xb,
            yp,
            yb,
            vq,
            stage,
            ..
        } = self;
        KernelViews {
            soa: SoaRef {
                x_base,
                y_base,
                values,
                kernels,
            },
            buckets: BucketRef {
                bucket_idx,
                class_runs,
                block_runs,
                row_blocks,
                inst_ranges,
            },
            op_idx,
            lut,
            window_spans,
            window_prefix,
            chunks,
            xp,
            xb,
            yp,
            yb,
            vq,
            stage,
        }
    }

    /// The faulted functional pass: always serial (fault application is
    /// deterministic in stream order), re-decoding each instance from its
    /// raw — possibly struck — encoding word the way the hardware would.
    #[cfg(feature = "fault-injection")]
    fn execute_tile_rows_faulted(&mut self) {
        let Some(af) = &self.armed else { return };
        for r in 0..self.inst_ranges.len() {
            let (w0, w1) = self.window_spans[r];
            let (i0, i1) = self.inst_ranges[r];
            process_span_faulted(
                af,
                true,
                &self.enc_bits,
                &self.col_base,
                &self.lut,
                &self.values,
                &self.xp,
                &mut self.yp[w0..w1],
                i0,
                i1,
            );
        }
    }

    /// Parallel fan-out: tile rows are chunked contiguously, balanced by
    /// instance count, one scoped worker per chunk. Chunks own disjoint
    /// ascending spans of `yp`, and each worker processes its rows in
    /// stream order, so the accumulation order per y element is identical
    /// to the serial pass.
    #[cfg(feature = "parallel")]
    fn execute_parallel(&mut self, budget: usize) {
        let n_rows = self.inst_ranges.len();
        let parts = budget.min(n_rows);
        let total = self.cum_instances.last().copied().unwrap_or(0);
        self.chunks.clear();
        self.chunks.push(0);
        let mut last_boundary = 0usize;
        for t in 1..parts {
            // First row boundary at or past this worker's share of the
            // instance stream; clamped to stay strictly increasing.
            let target = total * t / parts;
            let b = self
                .cum_instances
                .partition_point(|&c| c < target)
                .min(n_rows);
            if b > last_boundary && b < n_rows {
                self.chunks.push(b);
                last_boundary = b;
            }
        }
        self.chunks.push(n_rows);

        // One staging stripe per chunk worker (grown once per budget, so
        // the steady state at a fixed thread count does not allocate).
        let n_chunks = self.chunks.len() - 1;
        if self.dispatch == Dispatch::Classed && self.stage.len() < n_chunks * kernel::STAGE_STRIDE
        {
            self.stage.resize(n_chunks * kernel::STAGE_STRIDE, 0.0);
        }
        let dispatch = self.dispatch;
        let v = self.kernel_views();
        let (soa, buckets) = (v.soa, v.buckets);
        let (op_idx, lut) = (v.op_idx, v.lut);
        let (inst_ranges, window_spans) = (buckets.inst_ranges, v.window_spans);
        let xp = v.xp;
        let xstride = xp.len();
        std::thread::scope(|scope| {
            let mut rest: &mut [f32] = v.yp;
            let mut stage_rest: &mut [f32] = v.stage;
            let mut consumed = 0usize;
            for w in v.chunks.windows(2) {
                let (b0, b1) = (w[0], w[1]);
                let start = window_spans[b0].0;
                let end = window_spans[b1 - 1].1;
                let (_skip, tail) = rest.split_at_mut(start - consumed);
                let (chunk_y, tail) = tail.split_at_mut(end - start);
                rest = tail;
                consumed = end;
                match dispatch {
                    Dispatch::PerInstance => {
                        scope.spawn(move || {
                            for r in b0..b1 {
                                let (i0, i1) = inst_ranges[r];
                                let (w0, w1) = window_spans[r];
                                process_span(
                                    soa.x_base,
                                    soa.y_base,
                                    op_idx,
                                    lut,
                                    soa.values,
                                    xp,
                                    &mut chunk_y[w0 - start..w1 - start],
                                    i0,
                                    i1,
                                );
                            }
                        });
                    }
                    Dispatch::Classed => {
                        let (chunk_stage, s_tail) = stage_rest.split_at_mut(kernel::STAGE_STRIDE);
                        stage_rest = s_tail;
                        scope.spawn(move || {
                            for (r, &(w0, w1)) in window_spans.iter().enumerate().take(b1).skip(b0)
                            {
                                kernel::execute_row_classed(
                                    soa,
                                    buckets,
                                    r,
                                    xp,
                                    xstride,
                                    0,
                                    1,
                                    &mut chunk_y[w0 - start..w1 - start],
                                    w1 - w0,
                                    chunk_stage,
                                );
                            }
                        });
                    }
                }
            }
        });
    }
}

#[cfg(feature = "fault-injection")]
impl ExecutionPlan {
    /// Arms a seeded fault plan: subsequent executions strike the decode
    /// path with its faults (serially, deterministically). Replaces any
    /// previously armed plan. Only available under the `fault-injection`
    /// cargo feature.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.armed = Some(ArmedFaults::from_plan(plan));
    }

    /// Arms a seeded fault plan that strikes only executions on behalf of
    /// batch vector `vector`: in [`ExecutionPlan::run_batch`] exactly that
    /// vector of the batch is struck, the rest execute pristine. Front-ends
    /// driving a batch through the per-vector verified ladder select the
    /// vector with [`ExecutionPlan::set_active_lane`]. Replaces any
    /// previously armed plan.
    pub fn arm_faults_for_vector(&mut self, plan: FaultPlan, vector: usize) {
        let mut af = ArmedFaults::from_plan(plan);
        af.target = Some(vector);
        self.armed = Some(af);
    }

    /// Selects which batch lane subsequent single-vector executions act on
    /// behalf of, so faults armed with
    /// [`ExecutionPlan::arm_faults_for_vector`] strike only their vector.
    /// Lane 0 outside batched execution.
    pub fn set_active_lane(&mut self, lane: usize) {
        self.active_lane = lane;
    }

    /// The active batch lane (see [`ExecutionPlan::set_active_lane`]).
    pub fn active_lane(&self) -> usize {
        self.active_lane
    }

    /// Disarms fault injection; subsequent executions are pristine.
    pub fn disarm_faults(&mut self) {
        self.armed = None;
    }

    /// The currently armed fault plan, if any.
    pub fn armed_faults(&self) -> Option<&FaultPlan> {
        self.armed.as_ref().map(|af| &af.plan)
    }
}

/// A [`FaultPlan`] preprocessed for the executor: encoding xors merged per
/// instance and sorted, value flips sorted, lane masks and stall totals
/// folded.
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone)]
struct ArmedFaults {
    plan: FaultPlan,
    /// Merged per-instance encoding xor masks, sorted by instance.
    enc: Vec<(usize, u32)>,
    /// Value-slot bit flips `(instance, slot, bit)`, sorted.
    val: Vec<(usize, u8, u8)>,
    lane_zero: [bool; 4],
    stall_cycles: u64,
    applied: u32,
    /// `Some(v)`: strike only executions on behalf of batch vector `v`;
    /// `None`: strike every execution.
    target: Option<usize>,
}

#[cfg(feature = "fault-injection")]
impl ArmedFaults {
    fn from_plan(plan: FaultPlan) -> Self {
        let mut enc: Vec<(usize, u32)> = Vec::new();
        let mut val: Vec<(usize, u8, u8)> = Vec::new();
        let mut lane_zero = [false; 4];
        let mut stall_cycles = 0u64;
        for f in plan.faults() {
            match *f {
                Fault::EncodingFlip { instance, bit } => enc.push((instance, 1u32 << (bit % 32))),
                Fault::ValueFlip {
                    instance,
                    slot,
                    bit,
                } => val.push((instance, slot % 4, bit % 32)),
                Fault::LaneStuckZero { lane } => lane_zero[(lane as usize) % 4] = true,
                Fault::ChannelStall { cycles, .. } => stall_cycles += u64::from(cycles),
            }
        }
        enc.sort_unstable_by_key(|&(i, _)| i);
        let mut merged: Vec<(usize, u32)> = Vec::with_capacity(enc.len());
        for (i, mask) in enc {
            match merged.last_mut() {
                Some((j, acc)) if *j == i => *acc ^= mask,
                _ => merged.push((i, mask)),
            }
        }
        val.sort_unstable();
        let applied = plan.faults().len() as u32;
        ArmedFaults {
            plan,
            enc: merged,
            val,
            lane_zero,
            stall_cycles,
            applied,
            target: None,
        }
    }

    /// Whether this plan strikes executions on behalf of `lane`.
    fn strikes_lane(&self, lane: usize) -> bool {
        self.target.is_none_or(|t| t == lane)
    }

    /// The xor mask to apply to instance `i`'s encoding word (0 if the
    /// instance is not struck).
    fn enc_xor(&self, i: usize) -> u32 {
        match self.enc.binary_search_by_key(&i, |&(j, _)| j) {
            Ok(k) => self.enc[k].1,
            Err(_) => 0,
        }
    }

    /// Applies value-slot bit flips targeting instance `i`.
    fn apply_value_faults(&self, i: usize, v: &mut [f32; 4]) {
        let start = self.val.partition_point(|&(j, _, _)| j < i);
        for &(j, slot, bit) in &self.val[start..] {
            if j != i {
                break;
            }
            let s = slot as usize;
            v[s] = f32::from_bits(v[s].to_bits() ^ (1u32 << bit));
        }
    }
}

/// Disjoint borrows of one [`ExecutionPlan`], split in a single
/// destructure (see [`ExecutionPlan::kernel_views`]): shared views of the
/// pre-decoded stream, portfolio tables, bucket directory and layout,
/// alongside the mutable scratch the executors write.
struct KernelViews<'a> {
    soa: SoaRef<'a>,
    buckets: BucketRef<'a>,
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    op_idx: &'a [u8],
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    lut: &'a [ValuOpcode],
    window_spans: &'a [(usize, usize)],
    window_prefix: &'a [usize],
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    chunks: &'a [usize],
    xp: &'a [f32],
    xb: &'a [f32],
    yp: &'a mut [f32],
    yb: &'a mut [f32],
    vq: &'a mut [f32],
    stage: &'a mut [f32],
}

/// The worker budget the fan-out may use (always 1 in serial builds).
#[cfg(feature = "parallel")]
fn worker_budget() -> usize {
    rayon::current_num_threads()
}

#[cfg(not(feature = "parallel"))]
fn worker_budget() -> usize {
    1
}

/// `true` when the two slices are bit-for-bit identical (NaN-safe, unlike
/// `==` on floats).
fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Validates the structural invariants the wire decoder cannot check
/// cheaply: the directory must tile the stream exactly and every encoding
/// must stay inside its tile, the padded operand buffers and the
/// portfolio.
fn validate_stream(
    matrix: &SpasmMatrix,
    pe: &Pe,
    xp_len: u64,
    yp_len: u64,
) -> Result<(), SimError> {
    let tile_size = u64::from(matrix.tile_size());
    let encodings = matrix.encodings();

    // Directory consistency: tiles partition the stream contiguously.
    let mut cursor = 0usize;
    let mut last_row = 0u32;
    for tile in matrix.tiles() {
        last_row = tile.tile_row;
        if tile.first_instance != cursor || tile.n_instances > encodings.len() - cursor {
            return Err(SimError::Integrity {
                tile_row: tile.tile_row,
                check: IntegrityCheck::InstanceCount,
            });
        }
        cursor += tile.n_instances;
    }
    if cursor != encodings.len() {
        return Err(SimError::Integrity {
            tile_row: last_row,
            check: IntegrityCheck::InstanceCount,
        });
    }

    // Encoding ranges, in u64 so hostile tile coordinates cannot wrap.
    let mut idx = 0usize;
    for tile in matrix.tiles() {
        let row_base = u64::from(tile.tile_row) * tile_size;
        let col_base = u64::from(tile.tile_col) * tile_size;
        let in_matrix = tile.n_instances == 0
            || (row_base < u64::from(matrix.rows()) && col_base < u64::from(matrix.cols()));
        if !in_matrix {
            return Err(SimError::Integrity {
                tile_row: tile.tile_row,
                check: IntegrityCheck::EncodingRange,
            });
        }
        for e in &encodings[idx..idx + tile.n_instances] {
            let c_end = u64::from(e.c_idx()) * 4 + 4;
            let r_end = u64::from(e.r_idx()) * 4 + 4;
            let ok = c_end <= tile_size
                && r_end <= tile_size
                && col_base + c_end <= xp_len
                && row_base + r_end <= yp_len
                && (e.t_idx() as usize) < pe.lut_len();
            if !ok {
                return Err(SimError::Integrity {
                    tile_row: tile.tile_row,
                    check: IntegrityCheck::EncodingRange,
                });
            }
        }
        idx += tile.n_instances;
    }
    Ok(())
}

/// The per-instance reference loop: instances `[i0, i1)` of one tile row,
/// accumulated into the row's y window in stream order. Pure SoA reads —
/// the 1-byte class index selects the opcode from the portfolio LUT.
/// [`Dispatch::PerInstance`] runs this; [`Dispatch::Classed`] runs the
/// bucketed kernels in `crate::kernel`, bit-identically.
#[allow(clippy::too_many_arguments)]
fn process_span(
    x_base: &[u32],
    y_base: &[u32],
    op_idx: &[u8],
    lut: &[ValuOpcode],
    values: &[f32],
    xp: &[f32],
    window: &mut [f32],
    i0: usize,
    i1: usize,
) {
    for i in i0..i1 {
        let c0 = x_base[i] as usize;
        let x_seg = [xp[c0], xp[c0 + 1], xp[c0 + 2], xp[c0 + 3]];
        let v = [
            values[4 * i],
            values[4 * i + 1],
            values[4 * i + 2],
            values[4 * i + 3],
        ];
        let out = lut[op_idx[i] as usize].execute(v, x_seg);
        let r0 = y_base[i] as usize;
        // Same accumulation order as `Pe::process_instance`.
        window[r0] += out[0];
        window[r0 + 1] += out[1];
        window[r0 + 2] += out[2];
        window[r0 + 3] += out[3];
    }
}

/// The faulted hot loop: re-decodes each instance from its raw encoding
/// word (xor-struck when `stream_faults` is set), clamps all accesses the
/// way the hardware's address decoders would — out-of-range x reads load
/// zero, out-of-window y writes are dropped, out-of-portfolio template
/// ids wrap the LUT — applies value-slot flips and stuck-at-zero lanes.
#[cfg(feature = "fault-injection")]
#[allow(clippy::too_many_arguments)]
fn process_span_faulted(
    af: &ArmedFaults,
    stream_faults: bool,
    enc_bits: &[u32],
    col_base: &[u32],
    lut: &[ValuOpcode],
    values: &[f32],
    xp: &[f32],
    window: &mut [f32],
    i0: usize,
    i1: usize,
) {
    if lut.is_empty() {
        return;
    }
    for i in i0..i1 {
        let bits = if stream_faults {
            enc_bits[i] ^ af.enc_xor(i)
        } else {
            enc_bits[i]
        };
        let e = PositionEncoding::from_bits(bits);
        let c0 = col_base[i] as usize + e.c_idx() as usize * 4;
        let x_at = |k: usize| xp.get(k).copied().unwrap_or(0.0);
        let x_seg = [x_at(c0), x_at(c0 + 1), x_at(c0 + 2), x_at(c0 + 3)];
        let mut v = [
            values[4 * i],
            values[4 * i + 1],
            values[4 * i + 2],
            values[4 * i + 3],
        ];
        if stream_faults {
            af.apply_value_faults(i, &mut v);
        }
        let op = lut[e.t_idx() as usize % lut.len()];
        let mut out = op.execute(v, x_seg);
        for (lane, stuck) in af.lane_zero.iter().enumerate() {
            if *stuck {
                out[lane] = 0.0;
            }
        }
        let r0 = e.r_idx() as usize * 4;
        for (lane, contrib) in out.iter().enumerate() {
            if let Some(slot) = window.get_mut(r0 + lane) {
                *slot += *contrib;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Accelerator, HwConfig, SimError, VerifyScope};
    use spasm_format::{SpasmMatrix, SubmatrixMap};
    use spasm_patterns::{DecompositionTable, TemplateSet};
    use spasm_sparse::Coo;

    fn encode(coo: &Coo, tile: u32) -> SpasmMatrix {
        let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
        SpasmMatrix::encode(&SubmatrixMap::from_coo(coo), &table, tile).unwrap()
    }

    fn sample(n: u32) -> Coo {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            t.push((i, (i * 7 + 3) % n, 0.5));
            if i + 1 < n {
                t.push((i + 1, i, -1.0));
            }
        }
        Coo::from_triplets(n, n, t).unwrap()
    }

    #[test]
    fn adopt_values_is_cow_with_version_bump() {
        let coo = sample(40);
        let mut m = encode(&coo, 16);
        let acc = Accelerator::new(HwConfig::spasm_4_1());
        let mut plan = acc.prepare(&m).unwrap();
        assert_eq!(plan.version(), 0);
        let in_flight = plan.clone();

        let x: Vec<f32> = (0..40).map(|i| (i as f32) * 0.25 - 4.0).collect();
        let mut before = vec![0.0f32; 40];
        plan.run(&x, &mut before).unwrap();

        // Wrong length refused, plan untouched.
        let bad: std::sync::Arc<[f32]> = vec![0.0f32; 3].into();
        assert!(matches!(plan.adopt_values(bad), Err(SimError::Plan(_))));
        assert_eq!(plan.version(), 0);

        let fresh = m.patch_values(&[(0, 0, 5.0)]).unwrap();
        plan.adopt_values(fresh).unwrap();
        assert_eq!(plan.version(), 1);

        // The updated plan matches a fresh prepare of the patched matrix
        // bit for bit; the in-flight clone still serves the old values.
        let mut fresh_plan = acc.prepare(&m).unwrap();
        let (mut got, mut want, mut old) = (vec![0.0f32; 40], vec![0.0f32; 40], vec![0.0f32; 40]);
        plan.run(&x, &mut got).unwrap();
        fresh_plan.run(&x, &mut want).unwrap();
        assert_eq!(bits(&got), bits(&want));
        let mut stale = in_flight;
        stale.run(&x, &mut old).unwrap();
        assert_eq!(bits(&old), bits(&before));
        assert_ne!(bits(&got), bits(&before));
    }

    #[test]
    fn respliced_matches_fresh_prepare_bit_for_bit() {
        let coo = sample(96);
        let m = encode(&coo, 32);
        let acc = Accelerator::new(HwConfig::spasm_4_1());
        let plan = acc.prepare(&m).unwrap();

        // Structural mutation: drop one entry, add two (one in a fresh
        // tile region).
        let mut t: Vec<_> = coo.iter().collect();
        t.retain(|&(r, c, _)| (r, c) != (5, 5));
        t.push((90, 2, 3.25));
        t.push((6, 60, -0.75));
        let mutated = Coo::from_triplets(96, 96, t).unwrap();
        let fresh_m = encode(&mutated, 32);

        // Replacement blocks for every changed submatrix.
        let (old_map, new_map) = (
            SubmatrixMap::from_coo(&coo),
            SubmatrixMap::from_coo(&mutated),
        );
        let mut reps = Vec::new();
        for nb in new_map.blocks() {
            let same = old_map
                .blocks()
                .iter()
                .any(|ob| (ob.sub_r, ob.sub_c) == (nb.sub_r, nb.sub_c) && ob == nb);
            if !same {
                reps.push(nb.clone());
            }
        }
        for ob in old_map.blocks() {
            if !new_map
                .blocks()
                .iter()
                .any(|nb| (nb.sub_r, nb.sub_c) == (ob.sub_r, ob.sub_c))
            {
                let mut gone = ob.clone();
                gone.mask = 0;
                gone.values = [0.0; 16];
                reps.push(gone);
            }
        }
        let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
        let spliced_m = m.spliced(&reps, &table).unwrap();
        assert_eq!(spliced_m.to_bytes(), fresh_m.to_bytes());

        let spt = 32 / 4;
        let touched: Vec<(u32, u32)> = {
            let mut keys: Vec<_> = reps
                .iter()
                .map(|b| (b.sub_r / spt, b.sub_c / spt))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            keys
        };
        let mut spliced_plan = plan.respliced(&spliced_m, m.tiles(), &touched).unwrap();
        assert_eq!(spliced_plan.version(), 1);

        let mut fresh_plan = acc.prepare(&fresh_m).unwrap();
        let x: Vec<f32> = (0..96).map(|i| ((i % 13) as f32) * 0.5 - 3.0).collect();
        let (mut got, mut want) = (vec![0.0f32; 96], vec![0.0f32; 96]);
        let got_rep = spliced_plan.run(&x, &mut got).unwrap().clone();
        let want_rep = fresh_plan.run(&x, &mut want).unwrap();
        assert_eq!(bits(&got), bits(&want));
        // Derived pricing state matches a fresh prepare too.
        assert_eq!(got_rep.cycles, want_rep.cycles);
        assert_eq!(got_rep.per_group_cycles, want_rep.per_group_cycles);
        assert_eq!(
            spliced_plan.memory_bytes(),
            fresh_plan.memory_bytes(),
            "memory repriced to the spliced stream"
        );
    }

    #[test]
    fn respliced_rejects_shape_changes() {
        let m = encode(&sample(40), 16);
        let acc = Accelerator::new(HwConfig::spasm_4_1());
        let plan = acc.prepare(&m).unwrap();
        let other = encode(&sample(44), 16);
        assert!(matches!(
            plan.respliced(&other, m.tiles(), &[]),
            Err(SimError::Plan(_))
        ));
    }

    #[test]
    fn plan_matches_run_bit_for_bit() {
        let coo = sample(100);
        let x: Vec<f32> = (0..100).map(|i| (i as f32) * 0.25 - 10.0).collect();
        for tile in [16u32, 64, 256] {
            let m = encode(&coo, tile);
            let acc = Accelerator::new(HwConfig::spasm_4_1());
            let mut want = vec![0.5f32; 100];
            let want_rep = acc.run(&m, &x, &mut want).unwrap();

            let mut plan = acc.prepare(&m).unwrap();
            let mut got = vec![0.5f32; 100];
            let got_rep = plan.run(&x, &mut got).unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tile {tile}"
            );
            assert_eq!(*got_rep, want_rep, "tile {tile}");
            assert_eq!(*plan.report(), want_rep);
        }
    }

    #[test]
    fn plan_reuse_does_not_drift() {
        let coo = sample(64);
        let m = encode(&coo, 32);
        let acc = Accelerator::new(HwConfig::spasm_3_2());
        let mut plan = acc.prepare(&m).unwrap();
        let x: Vec<f32> = (0..64).map(|i| ((i % 9) as f32) * 0.5 - 2.0).collect();
        let mut first = vec![0.25f32; 64];
        plan.run(&x, &mut first).unwrap();
        for _ in 0..10 {
            let mut y = vec![0.25f32; 64];
            plan.run(&x, &mut y).unwrap();
            assert_eq!(
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                first.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    fn bits(y: &[f32]) -> Vec<u32> {
        y.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn run_batch_matches_looped_run_bit_for_bit() {
        let coo = sample(100);
        for tile in [16u32, 64] {
            let m = encode(&coo, tile);
            let acc = Accelerator::new(HwConfig::spasm_4_1());
            for batch in [1usize, 2, 3, 8] {
                let xs: Vec<Vec<f32>> = (0..batch)
                    .map(|j| {
                        (0..100)
                            .map(|i| (i as f32) * 0.25 - 2.0 * j as f32)
                            .collect()
                    })
                    .collect();
                let mut plan = acc.prepare(&m).unwrap();
                let mut want: Vec<Vec<f32>> =
                    (0..batch).map(|j| vec![0.25 * j as f32; 100]).collect();
                for (x, y) in xs.iter().zip(want.iter_mut()) {
                    plan.run(x, y).unwrap();
                }
                let mut got: Vec<Vec<f32>> =
                    (0..batch).map(|j| vec![0.25 * j as f32; 100]).collect();
                let rep = plan.run_batch(&xs, &mut got).unwrap();
                let b = rep.batch.expect("batched run must stamp a BatchReport");
                assert_eq!(b.vectors, batch);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(bits(g), bits(w), "tile {tile} batch {batch}");
                }
            }
        }
    }

    #[test]
    fn run_batch_validates_shapes_up_front() {
        let m = encode(&sample(16), 16);
        let mut plan = Accelerator::new(HwConfig::spasm_4_1()).prepare(&m).unwrap();
        let xs = vec![vec![1.0f32; 16], vec![2.0f32; 16]];
        // Batch length mismatch.
        let mut ys = vec![vec![0.0f32; 16]];
        assert!(matches!(
            plan.run_batch(&xs, &mut ys),
            Err(SimError::DimensionMismatch {
                operand: "batch",
                ..
            })
        ));
        // A bad vector in the middle: the error names it, nothing is
        // written.
        let xs_bad = vec![vec![1.0f32; 16], vec![2.0f32; 3]];
        let mut ys = vec![vec![0.5f32; 16], vec![0.5f32; 16]];
        assert!(matches!(
            plan.run_batch(&xs_bad, &mut ys),
            Err(SimError::BatchDimensionMismatch {
                vector: 1,
                expected: 16,
                actual: 3,
                operand: "x",
            })
        ));
        let mut ys_bad = vec![vec![0.5f32; 16], vec![0.5f32; 3]];
        assert!(matches!(
            plan.run_batch(&xs, &mut ys_bad),
            Err(SimError::BatchDimensionMismatch {
                vector: 1,
                operand: "y",
                ..
            })
        ));
        for y in ys.iter().chain(&ys_bad) {
            assert!(y.iter().all(|&v| v == 0.5), "partial write on error");
        }
    }

    #[test]
    fn memory_bytes_accounts_for_stream_and_scratch() {
        let m = encode(&sample(64), 32);
        let mut plan = Accelerator::new(HwConfig::spasm_4_1()).prepare(&m).unwrap();
        let base = plan.memory_bytes();
        // At minimum the shared value stream and the padded scratch are in
        // the figure.
        assert!(base >= m.values().len() * 4 + 2 * 64 * 4, "base = {base}");
        // Batched scratch grows on first use and is then accounted for.
        let xs = vec![vec![1.0f32; 64]; 4];
        let mut ys = vec![vec![0.0f32; 64]; 4];
        plan.run_batch(&xs, &mut ys).unwrap();
        assert!(plan.memory_bytes() > base);
    }

    #[test]
    fn run_batch_handles_empty_batch_and_empty_matrix() {
        let m = encode(&sample(16), 16);
        let mut plan = Accelerator::new(HwConfig::spasm_4_1()).prepare(&m).unwrap();
        let xs: Vec<Vec<f32>> = Vec::new();
        let mut ys: Vec<Vec<f32>> = Vec::new();
        let rep = plan.run_batch(&xs, &mut ys).unwrap();
        let b = rep.batch.unwrap();
        assert_eq!(b.vectors, 0);
        assert_eq!(b.cycles, crate::timing::INIT_CYCLES);

        let empty = encode(&Coo::new(8, 8), 8);
        let mut plan = Accelerator::new(HwConfig::spasm_4_1())
            .prepare(&empty)
            .unwrap();
        let xs = vec![vec![1.0f32; 8]; 3];
        let mut ys = vec![vec![0.0f32; 8]; 3];
        plan.run_batch(&xs, &mut ys).unwrap();
        assert!(ys.iter().all(|y| y.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn batch_report_amortises_init_and_matrix_traffic() {
        let m = encode(&sample(64), 32);
        let mut plan = Accelerator::new(HwConfig::spasm_4_1()).prepare(&m).unwrap();
        let single = plan.report().clone();
        let xs = vec![vec![1.0f32; 64]; 8];
        let mut ys = vec![vec![0.0f32; 64]; 8];
        let rep = plan.run_batch(&xs, &mut ys).unwrap().clone();
        let b = rep.batch.unwrap();
        assert_eq!(
            b.cycles,
            crate::timing::batch_cycles(single.cycles, 8),
            "batch pricing"
        );
        assert!(b.amortised_cycles_per_vector < single.cycles as f64);
        assert_eq!(b.traffic.matrix, single.traffic.matrix);
        assert_eq!(b.traffic.x, single.traffic.x * 8);
        assert_eq!(b.traffic.y, single.traffic.y * 8);
        // A subsequent single run clears the batch stamp.
        let mut y = vec![0.0f32; 64];
        let rep = plan.run(&vec![1.0f32; 64], &mut y).unwrap();
        assert!(rep.batch.is_none());
    }

    #[test]
    fn plan_shares_matrix_value_stream() {
        let m = encode(&sample(64), 32);
        let acc = Accelerator::new(HwConfig::spasm_4_1());
        let plan = acc.prepare(&m).unwrap();
        assert!(std::sync::Arc::ptr_eq(
            plan.shared_values()
                .expect("prepared plans own their values"),
            m.shared_values()
        ));
        let clone = plan.clone();
        assert!(std::sync::Arc::ptr_eq(
            clone.shared_values().expect("clone stays owned"),
            plan.shared_values().expect("original stays owned")
        ));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn targeted_faults_strike_exactly_one_batch_vector() {
        use crate::fault::{FaultPlan, FaultSpec};
        let coo = sample(64);
        let m = encode(&coo, 16);
        let acc = Accelerator::new(HwConfig::spasm_4_1());
        let xs: Vec<Vec<f32>> = (0..3)
            .map(|j| (0..64).map(|i| (i + j) as f32 * 0.5).collect())
            .collect();

        let mut clean_plan = acc.prepare(&m).unwrap();
        let mut clean = vec![vec![0.0f32; 64]; 3];
        clean_plan.run_batch(&xs, &mut clean).unwrap();

        let mut plan = acc.prepare(&m).unwrap();
        let spec = FaultSpec {
            lane_faults: 4,
            ..FaultSpec::default()
        };
        plan.arm_faults_for_vector(FaultPlan::seeded(9, &spec, plan.n_instances()), 1);
        let mut ys = vec![vec![0.0f32; 64]; 3];
        plan.run_batch(&xs, &mut ys).unwrap();
        assert_eq!(bits(&ys[0]), bits(&clean[0]), "lane 0 must stay pristine");
        assert_eq!(bits(&ys[2]), bits(&clean[2]), "lane 2 must stay pristine");
        assert_ne!(
            bits(&ys[1]),
            bits(&clean[1]),
            "all-lane fault on the target must corrupt it"
        );
        assert_eq!(plan.active_lane(), 0, "lane restored after the batch");
    }

    #[test]
    fn plan_checks_dimensions() {
        let m = encode(&sample(16), 16);
        let mut plan = Accelerator::new(HwConfig::spasm_3_2()).prepare(&m).unwrap();
        let mut y = vec![0.0f32; 16];
        assert!(matches!(
            plan.run(&[1.0; 4], &mut y),
            Err(SimError::DimensionMismatch { operand: "x", .. })
        ));
        let mut y_bad = vec![0.0f32; 4];
        assert!(matches!(
            plan.run(&[1.0; 16], &mut y_bad),
            Err(SimError::DimensionMismatch { operand: "y", .. })
        ));
    }

    #[test]
    fn plan_exposes_prepared_state() {
        let m = encode(&sample(64), 16);
        let cfg = HwConfig::spasm_4_1();
        let plan = Accelerator::new(cfg.clone()).prepare(&m).unwrap();
        assert_eq!(plan.config(), &cfg);
        assert_eq!(plan.rows(), 64);
        assert_eq!(plan.cols(), 64);
        assert_eq!(plan.tile_size(), 16);
        assert_eq!(plan.n_instances(), m.n_instances());
        assert_eq!(plan.assignment().len(), cfg.num_pe_groups as usize);
        assert!(plan.n_tile_rows() > 0);
    }

    #[test]
    fn empty_matrix_plan_runs() {
        let m = encode(&Coo::new(8, 8), 8);
        let mut plan = Accelerator::new(HwConfig::spasm_4_1()).prepare(&m).unwrap();
        let mut y = vec![0.0f32; 8];
        let rep = plan.run(&[1.0; 8], &mut y).unwrap().clone();
        assert_eq!(y, vec![0.0; 8]);
        assert_eq!(rep.cycles, crate::timing::INIT_CYCLES);
        assert_eq!(plan.n_tile_rows(), 0);
    }

    #[test]
    fn deferred_run_and_commit_match_run() {
        let coo = sample(100);
        let m = encode(&coo, 32);
        let acc = Accelerator::new(HwConfig::spasm_4_1());
        let x: Vec<f32> = (0..100).map(|i| (i as f32) * 0.25 - 10.0).collect();

        let mut plan = acc.prepare(&m).unwrap();
        let mut want = vec![0.5f32; 100];
        plan.run(&x, &mut want).unwrap();

        for scope in [VerifyScope::None, VerifyScope::All] {
            let mut got = vec![0.5f32; 100];
            let health = plan.run_deferred(&x, scope).unwrap();
            assert!(health.is_clean());
            assert_eq!(health.tile_rows_quarantined, 0);
            plan.commit(&mut got).unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        // Pristine executions verify all rows, quarantine none.
        let h = plan.run_deferred(&x, VerifyScope::All).unwrap();
        assert_eq!(h.tile_rows_verified as usize, plan.n_tile_rows());
        assert_eq!(plan.report().health, h);
    }

    #[test]
    fn contribution_reads_last_deferred_result() {
        let coo = sample(64);
        let m = encode(&coo, 16);
        let mut plan = Accelerator::new(HwConfig::spasm_4_1()).prepare(&m).unwrap();
        let x = vec![1.0f32; 64];
        let mut want = vec![0.0f32; 64];
        plan.run(&x, &mut want).unwrap();
        plan.run_deferred(&x, VerifyScope::None).unwrap();
        for (r, w) in want.iter().enumerate() {
            assert_eq!(plan.contribution(r).to_bits(), w.to_bits());
        }
        assert_eq!(plan.contribution(10_000), 0.0);
    }

    #[test]
    fn tile_row_lookup_covers_windows() {
        let coo = sample(100);
        let m = encode(&coo, 32);
        let plan = Accelerator::new(HwConfig::spasm_4_1()).prepare(&m).unwrap();
        // Every matrix row with work maps to a tile-row index, and the
        // sample matrix works every tile row.
        for y_row in 0..100usize {
            let idx = plan.tile_row_index_containing(y_row).unwrap();
            assert!(idx < plan.n_tile_rows());
            assert_eq!(idx, y_row / 32);
        }
        assert_eq!(plan.tile_row_index_containing(10_000), None);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn transient_stream_faults_are_detected_and_corrected() {
        use crate::fault::{FaultPlan, FaultSpec};
        let coo = sample(128);
        let m = encode(&coo, 32);
        let acc = Accelerator::new(HwConfig::spasm_4_1());
        let x: Vec<f32> = (0..128).map(|i| (i as f32) * 0.125 - 4.0).collect();

        let mut plan = acc.prepare(&m).unwrap();
        let mut clean = vec![0.0f32; 128];
        plan.run(&x, &mut clean).unwrap();

        let spec = FaultSpec {
            encoding_flips: 3,
            value_flips: 3,
            ..FaultSpec::default()
        };
        for seed in 0..16u64 {
            plan.arm_faults(FaultPlan::seeded(seed, &spec, plan.n_instances()));
            let h = plan.run_deferred(&x, VerifyScope::All).unwrap();
            assert_eq!(h.faults_injected, 6, "seed {seed}");
            // Transient faults always heal: the retry reads the pristine
            // stream. (A fault may have no observable effect — e.g. a
            // CE/RE-bit flip — in which case nothing is quarantined.)
            assert_eq!(h.tile_rows_uncorrected, 0, "seed {seed}");
            assert_eq!(h.tile_rows_corrected, h.tile_rows_quarantined);
            let mut y = vec![0.0f32; 128];
            plan.commit(&mut y).unwrap();
            assert_eq!(
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                clean.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "seed {seed}: healed output must be bit-identical to clean"
            );
        }
        plan.disarm_faults();
        assert!(plan.armed_faults().is_none());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn persistent_lane_faults_stay_uncorrected() {
        use crate::fault::{FaultPlan, FaultSpec};
        let coo = sample(64);
        let m = encode(&coo, 16);
        let mut plan = Accelerator::new(HwConfig::spasm_4_1()).prepare(&m).unwrap();
        let x = vec![1.0f32; 64];
        let spec = FaultSpec {
            lane_faults: 4, // all four lanes stuck: corruption is certain
            ..FaultSpec::default()
        };
        plan.arm_faults(FaultPlan::seeded(9, &spec, plan.n_instances()));
        let h = plan.run_deferred(&x, VerifyScope::All).unwrap();
        assert!(h.tile_rows_quarantined > 0);
        assert_eq!(h.tile_rows_corrected, 0);
        assert_eq!(h.tile_rows_uncorrected, h.tile_rows_quarantined);
        assert!(h.needs_fallback());
        assert!(h.first_failed_tile_row.is_some());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn unverified_run_reports_injection_but_not_detection() {
        use crate::fault::{FaultPlan, FaultSpec};
        let coo = sample(64);
        let m = encode(&coo, 64);
        let mut plan = Accelerator::new(HwConfig::spasm_4_1()).prepare(&m).unwrap();
        let spec = FaultSpec {
            channel_stalls: 2,
            ..FaultSpec::default()
        };
        plan.arm_faults(FaultPlan::seeded(3, &spec, plan.n_instances()));
        let x = vec![1.0f32; 64];
        let mut y = vec![0.0f32; 64];
        let rep = plan.run(&x, &mut y).unwrap();
        assert_eq!(rep.health.faults_injected, 2);
        assert!(rep.health.stall_cycles > 0);
        // Stalls are timing-only: the data is untouched.
        assert_eq!(rep.health.tile_rows_quarantined, 0);
    }

    #[test]
    fn verify_scope_rows_subset() {
        let coo = sample(100);
        let m = encode(&coo, 32);
        let mut plan = Accelerator::new(HwConfig::spasm_4_1()).prepare(&m).unwrap();
        let x = vec![1.0f32; 100];
        let h = plan
            .run_deferred(&x, VerifyScope::TileRows(&[0, 2, 99]))
            .unwrap();
        // Row 99 is out of range and ignored; 0 and 2 verify clean.
        assert_eq!(h.tile_rows_verified, 2);
        assert!(h.is_clean());
    }
}
