//! The admission queue: coalesces concurrent single-vector requests
//! against the same matrix into batches for `Prepared::execute_batch`.
//!
//! Requests are grouped by *batch key* — the matrix fingerprint plus the
//! request's [`IntegrityPolicy`] equivalence class — because one batched
//! execution runs under one policy; requests with different policies
//! against the same matrix form separate batches. A group flushes when
//! it reaches [`QueueConfig::max_batch`] requests (size trigger) or when
//! the *oldest* request in the group has waited
//! [`QueueConfig::max_delay`] ticks (deadline trigger, evaluated against
//! the shared [`crate::VirtualClock`]). All bookkeeping is deterministic:
//! groups live in a [`BTreeMap`], due batches are ordered by (deadline,
//! oldest request id), so a fixed arrival trace yields the exact same
//! batch compositions on every run.

use std::collections::BTreeMap;

use spasm::IntegrityPolicy;
use spasm_format::MatrixFingerprint;

use crate::catalog::PlanLease;
use crate::clock::{Deadline, Tick};

/// Configuration for an [`AdmissionQueue`].
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Flush a group as soon as it holds this many requests. `1` disables
    /// coalescing (every request is its own batch); values are clamped to
    /// at least 1.
    pub max_batch: usize,
    /// Flush a group once its oldest request has waited this many ticks.
    /// `0` makes every request due immediately on the next clock check.
    pub max_delay: Tick,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_batch: 8,
            max_delay: 200,
        }
    }
}

/// The integrity-policy equivalence class used in batch keys.
///
/// [`IntegrityPolicy`] itself is not `Eq`/`Ord` (its tolerance is an
/// `f32`); the class compares the tolerance by bit pattern, which is
/// exactly the "same policy" notion a batch needs — two requests whose
/// policies differ only in NaN payload would still verify identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PolicyClass {
    mode: u8,
    sample: u64,
    seed: u64,
    fallback: bool,
    tolerance_bits: u32,
}

impl From<IntegrityPolicy> for PolicyClass {
    fn from(p: IntegrityPolicy) -> Self {
        use spasm::IntegrityMode;
        let (mode, sample) = match p.mode {
            IntegrityMode::Off => (0u8, 0u64),
            IntegrityMode::Sampled(k) => (1, k as u64),
            IntegrityMode::Full => (2, 0),
            // `IntegrityMode` is non-exhaustive; any future mode lands in
            // its own class so it still never coalesces with the others.
            _ => (u8::MAX, 0),
        };
        PolicyClass {
            mode,
            sample,
            seed: p.seed,
            fallback: p.fallback,
            tolerance_bits: p.tolerance.to_bits(),
        }
    }
}

/// The coalescing key: one batch serves one matrix under one policy.
pub type BatchKey = (MatrixFingerprint, PolicyClass);

/// One admitted request, waiting in (or flushed from) the queue.
///
/// Holds a [`PlanLease`] so the plan it targets cannot be evicted while
/// the request is queued or executing.
#[derive(Debug)]
pub struct QueuedRequest {
    /// The server-assigned request id (monotonic per server).
    pub id: u64,
    /// The integrity policy the request asked for.
    pub policy: IntegrityPolicy,
    /// The input vector.
    pub x: Vec<f32>,
    /// The tick at which the request was admitted.
    pub arrival: Tick,
    /// The pin on the catalog entry this request executes against.
    pub lease: PlanLease,
}

impl QueuedRequest {
    /// The fingerprint of the matrix this request targets.
    pub fn fingerprint(&self) -> MatrixFingerprint {
        self.lease.fingerprint()
    }
}

/// Why a batch left the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushTrigger {
    /// The group reached [`QueueConfig::max_batch`].
    Size,
    /// The group's oldest request reached [`QueueConfig::max_delay`].
    Deadline,
    /// The queue was drained explicitly (shutdown / end of trace).
    Drain,
}

impl std::fmt::Display for FlushTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlushTrigger::Size => f.write_str("size"),
            FlushTrigger::Deadline => f.write_str("deadline"),
            FlushTrigger::Drain => f.write_str("drain"),
        }
    }
}

/// A flushed batch, ready for execution.
#[derive(Debug)]
pub struct BatchSpec {
    /// The matrix all requests target.
    pub fingerprint: MatrixFingerprint,
    /// The policy the batch executes under (shared by every member).
    pub policy: IntegrityPolicy,
    /// The member requests, in admission order.
    pub requests: Vec<QueuedRequest>,
    /// The tick at which the batch left the queue. For deadline flushes
    /// this is the deadline itself (not the tick the driver happened to
    /// check), so latency accounting is independent of how coarsely the
    /// clock is advanced.
    pub flushed_at: Tick,
    /// Why the batch flushed.
    pub trigger: FlushTrigger,
}

/// The coalescing admission queue. Not internally synchronised — the
/// server wraps it in a mutex and decides compositions under that lock,
/// which is what makes them independent of execution concurrency.
#[derive(Debug)]
pub struct AdmissionQueue {
    config: QueueConfig,
    pending: BTreeMap<BatchKey, Vec<QueuedRequest>>,
}

impl AdmissionQueue {
    /// An empty queue.
    pub fn new(config: QueueConfig) -> Self {
        AdmissionQueue {
            config: QueueConfig {
                max_batch: config.max_batch.max(1),
                max_delay: config.max_delay,
            },
            pending: BTreeMap::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> QueueConfig {
        self.config
    }

    /// Queued requests across all groups.
    pub fn len(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// `true` when no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admits a request at `now`. Returns the flushed batch when this
    /// admission filled its group to `max_batch` (the size trigger).
    pub fn push(&mut self, request: QueuedRequest, now: Tick) -> Option<BatchSpec> {
        let key = (request.fingerprint(), PolicyClass::from(request.policy));
        let group = self.pending.entry(key).or_default();
        group.push(request);
        if group.len() >= self.config.max_batch {
            let requests = self.pending.remove(&key).unwrap_or_default();
            return Some(Self::spec(key.0, requests, now, FlushTrigger::Size));
        }
        None
    }

    /// The earliest deadline across all groups, if any request waits.
    pub fn next_deadline(&self) -> Option<Tick> {
        self.pending
            .values()
            .filter_map(|g| g.first())
            .map(|oldest| Deadline::after(oldest.arrival, self.config.max_delay).at)
            .min()
    }

    /// Flushes every group whose deadline has passed at `now`, ordered by
    /// (deadline, oldest request id). Each flushed batch's `flushed_at`
    /// is its deadline, not `now`.
    pub fn due(&mut self, now: Tick) -> Vec<BatchSpec> {
        let mut due: Vec<(Tick, u64, BatchKey)> = self
            .pending
            .iter()
            .filter_map(|(key, group)| {
                let oldest = group.first()?;
                let deadline = Deadline::after(oldest.arrival, self.config.max_delay);
                deadline.due(now).then_some((deadline.at, oldest.id, *key))
            })
            .collect();
        due.sort_unstable();
        due.into_iter()
            .map(|(at, _, key)| {
                let requests = self.pending.remove(&key).unwrap_or_default();
                Self::spec(key.0, requests, at, FlushTrigger::Deadline)
            })
            .collect()
    }

    /// Flushes everything still queued, in (oldest arrival, oldest id)
    /// order, splitting oversized groups into `max_batch` chunks.
    pub fn drain(&mut self, now: Tick) -> Vec<BatchSpec> {
        let mut groups: Vec<(Tick, u64, BatchKey)> = self
            .pending
            .iter()
            .filter_map(|(key, group)| {
                let oldest = group.first()?;
                Some((oldest.arrival, oldest.id, *key))
            })
            .collect();
        groups.sort_unstable();
        let mut out = Vec::new();
        for (_, _, key) in groups {
            let mut requests = self.pending.remove(&key).unwrap_or_default();
            while !requests.is_empty() {
                let take = requests.len().min(self.config.max_batch);
                let chunk: Vec<QueuedRequest> = requests.drain(..take).collect();
                out.push(Self::spec(key.0, chunk, now, FlushTrigger::Drain));
            }
        }
        out
    }

    fn spec(
        fingerprint: MatrixFingerprint,
        requests: Vec<QueuedRequest>,
        flushed_at: Tick,
        trigger: FlushTrigger,
    ) -> BatchSpec {
        let policy = requests
            .first()
            .map(|r| r.policy)
            .unwrap_or_else(IntegrityPolicy::off);
        BatchSpec {
            fingerprint,
            policy,
            requests,
            flushed_at,
            trigger,
        }
    }
}
