//! Table VII: power consumption and energy efficiency of each platform.
//!
//! Power figures are the paper's measured constants (`xbutil` /
//! `nvidia-smi`); throughput is the suite geomean from the models, so
//! energy efficiency = mean GFLOP/s ÷ watts (arithmetic, as the paper's own
//! cross-table ratios imply).
//!
//! ```text
//! cargo run --release -p spasm-bench --bin table7_energy [-- --scale paper]
//! ```

use spasm::{spasm_report, Pipeline};
use spasm_baselines::{power, CusparseGpu, HiSparse, MatrixProfile, Platform, Serpens};
use spasm_bench::{rule, scale_from_args, scale_name};

fn main() {
    let scale = scale_from_args();
    println!(
        "Table VII — power & energy efficiency ({})",
        scale_name(scale)
    );

    let hisparse = HiSparse::new();
    let a16 = Serpens::a16();
    let a24 = Serpens::a24();
    let gpu = CusparseGpu::new();
    let pipeline = Pipeline::new();

    let mut gflops: [Vec<f64>; 5] = Default::default();
    let mut spasm_power: Vec<f64> = Vec::new();
    spasm_bench::for_each_workload(scale, |_w, m| {
        let profile = MatrixProfile::from_coo(&m);
        gflops[0].push(gpu.report(&profile).gflops);
        gflops[1].push(hisparse.report(&profile).gflops);
        // Paper's Serpens row pools both variants; use the faster a24.
        gflops[2].push(a24.report(&profile).gflops.max(a16.report(&profile).gflops));
        let mut prepared = pipeline.prepare(&m).expect("pipeline");
        let x = vec![1.0f32; m.cols() as usize];
        let mut y = vec![0.0f32; m.rows() as usize];
        let exec = prepared.execute(&x, &mut y).expect("simulate");
        gflops[3].push(spasm_report(&prepared, &exec).gflops);
        spasm_power.push(exec.estimated_power_w);
    });

    rule(64);
    println!(
        "{:<12} {:>8} {:>22} {:>16}",
        "platform", "power", "energy efficiency", "paper"
    );
    rule(64);
    let rows = [
        ("RTX 3090", power::RTX_3090_W, &gflops[0], 0.23),
        ("HiSparse", power::HISPARSE_W, &gflops[1], 0.37),
        ("Serpens", power::SERPENS_W, &gflops[2], 0.97),
        ("SPASM", power::SPASM_W, &gflops[3], 1.24),
    ];
    for (name, watts, g, paper) in rows {
        // The paper's Table VII divides *average* throughput by average
        // power (its 3.35x-vs-HiSparse claim implies an arithmetic mean,
        // not the Fig. 12 geomean).
        let avg = g.iter().sum::<f64>() / g.len() as f64;
        println!(
            "{name:<12} {watts:>6.0} W {:>12.2} (GFLOP/s)/W {:>16.2}",
            avg / watts,
            paper
        );
    }
    rule(64);
    let avg_power = spasm_power.iter().sum::<f64>() / spasm_power.len() as f64;
    println!(
        "activity-based SPASM power model (static 40 W + dynamic x utilisation): \
         suite average {avg_power:.1} W vs the paper's measured 58 W"
    );
}
