//! The full accelerator simulation: functional execution through the VALU
//! datapath plus the shared cycle model.

use std::fmt;

use spasm_format::SpasmMatrix;

use crate::config::HwConfig;
use crate::integrity::{HealthReport, IntegrityCheck};
use crate::plan::ExecutionPlan;
use crate::valu::OpcodeError;

/// Errors from running the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An operand has the wrong length.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        actual: usize,
        /// Which operand.
        operand: &'static str,
    },
    /// One vector inside a batched call has the wrong length. Carries the
    /// batch index so a server coalescing independent requests can reject
    /// just the offending request instead of failing the whole batch.
    BatchDimensionMismatch {
        /// Index of the offending vector within the batch.
        vector: usize,
        /// Expected length.
        expected: usize,
        /// Supplied length.
        actual: usize,
        /// Which operand (`"x"` or `"y"`).
        operand: &'static str,
    },
    /// The matrix's portfolio contains a template the VALU cannot realise.
    Opcode(OpcodeError),
    /// The encoded stream violates a structural integrity invariant —
    /// see [`IntegrityCheck`] for which one. Raised at prepare time for
    /// streams that decoded but cannot be executed safely.
    Integrity {
        /// The tile row where the violation was detected.
        tile_row: u32,
        /// The violated invariant.
        check: IntegrityCheck,
    },
    /// A frozen plan's parts are mutually inconsistent and cannot be
    /// reassembled into an executable plan. Raised by
    /// [`ExecutionPlan::from_parts`] for hostile or corrupted inputs —
    /// never a panic. The payload names the violated invariant.
    Plan(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DimensionMismatch {
                expected,
                actual,
                operand,
            } => {
                write!(
                    f,
                    "vector `{operand}` has length {actual}, expected {expected}"
                )
            }
            SimError::BatchDimensionMismatch {
                vector,
                expected,
                actual,
                operand,
            } => {
                write!(
                    f,
                    "batch vector {vector}: `{operand}` has length {actual}, expected {expected}"
                )
            }
            SimError::Opcode(e) => write!(f, "portfolio not realisable: {e}"),
            SimError::Integrity { tile_row, check } => {
                write!(f, "integrity check failed in tile row {tile_row}: {check}")
            }
            SimError::Plan(what) => write!(f, "inconsistent plan parts: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<OpcodeError> for SimError {
    fn from(e: OpcodeError) -> Self {
        SimError::Opcode(e)
    }
}

/// Traffic moved over HBM during one SpMV, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// Matrix stream: 20 bytes per template instance.
    pub matrix: u64,
    /// x-vector segments loaded (tile_size × 4 per processed tile).
    pub x: u64,
    /// y sums (read + write, 8 bytes per element of worked tile rows).
    pub y: u64,
}

impl Traffic {
    /// Total bytes.
    pub fn total(self) -> u64 {
        self.matrix + self.x + self.y
    }
}

/// The amortised cycle model of one batched execution
/// ([`ExecutionPlan::run_batch`]): initialisation and the matrix stream are
/// paid once, the per-vector body repeats for every vector of the batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReport {
    /// Vectors in the batch.
    pub vectors: usize,
    /// Whole-batch cycles: `INIT_CYCLES + vectors × (cycles − INIT_CYCLES)`.
    pub cycles: u64,
    /// Whole-batch wall-clock seconds at the configuration's clock.
    pub seconds: f64,
    /// `cycles / max(vectors, 1)` — the per-vector amortised cost.
    pub amortised_cycles_per_vector: f64,
    /// `seconds / max(vectors, 1)`.
    pub amortised_seconds_per_vector: f64,
    /// Whole-batch HBM traffic: the matrix stream moves once, the x and y
    /// traffic scale with the batch.
    pub traffic: Traffic,
}

/// The outcome of one simulated SpMV execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Total cycles, including initialisation and the y drain.
    pub cycles: u64,
    /// Wall-clock seconds at the configuration's clock.
    pub seconds: f64,
    /// Throughput by the paper's formula `(2·nnz + rows) / time`.
    pub gflops: f64,
    /// Achieved memory bandwidth (total traffic / time), GB/s.
    pub achieved_bandwidth_gbs: f64,
    /// Fraction of peak arithmetic throughput used.
    pub compute_utilization: f64,
    /// Fraction of the configuration's aggregate bandwidth used.
    pub bandwidth_utilization: f64,
    /// Busy cycles of each PE group (before init / y drain).
    pub per_group_cycles: Vec<u64>,
    /// HBM traffic breakdown.
    pub traffic: Traffic,
    /// Activity-based power estimate (watts); see
    /// [`HwConfig::power_estimate_w`].
    pub estimated_power_w: f64,
    /// Energy of this execution: estimated power × time (joules).
    pub energy_j: f64,
    /// Fault-tolerance bookkeeping for the most recent execution: faults
    /// injected, corruptions detected/corrected, fallbacks taken. All
    /// zeros (the default) for a clean run.
    pub health: HealthReport,
    /// Amortised batch pricing of the most recent execution, when it was a
    /// batch ([`ExecutionPlan::run_batch`] /
    /// `Prepared::execute_batch_into`); `None` after single-vector runs.
    pub batch: Option<BatchReport>,
}

/// The simulated SPASM accelerator.
///
/// # Examples
///
/// ```
/// use spasm_format::{SpasmMatrix, SubmatrixMap};
/// use spasm_hw::{Accelerator, HwConfig};
/// use spasm_patterns::{DecompositionTable, TemplateSet};
/// use spasm_sparse::Coo;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let coo = Coo::from_triplets(4, 4, vec![(0, 0, 2.0), (3, 1, -1.0)])?;
/// let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
/// let m = SpasmMatrix::encode(&SubmatrixMap::from_coo(&coo), &table, 4)?;
///
/// let acc = Accelerator::new(HwConfig::spasm_4_1());
/// let mut y = vec![0.0f32; 4];
/// let report = acc.run(&m, &[1.0, 2.0, 3.0, 4.0], &mut y)?;
/// assert_eq!(y, vec![2.0, 0.0, 0.0, -2.0]);
/// assert!(report.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Accelerator {
    config: HwConfig,
}

impl Accelerator {
    /// Builds an accelerator with the given configuration.
    pub fn new(config: HwConfig) -> Self {
        Accelerator { config }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &HwConfig {
        &self.config
    }

    /// Builds a prepared [`ExecutionPlan`] for `matrix`: everything that
    /// depends only on `(matrix, config)` — pre-decoded instance stream,
    /// tile-row layout, LPT assignment, cycle pricing, scratch buffers —
    /// is computed once, so repeated [`ExecutionPlan::run`] calls only do
    /// the functional pass.
    ///
    /// # Errors
    ///
    /// [`SimError::Opcode`] if the matrix's portfolio is not realisable.
    pub fn prepare(&self, matrix: &SpasmMatrix) -> Result<ExecutionPlan, SimError> {
        ExecutionPlan::build(self.config.clone(), matrix)
    }

    /// Executes `y += A·x` on the encoded matrix, returning the cycle count
    /// and derived metrics.
    ///
    /// Functionally, every MAC goes through the VALU opcode datapath (the
    /// PE model); the result is bit-identical to
    /// [`SpasmMatrix::spmv`].
    ///
    /// This is a thin wrapper over [`Accelerator::prepare`] +
    /// [`ExecutionPlan::run`]; callers executing many SpMVs on one matrix
    /// should prepare once and reuse the plan.
    ///
    /// # Errors
    ///
    /// * [`SimError::DimensionMismatch`] on operand length mismatches;
    /// * [`SimError::Opcode`] if the matrix's portfolio is not realisable.
    pub fn run(
        &self,
        matrix: &SpasmMatrix,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<ExecReport, SimError> {
        if x.len() != matrix.cols() as usize {
            return Err(SimError::DimensionMismatch {
                expected: matrix.cols() as usize,
                actual: x.len(),
                operand: "x",
            });
        }
        if y.len() != matrix.rows() as usize {
            return Err(SimError::DimensionMismatch {
                expected: matrix.rows() as usize,
                actual: y.len(),
                operand: "y",
            });
        }
        let mut plan = self.prepare(matrix)?;
        let report = plan.run(x, y)?;
        Ok(report.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;
    use spasm_format::SubmatrixMap;
    use spasm_patterns::{DecompositionTable, TemplateSet};
    use spasm_sparse::{Coo, SpMv};

    fn encode(coo: &Coo, tile: u32) -> SpasmMatrix {
        let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
        SpasmMatrix::encode(&SubmatrixMap::from_coo(coo), &table, tile).unwrap()
    }

    fn sample(n: u32) -> Coo {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            t.push((i, (i * 7 + 3) % n, 0.5));
            if i + 1 < n {
                t.push((i + 1, i, -1.0));
            }
        }
        Coo::from_triplets(n, n, t).unwrap()
    }

    #[test]
    fn functional_result_matches_reference() {
        let coo = sample(100);
        let x: Vec<f32> = (0..100).map(|i| (i as f32) * 0.25 - 10.0).collect();
        let mut want = vec![0.5f32; 100];
        coo.spmv(&x, &mut want).unwrap();

        for tile in [16u32, 64, 256] {
            let m = encode(&coo, tile);
            let acc = Accelerator::new(HwConfig::spasm_4_1());
            let mut got = vec![0.5f32; 100];
            acc.run(&m, &x, &mut got).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-3, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn cycles_match_perf_model() {
        let coo = sample(200);
        let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
        let map = SubmatrixMap::from_coo(&coo);
        for tile in [16u32, 64] {
            for cfg in HwConfig::shipped() {
                let m = SpasmMatrix::encode(&map, &table, tile).unwrap();
                let summary = spasm_format::TilingSummary::analyze(&map, &table, tile).unwrap();
                let est = crate::perf::estimate_cycles(&summary, &cfg);
                let mut y = vec![0.0f32; 200];
                let rep = Accelerator::new(cfg.clone())
                    .run(&m, &vec![1.0; 200], &mut y)
                    .unwrap();
                assert_eq!(rep.cycles, est, "tile {tile} cfg {}", cfg.name);
            }
        }
    }

    #[test]
    fn metrics_are_sane() {
        let coo = sample(256);
        let m = encode(&coo, 64);
        let cfg = HwConfig::spasm_4_1();
        let mut y = vec![0.0f32; 256];
        let rep = Accelerator::new(cfg.clone())
            .run(&m, &vec![1.0; 256], &mut y)
            .unwrap();
        assert!(rep.gflops > 0.0 && rep.gflops <= cfg.peak_gflops());
        assert!(rep.compute_utilization > 0.0 && rep.compute_utilization <= 1.0);
        assert!(rep.bandwidth_utilization > 0.0 && rep.bandwidth_utilization <= 1.0);
        assert_eq!(rep.per_group_cycles.len(), cfg.num_pe_groups as usize);
        assert_eq!(rep.traffic.matrix, 20 * m.n_instances() as u64);
        assert!(rep.seconds > 0.0);
        // Power sits between static and static + dynamic, and energy is
        // consistent.
        assert!(rep.estimated_power_w >= crate::config::STATIC_POWER_W);
        assert!(
            rep.estimated_power_w <= crate::config::STATIC_POWER_W + crate::config::DYNAMIC_POWER_W
        );
        assert!((rep.energy_j - rep.estimated_power_w * rep.seconds).abs() < 1e-12);
    }

    #[test]
    fn dimension_checks() {
        let m = encode(&sample(16), 16);
        let acc = Accelerator::new(HwConfig::spasm_3_2());
        let mut y = vec![0.0f32; 16];
        assert!(matches!(
            acc.run(&m, &[1.0; 4], &mut y),
            Err(SimError::DimensionMismatch { operand: "x", .. })
        ));
        let mut y_bad = vec![0.0f32; 4];
        assert!(matches!(
            acc.run(&m, &[1.0; 16], &mut y_bad),
            Err(SimError::DimensionMismatch { operand: "y", .. })
        ));
    }

    #[test]
    fn non_multiple_of_four_edges() {
        // 10x10: padded windows must not read out of bounds or corrupt y.
        let coo = Coo::from_triplets(10, 10, vec![(9, 9, 3.0), (0, 9, 1.0), (9, 0, 2.0)]).unwrap();
        let m = encode(&coo, 8);
        let x: Vec<f32> = (1..=10).map(|i| i as f32).collect();
        let mut want = vec![0.0f32; 10];
        coo.spmv(&x, &mut want).unwrap();
        let mut got = vec![0.0f32; 10];
        Accelerator::new(HwConfig::spasm_4_1())
            .run(&m, &x, &mut got)
            .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_matrix_runs() {
        let m = encode(&Coo::new(8, 8), 8);
        let mut y = vec![0.0f32; 8];
        let rep = Accelerator::new(HwConfig::spasm_4_1())
            .run(&m, &[1.0; 8], &mut y)
            .unwrap();
        assert_eq!(y, vec![0.0; 8]);
        assert_eq!(rep.cycles, timing::INIT_CYCLES);
    }
}
