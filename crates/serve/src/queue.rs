//! The admission queue: coalesces concurrent single-vector requests
//! against the same matrix into batches for `Prepared::execute_batch` —
//! and, since PR 8, enforces the server's overload policy at the door.
//!
//! Requests are grouped by *batch key* — the matrix fingerprint plus the
//! request's [`IntegrityPolicy`] equivalence class — because one batched
//! execution runs under one policy; requests with different policies
//! against the same matrix form separate batches. A group flushes when
//! it reaches [`QueueConfig::max_batch`] requests (size trigger), when
//! the *oldest* request in the group has waited
//! [`QueueConfig::max_delay`] ticks (deadline trigger, evaluated against
//! the shared [`crate::VirtualClock`]), or — new — when a member's
//! *completion deadline* is about to expire (urgent trigger: the group
//! flushes at the last tick the member is still runnable). All
//! bookkeeping is deterministic: groups live in a [`BTreeMap`], due
//! batches are ordered by (flush tick, oldest request id), so a fixed
//! arrival trace yields the exact same batch compositions on every run.
//!
//! Overload policy, all typed and all decided at admission or flush
//! time under the server's queue lock:
//!
//! * **bounded admission** — per-group and global capacity limits; a
//!   full queue rejects with [`Rejected::QueueFull`] carrying a
//!   `retry_after` hint derived from the earliest pending flush;
//! * **rate limiting** — a deterministic token bucket per
//!   [`PolicyClass`] on the virtual clock ([`Rejected::RateLimited`]);
//! * **deadline shedding** — a request that is already expired at
//!   admission is rejected ([`Rejected::DeadlineExceeded`]); a request
//!   that expires while queued is shed at flush time into
//!   [`BatchSpec::shed`] instead of being executed late. The boundary
//!   is [`Deadline::remaining`]: due exactly at `now` means expired.

use std::collections::BTreeMap;

use spasm::IntegrityPolicy;
use spasm_format::MatrixFingerprint;

use crate::catalog::PlanLease;
use crate::clock::{Deadline, Tick};

/// Configuration for an [`AdmissionQueue`].
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Flush a group as soon as it holds this many requests. `1` disables
    /// coalescing (every request is its own batch); values are clamped to
    /// at least 1.
    pub max_batch: usize,
    /// Flush a group once its oldest request has waited this many ticks.
    /// `0` makes every request due immediately on the next clock check.
    pub max_delay: Tick,
    /// Maximum queued requests per (matrix, policy) group; admission
    /// beyond this rejects with [`Rejected::QueueFull`]. Clamped to at
    /// least `max_batch` (a group must be allowed to fill a batch).
    pub group_capacity: usize,
    /// Maximum queued requests across all groups; admission beyond this
    /// rejects with [`Rejected::QueueFull`].
    pub global_capacity: usize,
    /// Optional per-[`PolicyClass`] token-bucket rate limit; `None`
    /// admits at any rate.
    pub rate: Option<RateLimit>,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_batch: 8,
            max_delay: 200,
            group_capacity: 1 << 16,
            global_capacity: 1 << 20,
            rate: None,
        }
    }
}

/// A deterministic token bucket: `burst` tokens capacity, one token
/// refilled every `period` ticks of virtual time. Admission takes one
/// token; an empty bucket rejects with [`Rejected::RateLimited`] and the
/// exact tick count until the next refill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Bucket capacity, in requests (clamped to at least 1).
    pub burst: u32,
    /// Ticks between token refills; `0` disables the limiter.
    pub period: Tick,
}

/// Per-class token-bucket state. Buckets start full at tick 0.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: u32,
    last_refill: Tick,
}

impl TokenBucket {
    fn new(limit: RateLimit) -> Self {
        TokenBucket {
            tokens: limit.burst.max(1),
            last_refill: 0,
        }
    }

    /// Takes one token at `now`, or reports ticks until one refills.
    fn admit(&mut self, limit: RateLimit, now: Tick) -> Result<(), Tick> {
        if limit.period == 0 {
            return Ok(());
        }
        let refills = now.saturating_sub(self.last_refill) / limit.period;
        self.tokens =
            u32::try_from((u64::from(self.tokens) + refills).min(u64::from(limit.burst.max(1))))
                .unwrap_or(u32::MAX);
        self.last_refill += refills * limit.period;
        if self.tokens > 0 {
            self.tokens -= 1;
            Ok(())
        } else {
            Err((self.last_refill + limit.period).saturating_sub(now).max(1))
        }
    }
}

/// Why a request was refused (at admission) or shed (at flush). Every
/// overload decision is typed — nothing is silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rejected {
    /// The queue (global or the request's group) is at capacity.
    QueueFull {
        /// Ticks until the earliest pending flush frees space — the
        /// client's back-off hint.
        retry_after: Tick,
    },
    /// The request's policy class is over its token-bucket rate.
    RateLimited {
        /// Ticks until the next token refill.
        retry_after: Tick,
    },
    /// The request's completion deadline has passed (at admission: it
    /// arrived expired; at flush: it expired while queued).
    DeadlineExceeded {
        /// How many ticks past the deadline the decision was taken.
        late_by: Tick,
    },
    /// The server is draining for shutdown and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { retry_after } => {
                write!(f, "queue full, retry after {retry_after} ticks")
            }
            Rejected::RateLimited { retry_after } => {
                write!(f, "rate limited, retry after {retry_after} ticks")
            }
            Rejected::DeadlineExceeded { late_by } => {
                write!(f, "deadline exceeded by {late_by} ticks")
            }
            Rejected::ShuttingDown => f.write_str("server is shutting down"),
        }
    }
}

/// The integrity-policy equivalence class used in batch keys.
///
/// [`IntegrityPolicy`] itself is not `Eq`/`Ord` (its tolerance is an
/// `f32`); the class compares the tolerance by bit pattern, which is
/// exactly the "same policy" notion a batch needs — two requests whose
/// policies differ only in NaN payload would still verify identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PolicyClass {
    mode: u8,
    sample: u64,
    seed: u64,
    fallback: bool,
    tolerance_bits: u32,
}

impl From<IntegrityPolicy> for PolicyClass {
    fn from(p: IntegrityPolicy) -> Self {
        use spasm::IntegrityMode;
        let (mode, sample) = match p.mode {
            IntegrityMode::Off => (0u8, 0u64),
            IntegrityMode::Sampled(k) => (1, k as u64),
            IntegrityMode::Full => (2, 0),
            // `IntegrityMode` is non-exhaustive; any future mode lands in
            // its own class so it still never coalesces with the others.
            _ => (u8::MAX, 0),
        };
        PolicyClass {
            mode,
            sample,
            seed: p.seed,
            fallback: p.fallback,
            tolerance_bits: p.tolerance.to_bits(),
        }
    }
}

/// The coalescing key: one batch serves one matrix under one policy.
pub type BatchKey = (MatrixFingerprint, PolicyClass);

/// One admitted request, waiting in (or flushed from) the queue.
///
/// Holds a [`PlanLease`] so the plan it targets cannot be evicted while
/// the request is queued or executing.
#[derive(Debug)]
pub struct QueuedRequest {
    /// The server-assigned request id (monotonic per server).
    pub id: u64,
    /// The integrity policy the request asked for.
    pub policy: IntegrityPolicy,
    /// The input vector.
    pub x: Vec<f32>,
    /// The tick at which the request was admitted.
    pub arrival: Tick,
    /// The request's completion deadline, if it carries one: it must
    /// start executing strictly before this tick or be shed.
    pub deadline: Option<Deadline>,
    /// The pin on the catalog entry this request executes against.
    pub lease: PlanLease,
}

impl QueuedRequest {
    /// The fingerprint of the matrix this request targets.
    pub fn fingerprint(&self) -> MatrixFingerprint {
        self.lease.fingerprint()
    }
}

/// Why a batch left the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushTrigger {
    /// The group reached [`QueueConfig::max_batch`].
    Size,
    /// The group's oldest request reached [`QueueConfig::max_delay`].
    Deadline,
    /// A member's completion deadline was about to expire: the group
    /// flushed at the last tick that member was still runnable.
    Urgent,
    /// The queue was drained explicitly (shutdown / end of trace).
    Drain,
}

impl std::fmt::Display for FlushTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlushTrigger::Size => f.write_str("size"),
            FlushTrigger::Deadline => f.write_str("deadline"),
            FlushTrigger::Urgent => f.write_str("urgent"),
            FlushTrigger::Drain => f.write_str("drain"),
        }
    }
}

/// A request shed at flush time: admitted, but expired before its batch
/// left the queue.
#[derive(Debug)]
pub struct ShedRequest {
    /// The expired request (its lease drops when this does).
    pub request: QueuedRequest,
    /// Ticks past the request's deadline at the shedding decision.
    pub late_by: Tick,
}

/// A flushed batch, ready for execution.
#[derive(Debug)]
pub struct BatchSpec {
    /// The matrix all requests target.
    pub fingerprint: MatrixFingerprint,
    /// The policy the batch executes under (shared by every member).
    pub policy: IntegrityPolicy,
    /// The runnable member requests, in admission order.
    pub requests: Vec<QueuedRequest>,
    /// Members whose completion deadline expired while queued: dropped
    /// before execution, completed with
    /// [`Rejected::DeadlineExceeded`] by the server.
    pub shed: Vec<ShedRequest>,
    /// The tick at which the batch left the queue. For deadline flushes
    /// this is the deadline itself (not the tick the driver happened to
    /// check), so latency accounting is independent of how coarsely the
    /// clock is advanced.
    pub flushed_at: Tick,
    /// Why the batch flushed.
    pub trigger: FlushTrigger,
}

/// The coalescing admission queue. Not internally synchronised — the
/// server wraps it in a mutex and decides compositions (and every
/// shedding decision) under that lock, which is what makes them
/// independent of execution concurrency.
#[derive(Debug)]
pub struct AdmissionQueue {
    config: QueueConfig,
    pending: BTreeMap<BatchKey, Vec<QueuedRequest>>,
    queued: usize,
    buckets: BTreeMap<PolicyClass, TokenBucket>,
}

impl AdmissionQueue {
    /// An empty queue.
    pub fn new(config: QueueConfig) -> Self {
        let max_batch = config.max_batch.max(1);
        AdmissionQueue {
            config: QueueConfig {
                max_batch,
                group_capacity: config.group_capacity.max(max_batch),
                global_capacity: config.global_capacity.max(1),
                ..config
            },
            pending: BTreeMap::new(),
            queued: 0,
            buckets: BTreeMap::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> QueueConfig {
        self.config
    }

    /// Queued requests across all groups.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// `true` when no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Admits a request at `now`, enforcing deadline, rate and capacity
    /// policy in that order. Returns the flushed batch when this
    /// admission filled its group to `max_batch` (the size trigger).
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`] reason; the request (and its lease) is
    /// dropped, nothing is queued.
    pub fn push(
        &mut self,
        request: QueuedRequest,
        now: Tick,
    ) -> Result<Option<BatchSpec>, Rejected> {
        if let Some(deadline) = request.deadline {
            if deadline.remaining(now).is_none() {
                return Err(Rejected::DeadlineExceeded {
                    late_by: now - deadline.at,
                });
            }
        }
        let key = (request.fingerprint(), PolicyClass::from(request.policy));
        if let Some(limit) = self.config.rate {
            let bucket = self
                .buckets
                .entry(key.1)
                .or_insert_with(|| TokenBucket::new(limit));
            if let Err(retry_after) = bucket.admit(limit, now) {
                return Err(Rejected::RateLimited { retry_after });
            }
        }
        if self.queued >= self.config.global_capacity
            || self.pending.get(&key).map_or(0, Vec::len) >= self.config.group_capacity
        {
            let retry_after = self
                .next_deadline()
                .map(|t| t.saturating_sub(now))
                .unwrap_or(self.config.max_delay)
                .max(1);
            return Err(Rejected::QueueFull { retry_after });
        }
        let group = self.pending.entry(key).or_default();
        group.push(request);
        self.queued += 1;
        if group.len() >= self.config.max_batch {
            let requests = self.pending.remove(&key).unwrap_or_default();
            self.queued -= requests.len();
            return Ok(Some(Self::spec(
                key.0,
                requests,
                now,
                now,
                FlushTrigger::Size,
            )));
        }
        Ok(None)
    }

    /// The tick at which `group` must flush, and whether that flush is
    /// urgent (a member's completion deadline forced it earlier than the
    /// coalescing delay would have).
    fn group_flush(&self, group: &[QueuedRequest]) -> Option<(Tick, FlushTrigger)> {
        let oldest = group.first()?;
        let coalesce = Deadline::after(oldest.arrival, self.config.max_delay).at;
        // A member expiring at tick `d` is still runnable at `d - 1`
        // (`Deadline::remaining` is exclusive at the boundary): flush at
        // the last runnable tick to serve it with maximal coalescing.
        let urgent = group
            .iter()
            .filter_map(|r| r.deadline.map(|d| d.at.saturating_sub(1)))
            .min();
        match urgent {
            Some(u) if u < coalesce => Some((u, FlushTrigger::Urgent)),
            _ => Some((coalesce, FlushTrigger::Deadline)),
        }
    }

    /// The earliest flush tick across all groups (coalescing deadline or
    /// urgent completion deadline), if any request waits.
    pub fn next_deadline(&self) -> Option<Tick> {
        self.pending
            .values()
            .filter_map(|g| self.group_flush(g).map(|(t, _)| t))
            .min()
    }

    /// Flushes every group whose flush tick has passed at `now`, ordered
    /// by (flush tick, oldest request id). Each flushed batch's
    /// `flushed_at` is its flush tick, not `now` — but shedding is
    /// decided against the *real* `now`: if the driver advanced the
    /// clock past a member's completion deadline (an overloaded executor
    /// checking in late), that member really did expire and is shed.
    pub fn due(&mut self, now: Tick) -> Vec<BatchSpec> {
        let mut due: Vec<(Tick, u64, BatchKey, FlushTrigger)> = self
            .pending
            .iter()
            .filter_map(|(key, group)| {
                let (at, trigger) = self.group_flush(group)?;
                let oldest = group.first()?;
                (at <= now).then_some((at, oldest.id, *key, trigger))
            })
            .collect();
        due.sort_unstable_by_key(|&(at, id, _, _)| (at, id));
        due.into_iter()
            .map(|(at, _, key, trigger)| {
                let requests = self.pending.remove(&key).unwrap_or_default();
                self.queued -= requests.len();
                Self::spec(key.0, requests, at, now, trigger)
            })
            .collect()
    }

    /// Flushes everything still queued, in (oldest arrival, oldest id)
    /// order, splitting oversized groups into `max_batch` chunks.
    pub fn drain(&mut self, now: Tick) -> Vec<BatchSpec> {
        let mut groups: Vec<(Tick, u64, BatchKey)> = self
            .pending
            .iter()
            .filter_map(|(key, group)| {
                let oldest = group.first()?;
                Some((oldest.arrival, oldest.id, *key))
            })
            .collect();
        groups.sort_unstable();
        let mut out = Vec::new();
        for (_, _, key) in groups {
            let mut requests = self.pending.remove(&key).unwrap_or_default();
            self.queued -= requests.len();
            while !requests.is_empty() {
                let take = requests.len().min(self.config.max_batch);
                let chunk: Vec<QueuedRequest> = requests.drain(..take).collect();
                out.push(Self::spec(key.0, chunk, now, now, FlushTrigger::Drain));
            }
        }
        out
    }

    /// Builds a batch spec, shedding members whose completion deadline
    /// has expired at `now` ([`Deadline::remaining`] boundary: due
    /// exactly at `now` is expired).
    fn spec(
        fingerprint: MatrixFingerprint,
        requests: Vec<QueuedRequest>,
        flushed_at: Tick,
        now: Tick,
        trigger: FlushTrigger,
    ) -> BatchSpec {
        let mut runnable = Vec::with_capacity(requests.len());
        let mut shed = Vec::new();
        for request in requests {
            match request.deadline {
                Some(d) if d.remaining(now).is_none() => shed.push(ShedRequest {
                    late_by: now - d.at,
                    request,
                }),
                _ => runnable.push(request),
            }
        }
        let policy = runnable
            .first()
            .map(|r| r.policy)
            .or_else(|| shed.first().map(|s| s.request.policy))
            .unwrap_or_else(IntegrityPolicy::off);
        BatchSpec {
            fingerprint,
            policy,
            requests: runnable,
            shed,
            flushed_at,
            trigger,
        }
    }
}
