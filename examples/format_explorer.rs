//! Format explorer: analyse a matrix's local patterns and compare storage
//! formats, reproducing the per-matrix view behind Table II / Fig. 11.
//!
//! ```text
//! # a workload from the synthetic suite
//! cargo run --release -p spasm --example format_explorer -- cfd2
//! # or any Matrix Market file
//! cargo run --release -p spasm --example format_explorer -- path/to/matrix.mtx
//! ```

use spasm::Pipeline;
use spasm_patterns::{render_mask, GridSize, PatternHistogram};
use spasm_sparse::{mm, storage, Bsr, Coo, Csr, StorageCost};
use spasm_workloads::{Scale, Workload};

fn load(arg: &str) -> Result<(String, Coo), Box<dyn std::error::Error>> {
    if let Some(w) = Workload::from_name(arg) {
        Ok((arg.to_string(), w.generate(Scale::Small)))
    } else {
        Ok((arg.to_string(), mm::read_file(arg)?))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cfd2".to_string());
    let (name, a) = load(&arg)?;
    println!(
        "{name}: {}x{}, {} nnz, density {:.2e}",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.density()
    );

    // Top-8 local patterns (the Table II column).
    let hist = PatternHistogram::analyze(&a, GridSize::S4);
    println!(
        "\n{} occupied 4x4 submatrices, {} distinct local patterns",
        hist.total_blocks(),
        hist.distinct_patterns()
    );
    println!("top-8 local patterns:");
    let top = hist.top_n(8);
    let grids: Vec<Vec<String>> = top
        .iter()
        .map(|&(m, _)| {
            render_mask(GridSize::S4, m)
                .lines()
                .map(String::from)
                .collect()
        })
        .collect();
    for row in 0..4 {
        let line: Vec<&str> = grids.iter().map(|g| g[row].as_str()).collect();
        println!("  {}", line.join("   "));
    }
    let shares: Vec<String> = top
        .iter()
        .map(|&(_, f)| format!("{:>4.1}%", 100.0 * f as f64 / hist.total_blocks() as f64))
        .collect();
    println!("  {}", shares.join("  "));
    println!(
        "top-8 coverage: {:.1}% of all occupied submatrices",
        100.0 * hist.top_n_coverage(8)
    );

    // Run the framework to pick a portfolio and tile size.
    let prepared = Pipeline::new().prepare(&a)?;
    println!(
        "\nselected portfolio: {} (paddings {}, padding rate {:.1}%)",
        prepared.selection.set.name(),
        prepared.encoded.paddings(),
        prepared.encoded.padding_rate() * 100.0
    );
    println!(
        "selected schedule: {} @ tile {}",
        prepared.best.config.name, prepared.best.tile_size
    );

    // Storage comparison, normalised to COO (Fig. 11's bars for this
    // matrix).
    let coo_bytes = a.storage_bytes();
    let rows: Vec<(&str, usize)> = vec![
        ("COO", coo_bytes),
        ("CSR", Csr::from(&a).storage_bytes()),
        ("BSR(2x2)", Bsr::from_coo(&a, 2)?.storage_bytes()),
        ("HiSparse/Serpens", storage::hisparse_serpens_bytes(a.nnz())),
        ("SPASM", prepared.encoded.storage_bytes()),
    ];
    println!("\nstorage comparison (improvement vs COO):");
    for (fmt, bytes) in rows {
        println!(
            "  {fmt:<18} {:>12} bytes   {:>5.2}x",
            bytes,
            storage::improvement_vs_coo(coo_bytes, bytes)
        );
    }
    Ok(())
}
