//! Batched-serving benchmark: `ExecutionPlan::run_batch` against looping
//! the prepared single-vector path — the multi-RHS serving workload the
//! batched layer exists for.
//!
//! Both paths reuse the same prepared plan; the comparison isolates what
//! batching itself buys: the x vectors are padded once, the pre-decoded
//! instance stream is streamed through the cache once per tile row for the
//! whole batch, and (under the `parallel` feature) the fan-out spans
//! (vector × tile-row) pairs instead of tile rows alone.
//!
//! All batched outputs are asserted bit-identical to the looped path
//! before timing. Results are printed as a table and written to
//! `BENCH_batched_spmv.json` for the perf trajectory.
//!
//! Run with `cargo bench -p spasm-bench --bench batched_spmv`
//! (`--smoke` for a single-iteration CI liveness pass, `--scale` as
//! usual). `SPASM_BENCH_ASSERT=1` arms the amortisation floor.

use std::fmt::Write as _;
use std::time::Instant;

use spasm::{Parallelism, Pipeline, PipelineOptions};
use spasm_bench::timing::is_smoke;
use spasm_hw::Dispatch;
use spasm_workloads::Workload;

const BATCH_SIZES: [usize; 3] = [2, 4, 8];

/// Batch width for the large-batch layout comparison: big enough that the
/// per-vector window walk no longer fits comfortably in L1/L2 alongside
/// the instance stream, which is where the two layouts diverge.
const LARGE_BATCH: usize = 128;

/// Per-vector wall-clock of `iters` timed repetitions, in seconds.
fn time_per_vector(iters: u32, vectors: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
        std::hint::black_box(&mut f);
    }
    t0.elapsed().as_secs_f64() / f64::from(iters.max(1)) / vectors.max(1) as f64
}

struct Row {
    workload: String,
    nnz: usize,
    batch: usize,
    single_per_vector_s: f64,
    batched_per_vector_s: f64,
}

impl Row {
    fn amortization(&self) -> f64 {
        self.single_per_vector_s / self.batched_per_vector_s.max(1e-12)
    }
}

fn main() {
    spasm_bench::smoke_from_args();
    let scale = spasm_bench::scale_from_args();
    println!(
        "batched-SpMV serving | scale: {} | parallel feature: {}",
        spasm_bench::scale_name(scale),
        cfg!(feature = "parallel")
    );

    // Same structural cross-section as the repeated-SpMV bench.
    let picks = [
        Workload::Raefsky3,
        Workload::C73,
        Workload::TmtSym,
        Workload::Cfd2,
    ];
    let iters: u32 = if is_smoke() { 1 } else { 50 };

    let mut rows: Vec<Row> = Vec::new();
    for w in picks {
        let m = w.generate(scale);
        let n_cols = m.cols() as usize;
        let n_rows = m.rows() as usize;

        let pipeline =
            Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Auto));
        let prepared = pipeline.prepare(&m).expect("pipeline");
        let mut plan = prepared
            .accelerator()
            .prepare(&prepared.encoded)
            .expect("prepare");

        let max_batch = *BATCH_SIZES.iter().max().unwrap_or(&1);
        let xs: Vec<Vec<f32>> = (0..max_batch)
            .map(|j| {
                (0..n_cols)
                    .map(|i| (((i + 3 * j) % 9) as f32) * 0.5 - 2.0)
                    .collect()
            })
            .collect();

        // Bit-identity gate: batching must not be a different computation.
        let mut want = vec![vec![0.0f32; n_rows]; max_batch];
        for (xj, yj) in xs.iter().zip(want.iter_mut()) {
            plan.run(xj, yj).expect("plan run");
        }
        let mut got = vec![vec![0.0f32; n_rows]; max_batch];
        plan.run_batch(&xs, &mut got).expect("run_batch");
        for (j, (g, ww)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ww.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{w}: run_batch vector {j} diverged from looped plan.run"
            );
        }

        // Single-vector baseline: the prepared plan looped per vector.
        let mut ys = vec![vec![0.0f32; n_rows]; max_batch];
        let single_per_vector_s = time_per_vector(iters, max_batch, || {
            for (xj, yj) in xs.iter().zip(ys.iter_mut()) {
                yj.fill(0.0);
                plan.run(xj, yj).expect("plan run");
            }
        });

        for batch in BATCH_SIZES {
            let xs_b = &xs[..batch];
            let mut ys_b = vec![vec![0.0f32; n_rows]; batch];
            let batched_per_vector_s = time_per_vector(iters, batch, || {
                for y in ys_b.iter_mut() {
                    y.fill(0.0);
                }
                plan.run_batch(xs_b, &mut ys_b).expect("run_batch");
            });
            let row = Row {
                workload: w.to_string(),
                nnz: m.nnz(),
                batch,
                single_per_vector_s,
                batched_per_vector_s,
            };
            println!(
                "{:<14} {:>9} nnz  batch {:>2}  single {:>10.1} us/vec  batched {:>10.1} us/vec  {:>6.2}x",
                row.workload,
                row.nnz,
                row.batch,
                row.single_per_vector_s * 1e6,
                row.batched_per_vector_s * 1e6,
                row.amortization(),
            );
            rows.push(row);
        }
    }

    let batch8 = spasm_bench::geomean(rows.iter().filter(|r| r.batch == 8).map(Row::amortization));
    let overall = spasm_bench::geomean(rows.iter().map(Row::amortization));
    println!("geomean batched amortization: {overall:.2}x overall, {batch8:.2}x at batch 8");
    // Opt-in floor (SPASM_BENCH_ASSERT=1): at batch 8 the amortised cost
    // per vector must beat the prepared single-vector loop.
    spasm_bench::maybe_assert_speedup("batched_spmv batch-8 amortization", batch8, 1.05);

    // ---- Large-batch layout comparison (batch > 64) --------------------
    //
    // Window-major: the per-instance dispatcher walks every window of one
    // vector before moving to the next (`Dispatch::PerInstance`).
    // Vector-blocked: the classed kernels fuse `LANE_BLOCK` vectors per
    // instance walk (`Dispatch::Classed`), streaming the instance stream
    // through the cache once per lane block instead of once per vector.
    // Both are asserted bit-identical; the verdict records which layout
    // wins at batch 128 on this host.
    let large_iters: u32 = if is_smoke() { 1 } else { 10 };
    let mut large_rows: Vec<(String, usize, f64, f64)> = Vec::new();
    for w in picks {
        let m = w.generate(scale);
        let n_cols = m.cols() as usize;
        let n_rows = m.rows() as usize;
        let pipeline =
            Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Auto));
        let prepared = pipeline.prepare(&m).expect("pipeline");
        let mut plan = prepared
            .accelerator()
            .prepare(&prepared.encoded)
            .expect("prepare");

        let xs: Vec<Vec<f32>> = (0..LARGE_BATCH)
            .map(|j| {
                (0..n_cols)
                    .map(|i| (((i + 5 * j) % 11) as f32) * 0.25 - 1.25)
                    .collect()
            })
            .collect();

        // Bit-identity gate between the two dispatchers.
        let mut want = vec![vec![0.0f32; n_rows]; LARGE_BATCH];
        plan.set_dispatch(Dispatch::PerInstance);
        plan.run_batch(&xs, &mut want).expect("run_batch");
        let mut got = vec![vec![0.0f32; n_rows]; LARGE_BATCH];
        plan.set_dispatch(Dispatch::Classed);
        plan.run_batch(&xs, &mut got).expect("run_batch");
        for (j, (g, ww)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ww.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{w}: classed batch-{LARGE_BATCH} vector {j} diverged from per-instance"
            );
        }

        let mut ys = vec![vec![0.0f32; n_rows]; LARGE_BATCH];
        plan.set_dispatch(Dispatch::PerInstance);
        let window_major_s = time_per_vector(large_iters, LARGE_BATCH, || {
            for y in ys.iter_mut() {
                y.fill(0.0);
            }
            plan.run_batch(&xs, &mut ys).expect("run_batch");
        });
        plan.set_dispatch(Dispatch::Classed);
        let vector_blocked_s = time_per_vector(large_iters, LARGE_BATCH, || {
            for y in ys.iter_mut() {
                y.fill(0.0);
            }
            plan.run_batch(&xs, &mut ys).expect("run_batch");
        });
        println!(
            "{:<14} {:>9} nnz  batch {:>3}  window-major {:>9.1} us/vec  \
             vector-blocked {:>9.1} us/vec  {:>6.2}x",
            w.to_string(),
            m.nnz(),
            LARGE_BATCH,
            window_major_s * 1e6,
            vector_blocked_s * 1e6,
            window_major_s / vector_blocked_s.max(1e-12),
        );
        large_rows.push((w.to_string(), m.nnz(), window_major_s, vector_blocked_s));
    }
    let large_geo =
        spasm_bench::geomean(large_rows.iter().map(|(_, _, wm, vb)| wm / vb.max(1e-12)));
    let verdict = if large_geo >= 1.0 {
        "vector-blocked"
    } else {
        "window-major"
    };
    println!(
        "batch-{LARGE_BATCH} layout verdict: {verdict} \
         (vector-blocked {large_geo:.2}x vs window-major, geomean)"
    );

    // Hand-rolled JSON (no serde in the build environment).
    let mut json = String::from("{\n  \"bench\": \"batched_spmv\",\n");
    json.push_str(&spasm_bench::metadata_json());
    let _ = writeln!(json, "  \"smoke\": {},", is_smoke());
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"geomean_amortization\": {overall},");
    let _ = writeln!(json, "  \"geomean_amortization_batch8\": {batch8},");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"nnz\": {}, \"batch\": {}, \
             \"single_per_vector_s\": {}, \"batched_per_vector_s\": {}, \
             \"amortization\": {}}}",
            r.workload,
            r.nnz,
            r.batch,
            r.single_per_vector_s,
            r.batched_per_vector_s,
            r.amortization()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"large_batch\": {\n");
    let _ = writeln!(json, "    \"batch\": {LARGE_BATCH},");
    let _ = writeln!(json, "    \"iters\": {large_iters},");
    let _ = writeln!(json, "    \"geomean_vector_blocked_speedup\": {large_geo},");
    let _ = writeln!(json, "    \"verdict\": \"{verdict}\",");
    json.push_str("    \"workloads\": [\n");
    for (i, (name, nnz, wm, vb)) in large_rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"workload\": \"{name}\", \"nnz\": {nnz}, \
             \"window_major_per_vector_s\": {wm}, \
             \"vector_blocked_per_vector_s\": {vb}, \
             \"vector_blocked_speedup\": {}}}",
            wm / vb.max(1e-12)
        );
        json.push_str(if i + 1 < large_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  }\n}\n");
    // cargo bench runs with the package dir as cwd; anchor the artifact at
    // the workspace root where CI picks it up.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batched_spmv.json");
    std::fs::write(out, &json).expect("write bench json");
    println!("wrote {out}");
}
