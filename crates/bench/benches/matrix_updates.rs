//! Streaming-update benchmark: `Prepared::apply_delta` against the full
//! decode-and-re-prepare path, across changeset kinds and sizes.
//!
//! For each workload and delta size the bench times
//!
//! * **apply** — clone the resident plan and apply the delta in place
//!   (values-only deltas take the copy-on-write patch path; structural
//!   deltas re-encode only the touched tiles and splice the streams);
//! * **re-prepare** — run the whole pipeline (analysis, selection,
//!   decomposition, schedule search, plan build) on the mutated matrix,
//!   the cost a serving node pays without the update path.
//!
//! Every timed pair is gated on bit-identity first: the delta-updated
//! plan and the from-scratch plan must produce the same output bits.
//! Results go to `BENCH_updates.json`.
//!
//! Run with `cargo bench -p spasm-bench --bench matrix_updates`
//! (`--smoke` for CI liveness). `SPASM_BENCH_ASSERT=1` arms the
//! small-changeset apply-vs-re-prepare speedup floor.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use spasm::{DeltaOutcome, Parallelism, Pipeline, PipelineOptions};
use spasm_bench::timing::is_smoke;
use spasm_sparse::{Coo, DeltaOp, MatrixDelta};
use spasm_workloads::{changesets, ChangesetConfig, Workload};

/// Wall-clock of `iters` repetitions of `f`, in seconds per repetition.
fn time_each<T>(iters: u32, mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / f64::from(iters.max(1))
}

struct Row {
    workload: String,
    kind: &'static str,
    ops: usize,
    outcome: String,
    apply_s: f64,
    reprepare_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reprepare_s / self.apply_s.max(1e-12)
    }
}

/// Applies a delta to the matrix's cell map — the mutated matrix the
/// re-prepare side starts from.
fn mutate(base: &Coo, delta: &MatrixDelta) -> Coo {
    let mut cells: BTreeMap<(u32, u32), f32> = base.iter().map(|(r, c, v)| ((r, c), v)).collect();
    for op in delta.ops() {
        match *op {
            DeltaOp::Patch { row, col, value } | DeltaOp::Insert { row, col, value } => {
                cells.insert((row, col), value);
            }
            DeltaOp::Delete { row, col } => {
                cells.remove(&(row, col));
            }
        }
    }
    let t: Vec<(u32, u32, f32)> = cells.into_iter().map(|((r, c), v)| (r, c, v)).collect();
    Coo::from_triplets(base.rows(), base.cols(), t).expect("mutated triplets")
}

fn outcome_name(outcome: &DeltaOutcome) -> String {
    match outcome {
        DeltaOutcome::Patched { .. } => "patched".into(),
        DeltaOutcome::Spliced { .. } => "spliced".into(),
        DeltaOutcome::Reprepared { .. } => "reprepared".into(),
        other => format!("{other:?}"),
    }
}

fn main() {
    spasm_bench::smoke_from_args();
    let scale = spasm_bench::scale_from_args();
    println!(
        "matrix updates: apply_delta vs full re-prepare | scale: {} | parallel: {} | simd: {}",
        spasm_bench::scale_name(scale),
        cfg!(feature = "parallel"),
        cfg!(feature = "simd")
    );

    let picks = [Workload::Raefsky3, Workload::TmtSym, Workload::C73];
    let sizes: &[usize] = if is_smoke() { &[4] } else { &[4, 32, 256] };
    let iters: u32 = if is_smoke() { 1 } else { 10 };

    let mut rows: Vec<Row> = Vec::new();
    for w in picks {
        let m = w.generate(scale);
        let pipeline =
            Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Auto));
        let base = pipeline.prepare(&m).expect("prepare base");

        for &ops in sizes {
            for (kind, config) in [
                ("values", ChangesetConfig::default().values_only()),
                ("structural", ChangesetConfig::default().structural_only()),
            ] {
                let seq = changesets(
                    &m,
                    0xDE17A ^ ops as u64,
                    &ChangesetConfig {
                        deltas: 1,
                        ops_per_delta: ops,
                        ..config
                    },
                );
                let delta = &seq[0].1;
                let mutated = mutate(&m, delta);

                // Bit-identity gate before timing anything.
                let mut live = base.clone();
                let outcome = live.apply_delta(delta).expect("apply delta");
                let mut fresh = pipeline.prepare(&mutated).expect("prepare mutated");
                let x: Vec<f32> = (0..m.cols())
                    .map(|i| ((i % 9) as f32) * 0.5 - 2.0)
                    .collect();
                let n = m.rows() as usize;
                let (mut got, mut want) = (vec![0.0f32; n], vec![0.0f32; n]);
                live.execute_into(&x, &mut got).expect("live execute");
                fresh.execute_into(&x, &mut want).expect("fresh execute");
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{w}: delta-updated plan diverged from re-prepare ({kind}, {ops} ops)"
                );

                // apply = plan clone (refcount bumps on the shared
                // streams) + in-place delta application.
                let apply_s = time_each(iters, || {
                    let mut p = base.clone();
                    p.apply_delta(delta).expect("timed apply")
                });
                let reprepare_s =
                    time_each(iters, || pipeline.prepare(&mutated).expect("timed prepare"));

                let row = Row {
                    workload: w.to_string(),
                    kind,
                    ops,
                    outcome: outcome_name(&outcome),
                    apply_s,
                    reprepare_s,
                };
                println!(
                    "{:<14} {:<10} {:>4} ops  apply {:>9.3} ms ({})  re-prepare {:>9.2} ms  {:>8.1}x",
                    row.workload,
                    row.kind,
                    row.ops,
                    row.apply_s * 1e3,
                    row.outcome,
                    row.reprepare_s * 1e3,
                    row.speedup(),
                );
                rows.push(row);
            }
        }
    }

    // The headline figure: small changesets must be much cheaper to apply
    // than to re-prepare.
    let small = spasm_bench::geomean(rows.iter().filter(|r| r.ops == sizes[0]).map(Row::speedup));
    let overall = spasm_bench::geomean(rows.iter().map(Row::speedup));
    println!(
        "geomean apply-vs-re-prepare speedup: small changesets {small:.1}x, overall {overall:.1}x"
    );
    // Opt-in floor (SPASM_BENCH_ASSERT=1): applying a small changeset
    // must beat a full re-prepare by >= 2x geomean.
    spasm_bench::maybe_assert_speedup("matrix_updates small-changeset speedup", small, 2.0);

    // Hand-rolled JSON (no serde in the build environment).
    let mut json = String::from("{\n  \"bench\": \"matrix_updates\",\n");
    json.push_str(&spasm_bench::metadata_json());
    let _ = writeln!(json, "  \"smoke\": {},", is_smoke());
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"geomean_small_changeset_speedup\": {small},");
    let _ = writeln!(json, "  \"geomean_speedup\": {overall},");
    json.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"kind\": \"{}\", \"ops\": {}, \
             \"outcome\": \"{}\", \"apply_s\": {}, \"reprepare_s\": {}, \"speedup\": {}}}",
            r.workload,
            r.kind,
            r.ops,
            r.outcome,
            r.apply_s,
            r.reprepare_s,
            r.speedup(),
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    // cargo bench runs with the package dir as cwd; anchor the artifact at
    // the workspace root where CI picks it up.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_updates.json");
    std::fs::write(out, &json).expect("write bench json");
    println!("wrote {out}");
}
