//! The SPASM sparse data format (Section III of the paper).
//!
//! A matrix is stored in two levels:
//!
//! 1. **Global composition** — the non-empty tiles, in COO order
//!    (`tileRowIdx`, `tileColIdx`), each owning a slice of the instance
//!    stream;
//! 2. **Local patterns** — per tile, a stream of *template pattern
//!    instances*: one 32-bit [`PositionEncoding`] word shared by four `f32`
//!    values.
//!
//! The position encoding packs five fields: 13-bit `c_idx` and `r_idx`
//! (coordinates of the 4×4 submatrix inside the tile), 1-bit `CE`/`RE` tile
//! boundary flags that drive the input-vector and partial-sum buffers, and
//! the 4-bit template identifier `t_idx`. The maximum tile size is
//! therefore `2¹³ · 4 = 32 768` rows or columns.
//!
//! # Example
//!
//! ```
//! use spasm_format::{SpasmMatrix, SubmatrixMap};
//! use spasm_patterns::{DecompositionTable, TemplateSet};
//! use spasm_sparse::Coo;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let coo = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (1, 1, 2.0), (5, 6, 3.0)])?;
//! let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
//! let spasm = SpasmMatrix::encode(&SubmatrixMap::from_coo(&coo), &table, 8)?;
//! let y = spasm.spmv_alloc(&vec![1.0; 8])?;
//! assert_eq!(y[5], 3.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod crc;
mod encoding;
mod error;
mod fingerprint;
mod matrix;
mod serialize;
mod submatrix;
mod tiling;
mod wire3;

pub use crc::crc32;
pub use encoding::{PositionEncoding, MAX_TILE_SIZE, PATTERN_EDGE};
pub use error::FormatError;
pub use fingerprint::MatrixFingerprint;
pub use matrix::{SpasmMatrix, TemplateInstance, Tile};
pub use serialize::{WireError, CHECKSUM_BYTES, HEADER_BYTES, MAGIC, MIN_VERSION, VERSION};
pub use submatrix::{SubBlock, SubmatrixMap};
pub use tiling::{TileStats, TilingSummary, TILE_LANES};
pub use wire3::{
    is_v3, Header3, SectionEntry, Wire3Reader, Wire3Writer, ALIGN3, DIR_ENTRY_BYTES, HEADER3_BYTES,
    VERSION3,
};
