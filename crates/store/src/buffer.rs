//! Pinned, 64-byte-aligned plan buffers: the [`StableBytes`] backing for
//! mapped execution-plan streams.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::path::Path;
use std::sync::Arc;

use spasm_format::ALIGN3;
use spasm_hw::StableBytes;

use crate::StoreError;

/// How the buffer's bytes are held.
#[derive(Debug)]
enum Backing {
    /// Heap allocation, 64-byte aligned; freed on drop.
    Heap,
    /// `mmap`'d file pages (page alignment ≥ 64); unmapped on drop.
    #[cfg(unix)]
    Mmap,
}

/// An immutable byte buffer whose start is 64-byte aligned and whose
/// address never changes: the [`StableBytes`] implementor behind every
/// mapped [`spasm_hw::Stream`].
///
/// Built either by copying a byte slice into one aligned heap allocation
/// ([`PlanBuffer::from_bytes`] — the single permitted copy of an ingest
/// path) or by memory-mapping a file read-only ([`PlanBuffer::open`] —
/// no copy at all; the kernel pages bytes in on demand).
#[derive(Debug)]
pub struct PlanBuffer {
    ptr: *mut u8,
    len: usize,
    backing: Backing,
}

// SAFETY: the buffer is immutable after construction and exclusively
// owned until wrapped in an Arc; raw pointer aside, it is a plain byte
// region with no interior mutability.
unsafe impl Send for PlanBuffer {}
unsafe impl Sync for PlanBuffer {}

// SAFETY: `ptr` is never reallocated or written after construction and
// stays valid until `Drop`; `bytes` always returns the same slice.
unsafe impl StableBytes for PlanBuffer {
    fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe the live allocation (or mapping); for
        // the empty buffer, ptr is a dangling-but-aligned non-null
        // pointer, valid for a zero-length slice.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl PlanBuffer {
    /// Copies `bytes` into one fresh 64-byte-aligned heap allocation.
    ///
    /// This is the only copy an in-memory ingest path performs: every
    /// stream mapped out of the buffer afterwards borrows these bytes.
    pub fn from_bytes(bytes: &[u8]) -> Arc<PlanBuffer> {
        if bytes.is_empty() {
            return Arc::new(PlanBuffer {
                ptr: ALIGN3 as *mut u8,
                len: 0,
                backing: Backing::Heap,
            });
        }
        // An alignment of 64 and a non-zero size always form a valid
        // layout; a failed allocation aborts via handle_alloc_error.
        let layout = match Layout::from_size_align(bytes.len(), ALIGN3) {
            Ok(l) => l,
            Err(_) => std::alloc::handle_alloc_error(Layout::new::<u8>()),
        };
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { alloc_zeroed(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        // SAFETY: ptr points at a fresh allocation of bytes.len() bytes,
        // disjoint from `bytes`.
        unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), ptr, bytes.len()) };
        Arc::new(PlanBuffer {
            ptr,
            len: bytes.len(),
            backing: Backing::Heap,
        })
    }

    /// Maps the file at `path` read-only.
    ///
    /// On Unix this is a private `mmap` — zero bytes are copied and pages
    /// fault in lazily. Elsewhere (or if the mapping fails, e.g. on a
    /// filesystem without mmap support) the file is read into an aligned
    /// heap buffer instead, so callers behave identically everywhere.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be opened or read.
    pub fn open(path: &Path) -> Result<Arc<PlanBuffer>, StoreError> {
        #[cfg(unix)]
        {
            if let Some(buf) = Self::try_mmap(path)? {
                return Ok(buf);
            }
        }
        Ok(Self::from_bytes(&std::fs::read(path)?))
    }

    /// `true` when the bytes live in a file mapping rather than on the
    /// heap (capacity accounting prices the two differently).
    pub fn is_file_mapped(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(self.backing, Backing::Mmap)
        }
        #[cfg(not(unix))]
        {
            false
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[cfg(unix)]
    fn try_mmap(path: &Path) -> Result<Option<Arc<PlanBuffer>>, StoreError> {
        use std::os::unix::io::AsRawFd;

        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 || len > usize::MAX as u64 {
            // Zero-length maps are an error on most systems; fall back.
            return Ok(None);
        }
        let len = len as usize;

        const PROT_READ: i32 = 1;
        const MAP_PRIVATE: i32 = 2;
        extern "C" {
            fn mmap(
                addr: *mut std::ffi::c_void,
                length: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                offset: i64,
            ) -> *mut std::ffi::c_void;
        }
        // SAFETY: a fresh private read-only mapping of a file we hold
        // open; the kernel picks the address. The fd may be closed after
        // mmap returns — the mapping keeps the file referenced.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Ok(None); // MAP_FAILED → heap fallback
        }
        Ok(Some(Arc::new(PlanBuffer {
            ptr: ptr as *mut u8,
            len,
            backing: Backing::Mmap,
        })))
    }
}

impl Drop for PlanBuffer {
    fn drop(&mut self) {
        match self.backing {
            Backing::Heap => {
                if self.len > 0 {
                    if let Ok(layout) = Layout::from_size_align(self.len, ALIGN3) {
                        // SAFETY: allocated in from_bytes with this exact
                        // layout and never freed elsewhere.
                        unsafe { dealloc(self.ptr, layout) };
                    }
                }
            }
            #[cfg(unix)]
            Backing::Mmap => {
                extern "C" {
                    fn munmap(addr: *mut std::ffi::c_void, length: usize) -> i32;
                }
                // SAFETY: this exact mapping was created in try_mmap and
                // is unmapped exactly once.
                unsafe { munmap(self.ptr as *mut std::ffi::c_void, self.len) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_buffer_is_aligned_and_faithful() {
        let data: Vec<u8> = (0..=255).collect();
        let buf = PlanBuffer::from_bytes(&data);
        assert_eq!(buf.bytes(), &data[..]);
        assert_eq!(buf.bytes().as_ptr() as usize % ALIGN3, 0);
        assert!(!buf.is_file_mapped());
        assert_eq!(buf.len(), 256);
    }

    #[test]
    fn empty_buffer_is_fine() {
        let buf = PlanBuffer::from_bytes(&[]);
        assert!(buf.is_empty());
        assert_eq!(buf.bytes(), &[] as &[u8]);
    }

    #[test]
    fn mapped_file_round_trips() {
        let dir = std::env::temp_dir().join("spasm-store-buffer-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.bin");
        let data: Vec<u8> = (0u32..1000).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let buf = PlanBuffer::open(&path).unwrap();
        assert_eq!(buf.bytes(), &data[..]);
        assert_eq!(buf.bytes().as_ptr() as usize % ALIGN3, 0);
        #[cfg(unix)]
        assert!(buf.is_file_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = PlanBuffer::open(Path::new("/nonexistent/spasm/plan.v3")).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }
}
