//! Sparse-DNN inference: a 2:4-pruned multi-layer perceptron whose layer
//! products run on the simulated SPASM accelerator with a DBB template
//! portfolio.
//!
//! The paper motivates flexible pattern portfolios partly with the
//! density-bound-block (DBB) patterns that structured pruning produces
//! (Section II-A). This example builds 2:4-pruned weight matrices,
//! extends the candidate portfolios with `TemplateSet::dbb`, and shows
//! the framework selecting it — reaching zero padding where the Table V
//! sets must pad.
//!
//! ```text
//! cargo run --release -p spasm --example sparse_dnn
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spasm::{Pipeline, PipelineOptions};
use spasm_patterns::TemplateSet;
use spasm_sparse::{Csr, SpMv};
use spasm_workloads::nm_pruned;

fn relu(v: &mut [f32]) {
    for x in v {
        *x = x.max(0.0);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(2024);
    // A 3-layer MLP, all layers 2:4-pruned with paired rows (the DBB
    // layout structured-pruning kernels target).
    let dims = [512u32, 1024, 1024, 256];
    let weights: Vec<_> = dims
        .windows(2)
        .map(|d| nm_pruned(&mut rng, d[1], d[0], 2, 4, true))
        .collect();

    // Candidate portfolios: the paper's ten Table V sets plus the DBB
    // extension.
    let mut candidates = TemplateSet::table_v_candidates();
    candidates.push(TemplateSet::dbb());
    let options = PipelineOptions {
        candidates,
        ..PipelineOptions::default()
    };
    let pipeline = Pipeline::with_options(options);

    println!("layer  shape          nnz      portfolio   paddings  tile   config");
    let mut prepared_layers = Vec::new();
    for (i, w) in weights.iter().enumerate() {
        let p = pipeline.prepare(w)?;
        println!(
            "{:<6} {:>4}x{:<8} {:>8}  {:<11} {:>8}  {:>5}  {}",
            i,
            w.rows(),
            w.cols(),
            w.nnz(),
            p.selection.set.name(),
            p.encoded.paddings(),
            p.best.tile_size,
            p.best.config.name
        );
        prepared_layers.push(p);
    }

    // Inference on a batch of one input vector, accelerator vs host CSR.
    let x0: Vec<f32> = (0..dims[0])
        .map(|i| ((i % 17) as f32 - 8.0) * 0.1)
        .collect();

    let mut acc_act = x0.clone();
    let mut sim_seconds = 0.0;
    for p in &prepared_layers {
        let mut next = vec![0.0f32; p.encoded.rows() as usize];
        let exec = p.accelerator().run(&p.encoded, &acc_act, &mut next)?;
        sim_seconds += exec.seconds;
        relu(&mut next);
        acc_act = next;
    }

    let mut ref_act = x0;
    for w in &weights {
        let mut next = vec![0.0f32; w.rows() as usize];
        Csr::from(w).spmv(&ref_act, &mut next)?;
        relu(&mut next);
        ref_act = next;
    }

    let max_err = acc_act
        .iter()
        .zip(&ref_act)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("\nmax |accelerator - reference| over the output layer: {max_err:.2e}");
    println!("simulated inference time: {:.1} us", sim_seconds * 1e6);

    // The DBB portfolio's padding advantage over the best Table V set.
    let table_v_only = Pipeline::new();
    let p_v = table_v_only.prepare(&weights[0])?;
    let p_dbb = &prepared_layers[0];
    println!(
        "\nlayer-0 paddings: best Table V set ({}) = {}, with DBB portfolio ({}) = {}",
        p_v.selection.set.name(),
        p_v.encoded.paddings(),
        p_dbb.selection.set.name(),
        p_dbb.encoded.paddings()
    );
    Ok(())
}
