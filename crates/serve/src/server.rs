//! The serving front-end: catalog + admission queue + batch execution,
//! hardened for overload.
//!
//! [`SpmvServer`] ties the pieces together. Ingest routes a matrix
//! through the pipeline into the [`PlanCatalog`]; [`SpmvServer::submit`]
//! admits one request against a cached plan; the shared
//! [`VirtualClock`] drives deadline flushes. Batch *composition* is
//! decided inside the queue lock before any execution starts, so the
//! number of worker threads executing flushed batches can never change
//! which requests batch together — and since
//! `Prepared::execute_batch` is itself bit-identical to looped
//! single-vector execution for any thread count, every served result is
//! bit-identical to a batch-1 serve of the same trace.
//!
//! The overload-safety layer (PR 8) extends that determinism to every
//! degradation decision:
//!
//! * admission is bounded and rate-limited ([`crate::QueueConfig`]);
//!   refusals are typed [`Rejected`] reasons, never silent drops;
//! * requests admitted with a completion deadline are shed (typed, with
//!   the ticks-late amount) at flush time instead of executing late;
//! * each plan carries a circuit breaker ([`crate::breaker`]): too many
//!   integrity fallbacks quarantine the plan and serve it straight from
//!   the golden CSR (no ladder cost, `Output::degraded`), with
//!   deterministic half-open probes for re-admission. Routing happens
//!   serially at issue time and outcomes are recorded serially after the
//!   round's barrier — both in flush order — so the whole quarantine
//!   history is a pure function of the trace and clock schedule;
//! * a panicking worker poisons only its own batch: the panic is caught
//!   at the batch boundary, the batch is retried once (re-execution is
//!   pure, so results stay bit-identical and are never duplicated), and
//!   a second panic fails just that batch's requests with a typed error;
//! * [`SpmvServer::shutdown`] stops admission ([`Rejected::ShuttingDown`])
//!   and drains queued work to completion or typed rejection.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use spasm::{DeltaOutcome, IntegrityPolicy, Pipeline, PipelineError, Prepared};
use spasm_format::MatrixFingerprint;
use spasm_hw::HealthReport;
use spasm_sparse::{Coo, MatrixDelta, SpMv, SparseError};

use crate::breaker::{BreakerConfig, BreakerEvent, ExecRoute};
use crate::catalog::{CatalogConfig, CatalogError, PlanCatalog};
use crate::clock::{Deadline, Tick, VirtualClock};
use crate::queue::{AdmissionQueue, BatchSpec, FlushTrigger, QueueConfig, QueuedRequest, Rejected};

/// Configuration for an [`SpmvServer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Admission-queue coalescing and overload parameters.
    pub queue: QueueConfig,
    /// Plan-catalog byte budget.
    pub catalog: CatalogConfig,
    /// Per-plan circuit-breaker (quarantine) parameters.
    pub breaker: BreakerConfig,
    /// Worker threads executing flushed batches concurrently. `0` and
    /// `1` both mean "execute on the calling thread". Only throughput
    /// depends on this — never batch composition or results.
    pub workers: usize,
}

/// Errors surfaced to a single request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The fingerprint is not resident in the catalog.
    UnknownMatrix(MatrixFingerprint),
    /// The request vector's length does not match the matrix.
    Shape {
        /// The matrix's column count.
        expected: usize,
        /// The supplied vector length.
        actual: usize,
    },
    /// The request was refused or shed by overload policy — a typed
    /// [`Rejected`] reason with back-off / lateness detail.
    Rejected(Rejected),
    /// The executing worker panicked and the bounded retry panicked
    /// again; the batch's requests fail rather than re-queue forever.
    Panicked,
    /// Catalog ingest failed.
    Catalog(CatalogError),
    /// The underlying execution failed.
    Pipeline(PipelineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownMatrix(fp) => {
                write!(f, "matrix {} is not in the catalog", fp.token())
            }
            ServeError::Shape { expected, actual } => {
                write!(f, "request vector has length {actual}, expected {expected}")
            }
            ServeError::Rejected(r) => write!(f, "rejected: {r}"),
            ServeError::Panicked => {
                f.write_str("worker panicked executing the batch (retry also panicked)")
            }
            ServeError::Catalog(e) => write!(f, "catalog: {e}"),
            ServeError::Pipeline(e) => write!(f, "execution: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CatalogError> for ServeError {
    fn from(e: CatalogError) -> Self {
        ServeError::Catalog(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<Rejected> for ServeError {
    fn from(r: Rejected) -> Self {
        ServeError::Rejected(r)
    }
}

/// A successfully served request.
#[derive(Debug, Clone, PartialEq)]
pub struct Output {
    /// The product `A·x`.
    pub y: Vec<f32>,
    /// This vector's health under the request's integrity policy.
    pub health: HealthReport,
    /// How many requests were coalesced into the executing batch.
    pub batch_size: usize,
    /// Ticks spent queued (flush tick − arrival tick).
    pub queued_ticks: Tick,
    /// Simulated seconds of the whole batch execution on the modelled
    /// accelerator (shared by all members of the batch). Golden-CSR
    /// (quarantine) serves are priced at the plan's prepare-time
    /// estimate per vector.
    pub exec_seconds: f64,
    /// The tick at which the batch left the queue.
    pub flushed_at: Tick,
    /// Why the batch flushed.
    pub trigger: FlushTrigger,
    /// `true` when the plan was quarantined and this request was served
    /// directly from the golden CSR (graceful degradation — correct
    /// bits, no accelerator model, no verify-ladder cost).
    pub degraded: bool,
}

/// The outcome of one admitted request.
#[derive(Debug)]
pub struct Completion {
    /// The id [`SpmvServer::submit`] returned for the request.
    pub id: u64,
    /// The served output, or a per-request error.
    pub result: Result<Output, ServeError>,
}

/// One line of the batch log: which requests executed together and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// The matrix the batch ran against.
    pub fingerprint: MatrixFingerprint,
    /// Member request ids, in admission order (shed members excluded —
    /// they never executed).
    pub request_ids: Vec<u64>,
    /// The tick the batch left the queue.
    pub flushed_at: Tick,
    /// Why it flushed.
    pub trigger: FlushTrigger,
}

/// Deterministic counters for every overload / degradation decision the
/// server has taken. All counts are decided in serial sections (under
/// the queue lock, or in flush order around the execution barrier), so
/// they are a pure function of the trace for any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadStats {
    /// Submissions refused because the queue (global or group) was full.
    pub rejected_queue_full: u64,
    /// Submissions refused by the per-policy-class token bucket.
    pub rejected_rate_limited: u64,
    /// Submissions that arrived with an already-expired deadline.
    pub rejected_expired: u64,
    /// Submissions refused because the server is shutting down.
    pub rejected_shutdown: u64,
    /// Admitted requests shed at flush time (expired while queued).
    pub shed_expired: u64,
    /// Plans tripped into quarantine by the circuit breaker.
    pub quarantine_trips: u64,
    /// Plans re-admitted to the accelerator path by a clean probe.
    pub quarantine_recoveries: u64,
    /// Requests served from the golden CSR while their plan was
    /// quarantined.
    pub served_degraded: u64,
    /// Worker panics caught at the batch boundary (includes retry
    /// panics).
    pub worker_panics: u64,
    /// Requests re-executed after their batch's worker panicked.
    pub retried_requests: u64,
    /// Requests failed with [`ServeError::Panicked`] after the bounded
    /// retry also panicked.
    pub abandoned_requests: u64,
}

/// The SpMV serving front-end. See the module docs.
#[derive(Debug)]
pub struct SpmvServer {
    catalog: PlanCatalog,
    queue: Mutex<AdmissionQueue>,
    clock: VirtualClock,
    pipeline: Pipeline,
    breaker: BreakerConfig,
    next_id: AtomicU64,
    workers: usize,
    shutting_down: AtomicBool,
    log: Mutex<Vec<BatchRecord>>,
    stats: Mutex<OverloadStats>,
    /// Test hook (fault-injection builds): fingerprints whose next N
    /// batch executions panic at the worker boundary.
    #[cfg(feature = "fault-injection")]
    panic_armed: Mutex<std::collections::BTreeMap<MatrixFingerprint, u32>>,
}

impl SpmvServer {
    /// A server with the default ingest pipeline.
    pub fn new(config: ServerConfig) -> Self {
        Self::with_pipeline(config, Pipeline::new())
    }

    /// A server whose ingest runs a custom-configured pipeline (pinned
    /// portfolio, integrity defaults, thread budget, …).
    pub fn with_pipeline(config: ServerConfig, pipeline: Pipeline) -> Self {
        SpmvServer {
            catalog: PlanCatalog::new(config.catalog),
            queue: Mutex::new(AdmissionQueue::new(config.queue)),
            clock: VirtualClock::new(),
            pipeline,
            breaker: config.breaker,
            next_id: AtomicU64::new(0),
            workers: config.workers.max(1),
            shutting_down: AtomicBool::new(false),
            log: Mutex::new(Vec::new()),
            stats: Mutex::new(OverloadStats::default()),
            #[cfg(feature = "fault-injection")]
            panic_armed: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> Tick {
        self.clock.now()
    }

    /// The plan catalog (for inspection and direct management).
    pub fn catalog(&self) -> &PlanCatalog {
        &self.catalog
    }

    /// The circuit-breaker configuration in effect.
    pub fn breaker_config(&self) -> BreakerConfig {
        self.breaker
    }

    /// A snapshot of the overload / degradation counters.
    pub fn overload_stats(&self) -> OverloadStats {
        *self.lock_stats()
    }

    /// `true` once [`SpmvServer::shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Prepares a COO matrix through the server's pipeline and caches
    /// the plan. Returns the catalog key.
    ///
    /// # Errors
    ///
    /// [`ServeError::Pipeline`] when prepare fails, [`ServeError::Catalog`]
    /// when the plan cannot fit the cache budget.
    pub fn ingest_coo(&self, matrix: &Coo) -> Result<MatrixFingerprint, ServeError> {
        let prepared = self.pipeline.prepare(matrix)?;
        Ok(self.catalog.insert_prepared(prepared)?)
    }

    /// Ingests a wire stream — keyed by the *ingested stream's*
    /// canonical fingerprint, which remote clients can compute locally.
    /// Cheap no-op when already resident, decided from the stream header
    /// before any decode or prepare work.
    ///
    /// Wire-v3 containers (`spasm-store`) take the zero-copy cold-start
    /// path: validate and map, no pipeline prepare. v1/v2 streams
    /// decode and re-prepare on a residency miss.
    ///
    /// # Errors
    ///
    /// [`ServeError::Catalog`] wrapping decode, validation, prepare or
    /// budget failures.
    pub fn ingest_wire(&self, bytes: &[u8]) -> Result<MatrixFingerprint, ServeError> {
        Ok(self.catalog.insert_wire(bytes, &self.pipeline)?)
    }

    /// Applies a streaming update to the resident plan for `fingerprint`
    /// without evicting it: the plan absorbs the delta in place
    /// ([`spasm::Prepared::apply_delta`]) and the catalog entry is
    /// re-keyed under the mutated content and repriced. Returns the new
    /// fingerprint (the key subsequent submissions must use) and how the
    /// delta was absorbed.
    ///
    /// Coherence: a batch already flushed (its worker cloned the plan's
    /// value stream) keeps serving the pre-update values; requests
    /// flushed after this call serve the updated ones. Queued requests
    /// and live leases are never invalidated.
    ///
    /// # Errors
    ///
    /// [`ServeError::Catalog`] wrapping [`CatalogError::NotResident`] for
    /// an unknown key or the pipeline's delta-validation error (the plan
    /// is untouched).
    pub fn apply_delta(
        &self,
        fingerprint: &MatrixFingerprint,
        delta: &MatrixDelta,
    ) -> Result<(MatrixFingerprint, DeltaOutcome), ServeError> {
        Ok(self.catalog.apply_delta(fingerprint, delta)?)
    }

    /// Admits one request (no completion deadline) against the cached
    /// plan for `fingerprint`.
    ///
    /// Returns the request id plus any completions produced *right now*
    /// (the admission filled a batch to the size trigger). Otherwise the
    /// request waits for its group's deadline: drive the clock with
    /// [`SpmvServer::advance_to`] / [`SpmvServer::advance`], or flush
    /// unconditionally with [`SpmvServer::drain`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownMatrix`] and [`ServeError::Shape`] reject the
    /// request up front; [`ServeError::Rejected`] carries the typed
    /// overload refusals (queue full, rate limited, shutting down).
    /// Nothing is queued on error.
    pub fn submit(
        &self,
        fingerprint: MatrixFingerprint,
        x: Vec<f32>,
        policy: IntegrityPolicy,
    ) -> Result<(u64, Vec<Completion>), ServeError> {
        self.submit_inner(fingerprint, x, policy, None)
    }

    /// As [`SpmvServer::submit`], with a completion deadline: the request
    /// must *start executing* strictly before `deadline.at` or it is
    /// shed ([`Rejected::DeadlineExceeded`] with the ticks-late amount).
    /// A deadline tighter than the queue's coalescing delay flushes its
    /// group early ([`FlushTrigger::Urgent`]).
    ///
    /// # Errors
    ///
    /// As [`SpmvServer::submit`]; additionally, a request whose deadline
    /// has already passed is rejected up front.
    pub fn submit_with_deadline(
        &self,
        fingerprint: MatrixFingerprint,
        x: Vec<f32>,
        policy: IntegrityPolicy,
        deadline: Deadline,
    ) -> Result<(u64, Vec<Completion>), ServeError> {
        self.submit_inner(fingerprint, x, policy, Some(deadline))
    }

    fn submit_inner(
        &self,
        fingerprint: MatrixFingerprint,
        x: Vec<f32>,
        policy: IntegrityPolicy,
        deadline: Option<Deadline>,
    ) -> Result<(u64, Vec<Completion>), ServeError> {
        if self.is_shutting_down() {
            self.lock_stats().rejected_shutdown += 1;
            return Err(Rejected::ShuttingDown.into());
        }
        let lease = self
            .catalog
            .get(&fingerprint)
            .ok_or(ServeError::UnknownMatrix(fingerprint))?;
        if x.len() != lease.cols() as usize {
            return Err(ServeError::Shape {
                expected: lease.cols() as usize,
                actual: x.len(),
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let flushed = {
            let mut queue = self.lock_queue();
            let now = self.clock.now();
            queue.push(
                QueuedRequest {
                    id,
                    policy,
                    x,
                    arrival: now,
                    deadline,
                    lease,
                },
                now,
            )
        };
        let completions = match flushed {
            Ok(Some(batch)) => self.execute_batches(vec![batch]),
            Ok(None) => Vec::new(),
            Err(rejected) => {
                {
                    let mut stats = self.lock_stats();
                    match rejected {
                        Rejected::QueueFull { .. } => stats.rejected_queue_full += 1,
                        Rejected::RateLimited { .. } => stats.rejected_rate_limited += 1,
                        Rejected::DeadlineExceeded { .. } => stats.rejected_expired += 1,
                        Rejected::ShuttingDown => stats.rejected_shutdown += 1,
                    }
                }
                return Err(rejected.into());
            }
        };
        Ok((id, completions))
    }

    /// Advances the clock to `t` and executes every batch whose deadline
    /// has passed. Completions are returned in (deadline, admission)
    /// order regardless of worker count.
    pub fn advance_to(&self, t: Tick) -> Vec<Completion> {
        let now = self.clock.advance_to(t);
        let due = self.lock_queue().due(now);
        self.execute_batches(due)
    }

    /// Advances the clock by `ticks`; see [`SpmvServer::advance_to`].
    pub fn advance(&self, ticks: Tick) -> Vec<Completion> {
        let now = self.clock.advance(ticks);
        let due = self.lock_queue().due(now);
        self.execute_batches(due)
    }

    /// Flushes and executes everything still queued, without waiting for
    /// deadlines.
    pub fn drain(&self) -> Vec<Completion> {
        let now = self.clock.now();
        let batches = self.lock_queue().drain(now);
        self.execute_batches(batches)
    }

    /// Graceful shutdown: stops admitting ([`Rejected::ShuttingDown`]
    /// from then on) and drains everything queued to completion — or to
    /// a typed rejection for members whose deadline has expired. Safe to
    /// call more than once.
    pub fn shutdown(&self) -> Vec<Completion> {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.drain()
    }

    /// The earliest pending deadline, if any request is queued.
    pub fn next_deadline(&self) -> Option<Tick> {
        self.lock_queue().next_deadline()
    }

    /// Requests currently waiting in the queue.
    pub fn pending(&self) -> usize {
        self.lock_queue().len()
    }

    /// A copy of the batch log: every executed batch, in execution-issue
    /// order, with membership and flush metadata. Deterministic for a
    /// fixed trace and clock schedule.
    pub fn batch_log(&self) -> Vec<BatchRecord> {
        self.lock_log().clone()
    }

    /// Clears the batch log (e.g. between measurement phases).
    pub fn clear_batch_log(&self) {
        self.lock_log().clear();
    }

    /// Runs `f` against the cached plan for `fingerprint`, serialised
    /// with batch execution. Intended for maintenance and tests (e.g.
    /// arming fault campaigns on a served plan).
    pub fn with_prepared<R>(
        &self,
        fingerprint: MatrixFingerprint,
        f: impl FnOnce(&mut Prepared) -> R,
    ) -> Option<R> {
        let lease = self.catalog.get(&fingerprint)?;
        let mut prepared = lease.prepared();
        Some(f(&mut prepared))
    }

    /// Arms `count` injected worker panics for `fingerprint`: each of
    /// the next `count` batch executions against that plan panics at the
    /// worker boundary before touching the plan. Test hook for the
    /// panic-isolation path; deterministic when at most one batch per
    /// fingerprint executes per round.
    #[cfg(feature = "fault-injection")]
    pub fn arm_worker_panic(&self, fingerprint: MatrixFingerprint, count: u32) {
        let mut armed = self.panic_armed.lock().unwrap_or_else(|e| e.into_inner());
        if count == 0 {
            armed.remove(&fingerprint);
        } else {
            armed.insert(fingerprint, count);
        }
    }

    #[cfg(feature = "fault-injection")]
    fn maybe_injected_panic(&self, fingerprint: MatrixFingerprint) {
        let mut armed = self.panic_armed.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(n) = armed.get_mut(&fingerprint) {
            *n -= 1;
            if *n == 0 {
                armed.remove(&fingerprint);
            }
            drop(armed);
            panic!("injected worker panic (fault-injection test hook)");
        }
    }

    fn lock_queue(&self) -> MutexGuard<'_, AdmissionQueue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_log(&self) -> MutexGuard<'_, Vec<BatchRecord>> {
        self.log.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_stats(&self) -> MutexGuard<'_, OverloadStats> {
        self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Executes flushed batches, fanning out across up to
    /// `self.workers` scoped threads. Compositions were already fixed by
    /// the queue; this only affects wall-clock concurrency. Completions
    /// come back grouped per batch in flush order, ids ascending within
    /// a batch.
    ///
    /// Three serial sections bracket the concurrent execution, all in
    /// flush order, which is what keeps every overload decision
    /// worker-count independent: (1) *issue* — shed expired members and
    /// route each batch through its plan's circuit breaker; (2) *retry*
    /// — re-execute batches whose worker panicked (once; a second panic
    /// fails the batch typed); (3) *record* — feed per-vector outcomes
    /// back to the breakers and count transitions.
    fn execute_batches(&self, batches: Vec<BatchSpec>) -> Vec<Completion> {
        if batches.is_empty() {
            return Vec::new();
        }
        let now = self.clock.now();
        let mut slots: Vec<Vec<Completion>> = (0..batches.len()).map(|_| Vec::new()).collect();
        // Issue (serial, flush order): shed expired members, log the
        // executable compositions, route through the breakers.
        let mut work: Vec<(usize, BatchSpec, ExecRoute)> = Vec::new();
        for (i, mut batch) in batches.into_iter().enumerate() {
            let shed = std::mem::take(&mut batch.shed);
            if !shed.is_empty() {
                self.lock_stats().shed_expired += shed.len() as u64;
                for s in shed {
                    slots[i].push(Completion {
                        id: s.request.id,
                        result: Err(Rejected::DeadlineExceeded { late_by: s.late_by }.into()),
                    });
                }
            }
            if batch.requests.is_empty() {
                continue;
            }
            self.lock_log().push(BatchRecord {
                fingerprint: batch.fingerprint,
                request_ids: batch.requests.iter().map(|r| r.id).collect(),
                flushed_at: batch.flushed_at,
                trigger: batch.trigger,
            });
            let route = batch.requests[0].lease.entry().route(now, &self.breaker);
            if route == ExecRoute::Golden {
                self.lock_stats().served_degraded += batch.requests.len() as u64;
            }
            work.push((i, batch, route));
        }
        // Execute, catching panics at the batch boundary.
        let run = |batch: &BatchSpec, route: ExecRoute| -> Option<Vec<Completion>> {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.execute_one(batch, route)
            }))
            .ok()
        };
        let workers = self.workers.min(work.len());
        let mut outcomes: Vec<(usize, Option<Vec<Completion>>)> = if workers <= 1 {
            work.iter()
                .map(|(i, b, route)| (*i, run(b, *route)))
                .collect()
        } else {
            // Round-robin the batches over `workers` scoped threads, then
            // reassemble in flush order so the caller-visible order is
            // independent of scheduling.
            let mut shards: Vec<Vec<&(usize, BatchSpec, ExecRoute)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (k, item) in work.iter().enumerate() {
                shards[k % workers].push(item);
            }
            let mut all: Vec<(usize, Option<Vec<Completion>>)> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|shard| {
                        scope.spawn(move || {
                            shard
                                .into_iter()
                                .map(|(i, b, route)| (*i, run(b, *route)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    all.extend(h.join().unwrap_or_default());
                }
            });
            all.sort_by_key(|(i, _)| *i);
            all
        };
        // Retry (serial, flush order): a panicked batch is re-executed
        // exactly once; its requests were never completed, so the retry
        // cannot duplicate results, and re-execution is pure, so the
        // retried bits are identical to an undisturbed run.
        for (slot, completions) in outcomes.iter_mut() {
            if completions.is_some() {
                continue;
            }
            let Some((_, batch, route)) = work.iter().find(|(i, _, _)| i == slot) else {
                continue;
            };
            {
                let mut stats = self.lock_stats();
                stats.worker_panics += 1;
                stats.retried_requests += batch.requests.len() as u64;
            }
            *completions = match run(batch, *route) {
                Some(done) => Some(done),
                None => {
                    let mut stats = self.lock_stats();
                    stats.worker_panics += 1;
                    stats.abandoned_requests += batch.requests.len() as u64;
                    drop(stats);
                    Some(
                        batch
                            .requests
                            .iter()
                            .map(|r| Completion {
                                id: r.id,
                                result: Err(ServeError::Panicked),
                            })
                            .collect(),
                    )
                }
            };
        }
        // Record (serial, flush order): feed per-vector outcomes back to
        // each plan's breaker; count the transitions.
        for ((_, completions), (_, batch, route)) in outcomes.iter().zip(&work) {
            let Some(completions) = completions else {
                continue;
            };
            if *route != ExecRoute::Golden {
                let failures: Vec<bool> = completions
                    .iter()
                    .map(|c| match &c.result {
                        Ok(out) => out.health.fallback || out.health.needs_fallback(),
                        Err(_) => true,
                    })
                    .collect();
                let event = batch.requests[0].lease.entry().record_outcomes(
                    *route,
                    &failures,
                    now,
                    &self.breaker,
                );
                match event {
                    Some(BreakerEvent::Tripped { .. }) => {
                        self.lock_stats().quarantine_trips += 1;
                    }
                    Some(BreakerEvent::Recovered) => {
                        self.lock_stats().quarantine_recoveries += 1;
                    }
                    None => {}
                }
            }
        }
        for (slot, completions) in outcomes {
            if let Some(mut done) = completions {
                slots[slot].append(&mut done);
            }
        }
        slots
            .into_iter()
            .map(|mut batch_completions| {
                batch_completions.sort_by_key(|c| c.id);
                batch_completions
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect()
    }

    /// Executes one batch against its leased plan, on the route the
    /// breaker chose. On an indexed shape error (which submit-time
    /// validation should have made impossible) the offending request
    /// alone is rejected and the rest retried.
    fn execute_one(&self, batch: &BatchSpec, route: ExecRoute) -> Vec<Completion> {
        #[cfg(feature = "fault-injection")]
        self.maybe_injected_panic(batch.fingerprint);
        let requests = &batch.requests;
        let mut completions: Vec<Completion> = Vec::with_capacity(requests.len());
        if requests.is_empty() {
            return completions;
        }
        let lease = requests[0].lease.clone();
        let rows = lease.rows() as usize;
        if route == ExecRoute::Golden {
            // Quarantined plan: serve straight from the golden CSR — the
            // bit-exact reference, with none of the accelerator model or
            // verify-ladder cost. Priced at the plan's prepare-time
            // estimate per vector (the golden path has no cycle model).
            let prepared = lease.prepared();
            let golden = prepared.golden();
            let exec_seconds = lease.seconds_estimate() * requests.len() as f64;
            for request in requests {
                let mut y = vec![0.0f32; rows];
                let result = match golden.spmv(&request.x, &mut y) {
                    Ok(()) => Ok(Output {
                        y,
                        health: HealthReport::degraded_golden(),
                        batch_size: requests.len(),
                        queued_ticks: batch.flushed_at.saturating_sub(request.arrival),
                        exec_seconds,
                        flushed_at: batch.flushed_at,
                        trigger: batch.trigger,
                        degraded: true,
                    }),
                    // Unreachable through the public API (x is validated at
                    // submit, y is sized from the plan), but keep it typed.
                    Err(SparseError::DimensionMismatch {
                        expected, actual, ..
                    }) => Err(ServeError::Shape { expected, actual }),
                    Err(_) => Err(ServeError::Pipeline(PipelineError::EmptySearchSpace(
                        "golden serving path",
                    ))),
                };
                completions.push(Completion {
                    id: request.id,
                    result,
                });
            }
            completions.sort_by_key(|c| c.id);
            return completions;
        }
        // Accelerator path (healthy plan, or a half-open probe): the
        // per-vector integrity ladder runs under the batch's policy.
        let mut active: Vec<usize> = (0..requests.len()).collect();
        while !active.is_empty() {
            let size = active.len();
            let outcome = {
                let xs: Vec<&[f32]> = active.iter().map(|&k| requests[k].x.as_slice()).collect();
                let mut ys = vec![vec![0.0f32; rows]; size];
                let mut prepared = lease.prepared();
                prepared.set_integrity(batch.policy);
                match prepared.execute_batch_into(&xs, &mut ys) {
                    Ok(report) => {
                        let exec_seconds = report
                            .batch
                            .as_ref()
                            .map(|b| b.seconds)
                            .unwrap_or(report.seconds);
                        Ok((ys, prepared.batch_health().to_vec(), exec_seconds))
                    }
                    Err(e) => Err(e),
                }
            };
            match outcome {
                Ok((ys, health, exec_seconds)) => {
                    for ((&k, y), h) in active.iter().zip(ys).zip(health) {
                        let request = &requests[k];
                        completions.push(Completion {
                            id: request.id,
                            result: Ok(Output {
                                y,
                                health: h,
                                batch_size: size,
                                queued_ticks: batch.flushed_at.saturating_sub(request.arrival),
                                exec_seconds,
                                flushed_at: batch.flushed_at,
                                trigger: batch.trigger,
                                degraded: false,
                            }),
                        });
                    }
                    active.clear();
                }
                Err(PipelineError::BatchDimensionMismatch {
                    vector,
                    expected,
                    actual,
                    ..
                }) if vector < active.len() => {
                    let bad = active.remove(vector);
                    completions.push(Completion {
                        id: requests[bad].id,
                        result: Err(ServeError::Shape { expected, actual }),
                    });
                }
                Err(e) => {
                    for &k in &active {
                        completions.push(Completion {
                            id: requests[k].id,
                            result: Err(ServeError::Pipeline(e.clone())),
                        });
                    }
                    active.clear();
                }
            }
        }
        completions.sort_by_key(|c| c.id);
        completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::PolicyClass;
    use spasm_sparse::Coo;

    fn diag(n: u32) -> Coo {
        Coo::from_triplets(n, n, (0..n).map(|i| (i, i, 1.0 + i as f32)).collect())
            .expect("valid triplets")
    }

    fn server(max_batch: usize, max_delay: Tick) -> SpmvServer {
        SpmvServer::new(ServerConfig {
            queue: QueueConfig {
                max_batch,
                max_delay,
                ..QueueConfig::default()
            },
            ..ServerConfig::default()
        })
    }

    #[test]
    fn submit_rejects_unknown_and_misshapen_requests() {
        let s = server(4, 10);
        let fp = s.ingest_coo(&diag(16)).expect("ingest");
        let ghost = diag(8).clone();
        let ghost_fp = {
            let other = server(1, 0);
            other.ingest_coo(&ghost).expect("ingest")
        };
        assert!(matches!(
            s.submit(ghost_fp, vec![1.0; 8], IntegrityPolicy::off()),
            Err(ServeError::UnknownMatrix(_))
        ));
        assert!(matches!(
            s.submit(fp, vec![1.0; 5], IntegrityPolicy::off()),
            Err(ServeError::Shape {
                expected: 16,
                actual: 5
            })
        ));
        assert_eq!(s.pending(), 0, "rejected requests are never queued");
    }

    #[test]
    fn size_trigger_fires_on_the_filling_submit() {
        let s = server(2, 1_000);
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        let (id0, first) = s.submit(fp, vec![1.0; 8], IntegrityPolicy::off()).unwrap();
        assert!(first.is_empty());
        let (id1, second) = s.submit(fp, vec![2.0; 8], IntegrityPolicy::off()).unwrap();
        assert_eq!(second.len(), 2);
        assert_eq!(
            second.iter().map(|c| c.id).collect::<Vec<_>>(),
            vec![id0, id1]
        );
        for c in &second {
            let out = c.result.as_ref().expect("served");
            assert_eq!(out.batch_size, 2);
            assert_eq!(out.trigger, FlushTrigger::Size);
            assert!(!out.degraded);
        }
        assert_eq!(s.batch_log().len(), 1);
        assert_eq!(s.batch_log()[0].request_ids, vec![id0, id1]);
        assert_eq!(s.overload_stats(), OverloadStats::default());
    }

    #[test]
    fn policies_do_not_mix_within_a_batch() {
        let s = server(2, 100);
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        s.submit(fp, vec![1.0; 8], IntegrityPolicy::off()).unwrap();
        let (_, flushed) = s.submit(fp, vec![1.0; 8], IntegrityPolicy::full()).unwrap();
        assert!(
            flushed.is_empty(),
            "different policy classes must not coalesce"
        );
        assert_eq!(s.pending(), 2);
        let done = s.drain();
        assert_eq!(done.len(), 2);
        assert_eq!(s.batch_log().len(), 2, "two singleton batches");
        assert_ne!(
            PolicyClass::from(IntegrityPolicy::off()),
            PolicyClass::from(IntegrityPolicy::full())
        );
    }

    #[test]
    fn indexed_shape_error_evicts_only_the_offender() {
        // Submit-time validation makes this unreachable through the public
        // API, so drive execute_one directly with a malformed member.
        let s = server(4, 10);
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        let lease = s.catalog().get(&fp).expect("resident");
        let mk = |id: u64, len: usize| QueuedRequest {
            id,
            policy: IntegrityPolicy::off(),
            x: vec![1.0; len],
            arrival: 0,
            deadline: None,
            lease: lease.clone(),
        };
        let batch = BatchSpec {
            fingerprint: fp,
            policy: IntegrityPolicy::off(),
            requests: vec![mk(0, 8), mk(1, 3), mk(2, 8)],
            shed: Vec::new(),
            flushed_at: 5,
            trigger: FlushTrigger::Drain,
        };
        let completions = s.execute_one(&batch, ExecRoute::Plan);
        assert_eq!(completions.len(), 3);
        assert!(matches!(
            completions[1].result,
            Err(ServeError::Shape {
                expected: 8,
                actual: 3
            })
        ));
        for c in [&completions[0], &completions[2]] {
            let out = c.result.as_ref().expect("healthy members still serve");
            assert_eq!(out.batch_size, 2, "retried without the offender");
        }
    }

    #[test]
    fn queue_full_rejects_with_retry_hint() {
        let s = SpmvServer::new(ServerConfig {
            queue: QueueConfig {
                max_batch: 8,
                max_delay: 100,
                group_capacity: 8,
                global_capacity: 2,
                ..QueueConfig::default()
            },
            ..ServerConfig::default()
        });
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        s.submit(fp, vec![1.0; 8], IntegrityPolicy::off()).unwrap();
        s.submit(fp, vec![2.0; 8], IntegrityPolicy::off()).unwrap();
        let err = s
            .submit(fp, vec![3.0; 8], IntegrityPolicy::off())
            .expect_err("queue is full");
        match err {
            ServeError::Rejected(Rejected::QueueFull { retry_after }) => {
                assert_eq!(retry_after, 100, "hint points at the pending flush");
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(s.pending(), 2, "rejected request was not queued");
        assert_eq!(s.overload_stats().rejected_queue_full, 1);
        // Flushing frees the space.
        assert_eq!(s.advance_to(100).len(), 2);
        s.submit(fp, vec![3.0; 8], IntegrityPolicy::off())
            .expect("space freed after flush");
    }

    #[test]
    fn rate_limiter_is_deterministic_on_the_virtual_clock() {
        let s = SpmvServer::new(ServerConfig {
            queue: QueueConfig {
                max_batch: 100,
                max_delay: 1_000,
                rate: Some(crate::queue::RateLimit {
                    burst: 2,
                    period: 10,
                }),
                ..QueueConfig::default()
            },
            ..ServerConfig::default()
        });
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        let submit = || s.submit(fp, vec![1.0; 8], IntegrityPolicy::off());
        submit().expect("token 1");
        submit().expect("token 2");
        let err = submit().expect_err("bucket empty");
        match err {
            ServeError::Rejected(Rejected::RateLimited { retry_after }) => {
                assert_eq!(retry_after, 10, "next refill is one full period away");
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
        // One period later exactly one token has refilled.
        s.clock().advance_to(10);
        s.submit(fp, vec![1.0; 8], IntegrityPolicy::off())
            .expect("refilled token");
        let err = s
            .submit(fp, vec![1.0; 8], IntegrityPolicy::off())
            .expect_err("only one token refilled");
        assert!(matches!(
            err,
            ServeError::Rejected(Rejected::RateLimited { retry_after: 10 })
        ));
        assert_eq!(s.overload_stats().rejected_rate_limited, 2);
    }

    #[test]
    fn expired_submission_is_rejected_up_front() {
        let s = server(8, 100);
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        s.clock().advance_to(50);
        let err = s
            .submit_with_deadline(
                fp,
                vec![1.0; 8],
                IntegrityPolicy::off(),
                Deadline { at: 50 },
            )
            .expect_err("due exactly at now is expired");
        assert!(matches!(
            err,
            ServeError::Rejected(Rejected::DeadlineExceeded { late_by: 0 })
        ));
        assert_eq!(s.pending(), 0);
        assert_eq!(s.overload_stats().rejected_expired, 1);
    }

    #[test]
    fn tight_deadline_flushes_the_group_early() {
        let s = server(8, 1_000);
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        let (id0, _) = s.submit(fp, vec![1.0; 8], IntegrityPolicy::off()).unwrap();
        let (id1, _) = s
            .submit_with_deadline(
                fp,
                vec![2.0; 8],
                IntegrityPolicy::off(),
                Deadline { at: 40 },
            )
            .unwrap();
        // The tight deadline pulls the whole group's flush to tick 39 —
        // the last tick the member is still runnable.
        assert_eq!(s.next_deadline(), Some(39));
        let done = s.advance_to(39);
        assert_eq!(done.len(), 2);
        for c in &done {
            let out = c.result.as_ref().expect("served before expiry");
            assert_eq!(out.trigger, FlushTrigger::Urgent);
            assert_eq!(out.flushed_at, 39);
        }
        assert_eq!(
            done.iter().map(|c| c.id).collect::<Vec<_>>(),
            vec![id0, id1]
        );
        assert_eq!(s.overload_stats().shed_expired, 0);
    }

    #[test]
    fn expired_queued_request_is_shed_not_executed() {
        let s = server(8, 100);
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        let (id0, _) = s.submit(fp, vec![1.0; 8], IntegrityPolicy::off()).unwrap();
        let (id1, _) = s
            .submit_with_deadline(
                fp,
                vec![2.0; 8],
                IntegrityPolicy::off(),
                Deadline { at: 40 },
            )
            .unwrap();
        // The driver never checked in before tick 500: the deadline'd
        // request really expired while queued and must be shed; its
        // sibling still serves (stamped at the group's flush tick).
        let done = s.advance_to(500);
        assert_eq!(done.len(), 2);
        let shed = done.iter().find(|c| c.id == id1).expect("present");
        match &shed.result {
            Err(ServeError::Rejected(Rejected::DeadlineExceeded { late_by })) => {
                assert_eq!(*late_by, 460, "500 now − 40 deadline");
            }
            other => panic!("expected shed completion, got {other:?}"),
        }
        let served = done.iter().find(|c| c.id == id0).expect("present");
        assert!(served.result.is_ok());
        assert_eq!(s.overload_stats().shed_expired, 1);
        // The batch log records only what executed.
        assert_eq!(s.batch_log().len(), 1);
        assert_eq!(s.batch_log()[0].request_ids, vec![id0]);
    }

    #[test]
    fn shutdown_drains_and_then_rejects() {
        let s = server(8, 1_000);
        let fp = s.ingest_coo(&diag(8)).expect("ingest");
        let (id0, _) = s.submit(fp, vec![1.0; 8], IntegrityPolicy::off()).unwrap();
        let done = s.shutdown();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id0);
        assert!(done[0].result.is_ok(), "queued work drains to completion");
        assert!(s.is_shutting_down());
        let err = s
            .submit(fp, vec![1.0; 8], IntegrityPolicy::off())
            .expect_err("no admission after shutdown");
        assert!(matches!(err, ServeError::Rejected(Rejected::ShuttingDown)));
        assert_eq!(s.overload_stats().rejected_shutdown, 1);
        assert!(s.shutdown().is_empty(), "second shutdown is a no-op drain");
    }
}
