use crate::{Coo, Index, SparseError, Value};

/// Compressed Sparse Row (CSR) matrix.
///
/// Stores a row-pointer array of length `rows + 1`, plus column-index and
/// value arrays of length `nnz`. In the paper's storage model this costs
/// `4·(rows + 1) + 8·nnz` bytes (32-bit indices, `f32` values).
///
/// # Examples
///
/// ```
/// use spasm_sparse::{Coo, Csr};
///
/// # fn main() -> Result<(), spasm_sparse::SparseError> {
/// let coo = Coo::from_triplets(2, 3, vec![(0, 0, 1.0), (1, 2, 5.0)])?;
/// let csr = Csr::from(&coo);
/// assert_eq!(csr.row_ptr(), &[0, 1, 2]);
/// assert_eq!(csr.row(1).collect::<Vec<_>>(), vec![(2, 5.0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: Index,
    cols: Index,
    row_ptr: Vec<usize>,
    col_idx: Vec<Index>,
    values: Vec<Value>,
}

impl Csr {
    /// Builds a CSR matrix directly from its raw arrays.
    ///
    /// # Errors
    ///
    /// Returns an error if the arrays are inconsistent: `row_ptr` must have
    /// length `rows + 1`, start at 0, end at `col_idx.len()`, be
    /// non-decreasing, and every column index must be `< cols`. Column
    /// indices within each row must be strictly increasing.
    pub fn from_raw(
        rows: Index,
        cols: Index,
        row_ptr: Vec<usize>,
        col_idx: Vec<Index>,
        values: Vec<Value>,
    ) -> Result<Self, SparseError> {
        let bad = |message: &str| SparseError::ParseError {
            line: 0,
            message: message.into(),
        };
        if row_ptr.len() != rows as usize + 1 {
            return Err(bad("row_ptr length must be rows + 1"));
        }
        if col_idx.len() != values.len() {
            return Err(bad("col_idx and values must have equal length"));
        }
        if row_ptr.first() != Some(&0) || row_ptr.last() != Some(&col_idx.len()) {
            return Err(bad("row_ptr must start at 0 and end at nnz"));
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(bad("row_ptr must be non-decreasing"));
            }
            for pair in col_idx[w[0]..w[1]].windows(2) {
                if pair[0] >= pair[1] {
                    return Err(bad("column indices within a row must strictly increase"));
                }
            }
        }
        if let Some(&c) = col_idx.iter().max() {
            if c >= cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: 0,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        Ok(Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> Index {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> Index {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, concatenated row by row.
    pub fn col_indices(&self) -> &[Index] {
        &self.col_idx
    }

    /// Stored values, parallel to [`Csr::col_indices`].
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The `(column, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: Index) -> impl Iterator<Item = (Index, Value)> + '_ {
        let span = self.row_ptr[r as usize]..self.row_ptr[r as usize + 1];
        self.col_idx[span.clone()]
            .iter()
            .zip(&self.values[span])
            .map(|(&c, &v)| (c, v))
    }

    /// Number of stored entries in each row (used by load-imbalance models).
    pub fn row_lengths(&self) -> Vec<usize> {
        self.row_ptr.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// The stored value at `(r, c)`, or `None` when no entry exists there
    /// (including when the coordinate is out of bounds).
    ///
    /// Binary-searches the row's column slice — columns within a row are
    /// strictly increasing by construction.
    pub fn get(&self, r: Index, c: Index) -> Option<Value> {
        let pos = self.entry_position(r, c)?;
        Some(self.values[pos])
    }

    /// Overwrites the stored value at `(r, c)` in place, returning `true`
    /// when an entry existed there (and `false`, with the matrix
    /// unchanged, otherwise). The sparsity pattern is never altered.
    pub fn patch_value(&mut self, r: Index, c: Index, v: Value) -> bool {
        match self.entry_position(r, c) {
            Some(pos) => {
                self.values[pos] = v;
                true
            }
            None => false,
        }
    }

    /// Flat index of the entry at `(r, c)` in `col_idx`/`values`.
    fn entry_position(&self, r: Index, c: Index) -> Option<usize> {
        if r >= self.rows || c >= self.cols {
            return None;
        }
        let span = self.row_ptr[r as usize]..self.row_ptr[r as usize + 1];
        self.col_idx[span.clone()]
            .binary_search(&c)
            .ok()
            .map(|off| span.start + off)
    }
}

impl From<&Coo> for Csr {
    fn from(coo: &Coo) -> Self {
        let rows = coo.rows();
        let mut row_ptr = vec![0usize; rows as usize + 1];
        for &r in coo.row_indices() {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..rows as usize {
            row_ptr[i + 1] += row_ptr[i];
        }
        // COO is already (row, col)-sorted, so a straight copy preserves the
        // strictly-increasing column invariant within each row.
        Csr {
            rows,
            cols: coo.cols(),
            row_ptr,
            col_idx: coo.col_indices().to_vec(),
            values: coo.values().to_vec(),
        }
    }
}

impl From<&Csr> for Coo {
    fn from(csr: &Csr) -> Self {
        let mut triplets = Vec::with_capacity(csr.nnz());
        for r in 0..csr.rows() {
            for (c, v) in csr.row(r) {
                triplets.push((r, c, v));
            }
        }
        Coo::from_triplets(csr.rows(), csr.cols(), triplets)
            .expect("CSR entries are in bounds by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        Coo::from_triplets(
            3,
            4,
            vec![
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn coo_round_trip() {
        let coo = sample();
        let csr = Csr::from(&coo);
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.row_ptr(), &[0, 2, 3, 5]);
        assert_eq!(Coo::from(&csr), coo);
    }

    #[test]
    fn row_iteration() {
        let csr = Csr::from(&sample());
        let row0: Vec<_> = csr.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (3, 2.0)]);
        let row1: Vec<_> = csr.row(1).collect();
        assert_eq!(row1, vec![(1, 3.0)]);
    }

    #[test]
    fn row_lengths() {
        let csr = Csr::from(&sample());
        assert_eq!(csr.row_lengths(), vec![2, 1, 2]);
    }

    #[test]
    fn from_raw_validates() {
        assert!(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        // row_ptr wrong length
        assert!(Csr::from_raw(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        // decreasing row_ptr
        assert!(Csr::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        // column out of range
        assert!(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 2.0]).is_err());
        // duplicate column within a row
        assert!(Csr::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn get_and_patch_value() {
        let mut csr = Csr::from(&sample());
        assert_eq!(csr.get(0, 3), Some(2.0));
        assert_eq!(csr.get(0, 1), None);
        assert_eq!(csr.get(9, 0), None);
        assert_eq!(csr.get(0, 9), None);
        assert!(csr.patch_value(2, 2, -7.0));
        assert_eq!(csr.get(2, 2), Some(-7.0));
        assert!(!csr.patch_value(1, 0, 1.0), "absent cell is not patched");
        assert_eq!(csr.nnz(), 5, "patching never changes the pattern");
    }

    #[test]
    fn empty_rows_handled() {
        let coo = Coo::from_triplets(4, 4, vec![(3, 3, 9.0)]).unwrap();
        let csr = Csr::from(&coo);
        assert_eq!(csr.row_ptr(), &[0, 0, 0, 0, 1]);
        assert_eq!(csr.row(1).count(), 0);
    }
}
