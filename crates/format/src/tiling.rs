//! Global composition analysis — workflow step ④ — without materialising
//! the value stream.
//!
//! Algorithm 4 re-tiles the matrix for every candidate tile size; the
//! expensive parts (submatrix masks and decomposition instance counts) are
//! independent of the tile size, so [`TilingSummary`] only counts instances
//! per tile and leaves value movement to the final encode.

use std::collections::HashMap;

use spasm_patterns::DecompositionTable;

use crate::encoding::{MAX_TILE_SIZE, PATTERN_EDGE};
use crate::error::FormatError;
use crate::submatrix::SubmatrixMap;

/// PE lanes a tile's instances spread across (`r_idx mod 16`), matching
/// the 16 PEs of a group.
pub const TILE_LANES: usize = 16;

/// Instance statistics of one non-empty tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileStats {
    /// Tile row index.
    pub tile_row: u32,
    /// Tile column index.
    pub tile_col: u32,
    /// Template instances this tile will emit.
    pub n_instances: usize,
    /// Occupied 4×4 submatrices inside the tile.
    pub n_submatrices: usize,
    /// Instances on the tile's most-loaded PE lane (`r_idx mod 16`) — the
    /// tile's critical path when a 16-PE group processes it.
    pub max_lane_instances: usize,
}

/// The global composition of a matrix at one tile size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilingSummary {
    tile_size: u32,
    matrix_rows: u32,
    tile_rows: u32,
    tile_cols: u32,
    n_instances: usize,
    tiles: Vec<TileStats>,
}

impl TilingSummary {
    /// Computes the tile directory for `tile_size`, counting the instances
    /// each tile will emit under `table`'s portfolio.
    ///
    /// # Errors
    ///
    /// * [`FormatError::InvalidTileSize`] for non-multiple-of-4, zero, or
    ///   oversized tile sizes;
    /// * [`FormatError::UncoverablePattern`] if some occurring pattern
    ///   cannot be decomposed.
    pub fn analyze(
        map: &SubmatrixMap,
        table: &DecompositionTable,
        tile_size: u32,
    ) -> Result<Self, FormatError> {
        if tile_size == 0 || !tile_size.is_multiple_of(PATTERN_EDGE) || tile_size > MAX_TILE_SIZE {
            return Err(FormatError::InvalidTileSize(tile_size));
        }
        let subs_per_tile = tile_size / PATTERN_EDGE;
        struct Acc {
            instances: usize,
            submatrices: usize,
            lanes: [usize; TILE_LANES],
        }
        let mut per_tile: HashMap<(u32, u32), Acc> = HashMap::new();
        for b in map.blocks() {
            let inst = table
                .instance_count(b.mask)
                .ok_or(FormatError::UncoverablePattern { mask: b.mask })?
                as usize;
            let key = (b.sub_r / subs_per_tile, b.sub_c / subs_per_tile);
            let lane = ((b.sub_r % subs_per_tile) as usize) % TILE_LANES;
            let acc = per_tile.entry(key).or_insert(Acc {
                instances: 0,
                submatrices: 0,
                lanes: [0; TILE_LANES],
            });
            acc.instances += inst;
            acc.submatrices += 1;
            acc.lanes[lane] += inst;
        }
        let mut tiles: Vec<TileStats> = per_tile
            .into_iter()
            .map(|((tile_row, tile_col), acc)| TileStats {
                tile_row,
                tile_col,
                n_instances: acc.instances,
                n_submatrices: acc.submatrices,
                max_lane_instances: acc.lanes.iter().copied().max().unwrap_or(0),
            })
            .collect();
        tiles.sort_unstable_by_key(|t| (t.tile_row, t.tile_col));
        let n_instances = tiles.iter().map(|t| t.n_instances).sum();
        Ok(TilingSummary {
            tile_size,
            matrix_rows: map.rows(),
            tile_rows: map.rows().div_ceil(tile_size),
            tile_cols: map.cols().div_ceil(tile_size),
            n_instances,
            tiles,
        })
    }

    /// The tile edge length.
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Row count of the underlying matrix.
    pub fn matrix_rows(&self) -> u32 {
        self.matrix_rows
    }

    /// Number of tile rows in the full grid.
    pub fn tile_rows(&self) -> u32 {
        self.tile_rows
    }

    /// Number of tile columns in the full grid.
    pub fn tile_cols(&self) -> u32 {
        self.tile_cols
    }

    /// Non-empty tiles in `(tile_row, tile_col)` order.
    pub fn tiles(&self) -> &[TileStats] {
        &self.tiles
    }

    /// Total template instances across all tiles.
    pub fn n_instances(&self) -> usize {
        self.n_instances
    }

    /// Heights (in matrix rows) of the distinct tile rows that have work —
    /// the y-traffic driver.
    pub fn worked_row_heights(&self) -> Vec<u32> {
        let mut out: Vec<(u32, u32)> = Vec::new();
        for t in &self.tiles {
            if out.last().map(|&(r, _)| r) != Some(t.tile_row) {
                let height = (self.matrix_rows
                    - (t.tile_row * self.tile_size).min(self.matrix_rows))
                .min(self.tile_size);
                out.push((t.tile_row, height));
            }
        }
        out.into_iter().map(|(_, h)| h).collect()
    }

    /// Instance counts grouped by tile row.
    pub fn instances_per_tile_row(&self) -> Vec<(u32, usize)> {
        let mut out: Vec<(u32, usize)> = Vec::new();
        for t in &self.tiles {
            match out.last_mut() {
                Some((row, acc)) if *row == t.tile_row => *acc += t.n_instances,
                _ => out.push((t.tile_row, t.n_instances)),
            }
        }
        out
    }

    /// Load-imbalance factor: `max / mean` of per-tile instance counts
    /// (1.0 = perfectly balanced). Empty matrices report 1.0.
    pub fn tile_imbalance(&self) -> f64 {
        if self.tiles.is_empty() {
            return 1.0;
        }
        let max = self.tiles.iter().map(|t| t.n_instances).max().unwrap_or(0) as f64;
        let mean = self.n_instances as f64 / self.tiles.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_patterns::TemplateSet;
    use spasm_sparse::Coo;

    use crate::matrix::SpasmMatrix;

    fn table() -> DecompositionTable {
        DecompositionTable::build(&TemplateSet::table_v_set(0))
    }

    fn sample() -> Coo {
        let mut t = vec![];
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((r, c, 1.0));
            }
        }
        for i in 0..4u32 {
            t.push((8 + i, 8 + i, 2.0));
        }
        t.push((14, 2, -3.0));
        Coo::from_triplets(16, 16, t).unwrap()
    }

    #[test]
    fn summary_matches_full_encode() {
        let map = SubmatrixMap::from_coo(&sample());
        for tile in [4u32, 8, 16] {
            let summary = TilingSummary::analyze(&map, &table(), tile).unwrap();
            let full = SpasmMatrix::encode(&map, &table(), tile).unwrap();
            assert_eq!(summary.n_instances(), full.n_instances(), "tile {tile}");
            assert_eq!(summary.tiles().len(), full.tiles().len(), "tile {tile}");
            for (s, f) in summary.tiles().iter().zip(full.tiles()) {
                assert_eq!((s.tile_row, s.tile_col), (f.tile_row, f.tile_col));
                assert_eq!(s.n_instances, f.n_instances);
            }
        }
    }

    #[test]
    fn lane_statistics() {
        // Dense 4x4 block at submatrix (0,0): 4 instances, all on lane 0.
        let map = SubmatrixMap::from_coo(&sample());
        let s = TilingSummary::analyze(&map, &table(), 16).unwrap();
        let t00 = &s.tiles()[0];
        // The 16-tile holds the dense block (lane 0: 4 inst), the diagonal
        // (lane 2: 1 inst) and the scattered entry (lane 3: 1 inst).
        assert_eq!(t00.n_instances, 6);
        assert_eq!(t00.max_lane_instances, 4);
    }

    #[test]
    fn worked_row_heights() {
        let map = SubmatrixMap::from_coo(&sample());
        let s = TilingSummary::analyze(&map, &table(), 8).unwrap();
        assert_eq!(s.worked_row_heights(), vec![8, 8]);
        // A 10-row matrix with an entry in the second 8-tile row has a
        // short last row.
        let m = Coo::from_triplets(10, 10, vec![(9, 0, 1.0)]).unwrap();
        let s2 = TilingSummary::analyze(&SubmatrixMap::from_coo(&m), &table(), 8).unwrap();
        assert_eq!(s2.worked_row_heights(), vec![2]);
    }

    #[test]
    fn per_row_grouping() {
        let map = SubmatrixMap::from_coo(&sample());
        let summary = TilingSummary::analyze(&map, &table(), 8).unwrap();
        let rows = summary.instances_per_tile_row();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows.iter().map(|&(_, n)| n).sum::<usize>(),
            summary.n_instances()
        );
    }

    #[test]
    fn imbalance_is_at_least_one() {
        let map = SubmatrixMap::from_coo(&sample());
        let s = TilingSummary::analyze(&map, &table(), 8).unwrap();
        assert!(s.tile_imbalance() >= 1.0);
        let uniform = Coo::from_triplets(8, 8, (0..8u32).map(|i| (i, i, 1.0)).collect()).unwrap();
        let s2 = TilingSummary::analyze(&SubmatrixMap::from_coo(&uniform), &table(), 4).unwrap();
        assert!((s2.tile_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_tile_sizes_rejected() {
        let map = SubmatrixMap::from_coo(&sample());
        for bad in [0u32, 2, 5, MAX_TILE_SIZE + 4] {
            assert!(TilingSummary::analyze(&map, &table(), bad).is_err());
        }
    }
}
