//! Quickstart: encode a structured sparse matrix with SPASM and run one
//! accelerated SpMV.
//!
//! ```text
//! cargo run --release -p spasm --example quickstart
//! ```

use spasm::{spasm_report, Pipeline};
use spasm_sparse::{Coo, Csr, SpMv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a block-tridiagonal matrix (a classic FEM shape): dense 4x4
    // blocks on the diagonal and its neighbours.
    let nb = 256u32; // block rows
    let n = nb * 4;
    let mut triplets = Vec::new();
    for b in 0..nb {
        for (db, scale) in [(-1i64, -1.0f32), (0, 4.0), (1, -1.0)] {
            let bc = b as i64 + db;
            if bc < 0 || bc >= nb as i64 {
                continue;
            }
            for r in 0..4u32 {
                for c in 0..4u32 {
                    triplets.push((
                        b * 4 + r,
                        bc as u32 * 4 + c,
                        scale * 0.25 * (1 + r + c) as f32,
                    ));
                }
            }
        }
    }
    let a = Coo::from_triplets(n, n, triplets)?;
    println!("matrix: {}x{}, {} non-zeros", a.rows(), a.cols(), a.nnz());

    // Preprocess: pattern analysis, template selection, decomposition,
    // tiling and schedule exploration (workflow steps 1-5).
    let mut prepared = Pipeline::new().prepare(&a)?;
    println!(
        "selected portfolio: {} ({} templates), paddings: {}",
        prepared.selection.set.name(),
        prepared.selection.set.len(),
        prepared.encoded.paddings()
    );
    println!(
        "selected schedule: {} with tile size {}",
        prepared.best.config, prepared.best.tile_size
    );
    println!(
        "preprocessing: analysis {:?}, selection {:?}, decomposition {:?}, schedule {:?}",
        prepared.timings.analysis,
        prepared.timings.selection,
        prepared.timings.decomposition,
        prepared.timings.schedule,
    );

    // Execute y = A*x + y on the simulated accelerator (step 6).
    let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin()).collect();
    let mut y = vec![0.0f32; n as usize];
    let exec = prepared.execute(&x, &mut y)?;

    // Check against the CSR reference.
    let mut want = vec![0.0f32; n as usize];
    Csr::from(&a).spmv(&x, &mut want)?;
    let max_err = y
        .iter()
        .zip(&want)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f32, f32::max);
    println!("max |y_spasm - y_csr| = {max_err:.2e}");

    let report = spasm_report(&prepared, &exec);
    println!(
        "simulated execution: {:.3} ms, {:.1} GFLOP/s, {:.2} (GFLOP/s)/(GB/s), {:.2} (GFLOP/s)/W",
        exec.seconds * 1e3,
        report.gflops,
        report.bandwidth_eff,
        report.energy_eff
    );
    Ok(())
}
