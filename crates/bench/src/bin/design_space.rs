//! Design-space exploration (Section IV-D3's parameterisation made
//! exhaustive): every `(NUM_PE_GROUP, NUM_XVEC_CH)` combination that fits
//! the U280's 32 HBM channels, priced on the whole suite.
//!
//! The paper pre-synthesises three bitstreams; this harness shows why
//! those three are a sensible portfolio — which configurations win on
//! which global compositions, and whether any un-shipped configuration
//! would dominate.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin design_space [-- --scale paper]
//! ```

use std::collections::HashMap;

use spasm::Pipeline;
use spasm::PipelineOptions;
use spasm_bench::{rule, scale_from_args, scale_name};
use spasm_hw::HwConfig;

/// Every configuration fitting 32 channels (`1 + g·(x+6) ≤ 32`), at the
/// paper's conservative 250 MHz placement estimate for un-synthesised
/// points (the three shipped bitstreams keep their measured clocks).
fn all_configs() -> Vec<HwConfig> {
    let mut out = Vec::new();
    for g in 1..=4u32 {
        for x in 1..=8u32 {
            if 1 + g * (x + 6) > 32 {
                continue;
            }
            let shipped = [(4, 1, 252.0), (3, 4, 265.0), (3, 2, 251.0)]
                .into_iter()
                .find(|&(sg, sx, _)| sg == g && sx == x);
            let freq = shipped.map_or(250.0, |(_, _, f)| f);
            out.push(HwConfig::new(g, x, freq));
        }
    }
    out
}

fn main() {
    let scale = scale_from_args();
    let configs = all_configs();
    println!(
        "Design-space exploration — {} feasible configurations ({})",
        configs.len(),
        scale_name(scale)
    );
    rule(64);
    println!(
        "{:<14} {:>14} {:>12} {:>10}",
        "matrix", "best config", "tile", "GFLOP/s"
    );
    rule(64);

    let options = PipelineOptions {
        configs: configs.clone(),
        ..PipelineOptions::default()
    };
    let pipeline = Pipeline::with_options(options);
    let mut wins: HashMap<String, usize> = HashMap::new();
    spasm_bench::for_each_workload(scale, |w, m| {
        let mut prepared = pipeline.prepare(&m).expect("pipeline");
        let x = vec![1.0f32; m.cols() as usize];
        let mut y = vec![0.0f32; m.rows() as usize];
        let exec = prepared.execute(&x, &mut y).expect("simulate");
        println!(
            "{:<14} {:>14} {:>12} {:>10.2}",
            w.to_string(),
            prepared.best.config.name,
            prepared.best.tile_size,
            exec.gflops
        );
        *wins.entry(prepared.best.config.name.clone()).or_insert(0) += 1;
    });
    rule(64);
    let mut tally: Vec<(String, usize)> = wins.into_iter().collect();
    tally.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("wins per configuration across the suite:");
    for (name, n) in tally {
        let shipped = matches!(name.as_str(), "SPASM_4_1" | "SPASM_3_4" | "SPASM_3_2");
        println!(
            "  {name:<12} {n:>3} {}",
            if shipped { "(shipped bitstream)" } else { "" }
        );
    }
    println!(
        "(the paper ships SPASM_4_1 / SPASM_3_4 / SPASM_3_2 as its pre-synthesised \
         portfolio; exploration confirms which global compositions each serves)"
    );
}
