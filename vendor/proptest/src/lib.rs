//! Vendored, dependency-light stand-in for the subset of the `proptest` API
//! this workspace uses. The build environment has no registry access, so the
//! real crate cannot be fetched; this stub keeps the property tests
//! source-compatible.
//!
//! Differences from upstream, by design:
//! * **No shrinking.** A failing case reports the case number and panics with
//!   the assertion message; re-running is deterministic (the RNG is seeded
//!   from the test name), so failures reproduce exactly.
//! * **No persistence files**, no forking, no timeouts.
//!
//! Implemented surface: `Strategy` (with `prop_map`, `prop_flat_map`),
//! strategies for ranges and tuples, `Just`, `proptest::collection::vec`,
//! `prop_oneof!`, `proptest!`, `prop_assert!`, `prop_assert_eq!`, and
//! `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeFrom, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Re-export used by the `proptest!` macro expansion.
pub use rand as __rand;

/// The deterministic case generator handed to strategies.
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// A runner seeded from an arbitrary label (typically the test name),
    /// so every test draws an independent but reproducible stream.
    pub fn deterministic(label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: SmallRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A generator of values (stub of `proptest::strategy::Strategy`; no
/// shrinking, so `Value` is produced directly).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing function and draws
    /// from the produced strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        (**self).generate(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).generate(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        runner.rng().gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        runner.rng().gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeFrom<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        runner.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, G)
);

/// Collection strategies (stub of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Length domain for [`vec`]: built from `usize` ranges.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty vec size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = runner
                .rng()
                .gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Runtime configuration (stub of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    /// Upstream re-exports `proptest` itself through the prelude.
    pub use crate as proptest;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// A uniform union of boxed strategies, as built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union choosing uniformly among `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        let i = rand::Rng::gen_range(runner.rng(), 0..self.options.len());
        self.options[i].generate(runner)
    }
}

/// Declares property tests (stub of upstream `proptest!`): each `fn` runs
/// `cases` times with fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        let ($($pat,)+) = (
                            $($crate::Strategy::generate(&($strategy), &mut runner),)+
                        );
                        $body
                    }),
                );
                if let Err(payload) = result {
                    eprintln!(
                        "proptest stub: {} failed at case {}/{} (no shrinking; \
                         rerun reproduces deterministically)",
                        stringify!($name), case + 1, config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut runner = crate::TestRunner::deterministic("compose");
        let s = (1u32..5, 1u32..5).prop_flat_map(|(a, b)| {
            crate::collection::vec((0..a, 0..b), 1..8).prop_map(move |v| (a, b, v))
        });
        for _ in 0..200 {
            let (a, b, v) = s.generate(&mut runner);
            assert!(!v.is_empty() && v.len() < 8);
            for (x, y) in v {
                assert!(x < a && y < b);
            }
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let mut runner = crate::TestRunner::deterministic("oneof");
        let s = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut runner) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself expands and runs.
        #[test]
        fn macro_runs(v in crate::collection::vec(0u32..10, 1..5), k in 1u16..) {
            prop_assert!(v.len() < 5);
            prop_assert!(k >= 1);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
