//! Fig. 10 (Section V-C): storage cost of the decomposed matrices under
//! each fixed Table V template portfolio (sets 0–9) versus dynamic
//! per-matrix selection.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin fig10_template_selection [-- --scale paper]
//! ```

use spasm_bench::{geomean, rule, scale_from_args, scale_name};
use spasm_patterns::selection::TopN;
use spasm_patterns::{
    select_template_set, DecompositionTable, GridSize, PatternHistogram, TemplateSet,
};

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 10 — storage cost per template portfolio ({})",
        scale_name(scale)
    );
    let candidates = TemplateSet::table_v_candidates();
    let tables: Vec<DecompositionTable> =
        candidates.iter().map(DecompositionTable::build).collect();

    let width = 14 + 11 * 8 + 12 + 10;
    rule(width);
    print!("{:<14}", "matrix");
    for i in 0..candidates.len() {
        print!(" {:>7}", format!("set-{i}"));
    }
    println!(" {:>10} {:>9}", "dynamic", "winner");
    rule(width);

    let mut per_set_improvement: Vec<Vec<f64>> = vec![Vec::new(); candidates.len() + 1];
    spasm_bench::for_each_workload(scale, |w, m| {
        let hist = PatternHistogram::analyze(&m, GridSize::S4);
        let coo_bytes = 12.0 * m.nnz() as f64;
        print!("{:<14}", w.to_string());
        let mut bytes_per_set = Vec::new();
        for (i, table) in tables.iter().enumerate() {
            let mut instances = 0u64;
            for (&mask, &freq) in hist.iter() {
                instances += u64::from(table.instance_count(mask).expect("sets cover")) * freq;
            }
            let bytes = (instances * 20) as f64;
            bytes_per_set.push(bytes);
            per_set_improvement[i].push(coo_bytes / bytes);
            print!(" {:>7.2}", bytes / m.nnz() as f64);
        }
        // Dynamic = Algorithm 3 over all candidates (full histogram so the
        // reported storage is exact).
        let outcome = select_template_set(&hist, &candidates, TopN::All);
        let winner_idx = candidates
            .iter()
            .position(|c| c.name() == outcome.set.name())
            .expect("winner from candidates");
        let dyn_bytes = bytes_per_set[winner_idx];
        per_set_improvement[candidates.len()].push(coo_bytes / dyn_bytes);
        println!(
            " {:>10.2} {:>9}",
            dyn_bytes / m.nnz() as f64,
            outcome.set.name()
        );
    });
    rule(width);
    print!("{:<14}", "geomean vs COO");
    for imps in &per_set_improvement[..candidates.len()] {
        print!(" {:>6.2}x", geomean(imps.iter().copied()));
    }
    println!(
        " {:>9.2}x",
        geomean(per_set_improvement[candidates.len()].iter().copied())
    );
    println!(
        "(paper: no one-fits-all portfolio — dynamic selection matches the best \
         fixed set per matrix; columns are bytes per non-zero)"
    );
}
