//! Asserts the prepared-plan steady-state contract: once built (and the
//! pipeline warmed), `ExecutionPlan::run` performs **zero** heap
//! allocations per call — the scratch buffers, report and schedule are all
//! owned by the plan.
//!
//! A counting global allocator is armed only around the measured window,
//! so the (allocation-heavy) build phase does not pollute the count. The
//! window runs under a serial worker budget: spawning OS threads
//! inherently allocates, and the contract is about per-call *work*, not
//! about the fan-out machinery.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use spasm::{Parallelism, Pipeline, PipelineOptions};
use spasm_sparse::SpMv;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Counts heap allocations performed while `f` runs.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn plan_run_is_allocation_free_at_steady_state() {
    let mut t = Vec::new();
    for i in 0..256u32 {
        t.push((i, i, 2.0));
        t.push((i, (i * 5 + 2) % 256, 0.5));
        if i + 1 < 256 {
            t.push((i + 1, i, -0.25));
        }
    }
    let a = spasm_sparse::Coo::from_triplets(256, 256, t).unwrap();
    let prepared =
        Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Serial))
            .prepare(&a)
            .unwrap();
    let mut plan = prepared.accelerator().prepare(&prepared.encoded).unwrap();

    let x: Vec<f32> = (0..256).map(|i| ((i % 9) as f32) * 0.5 - 2.0).collect();
    let mut y = vec![0.0f32; 256];

    // Pin the plan to a serial budget for the measured window, and warm it
    // up (the very first run is already allocation-free, but the warm-up
    // keeps the test about steady state, not first-call behaviour).
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        for _ in 0..3 {
            plan.run(&x, &mut y).unwrap();
        }
        let allocs = count_allocs(|| {
            for _ in 0..50 {
                plan.run(&x, &mut y).unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "ExecutionPlan::run allocated {allocs} times over 50 steady-state calls"
        );
    });

    // The outputs stay correct after the counted window (sanity check that
    // the runs above actually did work).
    y.fill(0.0);
    plan.run(&x, &mut y).unwrap();
    let mut want = vec![0.0f32; 256];
    spasm_sparse::Csr::from(&a).spmv(&x, &mut want).unwrap();
    for (g, w) in y.iter().zip(&want) {
        assert!((g - w).abs() <= 1e-3 * (1.0 + w.abs()), "{g} vs {w}");
    }
}
