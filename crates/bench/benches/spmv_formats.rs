//! Criterion benchmarks of host-side SpMV across storage formats and of
//! the simulated accelerator — the substrate behind the throughput
//! figures.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spasm_format::{SpasmMatrix, SubmatrixMap};
use spasm_hw::{Accelerator, HwConfig};
use spasm_patterns::{DecompositionTable, TemplateSet};
use spasm_sparse::{Bsr, Csc, Csr, Dia, Ell, SpMv};
use spasm_workloads::{Scale, Workload};

fn bench_formats(c: &mut Criterion) {
    let m = Workload::Raefsky3.generate(Scale::Small);
    let n = m.cols() as usize;
    let x: Vec<f32> = (0..n).map(|i| (i % 13) as f32 * 0.25).collect();
    let rows = m.rows() as usize;

    let csr = Csr::from(&m);
    let csc = Csc::from(&m);
    let bsr = Bsr::from_coo(&m, 4).unwrap();
    let dia = Dia::from_coo(&m);
    let ell = Ell::from_coo(&m);
    let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
    let spasm = SpasmMatrix::encode(&SubmatrixMap::from_coo(&m), &table, 1024).unwrap();

    let mut g = c.benchmark_group("spmv_host");
    g.throughput(Throughput::Elements(m.nnz() as u64));
    macro_rules! bench {
        ($name:literal, $m:expr) => {
            g.bench_function($name, |b| {
                b.iter(|| {
                    let mut y = vec![0.0f32; rows];
                    $m.spmv(&x, &mut y).unwrap();
                    y
                })
            });
        };
    }
    bench!("coo", m);
    bench!("csr", csr);
    bench!("csc", csc);
    bench!("bsr4", bsr);
    bench!("dia", dia);
    bench!("ell", ell);
    g.bench_function("spasm_stream", |b| {
        b.iter(|| {
            let mut y = vec![0.0f32; rows];
            spasm.spmv(&x, &mut y).unwrap();
            y
        })
    });
    g.finish();

    let mut g2 = c.benchmark_group("simulator");
    g2.throughput(Throughput::Elements(m.nnz() as u64));
    for cfg in HwConfig::shipped() {
        let acc = Accelerator::new(cfg.clone());
        g2.bench_function(&cfg.name, |b| {
            b.iter(|| {
                let mut y = vec![0.0f32; rows];
                acc.run(&spasm, &x, &mut y).unwrap()
            })
        });
    }
    g2.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
