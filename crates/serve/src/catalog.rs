//! The multi-tenant plan catalog: content-addressed prepared plans under
//! a byte budget.
//!
//! Entries are keyed by [`MatrixFingerprint`] — the CRC-32 + length +
//! shape of the matrix's canonical v2 wire stream — so two tenants
//! uploading the same matrix share one [`spasm::Prepared`] (and, through
//! it, the `Arc`-shared value stream). Eviction is LRU under a
//! configurable byte budget, where an entry's size is its plan's
//! resident footprint ([`spasm_hw::ExecutionPlan::memory_bytes`]) plus
//! the encoded matrix and the golden CSR reference. Plans that are
//! *leased* (queued or executing requests hold a [`PlanLease`]) are
//! pinned and never evicted; inserting a plan that cannot fit alongside
//! the pinned set fails loudly instead of evicting in-flight work.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use spasm::{Pipeline, PipelineError, Prepared};
use spasm_format::{MatrixFingerprint, SpasmMatrix, WireError};

/// Configuration for a [`PlanCatalog`].
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    /// Total resident-byte budget across all cached plans.
    pub byte_budget: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            byte_budget: 512 << 20,
        }
    }
}

/// Errors from catalog ingest and lookup.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CatalogError {
    /// The wire stream did not decode.
    Wire(WireError),
    /// The pipeline could not prepare the matrix.
    Pipeline(PipelineError),
    /// The plan alone exceeds the whole budget; it can never be cached.
    PlanTooLarge {
        /// Resident bytes the plan needs.
        bytes: usize,
        /// The catalog's budget.
        budget: usize,
    },
    /// The plan fits the budget, but not alongside the currently pinned
    /// (in-flight) plans — nothing evictable is large enough.
    BudgetPinned {
        /// Resident bytes the plan needs.
        bytes: usize,
        /// Bytes held by pinned entries after evicting everything else.
        pinned: usize,
        /// The catalog's budget.
        budget: usize,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Wire(e) => write!(f, "wire decode failed: {e}"),
            CatalogError::Pipeline(e) => write!(f, "prepare failed: {e}"),
            CatalogError::PlanTooLarge { bytes, budget } => {
                write!(f, "plan needs {bytes} bytes, catalog budget is {budget}")
            }
            CatalogError::BudgetPinned {
                bytes,
                pinned,
                budget,
            } => write!(
                f,
                "plan needs {bytes} bytes but {pinned} of the {budget}-byte \
                 budget is pinned by in-flight plans"
            ),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<WireError> for CatalogError {
    fn from(e: WireError) -> Self {
        CatalogError::Wire(e)
    }
}

impl From<PipelineError> for CatalogError {
    fn from(e: PipelineError) -> Self {
        CatalogError::Pipeline(e)
    }
}

/// The resident footprint of a prepared plan for budgeting purposes: the
/// execution plan (stream, layout, scratch, shared values), the encoded
/// matrix's storage, and the golden CSR reference kept for the
/// degradation ladder.
pub fn prepared_bytes(p: &Prepared) -> usize {
    let golden = p.golden();
    p.plan.memory_bytes()
        + p.encoded.storage_bytes_full()
        + std::mem::size_of_val(golden.row_ptr())
        + std::mem::size_of_val(golden.col_indices())
        + std::mem::size_of_val(golden.values())
}

/// One cached plan. Accessed through a [`PlanLease`].
#[derive(Debug)]
pub struct CatalogEntry {
    fingerprint: MatrixFingerprint,
    prepared: Mutex<Prepared>,
    bytes: usize,
    rows: u32,
    cols: u32,
    pins: AtomicUsize,
    last_used: AtomicU64,
}

impl CatalogEntry {
    /// Locks the prepared plan for execution. Batches against the same
    /// matrix serialise here; the plan's own scratch is reused across
    /// them.
    pub fn prepared(&self) -> MutexGuard<'_, Prepared> {
        self.prepared.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The entry's content fingerprint.
    pub fn fingerprint(&self) -> MatrixFingerprint {
        self.fingerprint
    }

    /// Resident bytes charged against the catalog budget.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Dense row count of the cached matrix.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Dense column count of the cached matrix (the request-vector
    /// length the server validates against).
    pub fn cols(&self) -> u32 {
        self.cols
    }
}

/// An RAII pin on a catalog entry: while any lease is alive the entry is
/// in flight and will not be evicted. Cloning a lease re-pins.
#[derive(Debug)]
pub struct PlanLease {
    entry: Arc<CatalogEntry>,
}

impl PlanLease {
    fn new(entry: Arc<CatalogEntry>) -> Self {
        entry.pins.fetch_add(1, Ordering::SeqCst);
        PlanLease { entry }
    }

    /// The leased entry.
    pub fn entry(&self) -> &CatalogEntry {
        &self.entry
    }
}

impl Clone for PlanLease {
    fn clone(&self) -> Self {
        PlanLease::new(Arc::clone(&self.entry))
    }
}

impl Drop for PlanLease {
    fn drop(&mut self) {
        self.entry.pins.fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::ops::Deref for PlanLease {
    type Target = CatalogEntry;

    fn deref(&self) -> &CatalogEntry {
        &self.entry
    }
}

#[derive(Debug, Default)]
struct Inner {
    entries: BTreeMap<MatrixFingerprint, Arc<CatalogEntry>>,
    resident: usize,
    use_counter: u64,
}

/// The content-addressed plan cache. See the module docs for semantics.
#[derive(Debug)]
pub struct PlanCatalog {
    budget: usize,
    inner: Mutex<Inner>,
}

impl PlanCatalog {
    /// An empty catalog with the given budget.
    pub fn new(config: CatalogConfig) -> Self {
        PlanCatalog {
            budget: config.byte_budget,
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently resident across all entries.
    pub fn resident_bytes(&self) -> usize {
        self.lock().resident
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lock().entries.is_empty()
    }

    /// `true` when `fingerprint` is resident.
    pub fn contains(&self, fingerprint: &MatrixFingerprint) -> bool {
        self.lock().entries.contains_key(fingerprint)
    }

    /// The resident fingerprints, in key order.
    pub fn fingerprints(&self) -> Vec<MatrixFingerprint> {
        self.lock().entries.keys().copied().collect()
    }

    /// Leases the plan for `fingerprint`, bumping its recency and pinning
    /// it against eviction for the lease's lifetime.
    pub fn get(&self, fingerprint: &MatrixFingerprint) -> Option<PlanLease> {
        let mut inner = self.lock();
        inner.use_counter += 1;
        let stamp = inner.use_counter;
        let entry = inner.entries.get(fingerprint)?;
        entry.last_used.store(stamp, Ordering::SeqCst);
        Some(PlanLease::new(Arc::clone(entry)))
    }

    /// Caches `prepared` under the fingerprint of its own encoded matrix
    /// (the canonical content the pipeline produced). Returns the key.
    ///
    /// # Errors
    ///
    /// [`CatalogError::PlanTooLarge`] / [`CatalogError::BudgetPinned`]
    /// when the plan cannot fit (see the module docs).
    pub fn insert_prepared(&self, prepared: Prepared) -> Result<MatrixFingerprint, CatalogError> {
        let key = prepared.encoded.fingerprint();
        self.insert_keyed(key, prepared)?;
        Ok(key)
    }

    /// Decodes a wire stream, prepares it through `pipeline`, and caches
    /// the result keyed by the *ingested stream's* canonical fingerprint
    /// (which is what remote clients can compute), not the re-encoded
    /// one. If the key is already resident this is a cheap no-op.
    ///
    /// # Errors
    ///
    /// [`CatalogError::Wire`] on undecodable bytes,
    /// [`CatalogError::Pipeline`] when prepare fails, and the budget
    /// errors of [`PlanCatalog::insert_prepared`].
    pub fn insert_wire(
        &self,
        bytes: &[u8],
        pipeline: &Pipeline,
    ) -> Result<MatrixFingerprint, CatalogError> {
        let decoded = SpasmMatrix::from_bytes(bytes)?;
        let key = decoded.fingerprint();
        if self.contains(&key) {
            return Ok(key);
        }
        // Re-prepare from COO: the pipeline re-runs selection and
        // scheduling for this corpus member. ROADMAP item 2 (mmap'd v3
        // streams with embedded schedule hints) removes this cost; the
        // catalog's key is already the stable content address that work
        // needs.
        let prepared = pipeline.prepare(&decoded.to_coo())?;
        self.insert_keyed(key, prepared)?;
        Ok(key)
    }

    /// Inserts under an explicit key. No-op when the key is resident
    /// (entries are content-addressed: same key, same content).
    pub(crate) fn insert_keyed(
        &self,
        key: MatrixFingerprint,
        prepared: Prepared,
    ) -> Result<(), CatalogError> {
        let bytes = prepared_bytes(&prepared);
        if bytes > self.budget {
            return Err(CatalogError::PlanTooLarge {
                bytes,
                budget: self.budget,
            });
        }
        let mut inner = self.lock();
        if inner.entries.contains_key(&key) {
            return Ok(());
        }
        Self::evict_to_fit(&mut inner, self.budget, bytes)?;
        inner.use_counter += 1;
        let stamp = inner.use_counter;
        let entry = Arc::new(CatalogEntry {
            fingerprint: key,
            rows: prepared.plan.rows(),
            cols: prepared.plan.cols(),
            prepared: Mutex::new(prepared),
            bytes,
            pins: AtomicUsize::new(0),
            last_used: AtomicU64::new(stamp),
        });
        inner.resident += bytes;
        inner.entries.insert(key, entry);
        Ok(())
    }

    /// Evicts least-recently-used unpinned entries until `incoming` fits.
    fn evict_to_fit(inner: &mut Inner, budget: usize, incoming: usize) -> Result<(), CatalogError> {
        while inner.resident + incoming > budget {
            let victim = inner
                .entries
                .values()
                .filter(|e| e.pins.load(Ordering::SeqCst) == 0)
                .min_by_key(|e| e.last_used.load(Ordering::SeqCst))
                .map(|e| e.fingerprint);
            match victim {
                Some(fp) => {
                    if let Some(e) = inner.entries.remove(&fp) {
                        inner.resident -= e.bytes;
                    }
                }
                None => {
                    return Err(CatalogError::BudgetPinned {
                        bytes: incoming,
                        pinned: inner.resident,
                        budget,
                    });
                }
            }
        }
        Ok(())
    }

    /// Explicitly removes an entry. Returns `false` when the key is
    /// absent or the entry is pinned by a live lease.
    pub fn remove(&self, fingerprint: &MatrixFingerprint) -> bool {
        let mut inner = self.lock();
        let Some(entry) = inner.entries.get(fingerprint) else {
            return false;
        };
        if entry.pins.load(Ordering::SeqCst) > 0 {
            return false;
        }
        if let Some(e) = inner.entries.remove(fingerprint) {
            inner.resident -= e.bytes;
        }
        true
    }
}
