//! Fig. 9 (Section V-B): storage cost under 2×2, 3×3 and 4×4 local
//! pattern sizes.
//!
//! For a `p × p` local pattern, `p` elements plus their shared position
//! encoding occupy `(p + 1) · 4` bytes, so the per-non-zero cost is
//! `(p+1)/(p·(1−padding_rate)) · 4` bytes. Each size uses the analogous
//! all-vector template portfolio (rows + columns + diagonals +
//! anti-diagonals, `4p` templates).
//!
//! ```text
//! cargo run --release -p spasm-bench --bin fig9_pattern_size [-- --scale paper]
//! ```

use spasm_bench::{geomean, rule, scale_from_args, scale_name};
use spasm_patterns::{DecompositionTable, GridSize, PatternHistogram, TemplateSet};

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 9 — storage cost vs local pattern size ({})",
        scale_name(scale)
    );
    rule(74);
    println!(
        "{:<14} {:>12} | {:>8} {:>8} {:>8}  (bytes per non-zero)",
        "matrix", "COO B/nnz", "2x2", "3x3", "4x4"
    );
    rule(74);
    let mut totals: Vec<Vec<f64>> = vec![Vec::new(); 3];
    spasm_bench::for_each_workload(scale, |w, m| {
        let mut row = Vec::new();
        for (i, size) in GridSize::ALL.into_iter().enumerate() {
            let hist = PatternHistogram::analyze(&m, size);
            let table = DecompositionTable::build(&TemplateSet::vectors(size));
            let p = size.template_len() as u64;
            let mut instances = 0u64;
            for (&mask, &freq) in hist.iter() {
                instances +=
                    u64::from(table.instance_count(mask).expect("vector portfolios cover")) * freq;
            }
            let bytes = instances * (p + 1) * 4;
            let per_nnz = bytes as f64 / m.nnz() as f64;
            row.push(per_nnz);
            totals[i].push(12.0 / per_nnz); // improvement vs COO
        }
        println!(
            "{:<14} {:>12} | {:>8.2} {:>8.2} {:>8.2}",
            w.to_string(),
            12,
            row[0],
            row[1],
            row[2]
        );
    });
    rule(74);
    println!(
        "{:<14} {:>12} | {:>7.2}x {:>7.2}x {:>7.2}x  (geomean improvement vs COO)",
        "geomean",
        "1.00x",
        geomean(totals[0].iter().copied()),
        geomean(totals[1].iter().copied()),
        geomean(totals[2].iter().copied()),
    );
    println!(
        "(paper: 2x2 and 4x4 are marginally more efficient than 3x3; 4x4 chosen \
         to maximise parallelism)"
    );
}
