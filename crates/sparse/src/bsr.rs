use crate::{Coo, Index, SparseError, Value};

/// Block Sparse Row (BSR) matrix with square `b × b` blocks.
///
/// Rows and columns are padded up to a multiple of the block size; any block
/// containing at least one stored entry is materialised densely. The paper's
/// storage comparison uses `b = 2` and charges
/// `4·(block_rows + 1) + nblocks·(4 + 4·b²)` bytes (one 32-bit column index
/// plus `b²` `f32` values per block, CSR-style block row pointers).
#[derive(Debug, Clone, PartialEq)]
pub struct Bsr {
    rows: Index,
    cols: Index,
    block: u32,
    block_row_ptr: Vec<usize>,
    block_col_idx: Vec<Index>,
    /// Dense block payloads, `block * block` values each, row-major.
    block_values: Vec<Value>,
}

impl Bsr {
    /// Converts a COO matrix to BSR with the given square block size.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidBlockSize`] if `block == 0`.
    pub fn from_coo(coo: &Coo, block: u32) -> Result<Self, SparseError> {
        if block == 0 {
            return Err(SparseError::InvalidBlockSize(block));
        }
        let b = block as usize;
        let block_rows = (coo.rows() as usize).div_ceil(b);

        // Bucket entries by (block_row, block_col); COO order means block
        // rows arrive sorted, but block columns within a block row do not
        // (a later matrix row can introduce an earlier block column), so sort
        // the per-block-row directory afterwards.
        use std::collections::BTreeMap;
        let mut blocks: BTreeMap<(Index, Index), Vec<Value>> = BTreeMap::new();
        for (r, c, v) in coo.iter() {
            let key = (r / block, c / block);
            let payload = blocks.entry(key).or_insert_with(|| vec![0.0; b * b]);
            payload[(r % block) as usize * b + (c % block) as usize] += v;
        }

        let mut block_row_ptr = vec![0usize; block_rows + 1];
        let mut block_col_idx = Vec::with_capacity(blocks.len());
        let mut block_values = Vec::with_capacity(blocks.len() * b * b);
        for ((br, bc), payload) in blocks {
            block_row_ptr[br as usize + 1] += 1;
            block_col_idx.push(bc);
            block_values.extend_from_slice(&payload);
        }
        for i in 0..block_rows {
            block_row_ptr[i + 1] += block_row_ptr[i];
        }
        Ok(Bsr {
            rows: coo.rows(),
            cols: coo.cols(),
            block,
            block_row_ptr,
            block_col_idx,
            block_values,
        })
    }

    /// Number of (unpadded) rows.
    pub fn rows(&self) -> Index {
        self.rows
    }

    /// Number of (unpadded) columns.
    pub fn cols(&self) -> Index {
        self.cols
    }

    /// Block edge length.
    pub fn block_size(&self) -> u32 {
        self.block
    }

    /// Number of stored blocks.
    pub fn nblocks(&self) -> usize {
        self.block_col_idx.len()
    }

    /// Number of rows of blocks.
    pub fn block_rows(&self) -> usize {
        self.block_row_ptr.len() - 1
    }

    /// Stored values including the zero fill inside partially-occupied
    /// blocks; length is `nblocks · block²`.
    pub fn values(&self) -> &[Value] {
        &self.block_values
    }

    /// Fraction of stored block cells that are zero fill, given the number
    /// of genuine non-zeros `nnz`.
    pub fn fill_ratio(&self, nnz: usize) -> f64 {
        let cells = self.nblocks() * (self.block as usize).pow(2);
        if cells == 0 {
            return 0.0;
        }
        1.0 - nnz as f64 / cells as f64
    }

    /// Reconstructs the COO form (zero fill inside blocks is dropped).
    pub fn to_coo(&self) -> Coo {
        let b = self.block;
        let mut triplets = Vec::new();
        for br in 0..self.block_rows() {
            for slot in self.block_row_ptr[br]..self.block_row_ptr[br + 1] {
                let bc = self.block_col_idx[slot];
                let payload = &self.block_values
                    [slot * (b as usize).pow(2)..(slot + 1) * (b as usize).pow(2)];
                for i in 0..b {
                    for j in 0..b {
                        let v = payload[(i * b + j) as usize];
                        let (r, c) = (br as Index * b + i, bc * b + j);
                        if v != 0.0 && r < self.rows && c < self.cols {
                            triplets.push((r, c, v));
                        }
                    }
                }
            }
        }
        Coo::from_triplets(self.rows, self.cols, triplets)
            .expect("BSR entries are in bounds by construction")
    }

    /// Block-level SpMV `y += A·x` used by [`crate::SpMv`].
    pub(crate) fn spmv_into(&self, x: &[Value], y: &mut [Value]) {
        let b = self.block as usize;
        for br in 0..self.block_rows() {
            for slot in self.block_row_ptr[br]..self.block_row_ptr[br + 1] {
                let bc = self.block_col_idx[slot] as usize;
                let payload = &self.block_values[slot * b * b..(slot + 1) * b * b];
                for i in 0..b {
                    let r = br * b + i;
                    if r >= self.rows as usize {
                        break;
                    }
                    let mut acc = 0.0;
                    for j in 0..b {
                        let c = bc * b + j;
                        if c < self.cols as usize {
                            acc += payload[i * b + j] * x[c];
                        }
                    }
                    y[r] += acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        // 4x4 with a dense 2x2 block at (0,0) and a lone entry at (3,3).
        Coo::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 3.0),
                (1, 1, 4.0),
                (3, 3, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn block_structure() {
        let bsr = Bsr::from_coo(&sample(), 2).unwrap();
        assert_eq!(bsr.nblocks(), 2);
        assert_eq!(bsr.block_rows(), 2);
        // lone entry block has 3 zero-filled cells out of 4
        assert!((bsr.fill_ratio(5) - (1.0 - 5.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn round_trip() {
        let coo = sample();
        let bsr = Bsr::from_coo(&coo, 2).unwrap();
        assert_eq!(bsr.to_coo(), coo);
    }

    #[test]
    fn non_dividing_block_size() {
        // 3x3 with block 2 pads to 4x4 logically; entries must survive.
        let coo = Coo::from_triplets(3, 3, vec![(2, 2, 7.0), (0, 2, 1.0)]).unwrap();
        let bsr = Bsr::from_coo(&coo, 2).unwrap();
        assert_eq!(bsr.to_coo(), coo);
    }

    #[test]
    fn zero_block_size_rejected() {
        assert!(matches!(
            Bsr::from_coo(&sample(), 0),
            Err(SparseError::InvalidBlockSize(0))
        ));
    }

    #[test]
    fn block_columns_sorted_within_row() {
        // Entries that arrive in an order where a later matrix row has an
        // earlier block column.
        let coo = Coo::from_triplets(2, 6, vec![(0, 4, 1.0), (1, 0, 2.0), (1, 2, 3.0)]).unwrap();
        let bsr = Bsr::from_coo(&coo, 2).unwrap();
        assert_eq!(bsr.to_coo(), coo);
    }
}
