//! Design-choice ablation (beyond the paper's Fig. 14): the LPT tile
//! assignment versus naive round-robin, across the workload suite.
//!
//! The paper attributes part of SPASM's win to "workload schedules that
//! improve load balancing among the parallel processing units"; this
//! harness quantifies how much of that is the assignment policy itself.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin ablation_scheduler [-- --scale paper]
//! ```

use spasm_bench::{geomean, rule, scale_from_args, scale_name};
use spasm_format::{SubmatrixMap, TilingSummary};
use spasm_hw::{perf, timing, HwConfig};
use spasm_patterns::{DecompositionTable, TemplateSet};

fn cycles_with(summary: &TilingSummary, cfg: &HwConfig, lpt: bool) -> u64 {
    let jobs = perf::jobs_from_summary(summary);
    let y = timing::y_bytes(summary.worked_row_heights());
    let assignment = if lpt {
        timing::lpt_assign(jobs, cfg.num_pe_groups, summary.tile_size(), cfg)
    } else {
        timing::round_robin_assign(jobs, cfg.num_pe_groups)
    };
    let per_group: Vec<u64> = assignment
        .iter()
        .map(|a| timing::group_cycles(a, summary.tile_size(), cfg))
        .collect();
    timing::total_cycles(&per_group, y, cfg)
}

fn main() {
    let scale = scale_from_args();
    println!(
        "Scheduler ablation — LPT vs round-robin tile assignment ({})",
        scale_name(scale)
    );
    rule(72);
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10}",
        "matrix", "round-robin", "LPT", "speedup", "tiles"
    );
    rule(72);
    let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
    let cfg = HwConfig::spasm_4_1();
    let mut speedups = Vec::new();
    spasm_bench::for_each_workload(scale, |w, m| {
        let map = SubmatrixMap::from_coo(&m);
        let summary = TilingSummary::analyze(&map, &table, 1024).expect("tile 1024");
        let rr = cycles_with(&summary, &cfg, false);
        let lpt = cycles_with(&summary, &cfg, true);
        let speedup = rr as f64 / lpt as f64;
        speedups.push(speedup);
        println!(
            "{:<14} {:>12} {:>12} {:>9.2}x {:>10}",
            w.to_string(),
            rr,
            lpt,
            speedup,
            summary.tiles().len()
        );
    });
    rule(72);
    println!(
        "geomean LPT speedup over round-robin: {:.2}x (cycles at fixed tile 1024, {})",
        geomean(speedups.iter().copied()),
        cfg.name
    );
}
