//! Workload schedule exploration — workflow steps ④⑤ (Algorithm 4).
//!
//! For every candidate tile size, regenerate the global composition
//! ([`TilingSummary`]) and price it on every pre-synthesised hardware
//! configuration with the performance model; keep the `(tile size,
//! configuration)` pair with the fewest predicted cycles.

use spasm_format::{FormatError, SubmatrixMap, TilingSummary};
use spasm_hw::{perf, HwConfig};
use spasm_patterns::DecompositionTable;

use crate::error::PipelineError;

/// One explored point of the schedule search space.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleCandidate {
    /// Hardware configuration name.
    pub config_name: String,
    /// Tile edge length.
    pub tile_size: u32,
    /// Predicted cycles from the performance model.
    pub predicted_cycles: u64,
    /// Predicted wall-clock seconds at the configuration's frequency.
    pub predicted_seconds: f64,
}

/// The winning schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleChoice {
    /// Selected hardware configuration.
    pub config: HwConfig,
    /// Selected tile size.
    pub tile_size: u32,
    /// Predicted cycles of the winner.
    pub predicted_cycles: u64,
}

impl ScheduleChoice {
    /// Predicted cycles for serving a batch of `vectors` right-hand sides
    /// through this schedule: initialisation is paid once, the per-vector
    /// body repeats ([`spasm_hw::timing::batch_cycles`]). The same model
    /// prices [`spasm_hw::ExecReport::batch`] after a real batched run.
    pub fn predicted_batch_cycles(&self, vectors: usize) -> u64 {
        spasm_hw::timing::batch_cycles(self.predicted_cycles, vectors)
    }
}

/// Runs Algorithm 4 and returns the winner plus the full trace of explored
/// points (for the Fig. 14 ablation and for inspection).
///
/// Tile sizes that are invalid for the format (non-multiple-of-4, zero,
/// too large) are rejected as errors; tile sizes larger than the matrix
/// degenerate to a single tile and are legal.
///
/// # Errors
///
/// * [`PipelineError::EmptySearchSpace`] if `tile_sizes` or `configs` is
///   empty;
/// * [`PipelineError::Format`] if a tile size is invalid or a pattern is
///   uncoverable.
pub fn explore_schedule(
    map: &SubmatrixMap,
    table: &DecompositionTable,
    tile_sizes: &[u32],
    configs: &[HwConfig],
) -> Result<(ScheduleChoice, Vec<ScheduleCandidate>), PipelineError> {
    if tile_sizes.is_empty() {
        return Err(PipelineError::EmptySearchSpace("tile size"));
    }
    if configs.is_empty() {
        return Err(PipelineError::EmptySearchSpace("hardware configuration"));
    }
    // Tile sizes are independent: ④'s re-tiling dominates the sweep, so the
    // `tile_sizes × configs` grid is evaluated in parallel (one task per
    // tile size; each task prices every configuration on the shared
    // summary). Results come back in sweep order regardless of thread
    // count, and the argmin below is a deterministic reduction over that
    // order, so the winner is independent of parallelism.
    let per_tile = sweep_tiles(map, table, tile_sizes, configs);

    let mut explored = Vec::with_capacity(tile_sizes.len() * configs.len());
    let mut best: Option<(usize, usize)> = None;
    for (ti, config_reports) in per_tile.into_iter().enumerate() {
        let config_reports = config_reports.map_err(PipelineError::Format)?;
        for (ci, candidate) in config_reports.into_iter().enumerate() {
            let better = match best {
                None => true,
                Some((bt, bc)) => {
                    candidate_key(&candidate, ci)
                        < candidate_key(&explored[bt * configs.len() + bc], bc)
                }
            };
            if better {
                best = Some((ti, ci));
            }
            explored.push(candidate);
        }
    }
    // Both axes were checked non-empty above, so at least one candidate
    // was scored; the guard keeps this branch panic-free regardless.
    let Some((bt, bc)) = best else {
        return Err(PipelineError::EmptySearchSpace("schedule candidate"));
    };
    let winner = &explored[bt * configs.len() + bc];
    let choice = ScheduleChoice {
        config: configs[bc].clone(),
        tile_size: tile_sizes[bt],
        predicted_cycles: winner.predicted_cycles,
    };
    Ok((choice, explored))
}

/// The total order minimised by the schedule argmin.
///
/// Primary key: predicted wall-clock time (the configurations clock
/// differently, so cycles are not comparable across them). Ties break on
/// `(cycles, tile size, config index)` so the winner is unique and
/// independent of evaluation order — and therefore of thread count.
fn candidate_key(c: &ScheduleCandidate, config_index: usize) -> (f64, u64, u32, usize) {
    (
        c.predicted_seconds,
        c.predicted_cycles,
        c.tile_size,
        config_index,
    )
}

type TileReport = Result<Vec<ScheduleCandidate>, FormatError>;

/// Evaluates one tile size: ④ regenerate the global composition, ⑤ price it
/// on every configuration.
fn eval_tile(
    map: &SubmatrixMap,
    table: &DecompositionTable,
    tile_size: u32,
    configs: &[HwConfig],
) -> TileReport {
    let summary: TilingSummary = TilingSummary::analyze(map, table, tile_size)?;
    Ok(configs
        .iter()
        .map(|config| {
            let cycles = perf::estimate_cycles(&summary, config);
            ScheduleCandidate {
                config_name: config.name.clone(),
                tile_size,
                predicted_cycles: cycles,
                predicted_seconds: config.cycles_to_seconds(cycles),
            }
        })
        .collect())
}

#[cfg(feature = "parallel")]
fn sweep_tiles(
    map: &SubmatrixMap,
    table: &DecompositionTable,
    tile_sizes: &[u32],
    configs: &[HwConfig],
) -> Vec<TileReport> {
    use rayon::prelude::*;
    tile_sizes
        .par_iter()
        .map(|&tile_size| eval_tile(map, table, tile_size, configs))
        .collect()
}

#[cfg(not(feature = "parallel"))]
fn sweep_tiles(
    map: &SubmatrixMap,
    table: &DecompositionTable,
    tile_sizes: &[u32],
    configs: &[HwConfig],
) -> Vec<TileReport> {
    tile_sizes
        .iter()
        .map(|&tile_size| eval_tile(map, table, tile_size, configs))
        .collect()
}

/// The default tile-size sweep: powers of two from 256 to the format's
/// 32 768 maximum (the paper's ablation fixes 1024; exploration picks per
/// matrix).
pub fn default_tile_sizes() -> Vec<u32> {
    (8..=15).map(|k| 1u32 << k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_patterns::TemplateSet;
    use spasm_sparse::Coo;

    fn map(n: u32) -> SubmatrixMap {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 1.0));
            t.push((i, (i * 13 + 1) % n, 0.5));
        }
        SubmatrixMap::from_coo(&Coo::from_triplets(n, n, t).unwrap())
    }

    fn table() -> DecompositionTable {
        DecompositionTable::build(&TemplateSet::table_v_set(0))
    }

    #[test]
    fn default_sweep_is_in_range() {
        let sizes = default_tile_sizes();
        assert_eq!(sizes.first(), Some(&256));
        assert_eq!(sizes.last(), Some(&32768));
        assert!(sizes.iter().all(|s| s % 4 == 0));
    }

    #[test]
    fn winner_minimises_time() {
        let m = map(2048);
        let (choice, explored) =
            explore_schedule(&m, &table(), &[256, 1024, 4096], &HwConfig::shipped()).unwrap();
        let min = explored
            .iter()
            .map(|c| c.predicted_seconds)
            .fold(f64::INFINITY, f64::min);
        let winner_time = choice.config.cycles_to_seconds(choice.predicted_cycles);
        assert!((winner_time - min).abs() / min < 1e-12);
        assert_eq!(explored.len(), 9);
    }

    #[test]
    fn empty_spaces_rejected() {
        let m = map(64);
        assert!(matches!(
            explore_schedule(&m, &table(), &[], &HwConfig::shipped()),
            Err(PipelineError::EmptySearchSpace("tile size"))
        ));
        assert!(matches!(
            explore_schedule(&m, &table(), &[256], &[]),
            Err(PipelineError::EmptySearchSpace("hardware configuration"))
        ));
    }

    #[test]
    fn invalid_tile_size_propagates() {
        let m = map(64);
        assert!(matches!(
            explore_schedule(&m, &table(), &[6], &HwConfig::shipped()),
            Err(PipelineError::Format(FormatError::InvalidTileSize(6)))
        ));
    }

    #[test]
    fn predicted_batch_cycles_amortise_init() {
        let m = map(512);
        let (choice, _) =
            explore_schedule(&m, &table(), &[1024], &[HwConfig::spasm_4_1()]).unwrap();
        let single = choice.predicted_cycles;
        assert_eq!(choice.predicted_batch_cycles(1), single);
        let batch8 = choice.predicted_batch_cycles(8);
        // Eight vectors cost strictly less than eight independent runs —
        // the gap is exactly the seven amortised initialisations.
        assert_eq!(batch8, 8 * single - 7 * spasm_hw::timing::INIT_CYCLES);
        assert!(batch8 < 8 * single);
    }

    #[test]
    fn exploration_beats_or_matches_any_fixed_point() {
        let m = map(4096);
        let sizes = default_tile_sizes();
        let configs = HwConfig::shipped();
        let (choice, explored) = explore_schedule(&m, &table(), &sizes, &configs).unwrap();
        let winner_time = choice.config.cycles_to_seconds(choice.predicted_cycles);
        for c in &explored {
            assert!(winner_time <= c.predicted_seconds + 1e-15);
        }
    }
}
