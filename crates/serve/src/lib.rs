//! SPASM serving front-end: a multi-tenant SpMV service over prepared
//! execution plans.
//!
//! The engine below this crate gives two primitives an inference-style
//! server needs: cheap plan reuse ([`spasm::Prepared`]) and batched
//! execution that is bit-identical to looped single-vector runs
//! (`Prepared::execute_batch`). This crate adds the serving layer:
//!
//! * [`PlanCatalog`] — a content-addressed cache of prepared plans,
//!   keyed by [`spasm_format::MatrixFingerprint`] (CRC-32 + length +
//!   shape of the canonical v2 wire stream), with LRU eviction under a
//!   byte budget and pin-while-in-flight leases;
//! * [`AdmissionQueue`] — coalesces concurrent single-vector requests
//!   against the same (matrix, integrity-policy) key into batches,
//!   flushed by size or by deadline on a [`VirtualClock`] (tests never
//!   sleep; traces replay exactly), with bounded capacity, per-class
//!   token-bucket rate limiting and typed [`Rejected`] refusals;
//! * [`breaker`] — a per-plan circuit breaker: plans whose integrity
//!   keeps failing are quarantined and served straight from the golden
//!   CSR until a deterministic half-open probe re-admits them;
//! * [`SpmvServer`] — ties them together and executes flushed batches,
//!   optionally across worker threads (which can change throughput but
//!   never batch composition or results), with deadline-aware load
//!   shedding, panic isolation at the batch boundary and graceful
//!   drain on [`SpmvServer::shutdown`];
//! * [`loadgen`] — seeded open/closed-loop load generation with
//!   Zipf-skewed matrix popularity, behind the `loadgen` binary
//!   (including an `--overload` campaign).
//!
//! Determinism is the design spine: a fixed seed and virtual-clock
//! schedule produce the same batch compositions, the same rejections,
//! sheds and quarantine transitions, and bit-identical outputs on every
//! run, for any worker count (`tests/serving.rs`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod breaker;
mod catalog;
mod clock;
pub mod loadgen;
mod queue;
mod server;

pub use breaker::{BreakerConfig, BreakerEvent, BreakerState, ExecRoute, PlanHealth};
pub use catalog::{
    prepared_bytes, CatalogConfig, CatalogEntry, CatalogError, PlanCatalog, PlanLease,
};
pub use clock::{Deadline, Tick, VirtualClock};
pub use queue::{
    AdmissionQueue, BatchKey, BatchSpec, FlushTrigger, PolicyClass, QueueConfig, QueuedRequest,
    RateLimit, Rejected, ShedRequest,
};
pub use server::{
    BatchRecord, Completion, Output, OverloadStats, ServeError, ServerConfig, SpmvServer,
};
