//! Calibration constants for the baseline models.
//!
//! Each constant has a physical reading; together they place the baselines'
//! *absolute* throughput in the range their own papers report, so the
//! SPASM-vs-baseline ratios of Fig. 12 emerge from matrix structure rather
//! than from hand-tuned per-matrix numbers. EXPERIMENTS.md tracks the
//! resulting geomeans against the paper's 6.74× / 3.21× / 2.81× / 0.75×.

/// Bandwidth of one HBM pseudo-channel on the U280 (GB/s).
pub const HBM_CHANNEL_GBS: f64 = 460.0 / 32.0;

/// Stream-format footprint of both FPGA baselines: 8 bytes per non-zero
/// (the 1.50×-vs-COO line of Table VI).
pub const FPGA_STREAM_BYTES_PER_NNZ: f64 = 8.0;

/// Serpens: fraction of its matrix-channel bandwidth sustained when fully
/// fed. The streaming path itself is near-ideal (sequential bursts); the
/// sub-roofline throughput Serpens's evaluation reports (20–45 GFLOP/s on
/// comparable matrices) comes from the hazard and auxiliary terms below.
pub const SERPENS_STREAM_EFF: f64 = 0.95;

/// Serpens: read-after-write accumulator hazard constant. The effective
/// slowdown is `1 + K / mean_row_len`: short rows force the floating-point
/// accumulator to stall on dependent partial sums.
pub const SERPENS_HAZARD_K: f64 = 3.0;

/// Serpens: row-interleaved lanes per matrix channel (its PE arrangement).
pub const SERPENS_LANES_PER_CH: u32 = 8;

/// Serpens: *effective* HBM channels carrying the x/y auxiliary traffic —
/// below one full channel because the path shares arbitration with the
/// result-merge stage. This term is independent of the matrix-channel
/// count and is why the measured a16→a24 gap (3.21× vs 2.81× in the
/// paper's speedups) is far smaller than the 1.5× channel ratio.
pub const SERPENS_AUX_CHANNELS: f64 = 0.55;

/// Serpens: fixed per-launch overhead (descriptor setup, pipeline fill).
pub const SERPENS_OVERHEAD_S: f64 = 3e-6;

/// HiSparse: sustained fraction of its bandwidth. HiSparse clocks lower
/// (237 MHz) and its shuffle/arbiter stages stall far more than Serpens's
/// design — its paper reports single-digit-to-~20 GFLOP/s on most of this
/// suite.
pub const HISPARSE_STREAM_EFF: f64 = 0.20;

/// HiSparse: accumulator hazard constant (deeper adder dependency chain).
pub const HISPARSE_HAZARD_K: f64 = 16.0;

/// HiSparse: processing lanes.
pub const HISPARSE_LANES: u32 = 32;

/// HiSparse: on-chip x-vector buffer, in elements. Matrices wider than
/// this are processed in column blocks; every extra pass re-streams the
/// row pointers and re-loads the x block.
pub const HISPARSE_XBUF_ELEMS: u32 = 64 * 1024;

/// HiSparse: per-column-block pass overhead (seconds).
pub const HISPARSE_PASS_OVERHEAD_S: f64 = 8e-6;

/// HiSparse: fixed per-launch overhead.
pub const HISPARSE_OVERHEAD_S: f64 = 5e-6;

/// GPU: fraction of the RTX 3090's 935.8 GB/s that cuSPARSE SpMV
/// sustains on streaming traffic.
pub const GPU_STREAM_EFF: f64 = 0.86;

/// GPU: cache-line size for x gathers (bytes). Each distinct line touched
/// costs a full line of traffic; `MatrixProfile::lines_per_nnz` converts
/// this into per-matrix gather bytes.
pub const GPU_CACHE_LINE_B: f64 = 32.0;

/// GPU: fraction of x-gather lines served by L2 (temporal reuse across
/// warps); only the remainder reaches HBM.
pub const GPU_L2_HIT: f64 = 0.62;

/// GPU: kernel launch + cuSPARSE dispatch overhead (seconds).
pub const GPU_LAUNCH_OVERHEAD_S: f64 = 5e-6;
