use crate::{Coo, Index, SparseError, Value};

/// Diagonal (DIA) storage.
///
/// Stores every populated diagonal as a padded dense strip of length
/// `rows`. Diagonals are identified by their offset `k = col − row`
/// (`k = 0` is the main diagonal). Extremely efficient for banded matrices
/// and pathological for anything else — exactly the trade-off Table I
/// describes ("pattern-aware, padding required").
#[derive(Debug, Clone, PartialEq)]
pub struct Dia {
    rows: Index,
    cols: Index,
    /// Sorted diagonal offsets.
    offsets: Vec<i64>,
    /// `offsets.len() × rows` values, one padded strip per diagonal; strip
    /// slot `r` holds `A[r][r + k]` (0.0 where out of range or absent).
    strips: Vec<Value>,
    nnz: usize,
}

impl Dia {
    /// Converts a COO matrix to DIA storage.
    pub fn from_coo(coo: &Coo) -> Self {
        let mut offsets: Vec<i64> = coo.iter().map(|(r, c, _)| c as i64 - r as i64).collect();
        offsets.sort_unstable();
        offsets.dedup();
        let rows = coo.rows() as usize;
        let mut strips = vec![0.0; offsets.len() * rows];
        for (r, c, v) in coo.iter() {
            let k = c as i64 - r as i64;
            let d = offsets.binary_search(&k).expect("offset collected above");
            strips[d * rows + r as usize] += v;
        }
        Dia {
            rows: coo.rows(),
            cols: coo.cols(),
            offsets,
            strips,
            nnz: coo.nnz(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> Index {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> Index {
        self.cols
    }

    /// Number of genuine stored entries (pre-padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of populated diagonals.
    pub fn ndiags(&self) -> usize {
        self.offsets.len()
    }

    /// The sorted diagonal offsets (`col − row`).
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Total stored value slots including padding.
    pub fn stored_slots(&self) -> usize {
        self.strips.len()
    }

    /// Reconstructs the COO form (padding zeros are dropped).
    pub fn to_coo(&self) -> Result<Coo, SparseError> {
        let mut triplets = Vec::with_capacity(self.nnz);
        let rows = self.rows as i64;
        let cols = self.cols as i64;
        for (d, &k) in self.offsets.iter().enumerate() {
            for r in 0..rows {
                let c = r + k;
                if c < 0 || c >= cols {
                    continue;
                }
                let v = self.strips[d * self.rows as usize + r as usize];
                if v != 0.0 {
                    triplets.push((r as Index, c as Index, v));
                }
            }
        }
        Coo::from_triplets(self.rows, self.cols, triplets)
    }

    /// SpMV `y += A·x` along diagonals, used by [`crate::SpMv`].
    pub(crate) fn spmv_into(&self, x: &[Value], y: &mut [Value]) {
        let rows = self.rows as i64;
        let cols = self.cols as i64;
        for (d, &k) in self.offsets.iter().enumerate() {
            let strip = &self.strips[d * self.rows as usize..(d + 1) * self.rows as usize];
            let r_lo = 0.max(-k);
            let r_hi = rows.min(cols - k);
            for r in r_lo..r_hi {
                y[r as usize] += strip[r as usize] * x[(r + k) as usize];
            }
        }
    }
}

impl From<&Coo> for Dia {
    fn from(coo: &Coo) -> Self {
        Dia::from_coo(coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tridiagonal_round_trip() {
        let mut t = Vec::new();
        for i in 0u32..5 {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        let coo = Coo::from_triplets(5, 5, t).unwrap();
        let dia = Dia::from_coo(&coo);
        assert_eq!(dia.ndiags(), 3);
        assert_eq!(dia.offsets(), &[-1, 0, 1]);
        assert_eq!(dia.to_coo().unwrap(), coo);
    }

    #[test]
    fn scattered_matrix_pads_heavily() {
        let coo = Coo::from_triplets(4, 4, vec![(0, 3, 1.0), (3, 0, 2.0)]).unwrap();
        let dia = Dia::from_coo(&coo);
        assert_eq!(dia.ndiags(), 2);
        assert_eq!(dia.stored_slots(), 8); // 2 diagonals x 4 rows
        assert_eq!(dia.nnz(), 2);
    }

    #[test]
    fn rectangular_shapes() {
        let coo = Coo::from_triplets(2, 5, vec![(0, 4, 1.0), (1, 0, 2.0)]).unwrap();
        let dia = Dia::from_coo(&coo);
        assert_eq!(dia.to_coo().unwrap(), coo);
    }
}
