//! The SPASM processing element — Section IV-D2.
//!
//! A PE couples a double-buffered x-vector buffer, a partial-sum y buffer
//! and a VALU. Its opcode decoder is a look-up table loaded at
//! initialisation with the opcodes of the problem-specific template
//! portfolio; changing the LUT content is what makes the PE support
//! flexible pattern portfolios.

use spasm_format::TemplateInstance;

use crate::valu::{OpcodeError, ValuOpcode};

/// A processing element: the opcode LUT plus the VALU datapath.
///
/// Buffer state (x segment, partial sums) lives with the caller — the
/// simulator owns the full vectors and hands the PE 4-wide windows, which
/// matches the `c_idx`/`r_idx` indexed accesses of the hardware.
#[derive(Debug, Clone)]
pub struct Pe {
    lut: Vec<ValuOpcode>,
}

impl Pe {
    /// Compiles a template portfolio into the PE's opcode LUT.
    ///
    /// # Errors
    ///
    /// Returns the first [`OpcodeError`] if some template cannot be
    /// realised on the VALU datapath.
    pub fn new(template_masks: &[u16]) -> Result<Self, OpcodeError> {
        let lut = template_masks
            .iter()
            .map(|&m| ValuOpcode::compile(m))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Pe { lut })
    }

    /// Number of loaded opcodes.
    pub fn lut_len(&self) -> usize {
        self.lut.len()
    }

    /// The opcode for template `t_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `t_idx` is outside the loaded portfolio — in hardware that
    /// would be a malformed stream.
    pub fn opcode(&self, t_idx: u8) -> ValuOpcode {
        self.lut[t_idx as usize]
    }

    /// Processes one template instance: decodes its opcode, runs the VALU
    /// on the packed x segment of the instance's submatrix column, and
    /// accumulates the 4-row result into the partial-sum window
    /// `y_seg`.
    ///
    /// # Panics
    ///
    /// Panics if the instance's `t_idx` is outside the loaded portfolio.
    pub fn process_instance(&self, inst: &TemplateInstance, x_seg: [f32; 4], y_seg: &mut [f32; 4]) {
        let op = self.opcode(inst.encoding.t_idx());
        let out = op.execute(inst.values, x_seg);
        for r in 0..4 {
            y_seg[r] += out[r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_format::PositionEncoding;
    use spasm_patterns::TemplateSet;

    fn pe() -> Pe {
        let masks: Vec<u16> = TemplateSet::table_v_set(0).masks().collect();
        Pe::new(&masks).unwrap()
    }

    #[test]
    fn lut_loads_full_portfolio() {
        assert_eq!(pe().lut_len(), 16);
    }

    #[test]
    fn instance_accumulates_into_y() {
        let pe = pe();
        // t_idx 0 is row 0 in set 0.
        let inst = TemplateInstance {
            encoding: PositionEncoding::new(0, 0, false, false, 0),
            values: [1.0, 2.0, 3.0, 4.0],
        };
        let mut y = [10.0, 0.0, 0.0, 0.0];
        pe.process_instance(&inst, [1.0, 1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, [20.0, 0.0, 0.0, 0.0]);
        // Accumulation, not overwrite:
        pe.process_instance(&inst, [1.0, 1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, [30.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn rejects_unrealizable_portfolio() {
        assert!(Pe::new(&[0b0111_0001]).is_err()); // 4 cells but 3 in one row
    }

    #[test]
    #[should_panic]
    fn out_of_range_t_idx_panics() {
        let pe = Pe::new(&[0b1111]).unwrap();
        let inst = TemplateInstance {
            encoding: PositionEncoding::new(0, 0, false, false, 5),
            values: [0.0; 4],
        };
        let mut y = [0.0; 4];
        pe.process_instance(&inst, [0.0; 4], &mut y);
    }
}
