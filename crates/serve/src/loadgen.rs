//! Seeded load generation against an [`SpmvServer`].
//!
//! Everything here is driven by the server's virtual clock and the
//! vendored `rand` shim, so a load run is a pure function of its seed:
//! the same seed produces the same arrivals, the same request vectors,
//! the same batch compositions and the same latency distribution, on
//! any machine. Two drive modes mirror classic load-testing practice:
//!
//! * **open loop** ([`drive_open`]) — arrivals follow the trace's
//!   interarrival gaps regardless of completion times (models external
//!   traffic; exposes queueing delay honestly);
//! * **closed loop** ([`drive_closed`]) — a fixed pool of clients each
//!   submit, wait for their completion, think, and submit again (models
//!   a bounded user population).
//!
//! Matrix popularity is Zipf-skewed ([`Zipf`]), as serving corpora
//! usually are: a few hot matrices absorb most requests and coalesce
//! well, the long tail mostly rides deadline flushes.

use std::collections::{BinaryHeap, HashMap};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spasm::IntegrityPolicy;
use spasm_format::MatrixFingerprint;

use crate::clock::{Deadline, Tick};
use crate::server::{Completion, ServeError, SpmvServer};

/// Virtual ticks per simulated second: one tick is one microsecond.
pub const TICKS_PER_SECOND: f64 = 1_000_000.0;

/// A Zipf-distributed index sampler over `n` items with exponent `s`
/// (larger `s` = more skew; `s = 0` is uniform). Item 0 is the hottest.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` items (`n >= 1`).
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let weights: Vec<f64> = (1..=n).map(|rank| (rank as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cumulative }
    }

    /// Draws an index in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// One arrival in a request trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Absolute virtual arrival tick.
    pub at: Tick,
    /// Index of the target matrix in the corpus.
    pub matrix: usize,
    /// Seed for the request's input vector.
    pub x_seed: u64,
}

/// An infinite, seeded request stream: uniform interarrival gaps with
/// mean `mean_gap` ticks and Zipf-skewed matrix popularity.
#[derive(Debug, Clone)]
pub struct TraceGen {
    rng: SmallRng,
    zipf: Zipf,
    mean_gap: Tick,
    now: Tick,
}

impl TraceGen {
    /// A trace over `matrices` corpus entries.
    pub fn new(seed: u64, matrices: usize, zipf_s: f64, mean_gap: Tick) -> Self {
        TraceGen {
            rng: SmallRng::seed_from_u64(seed),
            zipf: Zipf::new(matrices, zipf_s),
            mean_gap,
            now: 0,
        }
    }
}

impl Iterator for TraceGen {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        let gap = self.rng.gen_range(0..=self.mean_gap.saturating_mul(2));
        self.now = self.now.saturating_add(gap);
        let matrix = self.zipf.sample(&mut self.rng);
        let x_seed = self.rng.gen_range(0..u64::MAX);
        Some(TraceEvent {
            at: self.now,
            matrix,
            x_seed,
        })
    }
}

/// A deterministic request vector of length `cols` for `seed`.
pub fn seeded_x(cols: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Aggregate statistics of one load run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-request end-to-end latency (queue wait + simulated batch
    /// execution), in ticks, in completion order.
    pub latencies: Vec<Tick>,
    /// Latencies grouped by corpus matrix index.
    pub per_matrix: Vec<Vec<Tick>>,
    /// Requests that completed with an output.
    pub completed: usize,
    /// Requests that completed with an error.
    pub errors: usize,
    /// Submissions refused at admission with a typed
    /// [`crate::Rejected`] reason (queue full, rate limited, expired,
    /// shutting down). Zero outside overload campaigns.
    pub rejected: usize,
    /// Admitted requests shed at flush time because their deadline
    /// expired while queued. Zero outside overload campaigns.
    pub shed: usize,
    /// Requests served degraded (golden-CSR, quarantined plan). Counted
    /// inside `completed` as well.
    pub degraded: usize,
    /// The largest virtual completion tick (flush + execution).
    pub end_tick: Tick,
    /// Executed batches, from the server's batch log.
    pub batches: usize,
}

impl RunStats {
    /// The `p`-th percentile latency in ticks (`p` in 0..=100) over a
    /// run; 0 for an empty run.
    pub fn percentile(&self, p: f64) -> Tick {
        percentile(&self.latencies, p)
    }

    /// Served requests per simulated second of virtual time.
    pub fn throughput_rps(&self) -> f64 {
        if self.end_tick == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.end_tick as f64 / TICKS_PER_SECOND)
    }

    /// Mean coalesced batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches as f64
    }
}

/// The `p`-th percentile (nearest-rank) of `samples`; 0 when empty.
pub fn percentile(samples: &[Tick], p: f64) -> Tick {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted: Vec<Tick> = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Ticks a completed request spent end to end: queue wait plus the
/// simulated batch execution time (shared by the whole batch).
fn completion_ticks(c: &Completion) -> Option<(Tick, Tick)> {
    let out = c.result.as_ref().ok()?;
    let exec = (out.exec_seconds * TICKS_PER_SECOND).ceil() as Tick;
    let latency = out.queued_ticks + exec;
    let done_at = out.flushed_at + exec;
    Some((latency, done_at))
}

fn record(stats: &mut RunStats, owners: &HashMap<u64, usize>, c: &Completion) {
    match completion_ticks(c) {
        Some((latency, done_at)) => {
            stats.completed += 1;
            stats.latencies.push(latency);
            stats.end_tick = stats.end_tick.max(done_at);
            if c.result.as_ref().map(|o| o.degraded).unwrap_or(false) {
                stats.degraded += 1;
            }
            if let Some(&m) = owners.get(&c.id) {
                if m < stats.per_matrix.len() {
                    stats.per_matrix[m].push(latency);
                }
            }
        }
        // A queued request that expired before execution comes back as a
        // typed shed completion, not an error.
        None if matches!(c.result, Err(ServeError::Rejected(_))) => stats.shed += 1,
        None => stats.errors += 1,
    }
}

/// Replays `requests` arrivals from `trace` open-loop against `server`,
/// submitting each corpus request at its trace tick and letting
/// deadlines fire in between. The queue is fully flushed before
/// returning.
pub fn drive_open(
    server: &SpmvServer,
    corpus: &[(MatrixFingerprint, usize)],
    trace: impl Iterator<Item = TraceEvent>,
    requests: usize,
    policy: IntegrityPolicy,
) -> RunStats {
    let mut stats = RunStats {
        per_matrix: vec![Vec::new(); corpus.len()],
        ..RunStats::default()
    };
    let mut owners: HashMap<u64, usize> = HashMap::new();
    let log_base = server.batch_log().len();
    for event in trace.take(requests) {
        // Fire any deadlines that pass before this arrival.
        while let Some(d) = server.next_deadline().filter(|&d| d <= event.at) {
            for c in server.advance_to(d) {
                record(&mut stats, &owners, &c);
            }
        }
        server.clock().advance_to(event.at);
        let m = event.matrix.min(corpus.len().saturating_sub(1));
        let (fp, cols) = corpus[m];
        let x = seeded_x(cols, event.x_seed);
        match server.submit(fp, x, policy) {
            Ok((id, completions)) => {
                owners.insert(id, m);
                for c in completions {
                    record(&mut stats, &owners, &c);
                }
            }
            Err(ServeError::Rejected(_)) => stats.rejected += 1,
            Err(_) => stats.errors += 1,
        }
    }
    // Let the remaining deadlines fire, then drain any stragglers.
    while let Some(d) = server.next_deadline() {
        for c in server.advance_to(d) {
            record(&mut stats, &owners, &c);
        }
    }
    for c in server.drain() {
        record(&mut stats, &owners, &c);
    }
    stats.batches = server.batch_log().len() - log_base;
    stats
}

/// Replays `requests` arrivals open-loop with every request carrying a
/// completion deadline of `relative_deadline` ticks, against a *busy
/// executor*: the driver models a serial backend that can only service
/// due flushes when it is free, so queued work genuinely outlives its
/// deadline under pressure. This is the `--overload` campaign: with a
/// bounded, rate-limited queue the run produces typed admission
/// rejections, flush-time sheds and (when the server's plans are
/// faulted) quarantine transitions — all deterministically, since the
/// busy-time accounting consumes completions in flush order.
///
/// `overcommit` scales the modeled per-vector service time (`1.0` =
/// the simulated accelerator's own cycle-model seconds). The benchmark
/// corpus executes in single-digit microseconds per batch, far faster
/// than any realistic request path; an overcommit factor stands in for
/// the RPC/serialisation/host overheads the model does not price, and
/// is what lets a small corpus genuinely saturate the executor.
#[allow(clippy::too_many_arguments)] // mirrors drive_open plus the overload knobs
pub fn drive_overload(
    server: &SpmvServer,
    corpus: &[(MatrixFingerprint, usize)],
    trace: impl Iterator<Item = TraceEvent>,
    requests: usize,
    policy: IntegrityPolicy,
    relative_deadline: Tick,
    overcommit: f64,
) -> RunStats {
    let mut stats = RunStats {
        per_matrix: vec![Vec::new(); corpus.len()],
        ..RunStats::default()
    };
    let mut owners: HashMap<u64, usize> = HashMap::new();
    let log_base = server.batch_log().len();
    // The simulated executor is busy until this tick; deadline flushes
    // that come due earlier wait for it (and may expire waiting).
    let mut busy_until: Tick = 0;
    let absorb = |stats: &mut RunStats,
                  owners: &HashMap<u64, usize>,
                  busy_until: &mut Tick,
                  now: Tick,
                  completions: Vec<Completion>| {
        for c in completions {
            if let Ok(out) = &c.result {
                // exec_seconds is the whole batch's cost, shared by its
                // members: charge each member its per-vector share so the
                // batch costs its total once.
                let share = (out.exec_seconds * TICKS_PER_SECOND * overcommit
                    / out.batch_size.max(1) as f64)
                    .ceil() as Tick;
                *busy_until = (*busy_until).max(now).saturating_add(share);
            }
            record(stats, owners, &c);
        }
    };
    for event in trace.take(requests) {
        // Service flushes that come due before this arrival — but only
        // once the executor frees up. A flush the executor cannot reach
        // before the arrival stays queued (and its members keep aging).
        while let Some(d) = server.next_deadline().filter(|&d| d <= event.at) {
            let check_at = d.max(busy_until);
            if check_at > event.at {
                break;
            }
            let done = server.advance_to(check_at);
            absorb(&mut stats, &owners, &mut busy_until, check_at, done);
        }
        server.clock().advance_to(event.at);
        let m = event.matrix.min(corpus.len().saturating_sub(1));
        let (fp, cols) = corpus[m];
        let x = seeded_x(cols, event.x_seed);
        let deadline = Deadline {
            at: event.at.saturating_add(relative_deadline),
        };
        match server.submit_with_deadline(fp, x, policy, deadline) {
            Ok((id, completions)) => {
                owners.insert(id, m);
                absorb(&mut stats, &owners, &mut busy_until, event.at, completions);
            }
            Err(ServeError::Rejected(_)) => stats.rejected += 1,
            Err(_) => stats.errors += 1,
        }
    }
    // Work off the backlog under the same busy-executor model, then
    // drain the stragglers.
    while let Some(d) = server.next_deadline() {
        let check_at = d.max(busy_until);
        let done = server.advance_to(check_at);
        absorb(&mut stats, &owners, &mut busy_until, check_at, done);
    }
    let now = server.now();
    let done = server.drain();
    absorb(&mut stats, &owners, &mut busy_until, now, done);
    stats.batches = server.batch_log().len() - log_base;
    stats
}

/// Drives `requests` total requests closed-loop: `clients` concurrent
/// clients each submit, await their completion, think for a seeded gap,
/// then submit again.
#[allow(clippy::too_many_arguments)] // mirrors drive_open plus the client-loop knobs
pub fn drive_closed(
    server: &SpmvServer,
    corpus: &[(MatrixFingerprint, usize)],
    seed: u64,
    zipf_s: f64,
    clients: usize,
    think_mean: Tick,
    requests: usize,
    policy: IntegrityPolicy,
) -> RunStats {
    let mut stats = RunStats {
        per_matrix: vec![Vec::new(); corpus.len()],
        ..RunStats::default()
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipf::new(corpus.len(), zipf_s);
    let mut owners: HashMap<u64, usize> = HashMap::new();
    let mut client_of: HashMap<u64, usize> = HashMap::new();
    let log_base = server.batch_log().len();

    // Min-heap of (tick, client) submit events; stagger the initial
    // arrivals like think time.
    let mut submits: BinaryHeap<std::cmp::Reverse<(Tick, usize)>> = (0..clients.max(1))
        .map(|cl| std::cmp::Reverse((rng.gen_range(0..=think_mean.saturating_mul(2)), cl)))
        .collect();
    let mut issued = 0usize;
    let mut outstanding = 0usize;

    let finish = |stats: &mut RunStats,
                  owners: &HashMap<u64, usize>,
                  client_of: &HashMap<u64, usize>,
                  rng: &mut SmallRng,
                  submits: &mut BinaryHeap<std::cmp::Reverse<(Tick, usize)>>,
                  outstanding: &mut usize,
                  c: Completion| {
        let done_at = completion_ticks(&c).map(|(_, d)| d).unwrap_or(0);
        record(stats, owners, &c);
        *outstanding -= 1;
        if let Some(&cl) = client_of.get(&c.id) {
            let think = rng.gen_range(0..=think_mean.saturating_mul(2));
            submits.push(std::cmp::Reverse((
                done_at.max(server.now()).saturating_add(think),
                cl,
            )));
        }
    };

    while issued < requests || outstanding > 0 {
        let next_submit = if issued < requests {
            submits.peek().map(|r| r.0)
        } else {
            None
        };
        let next_deadline = if outstanding > 0 {
            server.next_deadline()
        } else {
            None
        };
        match (next_submit, next_deadline) {
            (Some((t, _)), d) if d.is_none_or(|d| t <= d) => {
                // The next event is a client submit.
                for c in server.advance_to(t) {
                    finish(
                        &mut stats,
                        &owners,
                        &client_of,
                        &mut rng,
                        &mut submits,
                        &mut outstanding,
                        c,
                    );
                }
                let Some(std::cmp::Reverse((_, cl))) = submits.pop() else {
                    break;
                };
                let m = zipf.sample(&mut rng);
                let (fp, cols) = corpus[m];
                let x_seed = rng.gen_range(0..u64::MAX);
                match server.submit(fp, seeded_x(cols, x_seed), policy) {
                    Ok((id, completions)) => {
                        issued += 1;
                        outstanding += 1;
                        owners.insert(id, m);
                        client_of.insert(id, cl);
                        for c in completions {
                            finish(
                                &mut stats,
                                &owners,
                                &client_of,
                                &mut rng,
                                &mut submits,
                                &mut outstanding,
                                c,
                            );
                        }
                    }
                    Err(ServeError::Rejected(_)) => {
                        stats.rejected += 1;
                        issued += 1;
                    }
                    Err(_) => {
                        stats.errors += 1;
                        issued += 1;
                    }
                }
            }
            (_, Some(d)) => {
                for c in server.advance_to(d) {
                    finish(
                        &mut stats,
                        &owners,
                        &client_of,
                        &mut rng,
                        &mut submits,
                        &mut outstanding,
                        c,
                    );
                }
            }
            // (Some, None) with a false guard is unreachable: the guard
            // always passes when there is no deadline.
            _ => break,
        }
    }
    for c in server.drain() {
        record(&mut stats, &owners, &c);
    }
    stats.batches = server.batch_log().len() - log_base;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(8, 1.1);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[7], "rank 0 must be hottest: {counts:?}");
        assert!(counts.iter().all(|&c| c < 4000));
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let a: Vec<TraceEvent> = TraceGen::new(42, 4, 1.0, 50).take(64).collect();
        let b: Vec<TraceEvent> = TraceGen::new(42, 4, 1.0, 50).take(64).collect();
        let c: Vec<TraceEvent> = TraceGen::new(43, 4, 1.0, 50).take(64).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn seeded_vectors_are_stable() {
        assert_eq!(seeded_x(32, 9), seeded_x(32, 9));
        assert_ne!(seeded_x(32, 9), seeded_x(32, 10));
        assert!(seeded_x(32, 9).iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&s, 0.0), 10);
        assert_eq!(percentile(&s, 50.0), 30);
        assert_eq!(percentile(&s, 100.0), 50);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
