//! Fault isolation in coalesced serving: a poisoned vector inside a
//! coalesced batch degrades (golden-CSR fallback) only its own request;
//! sibling requests in the same batch stay pristine and bit-identical to
//! an unfaulted run.
//!
//! Requires `--features fault-injection`; registered in `crates/serve`
//! with `required-features` so plain `cargo test` skips it.

use spasm::hw::fault::{FaultPlan, FaultSpec};
use spasm::hw::HwConfig;
use spasm::sparse::{Coo, SpMv};
use spasm::{IntegrityPolicy, Pipeline, PipelineOptions};
use spasm_patterns::TemplateSet;
use spasm_serve::loadgen::seeded_x;
use spasm_serve::{QueueConfig, ServerConfig, SpmvServer};

/// A 300×300 scattered matrix spanning two 256-row tile rows under the
/// pinned schedule, 5 entries per row.
fn matrix() -> Coo {
    let n = 300u32;
    let mut t = Vec::new();
    for i in 0..n {
        for k in 0..5u32 {
            let j = (i * 37 + k * 13) % n;
            t.push((i, j, ((i + k) % 9 + 1) as f32 * 0.5));
        }
    }
    Coo::from_triplets(n, n, t).expect("valid triplets")
}

fn pinned_pipeline() -> Pipeline {
    Pipeline::with_options(
        PipelineOptions::default()
            .fixed_portfolio(TemplateSet::table_v_set(0))
            .fixed_schedule(256, HwConfig::spasm_4_1()),
    )
}

fn bits(y: &[f32]) -> Vec<u32> {
    y.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn poisoned_vector_degrades_only_its_own_request() {
    let m = matrix();
    let n = m.cols() as usize;
    let xs: Vec<Vec<f32>> = (0..3).map(|k| seeded_x(n, 100 + k)).collect();
    let policy = IntegrityPolicy::full();

    // Oracles from an identical pinned pipeline: the clean accelerator
    // bits per vector, and the golden CSR bits the fallback must produce.
    let mut oracle = pinned_pipeline().prepare(&m).expect("prepare oracle");
    let clean: Vec<Vec<u32>> = xs
        .iter()
        .map(|x| {
            let mut y = vec![0.0f32; n];
            oracle.execute(x, &mut y).expect("oracle execute");
            bits(&y)
        })
        .collect();
    let mut y_csr = vec![0.0f32; n];
    oracle.golden().spmv(&xs[1], &mut y_csr).expect("csr spmv");

    // Coalesce all three requests into one size-triggered batch, arming a
    // persistent all-lane fault for batch vector 1 before the flush.
    let server = SpmvServer::with_pipeline(
        ServerConfig {
            queue: QueueConfig {
                max_batch: 3,
                max_delay: 1_000,
            },
            workers: 2,
            ..ServerConfig::default()
        },
        pinned_pipeline(),
    );
    let fp = server.ingest_coo(&m).expect("ingest");
    let (id0, c) = server.submit(fp, xs[0].clone(), policy).expect("submit");
    assert!(c.is_empty());
    let (id1, c) = server.submit(fp, xs[1].clone(), policy).expect("submit");
    assert!(c.is_empty());
    server
        .with_prepared(fp, |p| {
            let spec = FaultSpec {
                lane_faults: 4,
                ..FaultSpec::default()
            };
            p.plan
                .arm_faults_for_vector(FaultPlan::seeded(9, &spec, p.plan.n_instances()), 1);
        })
        .expect("plan resident");
    let (id2, done) = server.submit(fp, xs[2].clone(), policy).expect("submit");

    assert_eq!(
        done.iter().map(|c| c.id).collect::<Vec<_>>(),
        vec![id0, id1, id2],
        "all three coalesced into the size-triggered batch"
    );
    for c in &done {
        let out = c.result.as_ref().expect("every request serves");
        assert_eq!(out.batch_size, 3);
        let vector = (c.id - id0) as usize;
        if c.id == id1 {
            // The poisoned vector: a persistent all-lane fault survives
            // the retry ladder, so under the Full policy it must take the
            // golden CSR fallback — and say so.
            assert!(out.health.fallback, "vector 1 must fall back");
            assert!(out.health.needs_fallback());
            assert!(out.health.faults_injected > 0);
            assert_eq!(bits(&out.y), bits(&y_csr), "fallback bits");
        } else {
            // Siblings in the same batch: untouched, bit-clean.
            assert!(
                out.health.is_clean(),
                "vector {vector} dirtied: {:?}",
                out.health
            );
            assert_eq!(bits(&out.y), clean[vector], "vector {vector} bits");
        }
    }

    // Disarm the campaign: the next batch over the same cached plan is
    // clean again for every vector.
    server
        .with_prepared(fp, |p| p.plan.disarm_faults())
        .expect("plan resident");
    let (_, c0) = server.submit(fp, xs[0].clone(), policy).expect("submit");
    assert!(c0.is_empty());
    let (_, c1) = server.submit(fp, xs[1].clone(), policy).expect("submit");
    assert!(c1.is_empty());
    let (_, redo) = server.submit(fp, xs[2].clone(), policy).expect("submit");
    assert_eq!(redo.len(), 3);
    for (k, c) in redo.iter().enumerate() {
        let out = c.result.as_ref().expect("serves clean");
        assert!(out.health.is_clean(), "vector {k} after disarm");
        assert_eq!(bits(&out.y), clean[k], "vector {k} bits after disarm");
    }
}
