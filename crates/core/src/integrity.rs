//! Integrity policies: how much of each [`crate::Prepared::execute`] is
//! verified, and what happens on detected corruption.
//!
//! The accelerator's own defences are structural (wire CRC, prepare-time
//! invariants) and stream-level (the plan's pristine re-verification). The
//! policy layer decides how much of that machinery each execution pays
//! for, and arms the last rung of the degradation ladder: the bit-exact
//! golden [`spasm_sparse::Csr`] path kept by every [`crate::Prepared`].
//!
//! ```
//! use spasm::{IntegrityPolicy, Pipeline, PipelineOptions};
//! use spasm_sparse::Coo;
//!
//! # fn main() -> Result<(), spasm::PipelineError> {
//! let a = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (5, 3, 2.0)]).unwrap();
//! // Cross-check 4 sampled output rows per execute against the golden
//! // CSR reference, falling back to it wholesale if repair fails.
//! let opts = PipelineOptions::default().integrity(IntegrityPolicy::sampled(4, 0xC0FFEE));
//! let mut prepared = Pipeline::with_options(opts).prepare(&a)?;
//! let x = vec![1.0f32; 8];
//! let mut y = vec![0.0f32; 8];
//! let report = prepared.execute_into(&x, &mut y)?;
//! assert!(report.health.is_clean());
//! # Ok(())
//! # }
//! ```

/// How much of each execution the pipeline verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum IntegrityMode {
    /// No verification: today's production fast path, zero overhead.
    #[default]
    Off,
    /// Verify the tile rows containing `k` deterministically sampled
    /// output rows against the pristine stream, and cross-check those
    /// rows' residuals against the golden CSR reference.
    Sampled(usize),
    /// Verify every worked tile row against the pristine stream.
    Full,
}

/// The integrity policy attached to a pipeline / [`crate::Prepared`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrityPolicy {
    /// What is verified per execution.
    pub mode: IntegrityMode,
    /// Seed for the sampled-row draw (deterministic: the same policy
    /// checks the same rows on every call).
    pub seed: u64,
    /// On unrepairable corruption, recompute the whole product on the
    /// golden CSR path (`true`, default) instead of returning
    /// [`crate::PipelineError::Integrity`] (`false`).
    pub fallback: bool,
    /// Relative tolerance for the sampled residual cross-check: the
    /// SPASM datapath and the CSR reference accumulate in different
    /// orders, so their outputs differ by rounding.
    pub tolerance: f32,
}

impl Default for IntegrityPolicy {
    fn default() -> Self {
        IntegrityPolicy::off()
    }
}

impl IntegrityPolicy {
    /// No verification (the default).
    pub fn off() -> Self {
        IntegrityPolicy {
            mode: IntegrityMode::Off,
            seed: 0,
            fallback: true,
            tolerance: 1e-3,
        }
    }

    /// Sampled verification: `k` output rows per execution, drawn
    /// deterministically from `seed`.
    pub fn sampled(k: usize, seed: u64) -> Self {
        IntegrityPolicy {
            mode: IntegrityMode::Sampled(k),
            seed,
            ..IntegrityPolicy::off()
        }
    }

    /// Full verification of every worked tile row.
    pub fn full() -> Self {
        IntegrityPolicy {
            mode: IntegrityMode::Full,
            ..IntegrityPolicy::off()
        }
    }

    /// Sets whether unrepairable corruption falls back to the golden CSR
    /// path (`true`, default) or surfaces as an error (`false`).
    pub fn with_fallback(mut self, fallback: bool) -> Self {
        self.fallback = fallback;
        self
    }

    /// Sets the relative tolerance of the sampled residual cross-check.
    pub fn with_tolerance(mut self, tolerance: f32) -> Self {
        self.tolerance = tolerance;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off_with_fallback() {
        let p = IntegrityPolicy::default();
        assert_eq!(p.mode, IntegrityMode::Off);
        assert!(p.fallback);
    }

    #[test]
    fn builders_compose() {
        let p = IntegrityPolicy::sampled(8, 7)
            .with_fallback(false)
            .with_tolerance(1e-4);
        assert_eq!(p.mode, IntegrityMode::Sampled(8));
        assert_eq!(p.seed, 7);
        assert!(!p.fallback);
        assert_eq!(p.tolerance, 1e-4);
        assert_eq!(IntegrityPolicy::full().mode, IntegrityMode::Full);
    }
}
