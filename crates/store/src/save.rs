//! Freezing a prepared plan into wire-v3 bytes.

use spasm_format::{Header3, SpasmMatrix, Wire3Writer, WireError};
use spasm_hw::ExecutionPlan;

use crate::StoreError;

/// Section ids of the v3 plan container. The container format
/// (`spasm_format::Wire3Writer`/`Wire3Reader`) treats ids as opaque;
/// these constants define what a *plan* container carries.
pub mod section {
    /// Hardware configuration the plan was prepared for.
    pub const META: u32 = 1;
    /// Template portfolio masks, one `u16` per template in LUT order.
    pub const TEMPLATES: u32 = 2;
    /// Tile directory: 20-byte records `{row u32, col u32, first u64,
    /// count u32}` in stream order.
    pub const TILES: u32 = 3;
    /// Per instance: base of its 4-wide x segment (`u32`).
    pub const XBASE: u32 = 4;
    /// Per instance: y offset within the tile row's window (`u32`).
    pub const YBASE: u32 = 5;
    /// Per instance: opcode class (`u8`).
    pub const OPIDX: u32 = 6;
    /// Four `f32` value slots per instance.
    pub const VALUES: u32 = 7;
    /// Classed execution order (`u32` instance indices).
    pub const BUCKET_IDX: u32 = 8;
    /// Class runs: 12-byte records `{start u32, end u32, class u32}`.
    pub const CLASS_RUNS: u32 = 9;
    /// Per block: prefix of run counts (`u32`, len blocks+1).
    pub const BLOCK_RUNS: u32 = 10;
    /// Per tile row: prefix of block counts (`u32`, len rows+1).
    pub const ROW_BLOCKS: u32 = 11;
    /// The canonical v2 wire stream of the encoded matrix: fingerprint
    /// source, v2 interop, and the raw encodings fault injection
    /// re-decodes.
    pub const V2STREAM: u32 = 12;
}

fn le32(out: &mut Vec<u8>, words: impl IntoIterator<Item = u32>) {
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Freezes `(matrix, plan)` into a self-contained wire-v3 buffer.
///
/// The stream sections are written in exactly the layout the kernels
/// read (little-endian, natively aligned), so a reader on a
/// little-endian host can execute straight out of the buffer.
///
/// # Errors
///
/// [`StoreError::Wire`] when `plan` was not prepared from `matrix`
/// (instance counts disagree) — freezing a mismatched pair would
/// produce a container that can never validate.
pub fn save_v3(matrix: &SpasmMatrix, plan: &ExecutionPlan) -> Result<Vec<u8>, StoreError> {
    let s = plan.streams();
    let n = matrix.n_instances();
    if s.op_idx.len() != n || s.values.len() != 4 * n {
        return Err(StoreError::Wire(WireError::Inconsistent(
            "plan and matrix instance counts disagree",
        )));
    }

    let mut w = Wire3Writer::new(Header3 {
        rows: matrix.rows(),
        cols: matrix.cols(),
        tile_size: matrix.tile_size(),
        n_templates: matrix.template_masks().len() as u32,
        nnz: matrix.nnz() as u64,
        paddings: matrix.paddings(),
        n_instances: n as u64,
        n_tiles: matrix.tiles().len() as u32,
        n_sections: 0,
    });

    // META: the hardware configuration the plan prices against.
    let cfg = plan.config();
    let mut meta = Vec::with_capacity(20 + cfg.name.len());
    le32(&mut meta, [cfg.num_pe_groups, cfg.num_xvec_ch]);
    meta.extend_from_slice(&cfg.frequency_mhz.to_bits().to_le_bytes());
    le32(&mut meta, [cfg.name.len() as u32]);
    meta.extend_from_slice(cfg.name.as_bytes());
    w.section(section::META, &meta);

    let mut templates = Vec::with_capacity(matrix.template_masks().len() * 2);
    for &m in matrix.template_masks() {
        templates.extend_from_slice(&m.to_le_bytes());
    }
    w.section(section::TEMPLATES, &templates);

    let mut tiles = Vec::with_capacity(matrix.tiles().len() * 20);
    for t in matrix.tiles() {
        le32(&mut tiles, [t.tile_row, t.tile_col]);
        tiles.extend_from_slice(&(t.first_instance as u64).to_le_bytes());
        le32(&mut tiles, [t.n_instances as u32]);
    }
    w.section(section::TILES, &tiles);

    let mut out = Vec::with_capacity(4 * n);
    le32(&mut out, s.x_base.iter().copied());
    w.section(section::XBASE, &out);
    out.clear();
    le32(&mut out, s.y_base.iter().copied());
    w.section(section::YBASE, &out);

    w.section(section::OPIDX, s.op_idx);

    let mut values = Vec::with_capacity(s.values.len() * 4);
    for v in s.values {
        values.extend_from_slice(&v.to_le_bytes());
    }
    w.section(section::VALUES, &values);

    out.clear();
    le32(&mut out, s.bucket_idx.iter().copied());
    w.section(section::BUCKET_IDX, &out);

    let mut runs = Vec::with_capacity(s.class_runs.len() * 12);
    for r in s.class_runs {
        le32(&mut runs, [r.start, r.end, r.class]);
    }
    w.section(section::CLASS_RUNS, &runs);

    out.clear();
    le32(&mut out, s.block_runs.iter().copied());
    w.section(section::BLOCK_RUNS, &out);
    out.clear();
    le32(&mut out, s.row_blocks.iter().copied());
    w.section(section::ROW_BLOCKS, &out);

    w.section(section::V2STREAM, &matrix.to_bytes());

    Ok(w.finish())
}
