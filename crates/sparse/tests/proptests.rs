//! Property-based tests for the sparse-matrix substrate: format round-trips
//! and SpMV agreement across every storage format.

use proptest::prelude::*;
use spasm_sparse::{mm, Bsr, Coo, Csc, Csr, Dense, Dia, Ell, SpMv, StorageCost};

/// Strategy producing an arbitrary small sparse matrix. Values are non-zero
/// multiples of 0.25 so accumulation is exact in f32 and explicit zeros do
/// not collide with padding semantics.
fn arb_matrix() -> impl Strategy<Value = Coo> {
    (1u32..24, 1u32..24).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, (1i32..64).prop_map(|q| q as f32 * 0.25));
        proptest::collection::vec(entry, 0..64)
            .prop_map(move |t| Coo::from_triplets(rows, cols, t).unwrap())
    })
}

fn arb_x(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((-32i32..32).prop_map(|q| q as f32 * 0.5), len..=len)
}

proptest! {
    #[test]
    fn csr_round_trip(m in arb_matrix()) {
        let csr = Csr::from(&m);
        prop_assert_eq!(Coo::from(&csr), m);
    }

    #[test]
    fn csc_round_trip(m in arb_matrix()) {
        let csc = Csc::from(&m);
        prop_assert_eq!(Coo::from(&csc), m);
    }

    #[test]
    fn bsr_round_trip(m in arb_matrix(), block in 1u32..5) {
        let bsr = Bsr::from_coo(&m, block).unwrap();
        prop_assert_eq!(bsr.to_coo(), m);
    }

    #[test]
    fn dia_round_trip(m in arb_matrix()) {
        prop_assert_eq!(Dia::from_coo(&m).to_coo().unwrap(), m);
    }

    #[test]
    fn ell_round_trip(m in arb_matrix()) {
        prop_assert_eq!(Ell::from_coo(&m).to_coo().unwrap(), m);
    }

    #[test]
    fn matrix_market_round_trip(m in arb_matrix()) {
        let mut buf = Vec::new();
        mm::write_matrix_market(&mut buf, &m).unwrap();
        prop_assert_eq!(mm::read_matrix_market(buf.as_slice()).unwrap(), m);
    }

    /// Every format's SpMV must agree with the dense ground truth.
    #[test]
    fn spmv_agreement((m, x) in arb_matrix().prop_flat_map(|m| {
        let cols = m.cols() as usize;
        (Just(m), arb_x(cols))
    })) {
        let mut want = vec![0.0f32; m.rows() as usize];
        Dense::from(&m).spmv_into(&x, &mut want);

        macro_rules! check {
            ($fmt:expr) => {{
                let mut y = vec![0.0f32; m.rows() as usize];
                $fmt.spmv(&x, &mut y).unwrap();
                for (i, (a, b)) in y.iter().zip(&want).enumerate() {
                    prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()),
                        "row {i}: {a} vs {b}");
                }
            }};
        }
        check!(m);
        check!(Csr::from(&m));
        check!(Csc::from(&m));
        check!(Bsr::from_coo(&m, 2).unwrap());
        check!(Bsr::from_coo(&m, 4).unwrap());
        check!(Dia::from_coo(&m));
        check!(Ell::from_coo(&m));
    }

    /// The transpose of the transpose is the original, and transposed SpMV
    /// matches SpMV with swapped operands on symmetric probes.
    #[test]
    fn transpose_involution(m in arb_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// Storage-cost sanity: COO is exactly 12 bytes/nnz, every model is
    /// positive for non-empty matrices, and HiSparse/Serpens is exactly
    /// 1.5x better than COO.
    #[test]
    fn storage_costs_consistent(m in arb_matrix()) {
        prop_assert_eq!(m.storage_bytes(), 12 * m.nnz());
        if m.nnz() > 0 {
            let hs = spasm_sparse::storage::hisparse_serpens_bytes(m.nnz());
            prop_assert_eq!(m.storage_bytes() as f64 / hs as f64, 1.5);
            prop_assert!(Csr::from(&m).storage_bytes() > 0);
            prop_assert!(Bsr::from_coo(&m, 2).unwrap().storage_bytes() > 0);
        }
    }

    /// BSR with block size 1 stores exactly the nnz cells (no fill).
    #[test]
    fn bsr_block1_has_no_fill(m in arb_matrix()) {
        let bsr = Bsr::from_coo(&m, 1).unwrap();
        prop_assert_eq!(bsr.nblocks(), m.nnz());
        prop_assert!(bsr.fill_ratio(m.nnz()).abs() < 1e-12);
    }
}
