//! Matrix features that drive the baseline performance models.

use spasm_sparse::Coo;

/// Structural features of a matrix, extracted once and consumed by every
/// baseline model.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    /// Number of rows.
    pub rows: u32,
    /// Number of columns.
    pub cols: u32,
    /// Stored entries.
    pub nnz: usize,
    /// Mean stored entries per non-empty row.
    pub mean_row_len: f64,
    /// Longest row.
    pub max_row_len: usize,
    /// Per-row entry counts (kept for lane-imbalance queries).
    row_lengths: Vec<usize>,
    /// Average distinct 16-column cache lines touched per non-zero —
    /// 1/locality: 1.0 means every access opens a new line, small values
    /// mean dense line reuse within rows.
    pub lines_per_nnz: f64,
}

impl MatrixProfile {
    /// Extracts the profile from a COO matrix.
    pub fn from_coo(matrix: &Coo) -> Self {
        let rows = matrix.rows();
        let mut row_lengths = vec![0usize; rows as usize];
        for &r in matrix.row_indices() {
            row_lengths[r as usize] += 1;
        }
        let non_empty = row_lengths.iter().filter(|&&l| l > 0).count().max(1);
        let nnz = matrix.nnz();
        let mean_row_len = nnz as f64 / non_empty as f64;
        let max_row_len = row_lengths.iter().copied().max().unwrap_or(0);

        // Distinct 16-column lines per row: COO iterates (row, col) sorted,
        // so a line change within a row is a new line.
        let mut lines = 0u64;
        let mut last: Option<(u32, u32)> = None;
        for (r, c, _) in matrix.iter() {
            let line = (r, c / 16);
            if last != Some(line) {
                lines += 1;
                last = Some(line);
            }
        }
        let lines_per_nnz = if nnz == 0 {
            0.0
        } else {
            lines as f64 / nnz as f64
        };
        MatrixProfile {
            rows,
            cols: matrix.cols(),
            nnz,
            mean_row_len,
            max_row_len,
            row_lengths,
            lines_per_nnz,
        }
    }

    /// Load imbalance (`max / mean`, ≥ 1) when rows are dealt round-robin
    /// across `lanes` processing lanes — how both FPGA baselines
    /// distribute work.
    pub fn lane_imbalance(&self, lanes: u32) -> f64 {
        assert!(lanes > 0, "need at least one lane");
        if self.nnz == 0 {
            return 1.0;
        }
        let mut loads = vec![0usize; lanes as usize];
        for (r, &len) in self.row_lengths.iter().enumerate() {
            loads[r % lanes as usize] += len;
        }
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.nnz as f64 / lanes as f64;
        (max / mean).max(1.0)
    }

    /// Per-row entry counts.
    pub fn row_lengths(&self) -> &[usize] {
        &self.row_lengths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let m = Coo::from_triplets(
            4,
            64,
            vec![(0, 0, 1.0), (0, 1, 1.0), (0, 40, 1.0), (2, 5, 1.0)],
        )
        .unwrap();
        let p = MatrixProfile::from_coo(&m);
        assert_eq!(p.nnz, 4);
        assert_eq!(p.max_row_len, 3);
        assert!((p.mean_row_len - 2.0).abs() < 1e-12); // 4 nnz / 2 non-empty rows
                                                       // row 0 touches lines 0 and 2, row 2 touches line 0 => 3 lines / 4 nnz
        assert!((p.lines_per_nnz - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dense_rows_reuse_lines() {
        let t: Vec<_> = (0u32..64).map(|c| (0, c, 1.0)).collect();
        let p = MatrixProfile::from_coo(&Coo::from_triplets(1, 64, t).unwrap());
        assert!((p.lines_per_nnz - 4.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn lane_imbalance_bounds() {
        // All work in one row: terrible imbalance.
        let t: Vec<_> = (0u32..100).map(|c| (0, c, 1.0)).collect();
        let p = MatrixProfile::from_coo(&Coo::from_triplets(8, 100, t).unwrap());
        assert!((p.lane_imbalance(8) - 8.0).abs() < 1e-12);
        // Uniform diagonal: perfect balance.
        let d: Vec<_> = (0u32..64).map(|i| (i, i, 1.0)).collect();
        let pd = MatrixProfile::from_coo(&Coo::from_triplets(64, 64, d).unwrap());
        assert!((pd.lane_imbalance(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix() {
        let p = MatrixProfile::from_coo(&Coo::new(4, 4));
        assert_eq!(p.lane_imbalance(4), 1.0);
        assert_eq!(p.lines_per_nnz, 0.0);
    }
}
