//! Prepared execution plans: amortise per-run setup for repeated SpMV.
//!
//! [`crate::Accelerator::run`] rebuilds everything that depends only on
//! `(matrix, config)` on every call: the opcode LUT, the tile-row layout,
//! the LPT assignment, cycle pricing and fresh scratch vectors. Iterative
//! solvers and serving workloads run thousands of SpMVs against one
//! prepared matrix, so [`crate::Accelerator::prepare`] hoists all of that
//! into an [`ExecutionPlan`] built once:
//!
//! * the instance stream is pre-decoded into flat structure-of-arrays
//!   form — per instance, the padded-x segment base, the y offset within
//!   the owning tile row's window, the compiled VALU opcode and the four
//!   value slots — so the hot loop never re-parses 32-bit position
//!   encodings or re-derives tile bases;
//! * the tile-row layout (instance spans, disjoint y windows), per-tile
//!   lane statistics, [`TileJob`]s, the LPT assignment, per-group cycles,
//!   traffic and the full [`ExecReport`] are computed once — the report is
//!   a pure function of `(matrix, config)`, so [`ExecutionPlan::run`]
//!   returns a reference to the cached value;
//! * padded `x`/`y` scratch buffers are owned by the plan and reused, so
//!   a steady-state [`ExecutionPlan::run`] performs no heap allocation
//!   (asserted by the workspace's counting-allocator test).
//!
//! Thread fan-out across tile rows is gated on the `parallel` cargo
//! feature and the ambient worker budget (`rayon::current_num_threads`
//! from the vendored shim — the same budget `Parallelism` installs), with
//! tile rows chunked contiguously and balanced by instance count. Tile
//! rows own disjoint y windows and each row is processed in stream order,
//! so the result is bit-identical for every thread count.

use spasm_format::SpasmMatrix;

use crate::config::HwConfig;
use crate::pe::Pe;
use crate::sim::{ExecReport, SimError, Traffic};
use crate::timing::{self, TileJob};
use crate::valu::ValuOpcode;

/// Everything derivable from `(matrix, config)` alone, plus reusable
/// scratch — see the [module docs](self) for the full inventory.
///
/// Build one with [`crate::Accelerator::prepare`], then call
/// [`ExecutionPlan::run`] per SpMV. The output is bit-identical to
/// [`crate::Accelerator::run`] on the same matrix.
///
/// # Examples
///
/// ```
/// use spasm_format::{SpasmMatrix, SubmatrixMap};
/// use spasm_hw::{Accelerator, HwConfig};
/// use spasm_patterns::{DecompositionTable, TemplateSet};
/// use spasm_sparse::Coo;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let coo = Coo::from_triplets(4, 4, vec![(0, 0, 2.0), (3, 1, -1.0)])?;
/// let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
/// let m = SpasmMatrix::encode(&SubmatrixMap::from_coo(&coo), &table, 4)?;
///
/// let acc = Accelerator::new(HwConfig::spasm_4_1());
/// let mut plan = acc.prepare(&m)?;
/// for _ in 0..3 {
///     let mut y = vec![0.0f32; 4];
///     let report = plan.run(&[1.0, 2.0, 3.0, 4.0], &mut y)?;
///     assert_eq!(y, vec![2.0, 0.0, 0.0, -2.0]);
///     assert!(report.cycles > 0);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    config: HwConfig,
    rows: u32,
    cols: u32,
    tile_size: u32,
    // Pre-decoded SoA instance stream, in stream (tile) order. `x_base[i]`
    // indexes the padded x scratch; `y_base[i]` is relative to the owning
    // tile row's y window; `values` holds four slots per instance.
    x_base: Vec<u32>,
    y_base: Vec<u32>,
    opcodes: Vec<ValuOpcode>,
    values: Vec<f32>,
    // Per worked tile row: instance span in the stream, y window in `yp`,
    // and a prefix sum of instance counts for balanced chunking.
    inst_ranges: Vec<(usize, usize)>,
    window_spans: Vec<(usize, usize)>,
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    cum_instances: Vec<usize>,
    // Scheduling state, for introspection and the cached report.
    assignment: Vec<Vec<TileJob>>,
    report: ExecReport,
    // Reusable padded scratch: `xp` for the operand, `yp` for the disjoint
    // tile-row windows, `chunks` for the fan-out's row boundaries.
    xp: Vec<f32>,
    yp: Vec<f32>,
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    chunks: Vec<usize>,
}

impl ExecutionPlan {
    /// Builds the plan: pre-decodes the stream, lays out tile rows, runs
    /// the LPT assignment and prices the execution once.
    pub(crate) fn build(config: HwConfig, matrix: &SpasmMatrix) -> Result<Self, SimError> {
        let pe = Pe::new(matrix.template_masks())?;
        let tile_size = matrix.tile_size();
        let xp_len = (matrix.cols() as usize).div_ceil(4) * 4;
        let yp_len = (matrix.rows() as usize).div_ceil(4) * 4;

        // Contiguous spans of same-tile-row tiles, in stream order.
        let mut row_spans: Vec<(u32, usize, usize)> = Vec::new(); // (row, first, last)
        for (i, tile) in matrix.tiles().iter().enumerate() {
            match row_spans.last_mut() {
                Some((row, _, end)) if *row == tile.tile_row => *end = i + 1,
                _ => row_spans.push((tile.tile_row, i, i + 1)),
            }
        }

        // Pre-decode every instance into SoA form and gather per-tile lane
        // statistics (identical to what the simulator derived per run).
        let n = matrix.n_instances();
        let mut x_base = Vec::with_capacity(n);
        let mut y_base = Vec::with_capacity(n);
        let mut opcodes = Vec::with_capacity(n);
        let mut jobs = Vec::with_capacity(matrix.tiles().len());
        let encodings = matrix.encodings();
        for tile in matrix.tiles() {
            let col_base = tile.tile_col * tile_size;
            let mut lanes = [0usize; 16];
            for e in &encodings[tile.first_instance..tile.first_instance + tile.n_instances] {
                lanes[(e.r_idx() as usize) % 16] += 1;
                x_base.push(col_base + e.c_idx() * 4);
                y_base.push(e.r_idx() * 4);
                opcodes.push(pe.opcode(e.t_idx()));
            }
            jobs.push(TileJob {
                tile_row: tile.tile_row,
                tile_col: tile.tile_col,
                n_instances: tile.n_instances,
                max_lane_instances: timing::max_lane(&lanes),
            });
        }

        // Tile-row layout: instance spans (tiles of a row are contiguous
        // in the stream) and disjoint y windows over the padded scratch.
        let mut inst_ranges = Vec::with_capacity(row_spans.len());
        let mut window_spans = Vec::with_capacity(row_spans.len());
        let mut cum_instances = Vec::with_capacity(row_spans.len() + 1);
        cum_instances.push(0usize);
        for &(row, first, last) in &row_spans {
            let i0 = matrix.tiles()[first].first_instance;
            let t = &matrix.tiles()[last - 1];
            let i1 = t.first_instance + t.n_instances;
            inst_ranges.push((i0, i1));
            cum_instances.push(cum_instances.last().unwrap() + (i1 - i0));
            let start = (row * tile_size) as usize;
            let end = (((row + 1) * tile_size) as usize).min(yp_len);
            window_spans.push((start, end));
        }

        // Timing: the same LPT assignment and cycle pricing the per-run
        // simulator used, computed once.
        let worked_row_heights = row_spans.iter().map(|&(row, _, _)| {
            (matrix.rows() - (row * tile_size).min(matrix.rows())).min(tile_size)
        });
        let y_traffic = timing::y_bytes(worked_row_heights);
        let x_traffic = matrix.tiles().len() as u64 * u64::from(tile_size) * 4;
        let assignment = timing::lpt_assign(jobs, config.num_pe_groups, tile_size, &config);
        let per_group_cycles: Vec<u64> = assignment
            .iter()
            .map(|a| timing::group_cycles(a, tile_size, &config))
            .collect();

        let traffic = Traffic {
            matrix: 20 * n as u64,
            x: x_traffic,
            y: y_traffic,
        };
        let cycles = timing::total_cycles(&per_group_cycles, y_traffic, &config);
        let seconds = config.cycles_to_seconds(cycles);
        let flops = 2.0 * matrix.nnz() as f64 + matrix.rows() as f64;
        let gflops = flops / seconds / 1e9;
        let achieved_bandwidth_gbs = traffic.total() as f64 / seconds / 1e9;
        let compute_utilization = gflops / config.peak_gflops();
        let estimated_power_w = config.power_estimate_w(compute_utilization);
        let report = ExecReport {
            cycles,
            seconds,
            gflops,
            achieved_bandwidth_gbs,
            compute_utilization,
            bandwidth_utilization: achieved_bandwidth_gbs / config.bandwidth_gbs(),
            per_group_cycles,
            traffic,
            estimated_power_w,
            energy_j: estimated_power_w * seconds,
        };

        Ok(ExecutionPlan {
            rows: matrix.rows(),
            cols: matrix.cols(),
            tile_size,
            x_base,
            y_base,
            opcodes,
            values: matrix.values().to_vec(),
            inst_ranges,
            window_spans,
            cum_instances,
            assignment,
            report,
            xp: vec![0.0; xp_len],
            yp: vec![0.0; yp_len],
            chunks: Vec::with_capacity(worker_budget().max(1) + 1),
            config,
        })
    }

    /// The hardware configuration this plan was priced on.
    pub fn config(&self) -> &HwConfig {
        &self.config
    }

    /// Matrix rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The tile edge length of the encoded matrix.
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Template instances in the pre-decoded stream.
    pub fn n_instances(&self) -> usize {
        self.opcodes.len()
    }

    /// Worked tile rows (each owns a disjoint y window).
    pub fn n_tile_rows(&self) -> usize {
        self.inst_ranges.len()
    }

    /// The LPT tile-to-group assignment computed at prepare time.
    pub fn assignment(&self) -> &[Vec<TileJob>] {
        &self.assignment
    }

    /// The cached execution report — a pure function of `(matrix,
    /// config)`, identical to what every [`ExecutionPlan::run`] returns.
    pub fn report(&self) -> &ExecReport {
        &self.report
    }

    /// Executes `y += A·x` against the prepared matrix, returning the
    /// cached report.
    ///
    /// Bit-identical to [`crate::Accelerator::run`] on the same matrix and
    /// configuration, for every thread budget. Performs no heap allocation
    /// at steady state when running serially (the parallel fan-out spawns
    /// scoped threads, which allocate their stacks).
    ///
    /// # Errors
    ///
    /// [`SimError::DimensionMismatch`] on operand length mismatches.
    pub fn run(&mut self, x: &[f32], y: &mut [f32]) -> Result<&ExecReport, SimError> {
        if x.len() != self.cols as usize {
            return Err(SimError::DimensionMismatch {
                expected: self.cols as usize,
                actual: x.len(),
                operand: "x",
            });
        }
        if y.len() != self.rows as usize {
            return Err(SimError::DimensionMismatch {
                expected: self.rows as usize,
                actual: y.len(),
                operand: "y",
            });
        }
        // The scratch tails beyond `x.len()` / the worked windows stay
        // zero from construction, as the hardware's aligned buffers do.
        self.xp[..x.len()].copy_from_slice(x);
        self.yp.fill(0.0);
        self.execute_tile_rows();
        for (dst, src) in y.iter_mut().zip(&self.yp) {
            *dst += *src;
        }
        Ok(&self.report)
    }

    /// Dispatches the functional pass over tile rows, fanning out only
    /// when the `parallel` feature is on and the ambient budget allows.
    fn execute_tile_rows(&mut self) {
        #[cfg(feature = "parallel")]
        {
            let budget = worker_budget();
            if budget >= 2 && self.inst_ranges.len() >= 2 {
                self.execute_parallel(budget);
                return;
            }
        }
        for r in 0..self.inst_ranges.len() {
            let (w0, w1) = self.window_spans[r];
            let (i0, i1) = self.inst_ranges[r];
            process_span(
                &self.x_base,
                &self.y_base,
                &self.opcodes,
                &self.values,
                &self.xp,
                &mut self.yp[w0..w1],
                i0,
                i1,
            );
        }
    }

    /// Parallel fan-out: tile rows are chunked contiguously, balanced by
    /// instance count, one scoped worker per chunk. Chunks own disjoint
    /// ascending spans of `yp`, and each worker processes its rows in
    /// stream order, so the accumulation order per y element is identical
    /// to the serial pass.
    #[cfg(feature = "parallel")]
    fn execute_parallel(&mut self, budget: usize) {
        let n_rows = self.inst_ranges.len();
        let parts = budget.min(n_rows);
        let total = *self.cum_instances.last().expect("non-empty prefix");
        self.chunks.clear();
        self.chunks.push(0);
        for t in 1..parts {
            // First row boundary at or past this worker's share of the
            // instance stream; clamped to stay strictly increasing.
            let target = total * t / parts;
            let b = self
                .cum_instances
                .partition_point(|&c| c < target)
                .min(n_rows);
            if b > *self.chunks.last().expect("seeded with 0") && b < n_rows {
                self.chunks.push(b);
            }
        }
        self.chunks.push(n_rows);

        let ExecutionPlan {
            x_base,
            y_base,
            opcodes,
            values,
            inst_ranges,
            window_spans,
            xp,
            yp,
            chunks,
            ..
        } = self;
        let (x_base, y_base, opcodes, values, xp) = (&*x_base, &*y_base, &*opcodes, &*values, &*xp);
        // Reborrow as shared slices so the spawn closures can Copy them.
        let inst_ranges = inst_ranges.as_slice();
        let window_spans = window_spans.as_slice();
        std::thread::scope(|scope| {
            let mut rest: &mut [f32] = yp;
            let mut consumed = 0usize;
            for w in chunks.windows(2) {
                let (b0, b1) = (w[0], w[1]);
                let start = window_spans[b0].0;
                let end = window_spans[b1 - 1].1;
                let (_skip, tail) = rest.split_at_mut(start - consumed);
                let (chunk_y, tail) = tail.split_at_mut(end - start);
                rest = tail;
                consumed = end;
                scope.spawn(move || {
                    for r in b0..b1 {
                        let (i0, i1) = inst_ranges[r];
                        let (w0, w1) = window_spans[r];
                        process_span(
                            x_base,
                            y_base,
                            opcodes,
                            values,
                            xp,
                            &mut chunk_y[w0 - start..w1 - start],
                            i0,
                            i1,
                        );
                    }
                });
            }
        });
    }
}

/// The worker budget the fan-out may use (always 1 in serial builds).
#[cfg(feature = "parallel")]
fn worker_budget() -> usize {
    rayon::current_num_threads()
}

#[cfg(not(feature = "parallel"))]
fn worker_budget() -> usize {
    1
}

/// The hot loop: instances `[i0, i1)` of one tile row, accumulated into
/// the row's y window. Pure SoA reads — no encoding parsing, no base
/// derivation, no bounds re-computation beyond the slice indexing.
#[allow(clippy::too_many_arguments)]
fn process_span(
    x_base: &[u32],
    y_base: &[u32],
    opcodes: &[ValuOpcode],
    values: &[f32],
    xp: &[f32],
    window: &mut [f32],
    i0: usize,
    i1: usize,
) {
    for i in i0..i1 {
        let c0 = x_base[i] as usize;
        let x_seg = [xp[c0], xp[c0 + 1], xp[c0 + 2], xp[c0 + 3]];
        let v = [
            values[4 * i],
            values[4 * i + 1],
            values[4 * i + 2],
            values[4 * i + 3],
        ];
        let out = opcodes[i].execute(v, x_seg);
        let r0 = y_base[i] as usize;
        // Same accumulation order as `Pe::process_instance`.
        window[r0] += out[0];
        window[r0 + 1] += out[1];
        window[r0 + 2] += out[2];
        window[r0 + 3] += out[3];
    }
}

#[cfg(test)]
mod tests {
    use crate::{Accelerator, HwConfig, SimError};
    use spasm_format::{SpasmMatrix, SubmatrixMap};
    use spasm_patterns::{DecompositionTable, TemplateSet};
    use spasm_sparse::Coo;

    fn encode(coo: &Coo, tile: u32) -> SpasmMatrix {
        let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
        SpasmMatrix::encode(&SubmatrixMap::from_coo(coo), &table, tile).unwrap()
    }

    fn sample(n: u32) -> Coo {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            t.push((i, (i * 7 + 3) % n, 0.5));
            if i + 1 < n {
                t.push((i + 1, i, -1.0));
            }
        }
        Coo::from_triplets(n, n, t).unwrap()
    }

    #[test]
    fn plan_matches_run_bit_for_bit() {
        let coo = sample(100);
        let x: Vec<f32> = (0..100).map(|i| (i as f32) * 0.25 - 10.0).collect();
        for tile in [16u32, 64, 256] {
            let m = encode(&coo, tile);
            let acc = Accelerator::new(HwConfig::spasm_4_1());
            let mut want = vec![0.5f32; 100];
            let want_rep = acc.run(&m, &x, &mut want).unwrap();

            let mut plan = acc.prepare(&m).unwrap();
            let mut got = vec![0.5f32; 100];
            let got_rep = plan.run(&x, &mut got).unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tile {tile}"
            );
            assert_eq!(*got_rep, want_rep, "tile {tile}");
            assert_eq!(*plan.report(), want_rep);
        }
    }

    #[test]
    fn plan_reuse_does_not_drift() {
        let coo = sample(64);
        let m = encode(&coo, 32);
        let acc = Accelerator::new(HwConfig::spasm_3_2());
        let mut plan = acc.prepare(&m).unwrap();
        let x: Vec<f32> = (0..64).map(|i| ((i % 9) as f32) * 0.5 - 2.0).collect();
        let mut first = vec![0.25f32; 64];
        plan.run(&x, &mut first).unwrap();
        for _ in 0..10 {
            let mut y = vec![0.25f32; 64];
            plan.run(&x, &mut y).unwrap();
            assert_eq!(
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                first.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn plan_checks_dimensions() {
        let m = encode(&sample(16), 16);
        let mut plan = Accelerator::new(HwConfig::spasm_3_2()).prepare(&m).unwrap();
        let mut y = vec![0.0f32; 16];
        assert!(matches!(
            plan.run(&[1.0; 4], &mut y),
            Err(SimError::DimensionMismatch { operand: "x", .. })
        ));
        let mut y_bad = vec![0.0f32; 4];
        assert!(matches!(
            plan.run(&[1.0; 16], &mut y_bad),
            Err(SimError::DimensionMismatch { operand: "y", .. })
        ));
    }

    #[test]
    fn plan_exposes_prepared_state() {
        let m = encode(&sample(64), 16);
        let cfg = HwConfig::spasm_4_1();
        let plan = Accelerator::new(cfg.clone()).prepare(&m).unwrap();
        assert_eq!(plan.config(), &cfg);
        assert_eq!(plan.rows(), 64);
        assert_eq!(plan.cols(), 64);
        assert_eq!(plan.tile_size(), 16);
        assert_eq!(plan.n_instances(), m.n_instances());
        assert_eq!(plan.assignment().len(), cfg.num_pe_groups as usize);
        assert!(plan.n_tile_rows() > 0);
    }

    #[test]
    fn empty_matrix_plan_runs() {
        let m = encode(&Coo::new(8, 8), 8);
        let mut plan = Accelerator::new(HwConfig::spasm_4_1()).prepare(&m).unwrap();
        let mut y = vec![0.0f32; 8];
        let rep = plan.run(&[1.0; 8], &mut y).unwrap().clone();
        assert_eq!(y, vec![0.0; 8]);
        assert_eq!(rep.cycles, crate::timing::INIT_CYCLES);
        assert_eq!(plan.n_tile_rows(), 0);
    }
}
