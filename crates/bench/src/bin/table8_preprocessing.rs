//! Table VIII: preprocessing and execution time of selected workloads,
//! broken down by workflow stage — ① analysis, ② selection, ③
//! decomposition, ④⑤ schedule — plus the simulated execution time and the
//! break-even iteration count of the paper's amortisation argument.
//!
//! The paper times a single Xeon E5-2650 core; absolute host timings here
//! depend on the build machine, so the row *shape* (which stages dominate,
//! preprocessing ≫ execution) is the reproduction target.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin table8_preprocessing [-- --scale paper]
//! ```

use spasm::Pipeline;
use spasm_baselines::{MatrixProfile, Platform, Serpens};
use spasm_bench::{rule, scale_from_args, scale_name};
use spasm_workloads::Workload;

fn main() {
    let scale = scale_from_args();
    println!(
        "Table VIII — preprocessing & execution time ({})",
        scale_name(scale)
    );
    rule(108);
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "name", "①", "②", "③", "④⑤", "encode", "exe (sim)", "break-even it."
    );
    rule(108);
    let pipeline = Pipeline::new();
    for w in [
        Workload::MlLaplace,
        Workload::PFlow742,
        Workload::Raefsky3,
        Workload::Chebyshev4,
    ] {
        eprintln!("  [gen] {w} ...");
        let m = w.generate(scale);
        let mut prepared = pipeline.prepare(&m).expect("pipeline");
        let x = vec![1.0f32; m.cols() as usize];
        let mut y = vec![0.0f32; m.rows() as usize];
        let exec = prepared.execute(&x, &mut y).expect("simulate");

        // Break-even against Serpens_a24 (Section V-E4's example).
        let serpens = Serpens::a24().report(&MatrixProfile::from_coo(&m));
        let gain = serpens.seconds - exec.seconds;
        let breakeven = if gain > 0.0 {
            format!("{:.0}", prepared.timings.total().as_secs_f64() / gain)
        } else {
            "n/a".to_string()
        };
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        println!(
            "{:<12} {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>9.3}ms {:>14}",
            w.to_string(),
            ms(prepared.timings.analysis),
            ms(prepared.timings.selection),
            ms(prepared.timings.decomposition),
            ms(prepared.timings.schedule),
            ms(prepared.timings.encode),
            exec.seconds * 1e3,
            breakeven
        );
    }
    rule(108);
    println!(
        "(paper at full scale, single Xeon core: e.g. Chebyshev4 ① 732ms ② 358ms \
         ③ 361ms ④⑤ 421ms, exe 0.33ms, ≈298 iterations to amortise vs Serpens_a24)"
    );
}
