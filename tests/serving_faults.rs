//! Fault isolation in coalesced serving: a poisoned vector inside a
//! coalesced batch degrades (golden-CSR fallback) only its own request;
//! sibling requests in the same batch stay pristine and bit-identical to
//! an unfaulted run. A worker panic is contained at the batch boundary
//! (retried once, bit-identical; a second panic fails the batch typed),
//! and a persistently faulty plan walks the full circuit-breaker cycle:
//! trip → quarantined golden serving → half-open probe → recovery.
//!
//! Requires `--features fault-injection`; registered in `crates/serve`
//! with `required-features` so plain `cargo test` skips it.

use spasm::hw::fault::{FaultPlan, FaultSpec};
use spasm::hw::HwConfig;
use spasm::sparse::{Coo, SpMv};
use spasm::{IntegrityPolicy, Pipeline, PipelineOptions};
use spasm_patterns::TemplateSet;
use spasm_serve::loadgen::seeded_x;
use spasm_serve::{BreakerConfig, BreakerState, QueueConfig, ServeError, ServerConfig, SpmvServer};

/// A 300×300 scattered matrix spanning two 256-row tile rows under the
/// pinned schedule, 5 entries per row.
fn matrix() -> Coo {
    let n = 300u32;
    let mut t = Vec::new();
    for i in 0..n {
        for k in 0..5u32 {
            let j = (i * 37 + k * 13) % n;
            t.push((i, j, ((i + k) % 9 + 1) as f32 * 0.5));
        }
    }
    Coo::from_triplets(n, n, t).expect("valid triplets")
}

fn pinned_pipeline() -> Pipeline {
    Pipeline::with_options(
        PipelineOptions::default()
            .fixed_portfolio(TemplateSet::table_v_set(0))
            .fixed_schedule(256, HwConfig::spasm_4_1()),
    )
}

fn bits(y: &[f32]) -> Vec<u32> {
    y.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn poisoned_vector_degrades_only_its_own_request() {
    let m = matrix();
    let n = m.cols() as usize;
    let xs: Vec<Vec<f32>> = (0..3).map(|k| seeded_x(n, 100 + k)).collect();
    let policy = IntegrityPolicy::full();

    // Oracles from an identical pinned pipeline: the clean accelerator
    // bits per vector, and the golden CSR bits the fallback must produce.
    let mut oracle = pinned_pipeline().prepare(&m).expect("prepare oracle");
    let clean: Vec<Vec<u32>> = xs
        .iter()
        .map(|x| {
            let mut y = vec![0.0f32; n];
            oracle.execute(x, &mut y).expect("oracle execute");
            bits(&y)
        })
        .collect();
    let mut y_csr = vec![0.0f32; n];
    oracle.golden().spmv(&xs[1], &mut y_csr).expect("csr spmv");

    // Coalesce all three requests into one size-triggered batch, arming a
    // persistent all-lane fault for batch vector 1 before the flush.
    let server = SpmvServer::with_pipeline(
        ServerConfig {
            queue: QueueConfig {
                max_batch: 3,
                max_delay: 1_000,
                ..QueueConfig::default()
            },
            workers: 2,
            ..ServerConfig::default()
        },
        pinned_pipeline(),
    );
    let fp = server.ingest_coo(&m).expect("ingest");
    let (id0, c) = server.submit(fp, xs[0].clone(), policy).expect("submit");
    assert!(c.is_empty());
    let (id1, c) = server.submit(fp, xs[1].clone(), policy).expect("submit");
    assert!(c.is_empty());
    server
        .with_prepared(fp, |p| {
            let spec = FaultSpec {
                lane_faults: 4,
                ..FaultSpec::default()
            };
            p.plan
                .arm_faults_for_vector(FaultPlan::seeded(9, &spec, p.plan.n_instances()), 1);
        })
        .expect("plan resident");
    let (id2, done) = server.submit(fp, xs[2].clone(), policy).expect("submit");

    assert_eq!(
        done.iter().map(|c| c.id).collect::<Vec<_>>(),
        vec![id0, id1, id2],
        "all three coalesced into the size-triggered batch"
    );
    for c in &done {
        let out = c.result.as_ref().expect("every request serves");
        assert_eq!(out.batch_size, 3);
        let vector = (c.id - id0) as usize;
        if c.id == id1 {
            // The poisoned vector: a persistent all-lane fault survives
            // the retry ladder, so under the Full policy it must take the
            // golden CSR fallback — and say so.
            assert!(out.health.fallback, "vector 1 must fall back");
            assert!(out.health.needs_fallback());
            assert!(out.health.faults_injected > 0);
            assert_eq!(bits(&out.y), bits(&y_csr), "fallback bits");
        } else {
            // Siblings in the same batch: untouched, bit-clean.
            assert!(
                out.health.is_clean(),
                "vector {vector} dirtied: {:?}",
                out.health
            );
            assert_eq!(bits(&out.y), clean[vector], "vector {vector} bits");
        }
    }

    // Disarm the campaign: the next batch over the same cached plan is
    // clean again for every vector.
    server
        .with_prepared(fp, |p| p.plan.disarm_faults())
        .expect("plan resident");
    let (_, c0) = server.submit(fp, xs[0].clone(), policy).expect("submit");
    assert!(c0.is_empty());
    let (_, c1) = server.submit(fp, xs[1].clone(), policy).expect("submit");
    assert!(c1.is_empty());
    let (_, redo) = server.submit(fp, xs[2].clone(), policy).expect("submit");
    assert_eq!(redo.len(), 3);
    for (k, c) in redo.iter().enumerate() {
        let out = c.result.as_ref().expect("serves clean");
        assert!(out.health.is_clean(), "vector {k} after disarm");
        assert_eq!(bits(&out.y), clean[k], "vector {k} bits after disarm");
    }
}

/// A worker panic is contained at the batch boundary: the batch is
/// retried exactly once and (since re-execution is pure and the panicked
/// attempt completed nothing) the retried results are bit-identical to
/// an undisturbed run. A batch that panics twice fails with a typed
/// [`ServeError::Panicked`] per member — and the server keeps serving.
#[test]
fn worker_panic_retries_once_then_fails_typed() {
    let m = matrix();
    let n = m.cols() as usize;
    let xs: Vec<Vec<f32>> = (0..3).map(|k| seeded_x(n, 200 + k)).collect();
    let policy = IntegrityPolicy::off();

    let mut oracle = pinned_pipeline().prepare(&m).expect("prepare oracle");
    let clean: Vec<Vec<u32>> = xs
        .iter()
        .map(|x| {
            let mut y = vec![0.0f32; n];
            oracle.execute(x, &mut y).expect("oracle execute");
            bits(&y)
        })
        .collect();

    let server = SpmvServer::with_pipeline(
        ServerConfig {
            queue: QueueConfig {
                max_batch: 3,
                max_delay: 1_000,
                ..QueueConfig::default()
            },
            workers: 2,
            ..ServerConfig::default()
        },
        pinned_pipeline(),
    );
    let fp = server.ingest_coo(&m).expect("ingest");
    let submit_three = |tag: u32| {
        let mut done = Vec::new();
        for x in &xs {
            let (_, c) = server.submit(fp, x.clone(), policy).expect("submit");
            done.extend(c);
        }
        assert_eq!(done.len(), 3, "round {tag}: size flush on the third submit");
        done
    };

    // Round 1: the first execution attempt panics; the serial retry pass
    // re-runs the batch and every request serves, bit-clean.
    server.arm_worker_panic(fp, 1);
    let done = submit_three(1);
    for (k, c) in done.iter().enumerate() {
        let out = c.result.as_ref().expect("retried batch serves");
        assert!(!out.degraded);
        assert_eq!(bits(&out.y), clean[k], "vector {k} retried bits");
    }
    let stats = server.overload_stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.retried_requests, 3);
    assert_eq!(stats.abandoned_requests, 0);

    // Round 2: both the attempt and its retry panic; the batch is
    // abandoned with a typed error per member, never silently dropped.
    server.arm_worker_panic(fp, 2);
    let done = submit_three(2);
    for c in &done {
        assert!(
            matches!(c.result, Err(ServeError::Panicked)),
            "expected Panicked, got {:?}",
            c.result.as_ref().map(|_| "ok")
        );
    }
    let stats = server.overload_stats();
    assert_eq!(stats.worker_panics, 3, "1 from round 1, 2 from round 2");
    assert_eq!(stats.retried_requests, 6);
    assert_eq!(stats.abandoned_requests, 3);

    // The panic never poisons the server: the next round serves clean.
    let done = submit_three(3);
    for (k, c) in done.iter().enumerate() {
        let out = c.result.as_ref().expect("server still serves");
        assert_eq!(bits(&out.y), clean[k], "vector {k} bits after panics");
    }
}

/// A plan with a persistent fault walks the whole breaker cycle: enough
/// golden fallbacks trip it into quarantine; quarantined batches serve
/// straight from the golden CSR (degraded, bit-exact, no ladder cost);
/// after the cooldown a half-open probe runs the accelerator path and a
/// clean probe re-admits the healed plan.
#[test]
fn persistent_faults_trip_quarantine_and_a_clean_probe_recovers() {
    let m = matrix();
    let n = m.cols() as usize;
    let xs: Vec<Vec<f32>> = (0..2).map(|k| seeded_x(n, 300 + k)).collect();
    let policy = IntegrityPolicy::full();

    let mut oracle = pinned_pipeline().prepare(&m).expect("prepare oracle");
    let clean: Vec<Vec<u32>> = xs
        .iter()
        .map(|x| {
            let mut y = vec![0.0f32; n];
            oracle.execute(x, &mut y).expect("oracle execute");
            bits(&y)
        })
        .collect();
    let golden: Vec<Vec<u32>> = xs
        .iter()
        .map(|x| {
            let mut y = vec![0.0f32; n];
            oracle.golden().spmv(x, &mut y).expect("csr spmv");
            bits(&y)
        })
        .collect();

    let server = SpmvServer::with_pipeline(
        ServerConfig {
            queue: QueueConfig {
                max_batch: 2,
                max_delay: 1_000,
                ..QueueConfig::default()
            },
            breaker: BreakerConfig {
                window: 4,
                trip_failures: 2,
                cooldown: 100,
                probe_jitter: 0,
                seed: 0,
            },
            workers: 2,
            ..ServerConfig::default()
        },
        pinned_pipeline(),
    );
    let fp = server.ingest_coo(&m).expect("ingest");
    let breaker_state = || {
        server
            .catalog()
            .get(&fp)
            .expect("plan resident")
            .breaker_state()
    };
    let submit_pair = || {
        let (_, c) = server.submit(fp, xs[0].clone(), policy).expect("submit");
        assert!(c.is_empty());
        let (_, done) = server.submit(fp, xs[1].clone(), policy).expect("submit");
        assert_eq!(done.len(), 2, "size flush on the second submit");
        done
    };

    // Persistent all-lane faults on every vector: under the Full policy
    // each vector survives only via the golden fallback — two failures
    // in a window of four trip the breaker on the first batch.
    server
        .with_prepared(fp, |p| {
            let spec = FaultSpec {
                lane_faults: 4,
                ..FaultSpec::default()
            };
            p.plan
                .arm_faults(FaultPlan::seeded(9, &spec, p.plan.n_instances()));
        })
        .expect("plan resident");
    let done = submit_pair();
    for (k, c) in done.iter().enumerate() {
        let out = c.result.as_ref().expect("ladder fallback serves");
        assert!(out.health.fallback, "vector {k} must fall back");
        assert!(!out.degraded, "ladder fallback is not quarantine");
        assert_eq!(bits(&out.y), golden[k], "vector {k} fallback bits");
    }
    assert_eq!(breaker_state(), BreakerState::Quarantined { until: 100 });
    assert_eq!(server.overload_stats().quarantine_trips, 1);

    // Quarantined: batches route straight to the golden CSR — degraded
    // and flagged as such, still bit-exact, and the sliding window is
    // untouched (golden serves say nothing about the accelerator).
    let done = submit_pair();
    for (k, c) in done.iter().enumerate() {
        let out = c.result.as_ref().expect("golden route serves");
        assert!(out.degraded, "vector {k} must be flagged degraded");
        assert!(out.health.fallback);
        assert_eq!(bits(&out.y), golden[k], "vector {k} golden bits");
    }
    assert_eq!(server.overload_stats().served_degraded, 2);
    assert_eq!(breaker_state(), BreakerState::Quarantined { until: 100 });

    // Heal the plan, wait out the cooldown: the next batch is the
    // half-open probe on the accelerator path; a clean probe re-admits.
    server
        .with_prepared(fp, |p| p.plan.disarm_faults())
        .expect("plan resident");
    server.clock().advance_to(100);
    let done = submit_pair();
    for (k, c) in done.iter().enumerate() {
        let out = c.result.as_ref().expect("probe serves");
        assert!(!out.degraded, "probe runs the accelerator path");
        assert!(out.health.is_clean(), "vector {k} probe: {:?}", out.health);
        assert_eq!(bits(&out.y), clean[k], "vector {k} probe bits");
    }
    let stats = server.overload_stats();
    assert_eq!(stats.quarantine_recoveries, 1);
    assert_eq!(stats.quarantine_trips, 1, "no re-trip");
    assert_eq!(breaker_state(), BreakerState::Healthy);

    // Recovered: back on the plain accelerator path, clean and
    // undegraded.
    let done = submit_pair();
    for (k, c) in done.iter().enumerate() {
        let out = c.result.as_ref().expect("healthy serves");
        assert!(!out.degraded);
        assert!(out.health.is_clean());
        assert_eq!(bits(&out.y), clean[k], "vector {k} healed bits");
    }
    assert_eq!(breaker_state(), BreakerState::Healthy);
}
