//! Shared plumbing for the figure/table harness binaries.
//!
//! Every binary accepts `--scale {small,medium,paper}` (default `medium`)
//! and regenerates one table or figure of the paper, printing the same
//! rows/series the paper reports. See DESIGN.md §5 for the experiment
//! index.

use spasm_workloads::{Scale, Workload};

/// Parses `--scale {small,medium,paper}` from the process arguments
/// (default: medium).
///
/// # Panics
///
/// Panics with a usage message on an unknown scale value.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        None => Scale::Medium,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("small") => Scale::Small,
            Some("medium") => Scale::Medium,
            Some("paper") => Scale::Paper,
            other => panic!(
                "usage: --scale {{small,medium,paper}} (got {:?})",
                other.unwrap_or("<missing>")
            ),
        },
    }
}

/// Human label for a scale.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small (~1/32 edge)",
        Scale::Medium => "medium (~1/8 edge)",
        Scale::Paper => "paper (Table II sizes)",
    }
}

/// Geometric mean (re-exported for harness summaries).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    spasm_sparse::storage::geometric_mean(values)
}

/// Iterates the full Table II suite with a progress note on stderr.
pub fn for_each_workload(scale: Scale, mut f: impl FnMut(Workload, spasm_sparse::Coo)) {
    for w in Workload::ALL {
        eprintln!("  [gen] {w} ...");
        let m = w.generate(scale);
        f(w, m);
    }
}

/// Prints a horizontal rule sized to a table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_passthrough() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scale_names() {
        assert!(scale_name(Scale::Paper).contains("paper"));
    }
}
