//! Heat diffusion: explicit time-stepping of the 2D heat equation on the
//! simulated SPASM accelerator.
//!
//! The 5-point Laplacian stencil is exactly the electromagnetics/stencil
//! class of the paper's workload suite (tmt_sym, t2em): its local patterns
//! are diagonal segments, and the framework picks a diagonal-bearing
//! portfolio. Thousands of time steps reuse one encoded matrix — the
//! amortisation scenario of Section V-E4.
//!
//! ```text
//! cargo run --release -p spasm --example heat_diffusion
//! ```

use spasm::Pipeline;
use spasm_sparse::Coo;

/// Builds `I + dt·L` for the 2D 5-point Laplacian on an `n × n` grid with
/// insulated boundaries — one explicit Euler step is then `u ← A·u`.
fn step_matrix(n: u32, dt: f32) -> Coo {
    let idx = |r: u32, c: u32| r * n + c;
    let mut t = Vec::new();
    for r in 0..n {
        for c in 0..n {
            let me = idx(r, c);
            let mut neighbours = Vec::new();
            if r > 0 {
                neighbours.push(idx(r - 1, c));
            }
            if r + 1 < n {
                neighbours.push(idx(r + 1, c));
            }
            if c > 0 {
                neighbours.push(idx(r, c - 1));
            }
            if c + 1 < n {
                neighbours.push(idx(r, c + 1));
            }
            t.push((me, me, 1.0 - dt * neighbours.len() as f32));
            for nb in neighbours {
                t.push((me, nb, dt));
            }
        }
    }
    Coo::from_triplets(n * n, n * n, t).expect("stencil in bounds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 96u32;
    let dt = 0.2f32;
    let a = step_matrix(n, dt);
    println!(
        "heat step matrix: {}x{} ({} unknowns, {} non-zeros)",
        a.rows(),
        a.cols(),
        n * n,
        a.nnz()
    );

    let prepared = Pipeline::new().prepare(&a)?;
    println!(
        "portfolio {} @ tile {} on {} (padding {:.1}%)",
        prepared.selection.set.name(),
        prepared.best.tile_size,
        prepared.best.config.name,
        prepared.encoded.padding_rate() * 100.0
    );

    // A hot square in the centre.
    let mut u = vec![0.0f32; (n * n) as usize];
    for r in n * 3 / 8..n * 5 / 8 {
        for c in n * 3 / 8..n * 5 / 8 {
            u[(r * n + c) as usize] = 100.0;
        }
    }
    let initial_heat: f32 = u.iter().sum();

    let acc = prepared.accelerator();
    let steps = 200;
    let mut simulated = 0.0f64;
    for _ in 0..steps {
        let mut next = vec![0.0f32; u.len()];
        let exec = acc.run(&prepared.encoded, &u, &mut next)?;
        simulated += exec.seconds;
        u = next;
    }

    let final_heat: f32 = u.iter().sum();
    let peak = u.iter().copied().fold(0.0f32, f32::max);
    println!(
        "after {steps} steps: total heat {:.1} (was {:.1}, conservation error {:.2e}), peak {:.2}",
        final_heat,
        initial_heat,
        ((final_heat - initial_heat) / initial_heat).abs(),
        peak
    );
    assert!(
        ((final_heat - initial_heat) / initial_heat).abs() < 1e-3,
        "insulated boundaries must conserve heat"
    );
    println!(
        "simulated accelerator time: {:.3} ms for {steps} steps \
         ({:.1} us/step) — one preprocessing pass, thousands of reuses",
        simulated * 1e3,
        simulated * 1e6 / steps as f64
    );
    Ok(())
}
