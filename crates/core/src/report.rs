//! Uniform reporting: wraps a simulated SPASM execution in the same
//! [`PlatformReport`] shape the baseline models emit, so the figure
//! harnesses can tabulate all platforms together.

use spasm_baselines::{power, PlatformReport};
use spasm_hw::ExecReport;

use crate::framework::Prepared;

/// Builds a [`PlatformReport`] for a SPASM execution.
///
/// Bandwidth efficiency is computed against the *selected* configuration's
/// aggregate bandwidth (the paper computes it per selected hardware
/// version); energy efficiency uses the measured 58 W of Table VII.
pub fn spasm_report(prepared: &Prepared, exec: &ExecReport) -> PlatformReport {
    let cfg = &prepared.best.config;
    PlatformReport {
        name: cfg.name.clone(),
        seconds: exec.seconds,
        gflops: exec.gflops,
        bandwidth_eff: exec.gflops / cfg.bandwidth_gbs(),
        energy_eff: exec.gflops / power::SPASM_W,
        compute_utilization: exec.gflops / cfg.peak_gflops(),
        bandwidth_utilization: exec.bandwidth_utilization,
    }
}

#[cfg(test)]
mod tests {
    use crate::Pipeline;
    use spasm_sparse::Coo;

    #[test]
    fn report_fields_consistent() {
        let mut t = Vec::new();
        for i in 0..128u32 {
            t.push((i, i, 2.0));
            t.push((i, (i + 3) % 128, 1.0));
        }
        let a = Coo::from_triplets(128, 128, t).unwrap();
        let mut prepared = Pipeline::new().prepare(&a).unwrap();
        let mut y = vec![0.0f32; 128];
        let exec = prepared.execute(&vec![1.0; 128], &mut y).unwrap();
        let report = super::spasm_report(&prepared, &exec);
        assert_eq!(report.name, prepared.best.config.name);
        assert!(report.gflops > 0.0);
        assert!(
            (report.energy_eff - report.gflops / 58.0).abs() < 1e-12,
            "Table VII power constant"
        );
        assert!(report.compute_utilization <= 1.0);
    }
}
