use std::fmt;

/// Errors produced by the sparse-matrix substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// A triplet refers to a row or column outside the declared shape.
    IndexOutOfBounds {
        /// Row of the offending entry.
        row: u32,
        /// Column of the offending entry.
        col: u32,
        /// Declared number of rows.
        rows: u32,
        /// Declared number of columns.
        cols: u32,
    },
    /// The input vector `x` has the wrong length for this matrix.
    DimensionMismatch {
        /// What the operation expected.
        expected: usize,
        /// What the caller supplied.
        actual: usize,
        /// Which operand was wrong (`"x"` or `"y"`).
        operand: &'static str,
    },
    /// A block size of zero (or one that does not divide the shape when
    /// required) was supplied to a blocked format.
    InvalidBlockSize(u32),
    /// The Matrix Market stream was malformed.
    ParseError {
        /// 1-based line number of the failure.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An I/O error, carried as a string because `io::Error` is not `Clone`.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {rows}x{cols} matrix shape"
            ),
            SparseError::DimensionMismatch {
                expected,
                actual,
                operand,
            } => write!(
                f,
                "vector `{operand}` has length {actual}, expected {expected}"
            ),
            SparseError::InvalidBlockSize(b) => write!(f, "invalid block size {b}"),
            SparseError::ParseError { line, message } => {
                write!(f, "matrix market parse error at line {line}: {message}")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(err: std::io::Error) -> Self {
        SparseError::Io(err.to_string())
    }
}
