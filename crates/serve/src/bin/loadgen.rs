//! Seeded load generator for the SPASM serving front-end.
//!
//! Replays deterministic request streams (Zipf-skewed matrix popularity,
//! seeded vectors, virtual-clock pacing) against two server configs —
//! coalescing and batch-1 baseline — in open- and closed-loop modes, and
//! writes p50/p99 latency plus throughput per corpus matrix to
//! `BENCH_serving.json` at the workspace root.
//!
//! ```text
//! cargo run -p spasm-serve --release --bin loadgen -- [--smoke]
//!     [--seed N] [--requests N] [--zipf S] [--clients N]
//!     [--mode open|closed|both] [--overload] [--deadline TICKS]
//!     [--overload-gap TICKS]
//! ```
//!
//! `--smoke` bounds the run for CI (few requests, small corpus scale);
//! everything is virtual-clock driven, so even full runs never sleep.
//!
//! `--overload` adds an overload campaign: a bounded, rate-limited queue
//! is driven well past capacity against a busy executor, so the run
//! reports typed admission rejections and deadline sheds (and, in
//! `fault-injection` builds, circuit-breaker quarantine transitions on a
//! faulted hot plan). The campaign is as deterministic as the normal
//! modes — same seed, same counts. Normal modes assert *zero* overload
//! activity; the overload section asserts it is nonzero.

use spasm::IntegrityPolicy;
use spasm_format::MatrixFingerprint;
use spasm_serve::loadgen::{
    drive_closed, drive_open, drive_overload, RunStats, TraceGen, TICKS_PER_SECOND,
};
use spasm_serve::{
    BreakerConfig, OverloadStats, QueueConfig, RateLimit, ServerConfig, SpmvServer, Tick,
};
use spasm_workloads::{Scale, Workload};

struct Args {
    smoke: bool,
    seed: u64,
    requests: usize,
    zipf: f64,
    clients: usize,
    mode: String,
    overload: bool,
    deadline: Tick,
    overload_gap: Tick,
    overcommit: f64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let value = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    Args {
        smoke,
        seed: value("--seed").and_then(|v| v.parse().ok()).unwrap_or(42),
        requests: value("--requests")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 64 } else { 2000 }),
        zipf: value("--zipf").and_then(|v| v.parse().ok()).unwrap_or(1.1),
        clients: value("--clients")
            .and_then(|v| v.parse().ok())
            .unwrap_or(16),
        mode: value("--mode").unwrap_or_else(|| "both".to_string()),
        overload: argv.iter().any(|a| a == "--overload"),
        deadline: value("--deadline")
            .and_then(|v| v.parse().ok())
            .unwrap_or(400),
        overload_gap: value("--overload-gap")
            .and_then(|v| v.parse().ok())
            .unwrap_or(5),
        overcommit: value("--overcommit")
            .and_then(|v| v.parse().ok())
            .unwrap_or(40.0),
    }
}

const CORPUS: [Workload; 4] = [
    Workload::Raefsky3,
    Workload::C73,
    Workload::TmtSym,
    Workload::Cfd2,
];

/// Mean open-loop interarrival gap and closed-loop think time, in ticks.
const MEAN_GAP: u64 = 50;
const THINK_MEAN: u64 = 100;

fn build_server(
    config: ServerConfig,
    corpus_coos: &[spasm_sparse::Coo],
) -> (SpmvServer, Vec<(MatrixFingerprint, usize)>) {
    let server = SpmvServer::new(config);
    let corpus: Vec<(MatrixFingerprint, usize)> = corpus_coos
        .iter()
        .map(|coo| {
            let fp = server.ingest_coo(coo).expect("corpus matrix must prepare");
            (fp, coo.cols() as usize)
        })
        .collect();
    (server, corpus)
}

fn normal_config(coalesced: bool) -> ServerConfig {
    let queue = if coalesced {
        QueueConfig {
            max_batch: 8,
            max_delay: 200,
            ..QueueConfig::default()
        }
    } else {
        QueueConfig {
            max_batch: 1,
            max_delay: 0,
            ..QueueConfig::default()
        }
    };
    ServerConfig {
        queue,
        workers: if coalesced { 2 } else { 1 },
        ..ServerConfig::default()
    }
}

/// A deliberately tight admission envelope: small bounded queue plus a
/// token bucket well under the overload arrival rate, so the campaign
/// exercises both `QueueFull` and `RateLimited` refusals as well as
/// flush-time sheds.
fn overload_config(seed: u64) -> ServerConfig {
    ServerConfig {
        queue: QueueConfig {
            max_batch: 8,
            max_delay: 200,
            group_capacity: 16,
            global_capacity: 20,
            rate: Some(RateLimit {
                burst: 8,
                period: 10,
            }),
        },
        breaker: BreakerConfig {
            window: 8,
            trip_failures: 4,
            cooldown: 2_000,
            probe_jitter: 100,
            seed,
        },
        workers: 2,
        ..ServerConfig::default()
    }
}

fn overload_stats_json(o: &OverloadStats) -> String {
    format!(
        "{{\"rejected_queue_full\": {}, \"rejected_rate_limited\": {}, \
         \"rejected_expired\": {}, \"rejected_shutdown\": {}, \"shed_expired\": {}, \
         \"quarantine_trips\": {}, \"quarantine_recoveries\": {}, \"served_degraded\": {}, \
         \"worker_panics\": {}}}",
        o.rejected_queue_full,
        o.rejected_rate_limited,
        o.rejected_expired,
        o.rejected_shutdown,
        o.shed_expired,
        o.quarantine_trips,
        o.quarantine_recoveries,
        o.served_degraded,
        o.worker_panics,
    )
}

fn stats_json(stats: &RunStats, names: &[&str]) -> String {
    let per_matrix: Vec<String> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let lat = stats.per_matrix.get(i).map(Vec::as_slice).unwrap_or(&[]);
            format!(
                "\"{}\": {{\"requests\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
                name,
                lat.len(),
                spasm_serve::loadgen::percentile(lat, 50.0),
                spasm_serve::loadgen::percentile(lat, 99.0)
            )
        })
        .collect();
    format!(
        "{{\"completed\": {}, \"errors\": {}, \"rejected\": {}, \"shed\": {}, \
         \"degraded\": {}, \"throughput_rps\": {:.1}, \
         \"p50_us\": {}, \"p99_us\": {}, \"mean_batch\": {:.3}, \"batches\": {}, \
         \"virtual_seconds\": {:.6}, \"per_matrix\": {{{}}}}}",
        stats.completed,
        stats.errors,
        stats.rejected,
        stats.shed,
        stats.degraded,
        stats.throughput_rps(),
        stats.percentile(50.0),
        stats.percentile(99.0),
        stats.mean_batch(),
        stats.batches,
        stats.end_tick as f64 / TICKS_PER_SECOND,
        per_matrix.join(", ")
    )
}

fn print_stats(label: &str, stats: &RunStats) {
    println!(
        "  {label:<22} {:>7} reqs  p50 {:>6} µs  p99 {:>6} µs  {:>10.1} req/s  mean batch {:.2}",
        stats.completed,
        stats.percentile(50.0),
        stats.percentile(99.0),
        stats.throughput_rps(),
        stats.mean_batch()
    );
}

/// The capacity-pressure campaign: tight bounded queue, deadlines, busy
/// executor. Returns the JSON fragment for the report.
fn run_overload_pressure(args: &Args, coos: &[spasm_sparse::Coo], names: &[&str]) -> String {
    let (server, corpus) = build_server(overload_config(args.seed), coos);
    let trace = TraceGen::new(args.seed, corpus.len(), args.zipf, args.overload_gap);
    let stats = drive_overload(
        &server,
        &corpus,
        trace,
        args.requests,
        IntegrityPolicy::off(),
        args.deadline,
        args.overcommit,
    );
    let o = server.overload_stats();
    println!(
        "overload: pressure campaign (gap {} deadline {} overcommit {}x)",
        args.overload_gap, args.deadline, args.overcommit
    );
    print_stats("overload", &stats);
    println!(
        "  rejected {} (queue_full {} rate_limited {})  shed {}  degraded {}",
        stats.rejected, o.rejected_queue_full, o.rejected_rate_limited, stats.shed, stats.degraded
    );
    assert_eq!(
        stats.completed + stats.errors + stats.rejected + stats.shed,
        args.requests,
        "every request must resolve: served, typed-rejected or typed-shed"
    );
    assert_eq!(
        stats.errors, 0,
        "overload may only refuse with typed reasons"
    );
    assert!(
        stats.rejected > 0,
        "campaign must exercise admission rejection"
    );
    assert!(stats.shed > 0, "campaign must exercise deadline shedding");
    assert_eq!(
        stats.rejected as u64,
        o.rejected_queue_full + o.rejected_rate_limited + o.rejected_expired,
        "driver and server must agree on rejection counts"
    );
    assert_eq!(stats.shed as u64, o.shed_expired, "shed counts must agree");
    format!(
        "\"pressure\": {{\"stats\": {}, \"server\": {}}}",
        stats_json(&stats, names),
        overload_stats_json(&o)
    )
}

/// The quarantine campaign (`fault-injection` builds only): persistent
/// faults on the hottest plan under the Full integrity policy drive the
/// circuit breaker through trip → golden degradation (→ probes).
#[cfg(feature = "fault-injection")]
fn run_overload_quarantine(args: &Args, coos: &[spasm_sparse::Coo], names: &[&str]) -> String {
    use spasm::hw::fault::{FaultPlan, FaultSpec};
    let mut config = overload_config(args.seed);
    // Roomier admission: this campaign is about integrity, not capacity.
    config.queue.global_capacity = 1 << 20;
    config.queue.group_capacity = 1 << 16;
    config.queue.rate = None;
    let (server, corpus) = build_server(config, coos);
    server
        .with_prepared(corpus[0].0, |p| {
            let spec = FaultSpec {
                lane_faults: 4,
                ..FaultSpec::default()
            };
            p.plan
                .arm_faults(FaultPlan::seeded(args.seed, &spec, p.plan.n_instances()));
        })
        .expect("hot plan resident");
    let trace = TraceGen::new(args.seed, corpus.len(), args.zipf, MEAN_GAP);
    let stats = drive_overload(
        &server,
        &corpus,
        trace,
        args.requests,
        IntegrityPolicy::full(),
        args.deadline.saturating_mul(16),
        1.0,
    );
    let o = server.overload_stats();
    println!(
        "overload: quarantine campaign (persistent faults on {})",
        names[0]
    );
    print_stats("quarantine", &stats);
    println!(
        "  trips {}  recoveries {}  served_degraded {}",
        o.quarantine_trips, o.quarantine_recoveries, o.served_degraded
    );
    assert!(
        o.quarantine_trips > 0,
        "persistent faults must trip the breaker"
    );
    assert!(
        o.served_degraded > 0 && stats.degraded > 0,
        "quarantined plan must serve degraded from the golden CSR"
    );
    format!(
        "\"quarantine\": {{\"stats\": {}, \"server\": {}}}",
        stats_json(&stats, names),
        overload_stats_json(&o)
    )
}

fn main() {
    let args = parse_args();
    let scale = Scale::Small;
    let names: Vec<&str> = CORPUS.iter().map(|w| w.spec().name).collect();
    println!(
        "serving loadgen: seed={} requests={} zipf={} corpus={:?} ({scale:?}){}{}",
        args.seed,
        args.requests,
        args.zipf,
        names,
        if args.smoke { " [smoke]" } else { "" },
        if args.overload { " [overload]" } else { "" }
    );
    let coos: Vec<spasm_sparse::Coo> = CORPUS.iter().map(|w| w.generate(scale)).collect();

    let policy = IntegrityPolicy::off();
    let mut sections: Vec<String> = Vec::new();

    for mode in ["open", "closed"] {
        if args.mode != "both" && args.mode != mode {
            continue;
        }
        println!("mode: {mode}");
        let mut mode_parts: Vec<String> = Vec::new();
        let mut p50 = [0u64; 2];
        for (slot, coalesced) in [true, false].into_iter().enumerate() {
            let (server, corpus) = build_server(normal_config(coalesced), &coos);
            let stats = if mode == "open" {
                let trace = TraceGen::new(args.seed, corpus.len(), args.zipf, MEAN_GAP);
                drive_open(&server, &corpus, trace, args.requests, policy)
            } else {
                drive_closed(
                    &server,
                    &corpus,
                    args.seed,
                    args.zipf,
                    args.clients,
                    THINK_MEAN,
                    args.requests,
                    policy,
                )
            };
            let label = if coalesced { "coalesced" } else { "batch1" };
            assert_eq!(
                stats.completed + stats.errors,
                args.requests,
                "every request must complete"
            );
            assert_eq!(stats.errors, 0, "no request may error in a clean run");
            assert_eq!(stats.rejected, 0, "no rejections under normal load");
            assert_eq!(stats.shed, 0, "no sheds under normal load");
            assert_eq!(
                server.overload_stats(),
                OverloadStats::default(),
                "normal load must not trip any overload machinery"
            );
            print_stats(label, &stats);
            p50[slot] = stats.percentile(50.0).max(1);
            mode_parts.push(format!("\"{}\": {}", label, stats_json(&stats, &names)));
        }
        println!(
            "  p50 coalesced/batch1 = {:.2}x",
            p50[0] as f64 / p50[1] as f64
        );
        sections.push(format!("\"{}\": {{{}}}", mode, mode_parts.join(", ")));
    }

    if args.overload {
        #[allow(unused_mut)] // fault-injection builds push a second campaign
        let mut overload_parts = Vec::from([run_overload_pressure(&args, &coos, &names)]);
        #[cfg(feature = "fault-injection")]
        overload_parts.push(run_overload_quarantine(&args, &coos, &names));
        sections.push(format!("\"overload\": {{{}}}", overload_parts.join(", ")));
    }

    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"smoke\": {},\n  \"seed\": {},\n  \"requests\": {},\n  \
         \"zipf_s\": {},\n  \"clients\": {},\n  \"ticks_per_second\": {},\n  \
         \"corpus\": [{}],\n  \"coalesced_config\": {{\"max_batch\": 8, \"max_delay_us\": 200}},\n  \
         \"modes\": {{{}}}\n}}\n",
        args.smoke,
        args.seed,
        args.requests,
        args.zipf,
        args.clients,
        TICKS_PER_SECOND as u64,
        names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", "),
        sections.join(", ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("wrote {path}");
}
