//! Generator primitives: each produces triplets with a particular local
//! pattern character, to be composed by the suite definitions.

use rand::rngs::SmallRng;
use rand::Rng;
use spasm_sparse::{Coo, Index, Triplet};

fn value(rng: &mut SmallRng) -> f32 {
    // Non-zero values in [-1, 1); avoid exact zero so nnz accounting stays
    // exact after deduplication.
    loop {
        let v: f32 = rng.gen_range(-1.0..1.0);
        if v != 0.0 {
            return v;
        }
    }
}

fn build(rows: Index, cols: Index, triplets: Vec<Triplet>) -> Coo {
    Coo::from_triplets(rows, cols, triplets).expect("generators emit in-bounds entries")
}

/// FEM-style matrix: dense `block × block` tiles scattered in a band around
/// the diagonal. With `block = 4` and aligned anchors this reproduces the
/// raefsky3 character (a single dominant full-block local pattern); with
/// unaligned anchors or `block = 2` the pattern mix spreads like the other
/// CFD matrices.
///
/// `band` is the half-width (in columns) of the block band; `aligned`
/// forces anchors onto the 4×4 grid.
pub fn fem_blocks(
    rng: &mut SmallRng,
    n: Index,
    target_nnz: usize,
    block: Index,
    band: Index,
    aligned: bool,
) -> Coo {
    assert!(block >= 1 && n >= block);
    let per_block = (block * block) as usize;
    let nblocks = target_nnz.div_ceil(per_block);
    let mut triplets = Vec::with_capacity(nblocks * per_block);
    // Walk block rows round-robin so every part of the matrix is populated
    // and blocks rarely collide.
    let block_rows = n / block;
    let blocks_per_row = (nblocks as u64).div_ceil(block_rows as u64).max(1) as u32;
    'outer: for br in 0..block_rows {
        let r0 = br * block;
        for _ in 0..blocks_per_row {
            if triplets.len() >= target_nnz {
                break 'outer;
            }
            let lo = r0.saturating_sub(band);
            let hi = (r0 + band).min(n - block);
            let mut c0 = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
            if aligned {
                c0 -= c0 % block;
            }
            for dr in 0..block {
                for dc in 0..block {
                    triplets.push((r0 + dr, c0 + dc, value(rng)));
                }
            }
        }
    }
    build(n, n, triplets)
}

/// Banded stencil: one entry on every listed diagonal offset for each row
/// where it stays in bounds. Electromagnetics matrices (tmt_sym, t2em)
/// look like this; their 4×4 local patterns are diagonal segments.
pub fn stencil(rng: &mut SmallRng, n: Index, offsets: &[i64]) -> Coo {
    let mut triplets = Vec::with_capacity(n as usize * offsets.len());
    for r in 0..n as i64 {
        for &k in offsets {
            let c = r + k;
            if c >= 0 && c < n as i64 {
                triplets.push((r as Index, c as Index, value(rng)));
            }
        }
    }
    build(n, n, triplets)
}

/// Anti-diagonal stencil: entries along lines `r + c = const`, producing
/// the anti-diagonal-dominated local patterns the paper attributes to c-73.
pub fn anti_diag_stencil(rng: &mut SmallRng, n: Index, lines: usize, extra_nnz: usize) -> Coo {
    let mut triplets = Vec::new();
    let stride = (n as usize * 2 / lines.max(1)).max(1);
    for line in 0..lines {
        let s = (line * stride) as i64; // r + c = s
        for r in 0..n as i64 {
            let c = s - r;
            if c >= 0 && c < n as i64 {
                triplets.push((r as Index, c as Index, value(rng)));
            }
        }
    }
    // Sparse scattered fill so the histogram has a tail, like the real
    // matrix.
    for _ in 0..extra_nnz {
        triplets.push((rng.gen_range(0..n), rng.gen_range(0..n), value(rng)));
    }
    build(n, n, triplets)
}

/// Uniform random matrix (Erdős–Rényi style), the stand-in for graph
/// matrices such as mycielskian14 whose local patterns are scattered
/// single cells and pairs.
pub fn random_uniform(rng: &mut SmallRng, n: Index, target_nnz: usize) -> Coo {
    let mut triplets = Vec::with_capacity(target_nnz + target_nnz / 8);
    // Oversample slightly: duplicates collapse during dedup.
    for _ in 0..target_nnz + target_nnz / 16 {
        triplets.push((rng.gen_range(0..n), rng.gen_range(0..n), value(rng)));
    }
    build(n, n, triplets)
}

/// Staircase linear-program structure (stormG2_1000): square scenario
/// blocks along the diagonal, each a short dense column strip, plus a set
/// of linking rows across the top. Local patterns are column fragments.
pub fn staircase(
    rng: &mut SmallRng,
    n: Index,
    target_nnz: usize,
    scenario: Index,
    link_rows: Index,
) -> Coo {
    assert!(scenario >= 1);
    let mut triplets = Vec::with_capacity(target_nnz);
    let nscen = n / scenario;
    let per_scen = (target_nnz / nscen.max(1) as usize).max(1);
    for s in 0..nscen {
        let base = s * scenario;
        for _ in 0..per_scen {
            if triplets.len() >= target_nnz {
                break;
            }
            // A vertical strip of 4 cells inside the scenario block.
            let c = base + rng.gen_range(0..scenario);
            let r0 = base + rng.gen_range(0..scenario.saturating_sub(4).max(1));
            for dr in 0..4.min(scenario) {
                triplets.push(((r0 + dr).min(n - 1), c, value(rng)));
            }
        }
        // Linking entries against the first rows.
        for lr in 0..link_rows.min(scenario) {
            triplets.push((lr, base + rng.gen_range(0..scenario), value(rng)));
        }
    }
    build(n, n, triplets)
}

/// N:M-pruned weight matrix, as produced by structured DNN pruning
/// (Section II-A's DBB patterns; 2:4 is the NVIDIA sparse-tensor-core
/// constraint): within every group of `m` consecutive columns, each row
/// keeps exactly `n` non-zeros.
///
/// With `pair_rows = true`, adjacent row pairs keep the *same* column
/// choices — the layout DBB-aware kernels exploit and the
/// `TemplateSet::dbb` portfolio decomposes without padding.
///
/// # Panics
///
/// Panics unless `0 < n <= m`.
pub fn nm_pruned(
    rng: &mut SmallRng,
    rows: Index,
    cols: Index,
    n: u32,
    m: u32,
    pair_rows: bool,
) -> Coo {
    assert!(n > 0 && n <= m, "need 0 < n <= m, got {n}:{m}");
    let mut triplets =
        Vec::with_capacity((rows as usize * cols as usize) * n as usize / m as usize);
    let keep_of_group = |rng: &mut SmallRng, g0: Index| -> Vec<Index> {
        let width = m.min(cols - g0);
        let mut cands: Vec<Index> = (0..width).map(|k| g0 + k).collect();
        // Partial Fisher-Yates: pick n of the group's columns.
        for i in 0..(n.min(width) as usize) {
            let j = rng.gen_range(i..cands.len());
            cands.swap(i, j);
        }
        cands.truncate(n.min(width) as usize);
        cands
    };
    let mut r = 0;
    while r < rows {
        let span = if pair_rows && r + 1 < rows { 2 } else { 1 };
        let mut g0 = 0;
        while g0 < cols {
            let keep = keep_of_group(rng, g0);
            for dr in 0..span {
                for &c in &keep {
                    triplets.push((r + dr, c, value(rng)));
                }
            }
            g0 += m;
        }
        r += span;
    }
    build(rows, cols, triplets)
}

/// Planted-pattern matrix: places whole 4×4 submatrices whose occupancy
/// masks follow a prescribed share distribution — the generator behind the
/// Table II pattern columns.
///
/// `shares` lists `(mask, fraction)` pairs for the dominant local
/// patterns (fractions of all *occupied submatrices*, as Table II
/// reports); the remainder is filled with a random-mask tail so the
/// histogram keeps the long tail real matrices show. Submatrices are
/// placed at aligned positions inside a diagonal band of half-width
/// `band` (in submatrices); collisions merge, slightly smoothing the
/// shares.
///
/// # Panics
///
/// Panics if shares are not in `(0, 1]`, sum above 1, or a mask is zero.
pub fn planted_patterns(
    rng: &mut SmallRng,
    n: Index,
    target_nnz: usize,
    shares: &[(u16, f64)],
    band: Index,
) -> Coo {
    let mut total_share = 0.0;
    for &(mask, share) in shares {
        assert!(mask != 0, "planted masks must be non-empty");
        assert!(share > 0.0 && share <= 1.0, "share {share} out of range");
        total_share += share;
    }
    assert!(total_share <= 1.0 + 1e-9, "shares sum to {total_share} > 1");

    // Expected non-zeros per placed submatrix under the share mix (tail
    // masks average ~6 bits for the truncated-geometric sampler below).
    let planted_bits: f64 = shares
        .iter()
        .map(|&(m, s)| s * f64::from(m.count_ones()))
        .sum();
    let tail_bits = (1.0 - total_share) * 6.0;
    let blocks = (target_nnz as f64 / (planted_bits + tail_bits).max(1.0)) as usize;

    let sub_n = n / 4;
    let mut triplets = Vec::with_capacity(target_nnz + 16);
    for b in 0..blocks.max(1) {
        // Pick the mask: walk the share table, else sample a tail mask.
        let mut pick: f64 = rng.gen_range(0.0..1.0);
        let mut mask = 0u16;
        for &(m, s) in shares {
            if pick < s {
                mask = m;
                break;
            }
            pick -= s;
        }
        if mask == 0 {
            // Tail: a random mask biased toward few cells (real tails are
            // sparse fragments).
            let bits = 1 + (rng.gen_range(0.0f64..1.0).powi(2) * 11.0) as u32;
            while mask.count_ones() < bits {
                mask |= 1 << rng.gen_range(0..16);
            }
        }
        // Banded placement: spread rows round-robin so tiles fill evenly.
        let sub_r = (b as u32) % sub_n.max(1);
        let lo = sub_r.saturating_sub(band);
        let hi = (sub_r + band).min(sub_n.saturating_sub(1));
        let sub_c = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
        for bit in 0..16u32 {
            if mask & (1 << bit) != 0 {
                let r = sub_r * 4 + bit / 4;
                let c = sub_c * 4 + bit % 4;
                if r < n && c < n {
                    triplets.push((r, c, value(rng)));
                }
            }
        }
    }
    build(n, n, triplets)
}

/// Relative weights of the fragment shapes emitted by
/// [`mixed_fragments`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentMix {
    /// Horizontal runs of 2–4 cells.
    pub row_runs: f64,
    /// Vertical runs of 2–4 cells.
    pub col_runs: f64,
    /// Dense 2×2 blocks.
    pub blocks2: f64,
    /// Dense 4×4 blocks.
    pub blocks4: f64,
    /// Diagonal runs of 2–4 cells.
    pub diag_runs: f64,
    /// Isolated single entries.
    pub singles: f64,
}

impl FragmentMix {
    /// A balanced mix, suitable for optimisation matrices like mip1 whose
    /// top-8 patterns are all equally frequent.
    pub const BALANCED: FragmentMix = FragmentMix {
        row_runs: 1.0,
        col_runs: 1.0,
        blocks2: 1.0,
        blocks4: 1.0,
        diag_runs: 1.0,
        singles: 1.0,
    };

    /// Block-heavy mix for CFD matrices (bbmat, x104, ML_Laplace).
    pub const BLOCK_HEAVY: FragmentMix = FragmentMix {
        row_runs: 0.5,
        col_runs: 0.5,
        blocks2: 2.0,
        blocks4: 3.0,
        diag_runs: 0.3,
        singles: 0.4,
    };

    /// Scattered mix with many singles (cfd2-like low-density CFD).
    pub const SCATTERED: FragmentMix = FragmentMix {
        row_runs: 1.0,
        col_runs: 1.0,
        blocks2: 0.8,
        blocks4: 0.2,
        diag_runs: 0.8,
        singles: 2.0,
    };

    fn cumulative(&self) -> [f64; 6] {
        let w = [
            self.row_runs,
            self.col_runs,
            self.blocks2,
            self.blocks4,
            self.diag_runs,
            self.singles,
        ];
        let mut acc = 0.0;
        let mut out = [0.0; 6];
        for (i, x) in w.iter().enumerate() {
            acc += x.max(0.0);
            out[i] = acc;
        }
        assert!(acc > 0.0, "fragment mix must have positive total weight");
        out
    }
}

/// Mixed-fragment matrix: emits small structured fragments (row runs,
/// column runs, blocks, diagonal runs, singles) at anchors concentrated in
/// a diagonal band. Reproduces the "several dominant patterns plus a long
/// tail" histograms of the general CFD/optimisation matrices.
pub fn mixed_fragments(
    rng: &mut SmallRng,
    n: Index,
    target_nnz: usize,
    band: Index,
    mix: FragmentMix,
) -> Coo {
    let cum = mix.cumulative();
    let total = cum[5];
    let mut triplets: Vec<Triplet> = Vec::with_capacity(target_nnz + 16);
    let anchor = |rng: &mut SmallRng| -> (Index, Index) {
        let r = rng.gen_range(0..n);
        let lo = r.saturating_sub(band);
        let hi = (r + band).min(n - 1);
        (r, rng.gen_range(lo..=hi))
    };
    // Oversample ~6% to compensate for duplicate coordinates collapsing
    // during COO deduplication.
    while triplets.len() < target_nnz + target_nnz / 16 {
        let (r, c) = anchor(rng);
        let pick = rng.gen_range(0.0..total);
        let kind = cum.iter().position(|&x| pick < x).unwrap_or(5);
        match kind {
            0 => {
                let len = rng.gen_range(2..=4);
                for d in 0..len {
                    if c + d < n {
                        triplets.push((r, c + d, value(rng)));
                    }
                }
            }
            1 => {
                let len = rng.gen_range(2..=4);
                for d in 0..len {
                    if r + d < n {
                        triplets.push((r + d, c, value(rng)));
                    }
                }
            }
            2 => {
                for dr in 0..2 {
                    for dc in 0..2 {
                        if r + dr < n && c + dc < n {
                            triplets.push((r + dr, c + dc, value(rng)));
                        }
                    }
                }
            }
            3 => {
                for dr in 0..4 {
                    for dc in 0..4 {
                        if r + dr < n && c + dc < n {
                            triplets.push((r + dr, c + dc, value(rng)));
                        }
                    }
                }
            }
            4 => {
                let len = rng.gen_range(2..=4);
                for d in 0..len {
                    if r + d < n && c + d < n {
                        triplets.push((r + d, c + d, value(rng)));
                    }
                }
            }
            _ => triplets.push((r, c, value(rng))),
        }
    }
    build(n, n, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn fem_blocks_hits_target_roughly() {
        let m = fem_blocks(&mut rng(), 256, 4096, 4, 32, true);
        assert!(m.nnz() >= 3500 && m.nnz() <= 4608, "nnz = {}", m.nnz());
        assert_eq!(m.rows(), 256);
    }

    #[test]
    fn aligned_fem_blocks_are_full_4x4_patterns() {
        let m = fem_blocks(&mut rng(), 256, 4096, 4, 32, true);
        // Every entry's block is fully dense: entries come in multiples of 16.
        assert_eq!(m.nnz() % 16, 0);
    }

    #[test]
    fn stencil_lands_on_offsets() {
        let m = stencil(&mut rng(), 64, &[-5, 0, 5]);
        for (r, c, _) in m.iter() {
            let k = c as i64 - r as i64;
            assert!(k == -5 || k == 0 || k == 5);
        }
        assert_eq!(m.nnz(), 64 + 59 + 59);
    }

    #[test]
    fn anti_diag_stencil_has_anti_lines() {
        let m = anti_diag_stencil(&mut rng(), 64, 8, 0);
        // all entries satisfy r + c = const for one of 8 constants
        let mut sums: Vec<i64> = m.iter().map(|(r, c, _)| r as i64 + c as i64).collect();
        sums.sort_unstable();
        sums.dedup();
        assert!(sums.len() <= 8, "sums: {sums:?}");
    }

    #[test]
    fn random_uniform_is_deterministic() {
        let a = random_uniform(&mut rng(), 128, 1000);
        let b = random_uniform(&mut rng(), 128, 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn staircase_shape() {
        let m = staircase(&mut rng(), 256, 2000, 32, 2);
        assert!(m.nnz() > 1000);
        assert_eq!(m.rows(), 256);
    }

    #[test]
    fn nm_pruned_keeps_exactly_n_per_group() {
        let m = nm_pruned(&mut rng(), 32, 64, 2, 4, false);
        assert_eq!(m.nnz(), 32 * 64 / 4 * 2);
        let mut per_group = std::collections::HashMap::new();
        for (r, c, _) in m.iter() {
            *per_group.entry((r, c / 4)).or_insert(0u32) += 1;
        }
        assert!(per_group.values().all(|&k| k == 2));
    }

    #[test]
    fn nm_pruned_pair_rows_share_columns() {
        let m = nm_pruned(&mut rng(), 16, 16, 2, 4, true);
        // Row 0 and row 1 touch the same column set.
        let cols_of = |row: u32| -> Vec<u32> {
            m.iter()
                .filter(|&(r, _, _)| r == row)
                .map(|(_, c, _)| c)
                .collect()
        };
        assert_eq!(cols_of(0), cols_of(1));
        assert_eq!(cols_of(2), cols_of(3));
    }

    #[test]
    #[should_panic(expected = "0 < n <= m")]
    fn nm_pruned_validates_ratio() {
        nm_pruned(&mut rng(), 8, 8, 5, 4, false);
    }

    #[test]
    fn mixed_fragments_reaches_target() {
        let m = mixed_fragments(&mut rng(), 256, 3000, 32, FragmentMix::BALANCED);
        assert!(m.nnz() >= 2800, "nnz = {}", m.nnz());
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_mix_rejected() {
        let zero = FragmentMix {
            row_runs: 0.0,
            col_runs: 0.0,
            blocks2: 0.0,
            blocks4: 0.0,
            diag_runs: 0.0,
            singles: 0.0,
        };
        mixed_fragments(&mut rng(), 64, 100, 8, zero);
    }
}
