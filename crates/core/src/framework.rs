//! The end-to-end SPASM pipeline (workflow ①–⑥, Fig. 6).

use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use spasm_format::{SpasmMatrix, SubBlock, SubmatrixMap};
use spasm_hw::{
    merge_health, Accelerator, ExecReport, ExecutionPlan, HealthReport, HwConfig, IntegrityCheck,
    VerifyScope,
};
use spasm_patterns::selection::{self, TopN};
use spasm_patterns::{
    DecompositionTable, GridSize, PatternHistogram, SelectionOutcome, Template, TemplateSet,
};
use spasm_sparse::{Coo, Csr, DeltaOp, MatrixDelta, SpMv};

use crate::error::PipelineError;
use crate::integrity::{IntegrityMode, IntegrityPolicy};
use crate::schedule::{self, ScheduleCandidate, ScheduleChoice};

/// Pipeline configuration: which portfolios, tile sizes and hardware
/// configurations the framework may choose among.
///
/// The defaults reproduce the paper's full framework. The Fig. 14 ablation
/// points are built by pinning parts of the search space
/// ([`PipelineOptions::fixed_portfolio`], [`PipelineOptions::fixed_schedule`]).
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Candidate template portfolios for step ② (default: Table V sets
    /// 0–9).
    pub candidates: Vec<TemplateSet>,
    /// How many top patterns Algorithm 3 scores (default: enough for 95 %
    /// coverage).
    pub top_n: TopN,
    /// Tile sizes for step ⑤ (default: 256…32768 powers of two).
    pub tile_sizes: Vec<u32>,
    /// Hardware configurations for step ⑤ (default: the three shipped
    /// bitstreams of Table IV).
    pub configs: Vec<HwConfig>,
    /// Preprocessing thread budget (default: [`Parallelism::Auto`]). All
    /// pipeline outputs are identical for every setting; the knob only
    /// trades wall-clock for cores. Serial mode is kept for debugging and
    /// as the oracle side of the determinism tests.
    pub parallelism: Parallelism,
    /// How much of each execution is verified, and whether unrepairable
    /// corruption falls back to the golden CSR path (default:
    /// [`IntegrityPolicy::off`]).
    pub integrity: IntegrityPolicy,
    /// Streaming-update drift threshold (default 0.25): when a structural
    /// delta touches more than this fraction of the matrix's occupied 4×4
    /// submatrices — or shifts the pattern histogram enough that step ②
    /// would pick a different portfolio — [`Prepared::apply_delta`] falls
    /// back to a full re-prepare instead of splicing tiles.
    pub drift_threshold: f64,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            candidates: TemplateSet::table_v_candidates(),
            top_n: TopN::Coverage(0.95),
            tile_sizes: schedule::default_tile_sizes(),
            configs: HwConfig::shipped(),
            parallelism: Parallelism::Auto,
            integrity: IntegrityPolicy::off(),
            drift_threshold: 0.25,
        }
    }
}

impl PipelineOptions {
    /// Pins step ② to one portfolio (ablation: "fixed template pattern").
    pub fn fixed_portfolio(mut self, set: TemplateSet) -> Self {
        self.candidates = vec![set];
        self
    }

    /// Pins step ⑤ to one tile size and configuration (ablation: "fixed
    /// schedule").
    pub fn fixed_schedule(mut self, tile_size: u32, config: HwConfig) -> Self {
        self.tile_sizes = vec![tile_size];
        self.configs = vec![config];
        self
    }

    /// Sets the preprocessing thread budget.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the execution integrity policy.
    pub fn integrity(mut self, integrity: IntegrityPolicy) -> Self {
        self.integrity = integrity;
        self
    }

    /// Sets the streaming-update drift threshold (a fraction of occupied
    /// 4×4 submatrices; see [`PipelineOptions::drift_threshold`]).
    pub fn drift_threshold(mut self, fraction: f64) -> Self {
        self.drift_threshold = fraction;
        self
    }
}

/// Thread budget for preprocessing.
///
/// Preprocessing output is bit-identical for every variant (enforced by
/// `tests/determinism.rs`); only wall-clock changes. Without the `parallel`
/// cargo feature every variant executes serially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use every available core.
    #[default]
    Auto,
    /// Single-threaded execution.
    Serial,
    /// At most this many worker threads (`Threads(0)` ≡ `Auto`,
    /// `Threads(1)` ≡ `Serial`).
    Threads(usize),
}

impl Parallelism {
    /// The concrete worker-thread cap this variant resolves to.
    pub fn resolved_threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Auto | Parallelism::Threads(0) => {
                std::thread::available_parallelism().map_or(1, usize::from)
            }
            Parallelism::Threads(n) => n,
        }
    }
}

/// Runs `f` under the pipeline's thread budget. With the `parallel` feature
/// disabled this is the identity: everything already runs serially.
#[cfg(feature = "parallel")]
fn with_parallelism<R>(parallelism: Parallelism, f: impl FnOnce() -> R) -> R {
    match rayon::ThreadPoolBuilder::new()
        .num_threads(parallelism.resolved_threads())
        .build()
    {
        Ok(pool) => pool.install(f),
        // The vendored pool builder is infallible in practice; if it ever
        // fails, run under the ambient budget rather than aborting.
        Err(_) => f(),
    }
}

#[cfg(not(feature = "parallel"))]
fn with_parallelism<R>(_parallelism: Parallelism, f: impl FnOnce() -> R) -> R {
    f()
}

/// The worker budget in effect on the current thread (1 in serial builds).
#[cfg(feature = "parallel")]
fn current_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(not(feature = "parallel"))]
fn current_threads() -> usize {
    1
}

/// Wall-clock cost of each preprocessing stage — the rows of Table VIII.
///
/// Each field is the *wall-clock* span of its stage as observed by the
/// thread driving the pipeline, so the numbers stay meaningful under
/// parallel execution: a stage that fans out over `threads` workers reports
/// the elapsed time of the whole fan-out, not the summed CPU time.
/// [`StageTimings::threads`] records the budget the stages ran under so a
/// report can distinguish a serial 40 ms from a 4-thread 40 ms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// ① local pattern analysis.
    pub analysis: Duration,
    /// ② template pattern selection.
    pub selection: Duration,
    /// ③ local pattern decomposition (all occurring patterns).
    pub decomposition: Duration,
    /// ④⑤ global composition analysis + workload schedule exploration.
    pub schedule: Duration,
    /// Final encode into the SPASM format (stream materialisation).
    pub encode: Duration,
    /// Execution-plan build: instance-stream decode, LPT schedule, report
    /// skeleton and scratch allocation (amortised over every `execute`).
    pub plan: Duration,
    /// Worker-thread budget the stages ran under (1 = serial).
    pub threads: usize,
}

impl StageTimings {
    /// Total preprocessing wall-clock time.
    pub fn total(&self) -> Duration {
        self.analysis
            + self.selection
            + self.decomposition
            + self.schedule
            + self.encode
            + self.plan
    }

    /// Whether any stage may have used more than one worker thread.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

/// The SPASM framework front-end.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    options: PipelineOptions,
}

impl Pipeline {
    /// A pipeline with the paper's default search space.
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// A pipeline with custom options.
    pub fn with_options(options: PipelineOptions) -> Self {
        Pipeline { options }
    }

    /// The active options.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// Runs preprocessing for a *set* of expected input matrices sharing
    /// one portfolio — the abstract's deployment model: the portfolio (and
    /// thus the opcode LUT) is optimised once over the whole set, then
    /// each matrix still gets its own tile-size/configuration schedule.
    ///
    /// Matrices are weighted equally in selection regardless of size (see
    /// [`selection::select_for_matrix_set`]).
    ///
    /// # Errors
    ///
    /// Propagates per-matrix pipeline errors; an empty slice is an
    /// [`PipelineError::EmptySearchSpace`].
    pub fn prepare_set(&self, matrices: &[Coo]) -> Result<Vec<Prepared>, PipelineError> {
        if matrices.is_empty() {
            return Err(PipelineError::EmptySearchSpace("input matrix"));
        }
        with_parallelism(self.options.parallelism, || {
            // ① analyse every matrix (in parallel — matrices are
            // independent); ② select one shared portfolio.
            let maps = Pipeline::analyze_set(matrices);
            let histograms: Vec<_> = maps.iter().map(SubmatrixMap::histogram).collect();
            let shared = selection::select_for_matrix_set(
                &histograms,
                &self.options.candidates,
                self.options.top_n,
            );
            // ③–⑤ + encode per matrix, pinned to the shared portfolio.
            // Matrices again run in parallel; each per-matrix `prepare`
            // then runs serially on its worker (the vendored rayon shim
            // grants workers a nested budget of 1), which keeps the
            // fan-out flat instead of quadratic.
            let pinned =
                Pipeline::with_options(self.options.clone().fixed_portfolio(shared.set.clone()));
            Pipeline::prepare_each(&pinned, matrices)
        })
    }

    #[cfg(feature = "parallel")]
    fn analyze_set(matrices: &[Coo]) -> Vec<SubmatrixMap> {
        use rayon::prelude::*;
        matrices.par_iter().map(SubmatrixMap::from_coo).collect()
    }

    #[cfg(not(feature = "parallel"))]
    fn analyze_set(matrices: &[Coo]) -> Vec<SubmatrixMap> {
        matrices.iter().map(SubmatrixMap::from_coo).collect()
    }

    #[cfg(feature = "parallel")]
    fn prepare_each(pinned: &Pipeline, matrices: &[Coo]) -> Result<Vec<Prepared>, PipelineError> {
        use rayon::prelude::*;
        matrices
            .par_iter()
            .map(|m| pinned.prepare_inner(m))
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    #[cfg(not(feature = "parallel"))]
    fn prepare_each(pinned: &Pipeline, matrices: &[Coo]) -> Result<Vec<Prepared>, PipelineError> {
        matrices.iter().map(|m| pinned.prepare_inner(m)).collect()
    }

    /// Runs preprocessing (steps ①–⑤) on a matrix and returns everything
    /// needed for execution.
    ///
    /// # Errors
    ///
    /// Propagates format, opcode and search-space errors as
    /// [`PipelineError`].
    pub fn prepare(&self, matrix: &Coo) -> Result<Prepared, PipelineError> {
        with_parallelism(self.options.parallelism, || self.prepare_inner(matrix))
    }

    /// `prepare` body, run under an already-installed thread budget (so
    /// `prepare_set` workers do not stack budgets).
    fn prepare_inner(&self, matrix: &Coo) -> Result<Prepared, PipelineError> {
        let mut timings = StageTimings {
            threads: current_threads(),
            ..StageTimings::default()
        };

        // ① local pattern analysis.
        let t0 = Instant::now();
        let map = SubmatrixMap::from_coo(matrix);
        let histogram = map.histogram();
        timings.analysis = t0.elapsed();

        // ② template pattern selection.
        let t1 = Instant::now();
        let selection = selection::select_template_set(
            &histogram,
            &self.options.candidates,
            self.options.top_n,
        );
        timings.selection = t1.elapsed();

        // ③ decompose all occurring patterns (the table is built during
        // selection; walking every occurring pattern materialises the
        // decomposition cache the encoder uses).
        let t2 = Instant::now();
        for (mask, _) in histogram.iter() {
            selection
                .table
                .decompose(*mask)
                .ok_or(spasm_format::FormatError::UncoverablePattern { mask: *mask })?;
        }
        timings.decomposition = t2.elapsed();

        // ④⑤ global composition + schedule exploration.
        let t3 = Instant::now();
        let (best, explored) = schedule::explore_schedule(
            &map,
            &selection.table,
            &self.options.tile_sizes,
            &self.options.configs,
        )?;
        timings.schedule = t3.elapsed();

        // Materialise the stream at the selected tile size.
        let t4 = Instant::now();
        let encoded = SpasmMatrix::encode(&map, &selection.table, best.tile_size)?;
        timings.encode = t4.elapsed();

        // Build the execution plan for the winning schedule once; every
        // subsequent `execute` reuses it (decode, LPT assignment, cycle
        // pricing and scratch buffers are all amortised here).
        let t5 = Instant::now();
        let plan = Accelerator::new(best.config.clone()).prepare(&encoded)?;
        timings.plan = t5.elapsed();

        Ok(Prepared {
            selection,
            best,
            explored,
            encoded,
            timings,
            plan,
            parallelism: self.options.parallelism,
            golden: Golden::seeded(Csr::from(matrix)),
            integrity: self.options.integrity,
            options: self.options.clone(),
            histogram: Some(histogram),
            sample_rows: Vec::new(),
            scope: Vec::new(),
            batch_health: Vec::new(),
        })
    }
}

/// The golden CSR reference, materialised on first use.
///
/// A fresh `prepare` seeds it eagerly — the input COO is in hand and the
/// conversion is cheap next to preprocessing. A plan restored from a
/// frozen wire-v3 container starts empty: only the verifying integrity
/// ladder ever reads the golden path, and decoding it up front would
/// dominate the cold start it exists to avoid.
#[derive(Debug, Default)]
struct Golden(OnceLock<Csr>);

impl Clone for Golden {
    fn clone(&self) -> Self {
        let g = Golden::default();
        if let Some(csr) = self.0.get() {
            let _ = g.0.set(csr.clone());
        }
        g
    }
}

impl Golden {
    /// An eagerly materialised reference (the prepare path).
    fn seeded(csr: Csr) -> Self {
        let g = Golden::default();
        let _ = g.0.set(csr);
        g
    }

    /// The reference, decoding it from the encoded matrix on first use.
    fn get(&self, encoded: &SpasmMatrix) -> &Csr {
        self.0.get_or_init(|| Csr::from(&encoded.to_coo()))
    }

    /// Co-updates a *materialised* reference with a values-only patch so
    /// the integrity ladder keeps verifying against the current values.
    /// A still-lazy reference needs nothing: it will materialise from the
    /// already-patched encoded matrix.
    fn patch(&mut self, entries: &[(u32, u32, f32)]) {
        if let Some(csr) = self.0.get_mut() {
            for &(r, c, v) in entries {
                csr.patch_value(r, c, v);
            }
        }
    }

    /// Heap footprint of the reference without forcing it: the exact
    /// size it will occupy once (if ever) materialised, so capacity
    /// accounting does not change when it is.
    fn bytes(&self, encoded: &SpasmMatrix) -> usize {
        match self.0.get() {
            Some(csr) => {
                std::mem::size_of_val(csr.row_ptr())
                    + std::mem::size_of_val(csr.col_indices())
                    + std::mem::size_of_val(csr.values())
            }
            None => {
                let nnz = encoded.nnz();
                (encoded.rows() as usize + 1) * std::mem::size_of::<usize>() + nnz * 4 + nnz * 4
            }
        }
    }
}

/// How [`Prepared::apply_delta`] absorbed a [`MatrixDelta`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DeltaOutcome {
    /// Values-only: the value stream was replaced copy-on-write under a
    /// bumped plan version; nothing was re-encoded or re-decoded.
    Patched {
        /// Number of cells patched.
        entries: usize,
    },
    /// Structural, within the drift threshold: the touched 4×4
    /// submatrices were re-encoded and their tiles spliced into the
    /// stream; untouched tiles' decoded spans were reused.
    Spliced {
        /// Number of 4×4 submatrices re-encoded.
        submatrices: usize,
    },
    /// Structural, past the drift threshold (or the pattern mix shifted
    /// enough that step ② would now pick a different portfolio): the
    /// full pipeline re-ran on the mutated matrix with the original
    /// options.
    Reprepared {
        /// Whether template re-selection (not just volume) forced it.
        portfolio_changed: bool,
        /// Touched fraction of the matrix's occupied 4×4 submatrices.
        changed_fraction: f64,
    },
}

/// The output of preprocessing: ready to execute and inspect.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Step ② outcome: the selected portfolio and its decomposition
    /// table.
    pub selection: SelectionOutcome,
    /// Step ⑤ winner.
    pub best: ScheduleChoice,
    /// The full schedule search trace.
    pub explored: Vec<ScheduleCandidate>,
    /// The matrix encoded at the winning tile size.
    pub encoded: SpasmMatrix,
    /// Preprocessing stage timings (Table VIII).
    pub timings: StageTimings,
    /// The prepared execution plan for the winning schedule: pre-decoded
    /// instance stream, LPT assignment, cycle pricing and reusable scratch.
    /// Built once in `prepare`; [`Prepared::execute`] reuses it on every
    /// call.
    pub plan: ExecutionPlan,
    /// The thread budget `execute` runs the plan under (inherited from the
    /// pipeline options at prepare time).
    parallelism: Parallelism,
    /// The bit-exact CSR reference of the input matrix: the oracle for the
    /// sampled residual cross-check and the last rung of the degradation
    /// ladder. Lazy — restored plans materialise it only if verification
    /// asks for it.
    golden: Golden,
    /// The integrity policy in effect (inherited from the pipeline options
    /// at prepare time; see [`Prepared::set_integrity`]).
    integrity: IntegrityPolicy,
    /// The options this plan was prepared under, kept for the streaming
    /// update path: a drifting [`Prepared::apply_delta`] re-runs the full
    /// pipeline with exactly this search space. Restored plans synthesise
    /// defaults pinned to the restored portfolio.
    options: PipelineOptions,
    /// The local-pattern histogram of the *current* matrix content, kept
    /// incrementally by structural deltas for the drift check. `None` on
    /// restored plans until first needed (rebuilt from the encoded
    /// stream).
    histogram: Option<PatternHistogram>,
    /// Scratch: output rows drawn for the sampled cross-check.
    sample_rows: Vec<usize>,
    /// Scratch: worked tile-row indices covering the sampled rows.
    scope: Vec<usize>,
    /// Per-vector health of the most recent batched execution (reused
    /// across batches; empty before the first one).
    batch_health: Vec<HealthReport>,
}

impl Prepared {
    /// Rebuilds a `Prepared` around an already-built execution plan and
    /// its encoded matrix — the wire-v3 cold-start path (`spasm-store`),
    /// which thaws both without re-running preprocessing.
    ///
    /// The selection and schedule state are reconstructed from what the
    /// pair already carries: the portfolio from the encoded matrix's
    /// template masks, the schedule from the plan's configuration, tile
    /// size and cached report. Stage timings are zero (nothing was
    /// re-run) and the golden CSR reference stays lazy — it only
    /// materialises if a verifying [`IntegrityPolicy`] asks for it.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Format`] when the matrix's template masks do not
    /// form a coverage-complete portfolio from the known shape family —
    /// such a matrix could never have come out of this pipeline.
    pub fn restore(
        encoded: SpasmMatrix,
        plan: ExecutionPlan,
        parallelism: Parallelism,
        integrity: IntegrityPolicy,
    ) -> Result<Prepared, PipelineError> {
        let set = portfolio_from_masks(encoded.template_masks())?;
        let table = DecompositionTable::build(&set);
        let selection = SelectionOutcome {
            set,
            table,
            paddings: encoded.paddings(),
            candidate_paddings: Vec::new(),
        };
        let best = ScheduleChoice {
            config: plan.config().clone(),
            tile_size: encoded.tile_size(),
            predicted_cycles: plan.report().cycles,
        };
        // A thawed plan does not know the search space it came from; pin
        // the synthesised options to the restored portfolio and schedule
        // so a drifting delta re-prepares within what the plan already
        // embodies.
        let options = PipelineOptions::default()
            .fixed_portfolio(selection.set.clone())
            .fixed_schedule(best.tile_size, best.config.clone())
            .parallelism(parallelism)
            .integrity(integrity);
        Ok(Prepared {
            selection,
            best,
            explored: Vec::new(),
            encoded,
            timings: StageTimings::default(),
            plan,
            parallelism,
            golden: Golden::default(),
            integrity,
            options,
            histogram: None,
            sample_rows: Vec::new(),
            scope: Vec::new(),
            batch_health: Vec::new(),
        })
    }

    /// Executes `y += A·x` on the selected hardware configuration
    /// (step ⑥), reusing the prepared [`ExecutionPlan`] — no per-call
    /// decode, scheduling or scratch allocation.
    ///
    /// Results are bit-identical to [`Accelerator::run`] for every thread
    /// budget (see `tests/determinism.rs`).
    ///
    /// This clones the cached report; hot loops should prefer
    /// [`Prepared::execute_into`], which hands back a borrow instead.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors as [`PipelineError`].
    pub fn execute(&mut self, x: &[f32], y: &mut [f32]) -> Result<ExecReport, PipelineError> {
        self.execute_into(x, y).cloned()
    }

    /// [`Prepared::execute`] without the report clone: returns a borrow of
    /// the plan's cached [`ExecReport`]. This is the allocation-free entry
    /// point for iterative solvers that execute the same plan thousands of
    /// times (with the default [`IntegrityPolicy::off`] the steady state
    /// performs no heap allocation at all — see `tests/alloc_free.rs`).
    ///
    /// Under a verifying [`IntegrityPolicy`] the execution runs the
    /// degradation ladder: verify → quarantine and re-execute failing tile
    /// rows from the pristine stream → cross-check sampled residuals
    /// against the golden CSR reference → on unrepairable corruption,
    /// either recompute `y` wholesale on the golden path (the default) or
    /// return [`PipelineError::Integrity`]. The outcome is recorded in
    /// [`ExecReport::health`].
    ///
    /// # Errors
    ///
    /// Propagates simulator errors as [`PipelineError`];
    /// [`PipelineError::Integrity`] when corruption is detected and the
    /// policy's fallback is disabled.
    pub fn execute_into(&mut self, x: &[f32], y: &mut [f32]) -> Result<&ExecReport, PipelineError> {
        match self.integrity.mode {
            IntegrityMode::Off => {
                let parallelism = self.parallelism;
                let plan = &mut self.plan;
                with_parallelism(parallelism, || plan.run(x, y).map(|_| ()))?;
                Ok(self.plan.report())
            }
            IntegrityMode::Sampled(_) | IntegrityMode::Full => {
                let health = self.guarded_vector(x, y)?;
                self.plan.annotate_health(health);
                Ok(self.plan.report())
            }
        }
    }

    /// Executes `ys[j] += A·xs[j]` for every vector of the batch in one
    /// call, cloning the report — see [`Prepared::execute_batch_into`].
    ///
    /// # Errors
    ///
    /// As [`Prepared::execute_batch_into`].
    pub fn execute_batch<X, Y>(
        &mut self,
        xs: &[X],
        ys: &mut [Y],
    ) -> Result<ExecReport, PipelineError>
    where
        X: AsRef<[f32]>,
        Y: AsMut<[f32]>,
    {
        self.execute_batch_into(xs, ys).cloned()
    }

    /// Executes `ys[j] += A·xs[j]` for every vector of the batch against
    /// the prepared plan — the serving entry point for multi-RHS solvers
    /// and SpMM-as-batched-SpMV workloads.
    ///
    /// With the default [`IntegrityPolicy::off`] the whole batch runs
    /// through [`ExecutionPlan::run_batch`]: the x vectors are padded once,
    /// the pre-decoded instance stream is walked once per tile row across
    /// the batch, and the parallel fan-out spans (vector × tile-row) pairs.
    /// Each output is bit-identical to looped [`Prepared::execute_into`]
    /// calls, for every batch size and thread count.
    ///
    /// Under a verifying [`IntegrityPolicy`] every vector runs the full
    /// degradation ladder independently, and the golden CSR fallback is
    /// taken *only for the vectors that fail* — one corrupted vector does
    /// not degrade its batch siblings. Per-vector outcomes are available
    /// from [`Prepared::batch_health`]; the report's health aggregates
    /// them, and [`ExecReport::batch`] carries the amortised batch pricing.
    ///
    /// # Errors
    ///
    /// [`PipelineError::DimensionMismatch`] when `xs` and `ys` disagree in
    /// length (operand `"batch"`), or
    /// [`PipelineError::BatchDimensionMismatch`] naming the offending
    /// vector index when any individual vector has the wrong length — a
    /// server coalescing independent requests can evict just that request
    /// and retry. Shapes are validated up front, so on these errors no
    /// output has been touched. [`PipelineError::Integrity`] when a vector's
    /// corruption is unrepairable and the policy's fallback is disabled;
    /// vectors before the failing one have already been committed.
    pub fn execute_batch_into<X, Y>(
        &mut self,
        xs: &[X],
        ys: &mut [Y],
    ) -> Result<&ExecReport, PipelineError>
    where
        X: AsRef<[f32]>,
        Y: AsMut<[f32]>,
    {
        if xs.len() != ys.len() {
            return Err(PipelineError::DimensionMismatch {
                expected: xs.len(),
                actual: ys.len(),
                operand: "batch",
            });
        }
        let (rows, cols) = (self.plan.rows() as usize, self.plan.cols() as usize);
        for (j, x) in xs.iter().enumerate() {
            if x.as_ref().len() != cols {
                return Err(PipelineError::BatchDimensionMismatch {
                    vector: j,
                    expected: cols,
                    actual: x.as_ref().len(),
                    operand: "x",
                });
            }
        }
        for (j, y) in ys.iter_mut().enumerate() {
            if y.as_mut().len() != rows {
                return Err(PipelineError::BatchDimensionMismatch {
                    vector: j,
                    expected: rows,
                    actual: y.as_mut().len(),
                    operand: "y",
                });
            }
        }
        match self.integrity.mode {
            IntegrityMode::Off => {
                let parallelism = self.parallelism;
                let plan = &mut self.plan;
                with_parallelism(parallelism, || plan.run_batch(xs, ys).map(|_| ()))?;
                // Unverified batches have nothing per-vector to report.
                self.batch_health.clear();
                self.batch_health.resize(xs.len(), HealthReport::default());
                Ok(self.plan.report())
            }
            IntegrityMode::Sampled(_) | IntegrityMode::Full => self.execute_batch_guarded(xs, ys),
        }
    }

    /// The verifying batch path: every vector runs the per-vector ladder,
    /// outcomes are aggregated into the report's health.
    fn execute_batch_guarded<X, Y>(
        &mut self,
        xs: &[X],
        ys: &mut [Y],
    ) -> Result<&ExecReport, PipelineError>
    where
        X: AsRef<[f32]>,
        Y: AsMut<[f32]>,
    {
        self.batch_health.clear();
        let mut aggregate = HealthReport::default();
        // `_j` targets the active fault lane; unused in production builds.
        #[cfg_attr(
            not(feature = "fault-injection"),
            allow(clippy::unused_enumerate_index)
        )]
        for (_j, (x, y)) in xs.iter().zip(ys.iter_mut()).enumerate() {
            #[cfg(feature = "fault-injection")]
            self.plan.set_active_lane(_j);
            let result = self.guarded_vector(x.as_ref(), y.as_mut());
            #[cfg(feature = "fault-injection")]
            self.plan.set_active_lane(0);
            let health = result?;
            self.batch_health.push(health);
            aggregate = merge_health(aggregate, health);
        }
        self.plan.annotate_health(aggregate);
        self.plan.stamp_batch(xs.len());
        Ok(self.plan.report())
    }

    /// Per-vector health of the most recent batched execution, in batch
    /// order. Empty before the first batch; all-zero entries when the
    /// batch ran unverified ([`IntegrityMode::Off`]). `health[j].fallback`
    /// says vector `j` was recomputed on the golden CSR path.
    pub fn batch_health(&self) -> &[HealthReport] {
        &self.batch_health
    }

    /// The verification ladder for one vector: deferred run + verify →
    /// sampled cross-check → commit, per-vector golden fallback, or error.
    /// Returns the vector's health; the caller decides how to fold it into
    /// the report.
    fn guarded_vector(&mut self, x: &[f32], y: &mut [f32]) -> Result<HealthReport, PipelineError> {
        let rows = self.golden.get(&self.encoded).rows() as usize;
        if y.len() != rows {
            return Err(PipelineError::DimensionMismatch {
                expected: rows,
                actual: y.len(),
                operand: "y",
            });
        }

        // Resolve the verification scope. Sampling is deterministic in the
        // policy seed so a given policy checks the same rows every call.
        self.sample_rows.clear();
        self.scope.clear();
        let scope = match self.integrity.mode {
            IntegrityMode::Full => VerifyScope::All,
            IntegrityMode::Sampled(k) => {
                let mut state = self.integrity.seed;
                for _ in 0..k.min(rows) {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    self.sample_rows
                        .push((splitmix64(state) % rows as u64) as usize);
                }
                self.sample_rows.sort_unstable();
                self.sample_rows.dedup();
                for &r in &self.sample_rows {
                    if let Some(t) = self.plan.tile_row_index_containing(r) {
                        self.scope.push(t);
                    }
                }
                self.scope.sort_unstable();
                self.scope.dedup();
                VerifyScope::TileRows(&self.scope)
            }
            IntegrityMode::Off => VerifyScope::None,
        };

        let parallelism = self.parallelism;
        let plan = &mut self.plan;
        let mut health = with_parallelism(parallelism, || plan.run_deferred(x, scope))?;

        // Residual cross-check: the sampled rows' SPASM contributions must
        // agree with the golden CSR dot products to within the policy
        // tolerance (the two datapaths accumulate in different orders).
        if matches!(self.integrity.mode, IntegrityMode::Sampled(_)) {
            for &r in &self.sample_rows {
                let want = golden_row_dot(self.golden.get(&self.encoded), r, x);
                let got = self.plan.contribution(r);
                health.rows_cross_checked += 1;
                if (got - want).abs() > self.integrity.tolerance * (1.0 + want.abs()) {
                    health.rows_failed_cross_check += 1;
                    if health.first_failed_tile_row.is_none() {
                        health.first_failed_tile_row = self
                            .plan
                            .tile_row_index_containing(r)
                            .and_then(|t| self.plan.tile_row_id(t));
                    }
                }
            }
        }

        if health.needs_fallback() {
            if !self.integrity.fallback {
                self.plan.annotate_health(health);
                return Err(PipelineError::Integrity {
                    tile_row: health.first_failed_tile_row.unwrap_or(0),
                    check: IntegrityCheck::Residual,
                });
            }
            // Last rung: the accelerator result is unrecoverable, so the
            // whole product is recomputed on the bit-exact golden path.
            health.fallback = true;
            self.golden
                .get(&self.encoded)
                .spmv(x, y)
                .map_err(map_sparse)?;
        } else {
            self.plan.commit(y)?;
        }
        Ok(health)
    }

    /// The cached report of the most recent execution (cycle/stall model,
    /// health). Identical to what [`Prepared::execute_into`] returned.
    pub fn report(&self) -> &ExecReport {
        self.plan.report()
    }

    /// The health of the most recent execution (all-zeros before the first
    /// one, or when verification is off and no faults are armed).
    pub fn health(&self) -> HealthReport {
        self.plan.report().health
    }

    /// The integrity policy in effect.
    pub fn integrity(&self) -> IntegrityPolicy {
        self.integrity
    }

    /// Replaces the integrity policy for subsequent executions.
    pub fn set_integrity(&mut self, policy: IntegrityPolicy) {
        self.integrity = policy;
    }

    /// The bit-exact golden CSR reference kept for the degradation
    /// ladder, materialising it from the encoded matrix on first use
    /// (restored plans start without one).
    pub fn golden(&self) -> &Csr {
        self.golden.get(&self.encoded)
    }

    /// Heap footprint of the golden reference without forcing a lazy one
    /// to materialise: the exact size it occupies (or will occupy), so
    /// catalog capacity accounting is stable across materialisation.
    pub fn golden_bytes(&self) -> usize {
        self.golden.bytes(&self.encoded)
    }

    /// The accelerator built for the winning configuration, for callers
    /// that want one-shot [`Accelerator::run`] semantics or their own
    /// [`ExecutionPlan`]s.
    pub fn accelerator(&self) -> Accelerator {
        Accelerator::new(self.best.config.clone())
    }

    /// The options this plan was prepared under (synthesised and pinned
    /// to the plan's own portfolio/schedule for restored plans).
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// Applies a streaming update to this prepared plan *without*
    /// re-running preprocessing, choosing the cheapest coherent path:
    ///
    /// * **values-only** deltas ([`MatrixDelta::is_values_only`]) patch
    ///   the encoded value stream copy-on-write and install the new
    ///   buffer under a bumped [`ExecutionPlan::version`] — executions
    ///   (or plan clones) already in flight keep reading the old buffer;
    /// * **structural** deltas (any insert/delete) re-encode only the
    ///   touched 4×4 submatrices and splice the affected tiles into the
    ///   stream, reusing the decoded spans of every untouched tile;
    /// * when the update drifts past
    ///   [`PipelineOptions::drift_threshold`] — or shifts the local
    ///   pattern histogram enough that step ② would now select a
    ///   different portfolio — the full pipeline re-runs on the mutated
    ///   matrix with the original options.
    ///
    /// Every path leaves the plan bit-identical to a from-scratch
    /// [`Pipeline::prepare`] of the mutated matrix (`tests/
    /// update_equivalence.rs`), co-updates the golden CSR reference so a
    /// verifying [`IntegrityPolicy`] checks against the *new* values, and
    /// keeps [`ExecutionPlan::version`] strictly increasing. An empty
    /// delta is a no-op (no version bump).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Delta`] when the delta fails validation against
    /// the current matrix (out-of-bounds coordinates, explicit zeros,
    /// conflicting ops, patches/deletes of absent cells, inserts into
    /// occupied ones). On any error the plan is untouched.
    pub fn apply_delta(&mut self, delta: &MatrixDelta) -> Result<DeltaOutcome, PipelineError> {
        if delta.is_empty() {
            return Ok(DeltaOutcome::Patched { entries: 0 });
        }
        delta.validate(self.golden.get(&self.encoded))?;
        if delta.is_values_only() {
            let entries: Vec<(u32, u32, f32)> = delta
                .ops()
                .iter()
                .filter_map(|op| match *op {
                    DeltaOp::Patch { row, col, value } => Some((row, col, value)),
                    _ => None,
                })
                .collect();
            let values = self.encoded.patch_values(&entries)?;
            self.plan.adopt_values(values)?;
            self.golden.patch(&entries);
            return Ok(DeltaOutcome::Patched {
                entries: entries.len(),
            });
        }
        self.apply_structural(delta)
    }

    /// The structural-delta path: derive old/new 4×4 states from the
    /// golden reference, run the drift check, then splice or re-prepare.
    fn apply_structural(&mut self, delta: &MatrixDelta) -> Result<DeltaOutcome, PipelineError> {
        let (rows, cols) = (self.encoded.rows(), self.encoded.cols());

        // Group ops by the 4×4 submatrix they touch.
        let mut groups: BTreeMap<(u32, u32), Vec<DeltaOp>> = BTreeMap::new();
        for op in delta.ops() {
            let (r, c) = op.coord();
            groups.entry((r / 4, c / 4)).or_default().push(*op);
        }

        // Old and new submatrix states. Stored zeros (possible only when
        // the *original* input carried explicit zeros) are treated as
        // absent — the value stream cannot distinguish them from padding,
        // so the delta layer canonicalises them away.
        let mut replacements: Vec<SubBlock> = Vec::with_capacity(groups.len());
        let mut mask_changes: Vec<(u16, u16)> = Vec::with_capacity(groups.len());
        {
            let golden = self.golden.get(&self.encoded);
            for (&(sub_r, sub_c), ops) in &groups {
                let mut mask: u16 = 0;
                let mut values = [0.0f32; 16];
                for bit in 0..16u32 {
                    let (r, c) = (sub_r * 4 + bit / 4, sub_c * 4 + bit % 4);
                    if r >= rows || c >= cols {
                        continue;
                    }
                    if let Some(v) = golden.get(r, c) {
                        if v != 0.0 {
                            mask |= 1 << bit;
                            values[bit as usize] = v;
                        }
                    }
                }
                let old_mask = mask;
                for op in ops {
                    let (r, c) = op.coord();
                    let bit = (r % 4) * 4 + (c % 4);
                    match *op {
                        DeltaOp::Patch { value, .. } | DeltaOp::Insert { value, .. } => {
                            mask |= 1 << bit;
                            values[bit as usize] = value;
                        }
                        DeltaOp::Delete { .. } => {
                            mask &= !(1 << bit);
                            values[bit as usize] = 0.0;
                        }
                    }
                }
                mask_changes.push((old_mask, mask));
                replacements.push(SubBlock {
                    sub_r,
                    sub_c,
                    mask,
                    values,
                });
            }
        }

        // Advance the local-pattern histogram incrementally and check for
        // drift: would step ② still pick the same portfolio, and is the
        // touched fraction under the threshold?
        let mut counts: BTreeMap<u16, u64> = self
            .histogram
            .get_or_insert_with(|| SubmatrixMap::from_coo(&self.encoded.to_coo()).histogram())
            .iter()
            .map(|(m, f)| (*m, *f))
            .collect();
        for &(old_mask, new_mask) in &mask_changes {
            if old_mask != 0 {
                if let Some(f) = counts.get_mut(&old_mask) {
                    *f = f.saturating_sub(1);
                    if *f == 0 {
                        counts.remove(&old_mask);
                    }
                }
            }
            if new_mask != 0 {
                *counts.entry(new_mask).or_insert(0) += 1;
            }
        }
        let new_histogram = PatternHistogram::from_counts(GridSize::S4, counts);
        let reselected = selection::select_template_set(
            &new_histogram,
            &self.options.candidates,
            self.options.top_n,
        );
        let portfolio_changed = !reselected.set.masks().eq(self.selection.set.masks());
        let changed_fraction = groups.len() as f64 / new_histogram.total_blocks().max(1) as f64;
        if portfolio_changed || changed_fraction > self.options.drift_threshold {
            self.reprepare(delta)?;
            return Ok(DeltaOutcome::Reprepared {
                portfolio_changed,
                changed_fraction,
            });
        }

        // Splice path: re-encode touched tiles, reuse everything else.
        // Both steps build out-of-place; the plan is untouched on error.
        let new_encoded = self.encoded.spliced(&replacements, &self.selection.table)?;
        let subs_per_tile = self.encoded.tile_size() / 4;
        let mut touched_tiles: Vec<(u32, u32)> = groups
            .keys()
            .map(|&(sr, sc)| (sr / subs_per_tile, sc / subs_per_tile))
            .collect();
        touched_tiles.sort_unstable();
        touched_tiles.dedup();
        let new_plan = self
            .plan
            .respliced(&new_encoded, self.encoded.tiles(), &touched_tiles)?;

        self.encoded = new_encoded;
        self.plan = new_plan;
        // The golden reference is structurally stale; rebuild lazily from
        // the spliced stream on first integrity use.
        self.golden = Golden::default();
        self.histogram = Some(new_histogram);
        self.selection.paddings = self.encoded.paddings();
        self.best.predicted_cycles = self.plan.report().cycles;
        Ok(DeltaOutcome::Spliced {
            submatrices: replacements.len(),
        })
    }

    /// The drift fallback: re-run the whole pipeline on the mutated
    /// matrix with the original options, preserving the current integrity
    /// policy and dispatch mode and keeping the version stamp monotonic.
    fn reprepare(&mut self, delta: &MatrixDelta) -> Result<(), PipelineError> {
        let (rows, cols) = (self.encoded.rows(), self.encoded.cols());
        let mutated = {
            let golden = self.golden.get(&self.encoded);
            let mut cells: BTreeMap<(u32, u32), f32> = BTreeMap::new();
            let ptr = golden.row_ptr();
            let col_idx = golden.col_indices();
            let vals = golden.values();
            for r in 0..golden.rows() as usize {
                for i in ptr[r]..ptr[r + 1] {
                    // Canonicalise: explicit zeros encode as padding and
                    // round-trip as absent, so drop them here too.
                    if vals[i] != 0.0 {
                        cells.insert((r as u32, col_idx[i]), vals[i]);
                    }
                }
            }
            for op in delta.ops() {
                match *op {
                    DeltaOp::Patch { row, col, value } | DeltaOp::Insert { row, col, value } => {
                        cells.insert((row, col), value);
                    }
                    DeltaOp::Delete { row, col } => {
                        cells.remove(&(row, col));
                    }
                }
            }
            let triplets: Vec<(u32, u32, f32)> =
                cells.into_iter().map(|((r, c), v)| (r, c, v)).collect();
            Coo::from_triplets(rows, cols, triplets).map_err(map_sparse)?
        };

        let next_version = self.plan.version() + 1;
        let dispatch = self.plan.dispatch();
        let integrity = self.integrity;
        let mut fresh = Pipeline::with_options(self.options.clone()).prepare(&mutated)?;
        fresh.plan.set_dispatch(dispatch);
        fresh.plan.restamp_version(next_version);
        fresh.integrity = integrity;
        *self = fresh;
        Ok(())
    }
}

/// Reconstructs a template portfolio from stored LUT masks by matching
/// each against the full shape family every selection path draws from:
/// rows, columns, diagonals, anti-diagonals, 2×2 blocks and DBB column
/// pairs on the 4×4 grid. (Table V portfolios and the greedy custom
/// search are all subsets of this family, so any pipeline-produced
/// matrix round-trips.)
fn portfolio_from_masks(masks: &[u16]) -> Result<TemplateSet, PipelineError> {
    let s = GridSize::S4;
    let mut pool: Vec<Template> = Vec::new();
    pool.extend((0..4).map(|r| Template::row(s, r)));
    pool.extend((0..4).map(|c| Template::col(s, c)));
    pool.extend((0..4).map(|k| Template::diag(s, k)));
    pool.extend((0..4).map(|k| Template::anti_diag(s, k)));
    pool.extend((0..4).flat_map(|r| (0..4).map(move |c| Template::block2(r, c))));
    // DBB pairs anchor on row pairs (0,1) and (2,3) only.
    pool.extend([0u32, 2].into_iter().flat_map(|r| {
        (0..4).flat_map(move |c1| (c1 + 1..4).map(move |c2| Template::dbb_pair(r, c1, c2)))
    }));

    let uncoverable =
        |mask: u16| PipelineError::Format(spasm_format::FormatError::UncoverablePattern { mask });
    let mut templates = Vec::with_capacity(masks.len());
    let mut union: u16 = 0;
    for &mask in masks {
        let t = *pool
            .iter()
            .find(|t| t.mask() == mask)
            .ok_or_else(|| uncoverable(mask))?;
        templates.push(t);
        union |= mask;
    }
    // `TemplateSet::new` panics on an incomplete portfolio; a stored
    // stream must never be able to trigger that, so pre-check and
    // return a typed error instead.
    if templates.is_empty()
        || templates.len() > TemplateSet::MAX_TEMPLATES
        || union != s.full_mask()
    {
        return Err(uncoverable(union));
    }
    Ok(TemplateSet::new(s, "restored", templates))
}

/// One golden-reference output row: the CSR dot product of row `r` with
/// `x`, accumulated in exactly the order `Csr::spmv` uses so the comparison
/// is against the same rounding.
fn golden_row_dot(csr: &Csr, r: usize, x: &[f32]) -> f32 {
    let ptr = csr.row_ptr();
    let cols = csr.col_indices();
    let vals = csr.values();
    let mut acc = 0.0;
    for i in ptr[r]..ptr[r + 1] {
        acc += vals[i] * x[cols[i] as usize];
    }
    acc
}

/// SplitMix64 finaliser: a tiny, dependency-free bijective mixer for the
/// deterministic sample-row draw.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn map_sparse(e: spasm_sparse::SparseError) -> PipelineError {
    match e {
        spasm_sparse::SparseError::DimensionMismatch {
            expected,
            actual,
            operand,
        } => PipelineError::DimensionMismatch {
            expected,
            actual,
            operand,
        },
        _ => PipelineError::EmptySearchSpace("golden reference path"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_sparse::SpMv;

    fn block_diag(n_blocks: u32) -> Coo {
        let mut t = Vec::new();
        for b in 0..n_blocks {
            for r in 0..4 {
                for c in 0..4 {
                    t.push((b * 4 + r, b * 4 + c, (r + c + 1) as f32));
                }
            }
        }
        let n = n_blocks * 4;
        Coo::from_triplets(n, n, t).unwrap()
    }

    #[test]
    fn end_to_end_matches_reference() {
        let a = block_diag(64);
        let mut prepared = Pipeline::new().prepare(&a).unwrap();
        let n = a.rows() as usize;
        let x: Vec<f32> = (0..n).map(|i| (i % 7) as f32 - 3.0).collect();

        let mut want = vec![1.0f32; n];
        a.spmv(&x, &mut want).unwrap();
        let mut got = vec![1.0f32; n];
        prepared.execute(&x, &mut got).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn block_diag_selects_zero_padding_portfolio() {
        let a = block_diag(32);
        let prepared = Pipeline::new().prepare(&a).unwrap();
        assert_eq!(prepared.selection.paddings, 0);
        assert_eq!(prepared.encoded.paddings(), 0);
    }

    #[test]
    fn ablation_options_pin_the_space() {
        let a = block_diag(32);
        let opts = PipelineOptions::default()
            .fixed_portfolio(TemplateSet::table_v_set(0))
            .fixed_schedule(1024, HwConfig::spasm_4_1());
        let prepared = Pipeline::with_options(opts).prepare(&a).unwrap();
        assert_eq!(prepared.best.tile_size, 1024);
        assert_eq!(prepared.best.config.name, "SPASM_4_1");
        assert_eq!(prepared.explored.len(), 1);
        assert_eq!(prepared.selection.set.name(), "set-0");
    }

    #[test]
    fn full_pipeline_never_slower_than_fixed_baseline() {
        let a = block_diag(256);
        let fixed = Pipeline::with_options(
            PipelineOptions::default()
                .fixed_portfolio(TemplateSet::table_v_set(0))
                .fixed_schedule(1024, HwConfig::spasm_4_1()),
        )
        .prepare(&a)
        .unwrap();
        let full = Pipeline::new().prepare(&a).unwrap();
        let t_fixed = fixed
            .best
            .config
            .cycles_to_seconds(fixed.best.predicted_cycles);
        let t_full = full
            .best
            .config
            .cycles_to_seconds(full.best.predicted_cycles);
        assert!(t_full <= t_fixed + 1e-15, "{t_full} vs {t_fixed}");
    }

    #[test]
    fn prepare_set_shares_one_portfolio() {
        // A block-diagonal matrix and an anti-diagonal one: the shared
        // portfolio must cover both and be identical across outputs.
        let a = block_diag(16);
        let mut t = Vec::new();
        for i in 0..64u32 {
            t.push((i, 63 - i, 1.0));
        }
        let b = Coo::from_triplets(64, 64, t).unwrap();
        let mut prepared = Pipeline::new()
            .prepare_set(&[a.clone(), b.clone()])
            .unwrap();
        assert_eq!(prepared.len(), 2);
        assert_eq!(
            prepared[0].selection.set.name(),
            prepared[1].selection.set.name()
        );
        // Both still execute correctly under the shared portfolio.
        for (m, p) in [&a, &b].into_iter().zip(prepared.iter_mut()) {
            let x = vec![1.0f32; m.cols() as usize];
            let mut want = vec![0.0f32; m.rows() as usize];
            m.spmv(&x, &mut want).unwrap();
            let mut got = vec![0.0f32; m.rows() as usize];
            p.execute(&x, &mut got).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn prepare_set_rejects_empty() {
        assert!(matches!(
            Pipeline::new().prepare_set(&[]),
            Err(PipelineError::EmptySearchSpace(_))
        ));
    }

    #[test]
    fn timings_are_recorded() {
        let a = block_diag(16);
        let prepared = Pipeline::new().prepare(&a).unwrap();
        assert!(prepared.timings.total() > Duration::ZERO);
    }

    #[test]
    fn prepared_plan_matches_schedule_prediction() {
        // The plan is priced with the same cycle model the schedule sweep
        // used, so its cached report must agree with the winner's
        // prediction.
        let a = block_diag(32);
        let prepared = Pipeline::new().prepare(&a).unwrap();
        assert_eq!(
            prepared.plan.report().cycles,
            prepared.best.predicted_cycles
        );
        assert_eq!(prepared.plan.n_instances(), prepared.encoded.n_instances());
        assert!(prepared.timings.plan > Duration::ZERO);
    }

    #[test]
    fn sampled_integrity_clean_run_cross_checks() {
        let a = block_diag(16);
        let opts = PipelineOptions::default().integrity(IntegrityPolicy::sampled(8, 42));
        let mut prepared = Pipeline::with_options(opts).prepare(&a).unwrap();
        let n = a.rows() as usize;
        let x: Vec<f32> = (0..n).map(|i| (i % 5) as f32 - 2.0).collect();
        let mut want = vec![0.0f32; n];
        a.spmv(&x, &mut want).unwrap();
        let mut got = vec![0.0f32; n];
        let report = prepared.execute_into(&x, &mut got).unwrap();
        assert!(report.health.is_clean());
        assert!(report.health.rows_cross_checked > 0);
        assert!(!report.health.fallback);
        assert_eq!(prepared.health().rows_failed_cross_check, 0);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn full_integrity_matches_unverified_output_bit_for_bit() {
        let a = block_diag(32);
        let n = a.rows() as usize;
        let x: Vec<f32> = (0..n).map(|i| (i % 11) as f32 * 0.25 - 1.0).collect();

        let mut plain = Pipeline::new().prepare(&a).unwrap();
        let mut y_plain = vec![0.0f32; n];
        plain.execute_into(&x, &mut y_plain).unwrap();

        let mut guarded =
            Pipeline::with_options(PipelineOptions::default().integrity(IntegrityPolicy::full()))
                .prepare(&a)
                .unwrap();
        let mut y_guarded = vec![0.0f32; n];
        let report = guarded.execute_into(&x, &mut y_guarded).unwrap();
        assert!(report.health.is_clean());
        assert!(report.health.tile_rows_verified > 0);
        assert_eq!(report.health.tile_rows_quarantined, 0);
        for (p, g) in y_plain.iter().zip(&y_guarded) {
            assert_eq!(p.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn set_integrity_retargets_later_executions() {
        let a = block_diag(8);
        let n = a.rows() as usize;
        let mut prepared = Pipeline::new().prepare(&a).unwrap();
        assert_eq!(prepared.integrity().mode, IntegrityMode::Off);
        let x = vec![1.0f32; n];
        let mut y = vec![0.0f32; n];
        prepared.execute_into(&x, &mut y).unwrap();
        assert_eq!(prepared.health().tile_rows_verified, 0);

        prepared.set_integrity(IntegrityPolicy::full());
        y.fill(0.0);
        prepared.execute_into(&x, &mut y).unwrap();
        assert!(prepared.health().tile_rows_verified > 0);
        assert!(prepared.report().health.is_clean());
    }

    #[test]
    fn guarded_execute_checks_y_dimension() {
        let a = block_diag(4);
        let mut prepared =
            Pipeline::with_options(PipelineOptions::default().integrity(IntegrityPolicy::full()))
                .prepare(&a)
                .unwrap();
        let mut y_bad = vec![0.0f32; 3];
        assert!(matches!(
            prepared.execute_into(&[1.0; 16], &mut y_bad),
            Err(PipelineError::DimensionMismatch { operand: "y", .. })
        ));
    }

    #[test]
    fn execute_checks_dimensions() {
        let a = block_diag(4);
        let mut prepared = Pipeline::new().prepare(&a).unwrap();
        let mut y = vec![0.0f32; 16];
        assert!(matches!(
            prepared.execute(&[1.0; 3], &mut y),
            Err(PipelineError::DimensionMismatch { operand: "x", .. })
        ));
    }

    fn batch_inputs(n: usize, batch: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let xs: Vec<Vec<f32>> = (0..batch)
            .map(|j| {
                (0..n)
                    .map(|i| ((i * 7 + j * 13) % 9) as f32 * 0.375 - 1.5)
                    .collect()
            })
            .collect();
        let ys = vec![vec![0.25f32; n]; batch];
        (xs, ys)
    }

    #[test]
    fn execute_batch_matches_looped_execute_bit_for_bit() {
        let a = block_diag(48);
        let n = a.rows() as usize;
        for policy in [IntegrityPolicy::off(), IntegrityPolicy::full()] {
            let mut prepared = Pipeline::with_options(PipelineOptions::default().integrity(policy))
                .prepare(&a)
                .unwrap();
            for batch in [1usize, 2, 3, 8] {
                let (xs, mut ys) = batch_inputs(n, batch);
                let mut want = ys.clone();
                for (x, y) in xs.iter().zip(want.iter_mut()) {
                    prepared.execute_into(x, y).unwrap();
                }
                let report = prepared.execute_batch(&xs, &mut ys).unwrap();
                for (got, want) in ys.iter().zip(&want) {
                    for (g, w) in got.iter().zip(want) {
                        assert_eq!(g.to_bits(), w.to_bits());
                    }
                }
                assert_eq!(prepared.batch_health().len(), batch);
                assert!(prepared.batch_health().iter().all(|h| !h.fallback));
                let b = report.batch.expect("batched run must stamp pricing");
                assert_eq!(b.vectors, batch);
            }
        }
    }

    #[test]
    fn execute_batch_validates_shapes_without_partial_writes() {
        let a = block_diag(8);
        let n = a.rows() as usize;
        let mut prepared = Pipeline::new().prepare(&a).unwrap();
        let xs = vec![vec![1.0f32; n]; 3];

        let mut ys_short = vec![vec![0.5f32; n]; 2];
        assert!(matches!(
            prepared.execute_batch_into(&xs, &mut ys_short),
            Err(PipelineError::DimensionMismatch {
                operand: "batch",
                ..
            })
        ));

        let mut ys_bad = vec![vec![0.5f32; n], vec![0.5f32; n - 1], vec![0.5f32; n]];
        assert!(matches!(
            prepared.execute_batch_into(&xs, &mut ys_bad),
            Err(PipelineError::BatchDimensionMismatch {
                vector: 1,
                operand: "y",
                ..
            })
        ));
        // Shape errors are detected up front: nothing was written, not
        // even to the well-shaped vectors of the batch.
        assert!(ys_bad.iter().flatten().all(|&v| v == 0.5));

        let xs_bad = vec![vec![1.0f32; n], vec![1.0f32; n + 1], vec![1.0f32; n]];
        let mut ys = vec![vec![0.5f32; n]; 3];
        // Regression (PR 6): the error names the offending vector so a
        // server can evict exactly that request from a coalesced batch.
        match prepared.execute_batch_into(&xs_bad, &mut ys) {
            Err(PipelineError::BatchDimensionMismatch {
                vector,
                expected,
                actual,
                operand: "x",
            }) => {
                assert_eq!(vector, 1);
                assert_eq!(expected, n);
                assert_eq!(actual, n + 1);
            }
            other => panic!("expected an indexed batch error, got {other:?}"),
        }
        assert!(ys.iter().flatten().all(|&v| v == 0.5));
    }

    #[test]
    fn batch_health_tracks_verified_vectors() {
        let a = block_diag(16);
        let n = a.rows() as usize;
        let mut prepared =
            Pipeline::with_options(PipelineOptions::default().integrity(IntegrityPolicy::full()))
                .prepare(&a)
                .unwrap();
        let (xs, mut ys) = batch_inputs(n, 4);
        let report = prepared.execute_batch_into(&xs, &mut ys).unwrap().clone();
        assert!(report.health.tile_rows_verified > 0);
        assert_eq!(prepared.batch_health().len(), 4);
        for h in prepared.batch_health() {
            assert!(h.tile_rows_verified > 0);
            assert!(h.is_clean());
        }
        // The report's aggregate equals the sum of per-vector counters.
        let sum: u32 = prepared
            .batch_health()
            .iter()
            .map(|h| h.tile_rows_verified)
            .sum();
        assert_eq!(report.health.tile_rows_verified, sum);

        // A subsequent single-vector execute clears the batch stamp.
        let mut y = vec![0.0f32; n];
        let single = prepared.execute_into(&xs[0], &mut y).unwrap();
        assert!(single.batch.is_none());
    }
}
