//! `spasm` — command-line front-end to the framework.
//!
//! ```text
//! spasm analyze <matrix>                       pattern histogram, CDF, spy plot
//! spasm select  <matrix> -o <portfolio.txt>    run Algorithm 3, save the portfolio
//! spasm encode  <matrix> [-p <portfolio.txt>] -o <file>
//!                                              encode to the binary SPASM stream
//! spasm info    <file.spasm>                   inspect a binary stream's header
//! spasm run     <matrix>                       full pipeline + simulated execution
//! ```
//!
//! `<matrix>` is either a Table II workload name (synthetic generator,
//! e.g. `cfd2`, optionally suffixed `@small` / `@medium` / `@paper`) or a
//! path to a Matrix Market `.mtx` file.

use std::process::ExitCode;

use spasm::{spasm_report, Pipeline, PipelineOptions};
use spasm_format::SpasmMatrix;
use spasm_hw::ExecutionTrace;
use spasm_patterns::TemplateSet;
use spasm_patterns::{render_mask, GridSize, PatternHistogram};
use spasm_sparse::{mm, spy, Coo, StorageCost};
use spasm_workloads::{Scale, Workload};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  spasm analyze <matrix>\n  spasm select <matrix> -o <portfolio.txt>\n  \
         spasm encode <matrix> [-p <portfolio.txt>] -o <file>\n  \
         spasm info <file.spasm>\n  spasm run <matrix>\n\n\
         <matrix> = Table II workload name (e.g. cfd2, raefsky3@small) or a .mtx path"
    );
    ExitCode::from(2)
}

fn load(arg: &str) -> Result<(String, Coo), Box<dyn std::error::Error>> {
    let (name, scale) = match arg.split_once('@') {
        Some((n, "small")) => (n, Scale::Small),
        Some((n, "medium")) => (n, Scale::Medium),
        Some((n, "paper")) => (n, Scale::Paper),
        Some((_, other)) => return Err(format!("unknown scale `{other}`").into()),
        None => (arg, Scale::Small),
    };
    if let Some(w) = Workload::from_name(name) {
        eprintln!("generating synthetic {name} ({scale:?}) ...");
        Ok((name.to_string(), w.generate(scale)))
    } else {
        Ok((arg.to_string(), mm::read_file(arg)?))
    }
}

fn analyze(arg: &str) -> Result<(), Box<dyn std::error::Error>> {
    let (name, m) = load(arg)?;
    println!(
        "{name}: {} x {}, {} non-zeros, density {:.3e}",
        m.rows(),
        m.cols(),
        m.nnz(),
        m.density()
    );
    println!("\nglobal composition (spy plot):");
    print!("{}", spy::render(&m, 48, 16));

    let hist = PatternHistogram::analyze(&m, GridSize::S4);
    println!(
        "\nlocal patterns: {} occupied 4x4 submatrices, {} distinct",
        hist.total_blocks(),
        hist.distinct_patterns()
    );
    let top = hist.top_n(8);
    let grids: Vec<Vec<String>> = top
        .iter()
        .map(|&(mask, _)| {
            render_mask(GridSize::S4, mask)
                .lines()
                .map(String::from)
                .collect()
        })
        .collect();
    for row in 0..4 {
        let cells: Vec<&str> = grids.iter().map(|g| g[row].as_str()).collect();
        println!("  {}", cells.join("   "));
    }
    let total = hist.total_blocks().max(1);
    let shares: Vec<String> = top
        .iter()
        .map(|&(_, f)| format!("{:>4.1}%", 100.0 * f as f64 / total as f64))
        .collect();
    println!("  {}", shares.join("  "));
    for n in [1usize, 2, 4, 8, 16, 32] {
        println!(
            "  top-{n:<3} coverage: {:>6.2}%",
            100.0 * hist.top_n_coverage(n)
        );
    }
    Ok(())
}

fn select(arg: &str, out: &str) -> Result<(), Box<dyn std::error::Error>> {
    let (name, m) = load(arg)?;
    let prepared = Pipeline::new().prepare(&m)?;
    std::fs::write(out, prepared.selection.set.to_text())?;
    println!(
        "{name}: selected {} ({} templates, {} scored paddings) -> {out}",
        prepared.selection.set.name(),
        prepared.selection.set.len(),
        prepared.selection.paddings
    );
    Ok(())
}

fn encode(arg: &str, portfolio: Option<&str>, out: &str) -> Result<(), Box<dyn std::error::Error>> {
    let (name, m) = load(arg)?;
    let pipeline = match portfolio {
        None => Pipeline::new(),
        Some(path) => {
            let set = TemplateSet::from_text(&std::fs::read_to_string(path)?)?;
            println!("using pinned portfolio {} from {path}", set.name());
            Pipeline::with_options(PipelineOptions::default().fixed_portfolio(set))
        }
    };
    let prepared = pipeline.prepare(&m)?;
    let bytes = prepared.encoded.to_bytes();
    std::fs::write(out, &bytes)?;
    println!(
        "{name}: encoded {} instances with portfolio {} at tile {} -> {} ({} bytes, \
         {:.2}x smaller than COO)",
        prepared.encoded.n_instances(),
        prepared.selection.set.name(),
        prepared.best.tile_size,
        out,
        bytes.len(),
        m.storage_bytes() as f64 / prepared.encoded.storage_bytes() as f64
    );
    Ok(())
}

fn info(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let data = std::fs::read(path)?;
    let m = SpasmMatrix::from_bytes(&data)?;
    println!("{path}:");
    println!("  shape        {} x {}", m.rows(), m.cols());
    println!("  tile size    {}", m.tile_size());
    println!("  non-zeros    {}", m.nnz());
    println!("  instances    {}", m.n_instances());
    println!(
        "  paddings     {} ({:.1}% of slots)",
        m.paddings(),
        100.0 * m.padding_rate()
    );
    println!("  tiles        {}", m.tiles().len());
    println!("  portfolio    {} templates", m.template_masks().len());
    println!(
        "  stream       {} bytes ({} with directory)",
        m.storage_bytes(),
        m.storage_bytes_full()
    );
    Ok(())
}

fn run(arg: &str) -> Result<(), Box<dyn std::error::Error>> {
    let (name, m) = load(arg)?;
    let mut prepared = Pipeline::new().prepare(&m)?;
    println!(
        "{name}: portfolio {}, schedule {} @ tile {} (predicted {} cycles)",
        prepared.selection.set.name(),
        prepared.best.config.name,
        prepared.best.tile_size,
        prepared.best.predicted_cycles
    );
    let x = vec![1.0f32; m.cols() as usize];
    let mut y = vec![0.0f32; m.rows() as usize];
    let exec = prepared.execute(&x, &mut y)?;
    let report = spasm_report(&prepared, &exec);
    println!(
        "executed: {:.3} ms, {:.1} GFLOP/s, {:.1}% of peak compute, {:.1}% of bandwidth",
        exec.seconds * 1e3,
        report.gflops,
        100.0 * report.compute_utilization,
        100.0 * report.bandwidth_utilization
    );
    println!(
        "traffic: {} B matrix stream, {} B x, {} B y",
        exec.traffic.matrix, exec.traffic.x, exec.traffic.y
    );

    // Timeline of the chosen schedule.
    let map = spasm_format::SubmatrixMap::from_coo(&m);
    let summary = spasm_format::TilingSummary::analyze(
        &map,
        &prepared.selection.table,
        prepared.best.tile_size,
    )?;
    let trace = ExecutionTrace::capture(&summary, &prepared.best.config);
    println!("\nexecution timeline ({} cycles):", trace.total_cycles());
    print!("{}", trace.render_gantt(72));
    println!("(# compute-bound, x x-load-bound, . tile switch, y y-channel drain)");

    // HBM memory map of the selected configuration (Fig. 7).
    use spasm_hw::ChannelRole;
    let map = prepared.best.config.channel_map();
    let count = |f: fn(&ChannelRole) -> bool| map.iter().filter(|r| f(r)).count();
    println!(
        "\nHBM map ({} channels): 1 y, {} matrix-value, {} position-encoding, \
         {} merge, {} x-vector",
        map.len(),
        count(|r| matches!(r, ChannelRole::MatrixValues { .. })),
        count(|r| matches!(r, ChannelRole::PositionEncodings { .. })),
        count(|r| matches!(r, ChannelRole::PartialSumMerge { .. })),
        count(|r| matches!(r, ChannelRole::XVector { .. })),
    );
    println!(
        "estimated power {:.1} W, energy {:.2} uJ per SpMV",
        exec.estimated_power_w,
        exec.energy_j * 1e6
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, m] if cmd == "analyze" => analyze(m),
        [cmd, m, flag, out] if cmd == "select" && flag == "-o" => select(m, out),
        [cmd, m, flag, out] if cmd == "encode" && flag == "-o" => encode(m, None, out),
        [cmd, m, pf, pfile, flag, out] if cmd == "encode" && pf == "-p" && flag == "-o" => {
            encode(m, Some(pfile), out)
        }
        [cmd, p] if cmd == "info" => info(p),
        [cmd, m] if cmd == "run" => run(m),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
