//! Template patterns and the candidate portfolios of Table V.
//!
//! A template pattern is a `p`-cell shape inside the `p × p` local-pattern
//! grid. The hardware decodes at most 16 of them (4-bit `t_idx`), each
//! mapped to a 30-bit VALU opcode at initialisation.

use std::fmt;

use crate::grid::{GridSize, Mask};

/// A single template pattern: a fixed-`p`-cell mask plus a human-readable
/// shape tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Template {
    mask: Mask,
    kind: TemplateKind,
}

/// The shape families used to construct candidate templates (Section V-C:
/// "row vectors, column vectors, diagonal vectors, anti-diagonal vectors,
/// and blocks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemplateKind {
    /// `p` cells along row `r` (RW).
    Row,
    /// `p` cells along column `c` (CW).
    Col,
    /// Wrapped diagonal `(i, (i + k) mod p)`.
    Diag,
    /// Wrapped anti-diagonal `(i, (k − i) mod p)`.
    AntiDiag,
    /// 2×2 block (BW); only a template shape for `p = 4` where it has
    /// exactly 4 cells.
    Block,
}

impl Template {
    /// The row-wise template along row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= p`.
    pub fn row(size: GridSize, r: u32) -> Self {
        assert!(r < size.edge(), "row {r} outside {size} grid");
        let mask = size.mask_of((0..size.edge()).map(|c| (r, c)));
        Template {
            mask,
            kind: TemplateKind::Row,
        }
    }

    /// The column-wise template along column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= p`.
    pub fn col(size: GridSize, c: u32) -> Self {
        assert!(c < size.edge(), "col {c} outside {size} grid");
        let mask = size.mask_of((0..size.edge()).map(|r| (r, c)));
        Template {
            mask,
            kind: TemplateKind::Col,
        }
    }

    /// The wrapped diagonal template with shift `k`: cells `(i, (i+k) mod p)`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= p`.
    pub fn diag(size: GridSize, k: u32) -> Self {
        assert!(k < size.edge(), "diag shift {k} outside {size} grid");
        let p = size.edge();
        let mask = size.mask_of((0..p).map(|i| (i, (i + k) % p)));
        Template {
            mask,
            kind: TemplateKind::Diag,
        }
    }

    /// The wrapped anti-diagonal template with shift `k`: cells
    /// `(i, (k + p − i) mod p)`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= p`.
    pub fn anti_diag(size: GridSize, k: u32) -> Self {
        assert!(k < size.edge(), "anti-diag shift {k} outside {size} grid");
        let p = size.edge();
        let mask = size.mask_of((0..p).map(|i| (i, (k + p - i) % p)));
        Template {
            mask,
            kind: TemplateKind::AntiDiag,
        }
    }

    /// A 2×2 block template anchored at `(r, c)` with wrap-around, for the
    /// 4×4 grid only ("16 BW patterns with different sampling window
    /// placement", Table V set 2).
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is `>= 4`.
    pub fn block2(r: u32, c: u32) -> Self {
        let size = GridSize::S4;
        assert!(r < 4 && c < 4, "block anchor ({r},{c}) outside 4x4 grid");
        let mask = size.mask_of(
            [(0, 0), (0, 1), (1, 0), (1, 1)]
                .into_iter()
                .map(|(dr, dc)| ((r + dr) % 4, (c + dc) % 4)),
        );
        Template {
            mask,
            kind: TemplateKind::Block,
        }
    }

    /// A column-pair block: cells `(r, c1)`, `(r, c2)`, `(r+1, c1)`,
    /// `(r+1, c2)` on the 4×4 grid — the shape produced by 2:4
    /// density-bound-block (DBB) pruning when two adjacent pruned rows
    /// keep the same column pair (Section II-A's DBB local patterns).
    ///
    /// # Panics
    ///
    /// Panics unless `r ∈ {0, 2}` and `c1 < c2 < 4`.
    pub fn dbb_pair(r: u32, c1: u32, c2: u32) -> Self {
        assert!(
            r == 0 || r == 2,
            "DBB row pairs are (0,1) or (2,3), got r={r}"
        );
        assert!(c1 < c2 && c2 < 4, "need c1 < c2 < 4, got ({c1},{c2})");
        let size = GridSize::S4;
        let mask = size.mask_of([(r, c1), (r, c2), (r + 1, c1), (r + 1, c2)]);
        Template {
            mask,
            kind: TemplateKind::Block,
        }
    }

    /// The template's occupancy mask.
    pub fn mask(self) -> Mask {
        self.mask
    }

    /// The template's shape family.
    pub fn kind(self) -> TemplateKind {
        self.kind
    }
}

/// An ordered portfolio of at most 16 templates; the position of a template
/// in the portfolio is its hardware `t_idx`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateSet {
    size: GridSize,
    name: String,
    templates: Vec<Template>,
}

impl TemplateSet {
    /// Maximum number of templates a portfolio can hold (4-bit `t_idx`).
    pub const MAX_TEMPLATES: usize = 16;

    /// Builds a portfolio from explicit templates.
    ///
    /// # Panics
    ///
    /// Panics if more than [`TemplateSet::MAX_TEMPLATES`] templates are
    /// given, if the portfolio is empty, or if the union of templates does
    /// not cover the whole grid (an uncoverable local pattern would make the
    /// format lossy).
    pub fn new(size: GridSize, name: impl Into<String>, templates: Vec<Template>) -> Self {
        assert!(!templates.is_empty(), "portfolio must not be empty");
        assert!(
            templates.len() <= Self::MAX_TEMPLATES,
            "portfolio exceeds the 4-bit t_idx capacity"
        );
        let union = templates.iter().fold(0 as Mask, |u, t| u | t.mask());
        assert_eq!(
            union,
            size.full_mask(),
            "portfolio must cover every grid cell so all local patterns decompose"
        );
        TemplateSet {
            size,
            name: name.into(),
            templates,
        }
    }

    /// The grid size this portfolio targets.
    pub fn size(&self) -> GridSize {
        self.size
    }

    /// Portfolio label (e.g. `"set-0"` or `"dynamic"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The templates in `t_idx` order.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// The raw template masks in `t_idx` order.
    pub fn masks(&self) -> impl Iterator<Item = Mask> + '_ {
        self.templates.iter().map(|t| t.mask())
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the portfolio is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The candidate portfolio `id` of Table V (0–9), on the 4×4 grid.
    ///
    /// | id | composition |
    /// |----|-------------|
    /// | 0  | 4 RW + 4 CW + 4 BW + 4 diagonal |
    /// | 1  | 4 RW + 4 CW + 4 BW + 4 anti-diagonal |
    /// | 2  | 16 BW (all sampling-window placements) |
    /// | 3  | 4 RW + 4 CW + 8 BW |
    /// | 4  | 4 RW + 4 CW + 4 diagonal + 4 anti-diagonal |
    /// | 5  | 8 BW + 4 diagonal + 4 anti-diagonal |
    /// | 6  | 4 RW + 8 BW + 4 diagonal |
    /// | 7  | 4 CW + 8 BW + 4 diagonal |
    /// | 8  | 4 RW + 8 BW + 4 anti-diagonal |
    /// | 9  | 4 CW + 8 BW + 4 anti-diagonal |
    ///
    /// "4 BW" are the aligned quadrant blocks; "8 BW" adds the four
    /// edge-centred placements.
    ///
    /// # Panics
    ///
    /// Panics if `id > 9`.
    pub fn table_v_set(id: usize) -> TemplateSet {
        let s = GridSize::S4;
        let rows: Vec<Template> = (0..4).map(|r| Template::row(s, r)).collect();
        let cols: Vec<Template> = (0..4).map(|c| Template::col(s, c)).collect();
        let diags: Vec<Template> = (0..4).map(|k| Template::diag(s, k)).collect();
        let antis: Vec<Template> = (0..4).map(|k| Template::anti_diag(s, k)).collect();
        // Aligned quadrants.
        let bw4: Vec<Template> = [(0, 0), (0, 2), (2, 0), (2, 2)]
            .into_iter()
            .map(|(r, c)| Template::block2(r, c))
            .collect();
        // Quadrants + edge-centred placements.
        let bw8: Vec<Template> = [
            (0, 0),
            (0, 2),
            (2, 0),
            (2, 2),
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
        ]
        .into_iter()
        .map(|(r, c)| Template::block2(r, c))
        .collect();
        let bw16: Vec<Template> = (0..4)
            .flat_map(|r| (0..4).map(move |c| Template::block2(r, c)))
            .collect();

        let cat = |parts: Vec<Vec<Template>>| parts.into_iter().flatten().collect::<Vec<_>>();
        let templates = match id {
            0 => cat(vec![rows, cols, bw4, diags]),
            1 => cat(vec![rows, cols, bw4, antis]),
            2 => bw16,
            3 => cat(vec![rows, cols, bw8]),
            4 => cat(vec![rows, cols, diags, antis]),
            5 => cat(vec![bw8, diags, antis]),
            6 => cat(vec![rows, bw8, diags]),
            7 => cat(vec![cols, bw8, diags]),
            8 => cat(vec![rows, bw8, antis]),
            9 => cat(vec![cols, bw8, antis]),
            other => panic!("Table V defines candidate sets 0-9, got {other}"),
        };
        TemplateSet::new(s, format!("set-{id}"), templates)
    }

    /// All ten Table V candidate portfolios, in order.
    pub fn table_v_candidates() -> Vec<TemplateSet> {
        (0..10).map(TemplateSet::table_v_set).collect()
    }

    /// The DBB (density-bound block) portfolio: 4 row templates (for
    /// coverage) plus all 12 column-pair blocks — tuned for 2:4-pruned
    /// neural-network weight matrices, where every 4-column group of a
    /// row keeps exactly two values. An extension beyond the paper's ten
    /// Table V sets, built from the DBB local patterns its Section II-A
    /// describes.
    pub fn dbb() -> TemplateSet {
        let s = GridSize::S4;
        let mut t: Vec<Template> = (0..4).map(|r| Template::row(s, r)).collect();
        for r in [0, 2] {
            for c1 in 0..4u32 {
                for c2 in (c1 + 1)..4 {
                    t.push(Template::dbb_pair(r, c1, c2));
                }
            }
        }
        // 4 rows + 12 pairs = 16 templates.
        TemplateSet::new(s, "dbb-2:4", t)
    }

    /// The default vector portfolio for a grid size: all rows, columns,
    /// diagonals and anti-diagonals (`4p` templates — exactly 16 at `p = 4`,
    /// where it coincides with Table V set 4).
    ///
    /// Used for the Fig. 9 pattern-size sweep, where block templates only
    /// exist at `p = 4`.
    pub fn vectors(size: GridSize) -> TemplateSet {
        let p = size.edge();
        let mut templates = Vec::with_capacity(4 * p as usize);
        templates.extend((0..p).map(|r| Template::row(size, r)));
        templates.extend((0..p).map(|c| Template::col(size, c)));
        templates.extend((0..p).map(|k| Template::diag(size, k)));
        templates.extend((0..p).map(|k| Template::anti_diag(size, k)));
        TemplateSet::new(size, format!("vectors-{size}"), templates)
    }
}

impl TemplateSet {
    /// Serialises the portfolio to its text form — the artifact a
    /// deployment stores next to the bitstream so the opcode LUT can be
    /// reloaded without re-running selection:
    ///
    /// ```text
    /// spasm-portfolio v1
    /// size 4
    /// name set-0
    /// template 000f
    /// ...
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("spasm-portfolio v1\n");
        out.push_str(&format!("size {}\n", self.size.edge()));
        out.push_str(&format!("name {}\n", self.name));
        for t in &self.templates {
            out.push_str(&format!("template {:04x}\n", t.mask()));
        }
        out
    }

    /// Parses a portfolio from [`TemplateSet::to_text`]'s format.
    ///
    /// Template kinds are inferred from the masks where they match a known
    /// shape family and default to `Block` otherwise.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line, an unknown
    /// size, a >16-template portfolio, or a non-covering template union.
    pub fn from_text(text: &str) -> Result<TemplateSet, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("spasm-portfolio v1") {
            return Err("missing `spasm-portfolio v1` header".into());
        }
        let size = match lines.next().and_then(|l| l.strip_prefix("size ")) {
            Some("2") => GridSize::S2,
            Some("3") => GridSize::S3,
            Some("4") => GridSize::S4,
            other => return Err(format!("bad size line: {other:?}")),
        };
        let name = lines
            .next()
            .and_then(|l| l.strip_prefix("name "))
            .ok_or("missing name line")?
            .to_string();
        let mut templates = Vec::new();
        for line in lines {
            let hex = line
                .strip_prefix("template ")
                .ok_or_else(|| format!("unexpected line `{line}`"))?;
            let mask = u16::from_str_radix(hex, 16)
                .map_err(|e| format!("bad template mask `{hex}`: {e}"))?;
            if mask & !size.full_mask() != 0 {
                return Err(format!("mask {mask:#06x} has bits outside the {size} grid"));
            }
            if mask.count_ones() != size.template_len() {
                return Err(format!(
                    "mask {mask:#06x} has {} cells, expected {}",
                    mask.count_ones(),
                    size.template_len()
                ));
            }
            templates.push(Template {
                mask,
                kind: Self::infer_kind(size, mask),
            });
        }
        if templates.is_empty() || templates.len() > Self::MAX_TEMPLATES {
            return Err(format!(
                "portfolio needs 1..=16 templates, got {}",
                templates.len()
            ));
        }
        let union = templates.iter().fold(0 as Mask, |u, t| u | t.mask());
        if union != size.full_mask() {
            return Err("portfolio does not cover the grid".into());
        }
        Ok(TemplateSet {
            size,
            name,
            templates,
        })
    }

    fn infer_kind(size: GridSize, mask: Mask) -> TemplateKind {
        let p = size.edge();
        for i in 0..p {
            if mask == Template::row(size, i).mask() {
                return TemplateKind::Row;
            }
            if mask == Template::col(size, i).mask() {
                return TemplateKind::Col;
            }
            if mask == Template::diag(size, i).mask() {
                return TemplateKind::Diag;
            }
            if mask == Template::anti_diag(size, i).mask() {
                return TemplateKind::AntiDiag;
            }
        }
        TemplateKind::Block
    }
}

impl fmt::Display for TemplateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} templates, {})",
            self.name,
            self.templates.len(),
            self.size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_cell_counts() {
        for s in GridSize::ALL {
            let p = s.edge();
            for i in 0..p {
                assert_eq!(Template::row(s, i).mask().count_ones(), p);
                assert_eq!(Template::col(s, i).mask().count_ones(), p);
                assert_eq!(Template::diag(s, i).mask().count_ones(), p);
                assert_eq!(Template::anti_diag(s, i).mask().count_ones(), p);
            }
        }
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(Template::block2(r, c).mask().count_ones(), 4);
            }
        }
    }

    #[test]
    fn diag_masks_are_disjoint_and_cover() {
        let s = GridSize::S4;
        let union = (0..4).fold(0u16, |u, k| {
            let m = Template::diag(s, k).mask();
            assert_eq!(u & m, 0, "diagonals must be disjoint");
            u | m
        });
        assert_eq!(union, s.full_mask());
    }

    #[test]
    fn anti_diag_masks_are_disjoint_and_cover() {
        let s = GridSize::S4;
        let union = (0..4).fold(0u16, |u, k| {
            let m = Template::anti_diag(s, k).mask();
            assert_eq!(u & m, 0);
            u | m
        });
        assert_eq!(union, s.full_mask());
    }

    #[test]
    fn main_diagonal_is_identity_cells() {
        let s = GridSize::S4;
        assert_eq!(
            Template::diag(s, 0).mask(),
            s.mask_of([(0, 0), (1, 1), (2, 2), (3, 3)])
        );
        assert_eq!(
            Template::anti_diag(s, 3).mask(),
            s.mask_of([(0, 3), (1, 2), (2, 1), (3, 0)])
        );
    }

    #[test]
    fn all_table_v_sets_are_valid() {
        for (i, set) in TemplateSet::table_v_candidates().into_iter().enumerate() {
            assert_eq!(set.name(), format!("set-{i}"));
            assert!(set.len() == 16, "set {i} has {} templates", set.len());
        }
    }

    #[test]
    fn set2_has_16_distinct_blocks() {
        let set = TemplateSet::table_v_set(2);
        let mut masks: Vec<_> = set.masks().collect();
        masks.sort_unstable();
        masks.dedup();
        assert_eq!(masks.len(), 16);
    }

    #[test]
    fn dbb_portfolio_is_valid_and_zero_pads_2_4_patterns() {
        let set = TemplateSet::dbb();
        assert_eq!(set.len(), 16);
        // A 2:4-pruned submatrix where both rows of each pair keep the
        // same columns decomposes with zero padding.
        let s = GridSize::S4;
        let pattern = s.mask_of([
            (0, 1),
            (0, 3),
            (1, 1),
            (1, 3),
            (2, 0),
            (2, 2),
            (3, 0),
            (3, 2),
        ]);
        let table = crate::decompose::DecompositionTable::build(&set);
        let d = table.decompose(pattern).unwrap();
        assert_eq!(d.paddings, 0, "two DBB pairs, no padding");
        assert_eq!(d.instances(), 2);
    }

    #[test]
    fn dbb_pair_cells() {
        let t = Template::dbb_pair(2, 0, 3);
        assert_eq!(
            t.mask(),
            GridSize::S4.mask_of([(2, 0), (2, 3), (3, 0), (3, 3)])
        );
    }

    #[test]
    #[should_panic(expected = "row pairs")]
    fn dbb_pair_rejects_odd_row() {
        Template::dbb_pair(1, 0, 1);
    }

    #[test]
    fn vectors_portfolio_sizes() {
        assert_eq!(TemplateSet::vectors(GridSize::S2).len(), 8);
        assert_eq!(TemplateSet::vectors(GridSize::S3).len(), 12);
        assert_eq!(TemplateSet::vectors(GridSize::S4).len(), 16);
    }

    #[test]
    fn vectors_s4_equals_set4() {
        let a: Vec<_> = TemplateSet::vectors(GridSize::S4).masks().collect();
        let b: Vec<_> = TemplateSet::table_v_set(4).masks().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn text_round_trip_preserves_masks_and_kinds() {
        for set in TemplateSet::table_v_candidates()
            .into_iter()
            .chain([TemplateSet::dbb()])
        {
            let text = set.to_text();
            let back =
                TemplateSet::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", set.name()));
            assert_eq!(back.name(), set.name());
            assert_eq!(
                back.masks().collect::<Vec<_>>(),
                set.masks().collect::<Vec<_>>()
            );
            let kinds_a: Vec<_> = set.templates().iter().map(|t| t.kind()).collect();
            let kinds_b: Vec<_> = back.templates().iter().map(|t| t.kind()).collect();
            assert_eq!(kinds_a, kinds_b, "{}", set.name());
        }
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(TemplateSet::from_text("nope").is_err());
        assert!(TemplateSet::from_text("spasm-portfolio v1\nsize 9\n").is_err());
        let no_cover = "spasm-portfolio v1\nsize 4\nname x\ntemplate 000f\n";
        assert!(TemplateSet::from_text(no_cover)
            .unwrap_err()
            .contains("cover"));
        let bad_cells = "spasm-portfolio v1\nsize 4\nname x\ntemplate 0007\n";
        assert!(TemplateSet::from_text(bad_cells)
            .unwrap_err()
            .contains("cells"));
        let junk = "spasm-portfolio v1\nsize 4\nname x\nwat\n";
        assert!(TemplateSet::from_text(junk).is_err());
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn non_covering_portfolio_rejected() {
        let s = GridSize::S4;
        TemplateSet::new(s, "bad", vec![Template::row(s, 0)]);
    }

    #[test]
    #[should_panic(expected = "t_idx")]
    fn oversized_portfolio_rejected() {
        let s = GridSize::S4;
        let mut t: Vec<Template> = (0..4)
            .flat_map(|r| (0..4).map(move |c| Template::block2(r, c)))
            .collect();
        t.push(Template::row(s, 0));
        TemplateSet::new(s, "bad", t);
    }
}
