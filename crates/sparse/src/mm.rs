//! Matrix Market I/O.
//!
//! Supports the `matrix coordinate real/integer/pattern general/symmetric`
//! subset of the format, which covers every matrix in the paper's Table II
//! workload suite. `pattern` entries read as 1.0; `symmetric` matrices are
//! expanded to their full (general) form on read, matching how SpMV
//! accelerators consume them.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{Coo, SparseError, Triplet};

/// Value field declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Symmetry declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Default entry-count ceiling for [`read_matrix_market`]: far above every
/// matrix in the paper's workload suite, far below anything that could
/// exhaust memory from a hostile header.
pub const DEFAULT_NNZ_LIMIT: usize = 1 << 31;

/// Upper bound on the triplet capacity reserved up front. Headers are
/// untrusted: a declared count beyond this grows the vector incrementally
/// instead of pre-allocating terabytes on the header's say-so.
const PREALLOC_CAP: usize = 1 << 20;

/// Reads a Matrix Market stream into a [`Coo`] matrix.
///
/// A mutable reference may be passed for `reader` (see `std::io::Read`'s
/// blanket impl for `&mut R`).
///
/// The stream is treated as untrusted: entry counts beyond
/// [`DEFAULT_NNZ_LIMIT`] (or beyond what the declared shape can hold) are
/// rejected up front, and pre-allocation is capped so a hostile header
/// cannot trigger an out-of-memory abort. Use
/// [`read_matrix_market_limited`] to pick a different ceiling.
///
/// # Errors
///
/// Returns [`SparseError::ParseError`] on malformed headers or entries and
/// [`SparseError::Io`] on read failures.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Coo, SparseError> {
    read_matrix_market_limited(reader, DEFAULT_NNZ_LIMIT)
}

/// [`read_matrix_market`] with a caller-chosen ceiling on the declared
/// entry count, for ingestion pipelines with their own memory budget.
///
/// # Errors
///
/// As [`read_matrix_market`]; a header declaring more than `max_nnz`
/// entries is a [`SparseError::ParseError`].
pub fn read_matrix_market_limited<R: Read>(reader: R, max_nnz: usize) -> Result<Coo, SparseError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    let err = |line: usize, message: &str| SparseError::ParseError {
        line: line + 1,
        message: message.to_string(),
    };

    // Header line: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (hline, header) = loop {
        match lines.next() {
            Some((n, Ok(l))) if !l.trim().is_empty() => break (n, l),
            Some((_, Ok(_))) => continue,
            Some((n, Err(e))) => return Err(err(n, &e.to_string())),
            None => return Err(err(0, "empty stream")),
        }
    };
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() != 5
        || !tokens[0].eq_ignore_ascii_case("%%MatrixMarket")
        || !tokens[1].eq_ignore_ascii_case("matrix")
        || !tokens[2].eq_ignore_ascii_case("coordinate")
    {
        return Err(err(
            hline,
            "expected `%%MatrixMarket matrix coordinate ...` header",
        ));
    }
    let field = match tokens[3].to_ascii_lowercase().as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(err(hline, &format!("unsupported field `{other}`"))),
    };
    let symmetry = match tokens[4].to_ascii_lowercase().as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(err(hline, &format!("unsupported symmetry `{other}`"))),
    };

    // Size line (after comments).
    let (sline, size) = loop {
        match lines.next() {
            Some((_, Ok(l))) if l.trim_start().starts_with('%') || l.trim().is_empty() => continue,
            Some((n, Ok(l))) => break (n, l),
            Some((n, Err(e))) => return Err(err(n, &e.to_string())),
            None => return Err(err(hline, "missing size line")),
        }
    };
    let dims: Vec<&str> = size.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(err(sline, "size line must be `rows cols nnz`"));
    }
    let rows: u32 = dims[0].parse().map_err(|_| err(sline, "bad row count"))?;
    let cols: u32 = dims[1].parse().map_err(|_| err(sline, "bad col count"))?;
    let declared_nnz: u64 = dims[2].parse().map_err(|_| err(sline, "bad nnz count"))?;

    // The header is untrusted input: reject counts the declared shape
    // cannot hold or that exceed the caller's memory budget *before*
    // reserving anything, so a hostile `1000000 1000000 1000000000000`
    // size line is a parse error, not an allocation attempt.
    if u128::from(declared_nnz) > u128::from(rows) * u128::from(cols) {
        return Err(err(
            sline,
            &format!("{declared_nnz} entries cannot fit in a {rows}x{cols} matrix"),
        ));
    }
    if declared_nnz > max_nnz as u64 {
        return Err(err(
            sline,
            &format!("{declared_nnz} entries exceed the limit of {max_nnz}"),
        ));
    }
    let declared_nnz = declared_nnz as usize;

    let mut triplets: Vec<Triplet> = Vec::with_capacity(declared_nnz.min(PREALLOC_CAP));
    let mut seen = 0usize;
    for (n, line) in lines {
        let line = line.map_err(|e| err(n, &e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if seen == declared_nnz {
            return Err(err(n, "more entries than the header declared"));
        }
        let parts: Vec<&str> = trimmed.split_whitespace().collect();
        let want = if field == Field::Pattern { 2 } else { 3 };
        if parts.len() < want {
            return Err(err(n, "entry line has too few fields"));
        }
        let r: u32 = parts[0].parse().map_err(|_| err(n, "bad row index"))?;
        let c: u32 = parts[1].parse().map_err(|_| err(n, "bad col index"))?;
        if r == 0 || c == 0 {
            return Err(err(n, "matrix market indices are 1-based"));
        }
        let v: f32 = match field {
            Field::Pattern => 1.0,
            _ => parts[2].parse().map_err(|_| err(n, "bad value"))?,
        };
        triplets.push((r - 1, c - 1, v));
        if symmetry == Symmetry::Symmetric && r != c {
            triplets.push((c - 1, r - 1, v));
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(SparseError::ParseError {
            line: 0,
            message: format!("header declared {declared_nnz} entries, found {seen}"),
        });
    }
    Coo::from_triplets(rows, cols, triplets)
}

/// Writes a [`Coo`] matrix as `matrix coordinate real general`.
///
/// A mutable reference may be passed for `writer`.
///
/// # Errors
///
/// Returns [`SparseError::Io`] on write failures.
pub fn write_matrix_market<W: Write>(mut writer: W, matrix: &Coo) -> Result<(), SparseError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% generated by spasm-sparse")?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz()
    )?;
    for (r, c, v) in matrix.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Reads a Matrix Market file from disk.
///
/// # Errors
///
/// See [`read_matrix_market`].
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Coo, SparseError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a Matrix Market file to disk.
///
/// # Errors
///
/// See [`write_matrix_market`].
pub fn write_file<P: AsRef<Path>>(path: P, matrix: &Coo) -> Result<(), SparseError> {
    write_matrix_market(std::fs::File::create(path)?, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let coo = Coo::from_triplets(3, 2, vec![(0, 0, 1.5), (2, 1, -2.0)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &coo).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back, coo);
    }

    #[test]
    fn symmetric_expansion() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 5\n3 1 2\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(coo.nnz(), 3); // diagonal entry not duplicated
        let t: Vec<_> = coo.iter().collect();
        assert_eq!(t, vec![(0, 0, 5.0), (0, 2, 2.0), (2, 0, 2.0)]);
    }

    #[test]
    fn pattern_entries_read_as_one() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(coo.values(), &[1.0, 1.0]);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n% mid comment\n2 2 7\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(coo.iter().collect::<Vec<_>>(), vec![(1, 1, 7.0)]);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let bad = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3\n";
        let e = read_matrix_market(bad.as_bytes()).unwrap_err();
        assert!(matches!(e, SparseError::ParseError { line: 3, .. }), "{e}");
    }

    #[test]
    fn nnz_mismatch_detected() {
        let bad = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3\n";
        assert!(read_matrix_market(bad.as_bytes()).is_err());
    }

    #[test]
    fn hostile_entry_count_is_a_parse_error_not_an_allocation() {
        // 10^12 declared entries fit the declared 10^6 x 10^6 shape, so
        // only the nnz ceiling stands between the header and a ~12 TB
        // reservation.
        let hostile =
            "%%MatrixMarket matrix coordinate real general\n1000000 1000000 1000000000000\n";
        let e = read_matrix_market(hostile.as_bytes()).unwrap_err();
        assert!(matches!(e, SparseError::ParseError { line: 2, .. }), "{e}");
    }

    #[test]
    fn entry_count_beyond_shape_rejected() {
        let bad = "%%MatrixMarket matrix coordinate real general\n10 10 101\n";
        let e = read_matrix_market(bad.as_bytes()).unwrap_err();
        assert!(matches!(e, SparseError::ParseError { line: 2, .. }), "{e}");
    }

    #[test]
    fn caller_limit_is_enforced() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3\n2 2 4\n";
        assert!(read_matrix_market_limited(text.as_bytes(), 1).is_err());
        let coo = read_matrix_market_limited(text.as_bytes(), 2).unwrap();
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    fn extra_entries_beyond_declared_rejected_early() {
        let bad = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3\n2 2 4\n";
        let e = read_matrix_market(bad.as_bytes()).unwrap_err();
        assert!(matches!(e, SparseError::ParseError { line: 4, .. }), "{e}");
    }

    #[test]
    fn unsupported_header_rejected() {
        let bad = "%%MatrixMarket matrix array real general\n2 2\n";
        assert!(read_matrix_market(bad.as_bytes()).is_err());
    }
}
