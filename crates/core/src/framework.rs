//! The end-to-end SPASM pipeline (workflow ①–⑥, Fig. 6).

use std::time::{Duration, Instant};

use spasm_format::{SpasmMatrix, SubmatrixMap};
use spasm_hw::{Accelerator, ExecReport, ExecutionPlan, HwConfig};
use spasm_patterns::selection::{self, TopN};
use spasm_patterns::{SelectionOutcome, TemplateSet};
use spasm_sparse::Coo;

use crate::error::PipelineError;
use crate::schedule::{self, ScheduleCandidate, ScheduleChoice};

/// Pipeline configuration: which portfolios, tile sizes and hardware
/// configurations the framework may choose among.
///
/// The defaults reproduce the paper's full framework. The Fig. 14 ablation
/// points are built by pinning parts of the search space
/// ([`PipelineOptions::fixed_portfolio`], [`PipelineOptions::fixed_schedule`]).
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Candidate template portfolios for step ② (default: Table V sets
    /// 0–9).
    pub candidates: Vec<TemplateSet>,
    /// How many top patterns Algorithm 3 scores (default: enough for 95 %
    /// coverage).
    pub top_n: TopN,
    /// Tile sizes for step ⑤ (default: 256…32768 powers of two).
    pub tile_sizes: Vec<u32>,
    /// Hardware configurations for step ⑤ (default: the three shipped
    /// bitstreams of Table IV).
    pub configs: Vec<HwConfig>,
    /// Preprocessing thread budget (default: [`Parallelism::Auto`]). All
    /// pipeline outputs are identical for every setting; the knob only
    /// trades wall-clock for cores. Serial mode is kept for debugging and
    /// as the oracle side of the determinism tests.
    pub parallelism: Parallelism,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            candidates: TemplateSet::table_v_candidates(),
            top_n: TopN::Coverage(0.95),
            tile_sizes: schedule::default_tile_sizes(),
            configs: HwConfig::shipped(),
            parallelism: Parallelism::Auto,
        }
    }
}

impl PipelineOptions {
    /// Pins step ② to one portfolio (ablation: "fixed template pattern").
    pub fn fixed_portfolio(mut self, set: TemplateSet) -> Self {
        self.candidates = vec![set];
        self
    }

    /// Pins step ⑤ to one tile size and configuration (ablation: "fixed
    /// schedule").
    pub fn fixed_schedule(mut self, tile_size: u32, config: HwConfig) -> Self {
        self.tile_sizes = vec![tile_size];
        self.configs = vec![config];
        self
    }

    /// Sets the preprocessing thread budget.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// Thread budget for preprocessing.
///
/// Preprocessing output is bit-identical for every variant (enforced by
/// `tests/determinism.rs`); only wall-clock changes. Without the `parallel`
/// cargo feature every variant executes serially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use every available core.
    #[default]
    Auto,
    /// Single-threaded execution.
    Serial,
    /// At most this many worker threads (`Threads(0)` ≡ `Auto`,
    /// `Threads(1)` ≡ `Serial`).
    Threads(usize),
}

impl Parallelism {
    /// The concrete worker-thread cap this variant resolves to.
    pub fn resolved_threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Auto | Parallelism::Threads(0) => {
                std::thread::available_parallelism().map_or(1, usize::from)
            }
            Parallelism::Threads(n) => n,
        }
    }
}

/// Runs `f` under the pipeline's thread budget. With the `parallel` feature
/// disabled this is the identity: everything already runs serially.
#[cfg(feature = "parallel")]
fn with_parallelism<R>(parallelism: Parallelism, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(parallelism.resolved_threads())
        .build()
        .expect("vendored rayon pool builder is infallible")
        .install(f)
}

#[cfg(not(feature = "parallel"))]
fn with_parallelism<R>(_parallelism: Parallelism, f: impl FnOnce() -> R) -> R {
    f()
}

/// The worker budget in effect on the current thread (1 in serial builds).
#[cfg(feature = "parallel")]
fn current_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(not(feature = "parallel"))]
fn current_threads() -> usize {
    1
}

/// Wall-clock cost of each preprocessing stage — the rows of Table VIII.
///
/// Each field is the *wall-clock* span of its stage as observed by the
/// thread driving the pipeline, so the numbers stay meaningful under
/// parallel execution: a stage that fans out over `threads` workers reports
/// the elapsed time of the whole fan-out, not the summed CPU time.
/// [`StageTimings::threads`] records the budget the stages ran under so a
/// report can distinguish a serial 40 ms from a 4-thread 40 ms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// ① local pattern analysis.
    pub analysis: Duration,
    /// ② template pattern selection.
    pub selection: Duration,
    /// ③ local pattern decomposition (all occurring patterns).
    pub decomposition: Duration,
    /// ④⑤ global composition analysis + workload schedule exploration.
    pub schedule: Duration,
    /// Final encode into the SPASM format (stream materialisation).
    pub encode: Duration,
    /// Execution-plan build: instance-stream decode, LPT schedule, report
    /// skeleton and scratch allocation (amortised over every `execute`).
    pub plan: Duration,
    /// Worker-thread budget the stages ran under (1 = serial).
    pub threads: usize,
}

impl StageTimings {
    /// Total preprocessing wall-clock time.
    pub fn total(&self) -> Duration {
        self.analysis
            + self.selection
            + self.decomposition
            + self.schedule
            + self.encode
            + self.plan
    }

    /// Whether any stage may have used more than one worker thread.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

/// The SPASM framework front-end.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    options: PipelineOptions,
}

impl Pipeline {
    /// A pipeline with the paper's default search space.
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// A pipeline with custom options.
    pub fn with_options(options: PipelineOptions) -> Self {
        Pipeline { options }
    }

    /// The active options.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// Runs preprocessing for a *set* of expected input matrices sharing
    /// one portfolio — the abstract's deployment model: the portfolio (and
    /// thus the opcode LUT) is optimised once over the whole set, then
    /// each matrix still gets its own tile-size/configuration schedule.
    ///
    /// Matrices are weighted equally in selection regardless of size (see
    /// [`selection::select_for_matrix_set`]).
    ///
    /// # Errors
    ///
    /// Propagates per-matrix pipeline errors; an empty slice is an
    /// [`PipelineError::EmptySearchSpace`].
    pub fn prepare_set(&self, matrices: &[Coo]) -> Result<Vec<Prepared>, PipelineError> {
        if matrices.is_empty() {
            return Err(PipelineError::EmptySearchSpace("input matrix"));
        }
        with_parallelism(self.options.parallelism, || {
            // ① analyse every matrix (in parallel — matrices are
            // independent); ② select one shared portfolio.
            let maps = Pipeline::analyze_set(matrices);
            let histograms: Vec<_> = maps.iter().map(SubmatrixMap::histogram).collect();
            let shared = selection::select_for_matrix_set(
                &histograms,
                &self.options.candidates,
                self.options.top_n,
            );
            // ③–⑤ + encode per matrix, pinned to the shared portfolio.
            // Matrices again run in parallel; each per-matrix `prepare`
            // then runs serially on its worker (the vendored rayon shim
            // grants workers a nested budget of 1), which keeps the
            // fan-out flat instead of quadratic.
            let pinned =
                Pipeline::with_options(self.options.clone().fixed_portfolio(shared.set.clone()));
            Pipeline::prepare_each(&pinned, matrices)
        })
    }

    #[cfg(feature = "parallel")]
    fn analyze_set(matrices: &[Coo]) -> Vec<SubmatrixMap> {
        use rayon::prelude::*;
        matrices.par_iter().map(SubmatrixMap::from_coo).collect()
    }

    #[cfg(not(feature = "parallel"))]
    fn analyze_set(matrices: &[Coo]) -> Vec<SubmatrixMap> {
        matrices.iter().map(SubmatrixMap::from_coo).collect()
    }

    #[cfg(feature = "parallel")]
    fn prepare_each(pinned: &Pipeline, matrices: &[Coo]) -> Result<Vec<Prepared>, PipelineError> {
        use rayon::prelude::*;
        matrices
            .par_iter()
            .map(|m| pinned.prepare_inner(m))
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    #[cfg(not(feature = "parallel"))]
    fn prepare_each(pinned: &Pipeline, matrices: &[Coo]) -> Result<Vec<Prepared>, PipelineError> {
        matrices.iter().map(|m| pinned.prepare_inner(m)).collect()
    }

    /// Runs preprocessing (steps ①–⑤) on a matrix and returns everything
    /// needed for execution.
    ///
    /// # Errors
    ///
    /// Propagates format, opcode and search-space errors as
    /// [`PipelineError`].
    pub fn prepare(&self, matrix: &Coo) -> Result<Prepared, PipelineError> {
        with_parallelism(self.options.parallelism, || self.prepare_inner(matrix))
    }

    /// `prepare` body, run under an already-installed thread budget (so
    /// `prepare_set` workers do not stack budgets).
    fn prepare_inner(&self, matrix: &Coo) -> Result<Prepared, PipelineError> {
        let mut timings = StageTimings {
            threads: current_threads(),
            ..StageTimings::default()
        };

        // ① local pattern analysis.
        let t0 = Instant::now();
        let map = SubmatrixMap::from_coo(matrix);
        let histogram = map.histogram();
        timings.analysis = t0.elapsed();

        // ② template pattern selection.
        let t1 = Instant::now();
        let selection = selection::select_template_set(
            &histogram,
            &self.options.candidates,
            self.options.top_n,
        );
        timings.selection = t1.elapsed();

        // ③ decompose all occurring patterns (the table is built during
        // selection; walking every occurring pattern materialises the
        // decomposition cache the encoder uses).
        let t2 = Instant::now();
        for (mask, _) in histogram.iter() {
            selection
                .table
                .decompose(*mask)
                .ok_or(spasm_format::FormatError::UncoverablePattern { mask: *mask })?;
        }
        timings.decomposition = t2.elapsed();

        // ④⑤ global composition + schedule exploration.
        let t3 = Instant::now();
        let (best, explored) = schedule::explore_schedule(
            &map,
            &selection.table,
            &self.options.tile_sizes,
            &self.options.configs,
        )?;
        timings.schedule = t3.elapsed();

        // Materialise the stream at the selected tile size.
        let t4 = Instant::now();
        let encoded = SpasmMatrix::encode(&map, &selection.table, best.tile_size)?;
        timings.encode = t4.elapsed();

        // Build the execution plan for the winning schedule once; every
        // subsequent `execute` reuses it (decode, LPT assignment, cycle
        // pricing and scratch buffers are all amortised here).
        let t5 = Instant::now();
        let plan = Accelerator::new(best.config.clone()).prepare(&encoded)?;
        timings.plan = t5.elapsed();

        Ok(Prepared {
            selection,
            best,
            explored,
            encoded,
            timings,
            plan,
            parallelism: self.options.parallelism,
        })
    }
}

/// The output of preprocessing: ready to execute and inspect.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Step ② outcome: the selected portfolio and its decomposition
    /// table.
    pub selection: SelectionOutcome,
    /// Step ⑤ winner.
    pub best: ScheduleChoice,
    /// The full schedule search trace.
    pub explored: Vec<ScheduleCandidate>,
    /// The matrix encoded at the winning tile size.
    pub encoded: SpasmMatrix,
    /// Preprocessing stage timings (Table VIII).
    pub timings: StageTimings,
    /// The prepared execution plan for the winning schedule: pre-decoded
    /// instance stream, LPT assignment, cycle pricing and reusable scratch.
    /// Built once in `prepare`; [`Prepared::execute`] reuses it on every
    /// call.
    pub plan: ExecutionPlan,
    /// The thread budget `execute` runs the plan under (inherited from the
    /// pipeline options at prepare time).
    parallelism: Parallelism,
}

impl Prepared {
    /// Executes `y += A·x` on the selected hardware configuration
    /// (step ⑥), reusing the prepared [`ExecutionPlan`] — no per-call
    /// decode, scheduling or scratch allocation.
    ///
    /// Results are bit-identical to [`Accelerator::run`] for every thread
    /// budget (see `tests/determinism.rs`).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors as [`PipelineError`].
    pub fn execute(&mut self, x: &[f32], y: &mut [f32]) -> Result<ExecReport, PipelineError> {
        let parallelism = self.parallelism;
        let plan = &mut self.plan;
        let report = with_parallelism(parallelism, || plan.run(x, y).cloned())?;
        Ok(report)
    }

    /// The accelerator built for the winning configuration, for callers
    /// that want one-shot [`Accelerator::run`] semantics or their own
    /// [`ExecutionPlan`]s.
    pub fn accelerator(&self) -> Accelerator {
        Accelerator::new(self.best.config.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_sparse::SpMv;

    fn block_diag(n_blocks: u32) -> Coo {
        let mut t = Vec::new();
        for b in 0..n_blocks {
            for r in 0..4 {
                for c in 0..4 {
                    t.push((b * 4 + r, b * 4 + c, (r + c + 1) as f32));
                }
            }
        }
        let n = n_blocks * 4;
        Coo::from_triplets(n, n, t).unwrap()
    }

    #[test]
    fn end_to_end_matches_reference() {
        let a = block_diag(64);
        let mut prepared = Pipeline::new().prepare(&a).unwrap();
        let n = a.rows() as usize;
        let x: Vec<f32> = (0..n).map(|i| (i % 7) as f32 - 3.0).collect();

        let mut want = vec![1.0f32; n];
        a.spmv(&x, &mut want).unwrap();
        let mut got = vec![1.0f32; n];
        prepared.execute(&x, &mut got).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn block_diag_selects_zero_padding_portfolio() {
        let a = block_diag(32);
        let prepared = Pipeline::new().prepare(&a).unwrap();
        assert_eq!(prepared.selection.paddings, 0);
        assert_eq!(prepared.encoded.paddings(), 0);
    }

    #[test]
    fn ablation_options_pin_the_space() {
        let a = block_diag(32);
        let opts = PipelineOptions::default()
            .fixed_portfolio(TemplateSet::table_v_set(0))
            .fixed_schedule(1024, HwConfig::spasm_4_1());
        let prepared = Pipeline::with_options(opts).prepare(&a).unwrap();
        assert_eq!(prepared.best.tile_size, 1024);
        assert_eq!(prepared.best.config.name, "SPASM_4_1");
        assert_eq!(prepared.explored.len(), 1);
        assert_eq!(prepared.selection.set.name(), "set-0");
    }

    #[test]
    fn full_pipeline_never_slower_than_fixed_baseline() {
        let a = block_diag(256);
        let fixed = Pipeline::with_options(
            PipelineOptions::default()
                .fixed_portfolio(TemplateSet::table_v_set(0))
                .fixed_schedule(1024, HwConfig::spasm_4_1()),
        )
        .prepare(&a)
        .unwrap();
        let full = Pipeline::new().prepare(&a).unwrap();
        let t_fixed = fixed
            .best
            .config
            .cycles_to_seconds(fixed.best.predicted_cycles);
        let t_full = full
            .best
            .config
            .cycles_to_seconds(full.best.predicted_cycles);
        assert!(t_full <= t_fixed + 1e-15, "{t_full} vs {t_fixed}");
    }

    #[test]
    fn prepare_set_shares_one_portfolio() {
        // A block-diagonal matrix and an anti-diagonal one: the shared
        // portfolio must cover both and be identical across outputs.
        let a = block_diag(16);
        let mut t = Vec::new();
        for i in 0..64u32 {
            t.push((i, 63 - i, 1.0));
        }
        let b = Coo::from_triplets(64, 64, t).unwrap();
        let mut prepared = Pipeline::new()
            .prepare_set(&[a.clone(), b.clone()])
            .unwrap();
        assert_eq!(prepared.len(), 2);
        assert_eq!(
            prepared[0].selection.set.name(),
            prepared[1].selection.set.name()
        );
        // Both still execute correctly under the shared portfolio.
        for (m, p) in [&a, &b].into_iter().zip(prepared.iter_mut()) {
            let x = vec![1.0f32; m.cols() as usize];
            let mut want = vec![0.0f32; m.rows() as usize];
            m.spmv(&x, &mut want).unwrap();
            let mut got = vec![0.0f32; m.rows() as usize];
            p.execute(&x, &mut got).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn prepare_set_rejects_empty() {
        assert!(matches!(
            Pipeline::new().prepare_set(&[]),
            Err(PipelineError::EmptySearchSpace(_))
        ));
    }

    #[test]
    fn timings_are_recorded() {
        let a = block_diag(16);
        let prepared = Pipeline::new().prepare(&a).unwrap();
        assert!(prepared.timings.total() > Duration::ZERO);
    }

    #[test]
    fn prepared_plan_matches_schedule_prediction() {
        // The plan is priced with the same cycle model the schedule sweep
        // used, so its cached report must agree with the winner's
        // prediction.
        let a = block_diag(32);
        let prepared = Pipeline::new().prepare(&a).unwrap();
        assert_eq!(
            prepared.plan.report().cycles,
            prepared.best.predicted_cycles
        );
        assert_eq!(prepared.plan.n_instances(), prepared.encoded.n_instances());
        assert!(prepared.timings.plan > Duration::ZERO);
    }

    #[test]
    fn execute_checks_dimensions() {
        let a = block_diag(4);
        let mut prepared = Pipeline::new().prepare(&a).unwrap();
        let mut y = vec![0.0f32; 16];
        assert!(matches!(
            prepared.execute(&[1.0; 3], &mut y),
            Err(PipelineError::DimensionMismatch { operand: "x", .. })
        ));
    }
}
