//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) for wire-format
//! integrity.
//!
//! Version-2 SPASM streams carry a trailing CRC-32 over the header,
//! template, tile-directory and instance-stream sections, so in-flight or
//! at-rest corruption is detected before any structural parsing trusts the
//! bytes. The implementation is a straightforward table-driven one; the
//! table is built in a `const` context so there is no runtime init.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 (IEEE) of `data`.
///
/// # Examples
///
/// ```
/// // The standard check vector.
/// assert_eq!(spasm_format::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_sensitivity() {
        let base = vec![0u8; 64];
        let reference = crc32(&base);
        for byte in 0..64 {
            for bit in 0..8 {
                let mut mutated = base.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(crc32(&mutated), reference, "flip {byte}:{bit} undetected");
            }
        }
    }
}
