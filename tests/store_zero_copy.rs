//! The zero-copy contract of `spasm-store`: thawing a wire-v3 container
//! into an `ExecutionPlan` must not copy any of the mapped stream
//! sections — the plan's frozen SoA streams *borrow* the container
//! buffer. A counting global allocator bounds the bytes moved while
//! `FrozenPlan::into_plan` runs, and the steady-state run loop stays
//! allocation-free exactly as it does for freshly prepared plans.
//!
//! Registered in `crates/store` (`[[test]] name = "store_zero_copy"`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use spasm::{IntegrityPolicy, Parallelism, Pipeline, PipelineOptions, Prepared};
use spasm_sparse::Coo;
use spasm_store::{save_v3, FrozenPlan, PlanBuffer, PlanStore};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Counts heap allocations and total bytes requested while `f` runs.
fn count_allocs_and_bytes<T>(f: impl FnOnce() -> T) -> (u64, u64, T) {
    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (
        ALLOCS.load(Ordering::SeqCst),
        BYTES.load(Ordering::SeqCst),
        out,
    )
}

/// A scattered square matrix big enough that its instance streams dwarf
/// any bookkeeping allocations.
fn matrix(n: u32) -> Coo {
    let mut t = Vec::new();
    for i in 0..n {
        for k in 0..6u32 {
            t.push((i, (i * 31 + k * 7) % n, ((i + k) % 9 + 1) as f32 * 0.5));
        }
    }
    Coo::from_triplets(n, n, t).expect("valid triplets")
}

fn prepare(m: &Coo) -> Prepared {
    Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Serial))
        .prepare(m)
        .expect("pipeline prepare")
}

/// The per-instance stream payload of a plan: x/y bases (u32 each),
/// op indices (u8), 4-slot values (4×f32) and bucket indices (u32).
fn instance_stream_bytes(n_instances: usize) -> u64 {
    (n_instances * (4 + 4 + 1 + 16 + 4)) as u64
}

#[test]
fn thawing_copies_no_stream_bytes() {
    let m = matrix(2048);
    let fresh = prepare(&m);
    let v3 = save_v3(&fresh.encoded, &fresh.plan).expect("save_v3");
    let n_instances = fresh.encoded.n_instances();
    let stream_bytes = instance_stream_bytes(n_instances);

    let buffer = PlanBuffer::from_bytes(&v3);
    let frozen = FrozenPlan::open(buffer).expect("open");

    // `into_plan` validates every section and materialises the plan —
    // borrowing, not copying, the stream sections. The only allocations
    // allowed are bookkeeping (tiles, class runs, scratch vectors), all
    // far smaller than the instance streams themselves.
    let (_, thaw_bytes, plan) = count_allocs_and_bytes(|| frozen.into_plan());
    let plan = plan.expect("into_plan");

    // Under fault-injection the golden per-instance encodings are decoded
    // into owned memory (they have no frozen section), so the strict
    // byte bound only holds for the production configuration.
    if cfg!(not(feature = "fault-injection")) {
        assert!(
            thaw_bytes < stream_bytes / 2,
            "into_plan allocated {thaw_bytes} bytes against {stream_bytes} stream bytes — \
             a mapped section was copied"
        );
    }

    // The accounting splits the same way: the stream payload is priced as
    // mapped bytes, while owned memory excludes it entirely.
    assert!(
        plan.mapped_bytes() as u64 >= stream_bytes,
        "mapped_bytes {} does not cover the {stream_bytes} stream bytes",
        plan.mapped_bytes()
    );
    assert!(
        (plan.memory_bytes() as u64) < stream_bytes / 2,
        "owned memory_bytes {} — streams were copied into the plan",
        plan.memory_bytes()
    );
    assert!(
        plan.shared_values().is_none(),
        "a mapped plan must not own an Arc'd value stream"
    );
}

#[test]
fn mapped_plan_run_is_allocation_free_and_exact() {
    let m = matrix(1024);
    let mut fresh = prepare(&m);
    let v3 = save_v3(&fresh.encoded, &fresh.plan).expect("save_v3");

    let frozen = FrozenPlan::open(PlanBuffer::from_bytes(&v3)).expect("open");
    let encoded = frozen.matrix().expect("matrix");
    let plan = frozen.into_plan().expect("into_plan");
    let mut thawed = Prepared::restore(encoded, plan, Parallelism::Serial, IntegrityPolicy::off())
        .expect("restore");

    let n = 1024usize;
    let x: Vec<f32> = (0..n).map(|i| ((i % 9) as f32) * 0.5 - 2.0).collect();
    let mut want = vec![0.0f32; n];
    let mut got = vec![0.0f32; n];
    fresh.execute(&x, &mut want).expect("fresh execute");

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    pool.install(|| {
        for _ in 0..3 {
            got.fill(0.0);
            thawed.execute(&x, &mut got).expect("warm-up");
        }
        // `execute_into` rather than `execute`: the latter clones the
        // report out per call, which is an allocation by design.
        let (allocs, _, ()) = count_allocs_and_bytes(|| {
            for _ in 0..50 {
                thawed.execute_into(&x, &mut got).expect("steady state");
            }
        });
        assert_eq!(
            allocs, 0,
            "mapped-plan execute allocated {allocs} times over 50 steady-state calls"
        );
    });

    got.fill(0.0);
    thawed.execute(&x, &mut got).expect("final execute");
    assert_eq!(
        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "mapped plan diverged from fresh prepare"
    );
}

#[test]
fn file_backed_store_maps_instead_of_reading() {
    let m = matrix(512);
    let fresh = prepare(&m);

    let dir = std::env::temp_dir().join(format!("spasm-store-zero-copy-{}", std::process::id()));
    let store = PlanStore::open(&dir).expect("store open");
    let path = store.save(&fresh.encoded, &fresh.plan).expect("save");

    let buffer = PlanBuffer::open(&path).expect("buffer open");
    assert!(
        buffer.is_file_mapped(),
        "expected an mmap-backed buffer on this platform"
    );
    let frozen = FrozenPlan::open(buffer).expect("frozen open");
    assert_eq!(
        frozen.fingerprint().expect("fingerprint").token(),
        fresh.encoded.fingerprint().token()
    );
    let plan = frozen.into_plan().expect("into_plan");
    assert!(plan.mapped_bytes() > 0);

    std::fs::remove_dir_all(&dir).ok();
}
