//! The shared cycle model.
//!
//! Both the full simulator ([`crate::Accelerator`]) and the scheduler's
//! fast `PERF_MODEL` ([`crate::perf`]) price work through these functions,
//! so Algorithm 4's estimates match hardware-execution cycle counts
//! exactly (asserted by tests).
//!
//! Execution structure (Section IV-D3): a *PE group* processes one tile at
//! a time — its 16 PEs share the tile's position-encoding channel and
//! split the instance stream across partial-sum lanes by submatrix row
//! (`r_idx mod 16`). Tiles are distributed across the groups; the partial
//! sum merge unit combines groups' contributions on-chip and the final y
//! leaves through the single y channel.
//!
//! Model terms, per group and tile:
//!
//! * **Issue** — a fed PE retires one instance per cycle, capped by the
//!   shared value / position-encoding channels
//!   ([`crate::HwConfig::issue_rate`]); the tile's compute time follows its
//!   most-loaded lane;
//! * **x prefetch** — the next tile's x segment (`tile_size × 4` bytes)
//!   streams through the group's `NUM_XVEC_CH` channels while the current
//!   tile computes (double buffering): each tile costs
//!   `max(compute, x_load)`;
//! * **tile switch** — [`TILE_SWITCH_CYCLES`] pipeline drain per tile;
//! * **y drain** — final sums leave through the y channel (read + write,
//!   8 bytes per element of every worked tile row), overlapped with
//!   compute and exposed only beyond the slowest group;
//! * **init** — [`INIT_CYCLES`] for loading the opcode LUT and control
//!   set-up.
//!
//! Load imbalance appears twice: across groups through the
//! longest-processing-time tile assignment ([`lpt_assign`]) and within a
//! tile through the max-lane term.

use crate::config::{HwConfig, PES_PER_GROUP};

/// Pipeline drain + control overhead when a group switches tiles.
pub const TILE_SWITCH_CYCLES: u64 = 8;

/// One-off initialisation: opcode LUT load, descriptor fetch, control
/// set-up.
pub const INIT_CYCLES: u64 = 256;

/// The work of one tile, as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileJob {
    /// Tile row index (for bookkeeping / deterministic ordering).
    pub tile_row: u32,
    /// Tile column index.
    pub tile_col: u32,
    /// Total template instances in the tile.
    pub n_instances: usize,
    /// Instances on the tile's most-loaded PE lane (`r_idx mod 16`).
    pub max_lane_instances: usize,
}

/// The cycle cost of one tile on one group: critical-lane compute or the
/// double-buffered x prefetch, whichever dominates, plus the switch
/// drain. This is both the pricing unit of [`group_cycles`] and the
/// weight [`lpt_assign`] balances — weighting by raw instance counts
/// mis-schedules x-load-bound tiles, whose cost is constant.
pub fn tile_cost(job: &TileJob, tile_size: u32, cfg: &HwConfig) -> u64 {
    let compute = (job.max_lane_instances as f64 / cfg.issue_rate()).ceil() as u64;
    let x_bpc = cfg.num_xvec_ch as f64 * cfg.channel_bytes_per_cycle();
    let x_load = (tile_size as f64 * 4.0 / x_bpc).ceil() as u64;
    compute.max(x_load) + TILE_SWITCH_CYCLES
}

/// Longest-processing-time assignment of tiles to `num_groups` PE groups,
/// weighted by each tile's actual cycle cost ([`tile_cost`]).
///
/// Tiles are sorted by descending cost (ties on ascending coordinates for
/// determinism) and each goes to the currently least-loaded group. Empty
/// lists mean idle groups — how oversized tiles starve parallelism in the
/// paper's tile-size trade-off.
pub fn lpt_assign(
    mut jobs: Vec<TileJob>,
    num_groups: u32,
    tile_size: u32,
    cfg: &HwConfig,
) -> Vec<Vec<TileJob>> {
    jobs.sort_by(|a, b| {
        tile_cost(b, tile_size, cfg)
            .cmp(&tile_cost(a, tile_size, cfg))
            .then(a.tile_row.cmp(&b.tile_row))
            .then(a.tile_col.cmp(&b.tile_col))
    });
    let mut groups: Vec<Vec<TileJob>> = vec![Vec::new(); num_groups as usize];
    let mut loads = vec![0u64; num_groups as usize];
    for job in jobs {
        // min_by_key is None only for zero groups, which cannot schedule
        // anything anyway.
        let Some((g, _)) = loads.iter().enumerate().min_by_key(|&(i, &l)| (l, i)) else {
            break;
        };
        loads[g] += tile_cost(&job, tile_size, cfg);
        groups[g].push(job);
    }
    // Each group processes its tiles in (row, col) order for buffer-reuse
    // locality.
    for g in &mut groups {
        g.sort_by_key(|j| (j.tile_row, j.tile_col));
    }
    groups
}

/// Round-robin assignment of tiles to groups, in stream order — the naive
/// alternative to [`lpt_assign`], kept for the scheduler ablation.
pub fn round_robin_assign(jobs: Vec<TileJob>, num_groups: u32) -> Vec<Vec<TileJob>> {
    let mut groups: Vec<Vec<TileJob>> = vec![Vec::new(); num_groups as usize];
    for (i, job) in jobs.into_iter().enumerate() {
        groups[i % num_groups as usize].push(job);
    }
    groups
}

/// x-prefetch latency for one tile segment on one group.
pub fn x_load_cycles(tile_size: u32, cfg: &HwConfig) -> u64 {
    let x_bpc = cfg.num_xvec_ch as f64 * cfg.channel_bytes_per_cycle();
    (tile_size as f64 * 4.0 / x_bpc).ceil() as u64
}

/// Cycles one PE group spends on its assigned tiles.
///
/// The first tile's x segment cannot be hidden behind earlier compute
/// (the double buffer starts empty), so its load is exposed up front;
/// from then on prefetch overlaps and each tile costs [`tile_cost`].
pub fn group_cycles(assigned: &[TileJob], tile_size: u32, cfg: &HwConfig) -> u64 {
    if assigned.is_empty() {
        return 0;
    }
    x_load_cycles(tile_size, cfg)
        + assigned
            .iter()
            .map(|job| tile_cost(job, tile_size, cfg))
            .sum::<u64>()
}

/// Combines per-group cycles with the shared y-channel drain and fixed
/// initialisation.
///
/// `y_bytes` is the total final-sum traffic (8 bytes per element of every
/// worked tile row: read-modify-write).
pub fn total_cycles(per_group: &[u64], y_bytes: u64, cfg: &HwConfig) -> u64 {
    let slowest = per_group.iter().copied().max().unwrap_or(0);
    let y_drain = (y_bytes as f64 / cfg.channel_bytes_per_cycle()).ceil() as u64;
    INIT_CYCLES + slowest.max(y_drain)
}

/// Amortised batch pricing: initialisation (opcode LUT load, descriptor
/// fetch) is paid once, the per-vector body — everything past
/// [`INIT_CYCLES`] of `single_cycles` — repeats for each vector of the
/// batch. An empty batch costs only initialisation.
pub fn batch_cycles(single_cycles: u64, vectors: usize) -> u64 {
    let body = single_cycles.saturating_sub(INIT_CYCLES);
    INIT_CYCLES + vectors as u64 * body
}

/// y traffic: 8 bytes per matrix row of every distinct worked tile row.
///
/// `row_heights` holds one entry per distinct tile row with work.
pub fn y_bytes(row_heights: impl IntoIterator<Item = u32>) -> u64 {
    row_heights.into_iter().map(|h| 8 * h as u64).sum()
}

/// Splits a tile's instances into per-lane counts by `r_idx mod 16` and
/// returns the maximum — the tile's critical lane. Exposed so the
/// simulator and the summary analysis compute the identical statistic.
pub fn max_lane(lane_counts: &[usize; PES_PER_GROUP as usize]) -> usize {
    lane_counts.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HwConfig {
        HwConfig::spasm_4_1()
    }

    fn job(tile_row: u32, tile_col: u32, n: usize, lane: usize) -> TileJob {
        TileJob {
            tile_row,
            tile_col,
            n_instances: n,
            max_lane_instances: lane,
        }
    }

    #[test]
    fn lpt_balances() {
        let jobs = vec![
            job(0, 0, 100, 10),
            job(1, 0, 100, 10),
            job(2, 0, 1, 1),
            job(3, 0, 1, 1),
        ];
        let groups = lpt_assign(jobs, 2, 64, &cfg());
        let loads: Vec<usize> = groups
            .iter()
            .map(|g| g.iter().map(|j| j.n_instances).sum())
            .collect();
        assert_eq!(loads, vec![101, 101]);
    }

    #[test]
    fn lpt_is_deterministic_and_ordered() {
        let jobs = vec![job(3, 0, 5, 2), job(1, 0, 5, 2), job(2, 0, 5, 2)];
        let a = lpt_assign(jobs.clone(), 2, 64, &cfg());
        let b = lpt_assign(jobs, 2, 64, &cfg());
        assert_eq!(a, b);
        for g in &a {
            let order: Vec<_> = g.iter().map(|j| (j.tile_row, j.tile_col)).collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(order, sorted);
        }
    }

    #[test]
    fn idle_groups_when_fewer_tiles() {
        let groups = lpt_assign(vec![job(0, 0, 10, 3)], 4, 64, &cfg());
        assert_eq!(groups.iter().filter(|g| g.is_empty()).count(), 3);
    }

    #[test]
    fn compute_bound_vs_load_bound() {
        let c = cfg();
        // Critical lane dominates x load; the first tile's prefetch is
        // exposed up front.
        let busy = group_cycles(&[job(0, 0, 160_000, 10_000)], 64, &c);
        let expect = (10_000f64 / c.issue_rate()).ceil() as u64;
        assert_eq!(busy, x_load_cycles(64, &c) + expect + TILE_SWITCH_CYCLES);
        // Tiny tile work with a big tile: x load dominates both terms.
        let starved = group_cycles(&[job(0, 0, 1, 1)], 8192, &c);
        let x_load = x_load_cycles(8192, &c);
        assert_eq!(starved, 2 * x_load + TILE_SWITCH_CYCLES);
        // Idle groups cost nothing.
        assert_eq!(group_cycles(&[], 8192, &c), 0);
    }

    #[test]
    fn total_includes_init_and_y() {
        let c = cfg();
        assert_eq!(total_cycles(&[], 0, &c), INIT_CYCLES);
        assert_eq!(total_cycles(&[1000], 0, &c), INIT_CYCLES + 1000);
        let t2 = total_cycles(&[10], 1_000_000, &c);
        assert!(t2 > INIT_CYCLES + 10_000);
    }

    #[test]
    fn batch_cycles_amortises_init() {
        assert_eq!(batch_cycles(INIT_CYCLES + 100, 1), INIT_CYCLES + 100);
        assert_eq!(batch_cycles(INIT_CYCLES + 100, 8), INIT_CYCLES + 800);
        assert_eq!(batch_cycles(INIT_CYCLES + 100, 0), INIT_CYCLES);
        // An empty matrix's run costs exactly INIT_CYCLES; batches of it
        // must not underflow.
        assert_eq!(batch_cycles(INIT_CYCLES, 8), INIT_CYCLES);
    }

    #[test]
    fn y_bytes_counts_rmw() {
        assert_eq!(y_bytes([64u32, 64]), 2 * 8 * 64);
        assert_eq!(y_bytes(std::iter::empty()), 0);
    }

    #[test]
    fn max_lane_picks_critical_lane() {
        let mut lanes = [0usize; 16];
        lanes[3] = 7;
        lanes[9] = 11;
        assert_eq!(max_lane(&lanes), 11);
    }
}
