//! Serving determinism: coalesced batch compositions are an exact
//! function of the arrival trace and virtual-clock schedule, and every
//! served result is bit-identical to a serial batch-1
//! `Prepared::execute` of the same request — for any worker count. The
//! same holds for every *overload* decision (typed rejections, deadline
//! sheds, quarantine transitions): the degradation story of a trace is
//! deterministic too.
//!
//! Registered in `crates/serve` (`[[test]] name = "serving"`).

use std::collections::BTreeMap;

use spasm::{IntegrityPolicy, Pipeline, PipelineOptions, Prepared};
use spasm_hw::HwConfig;
use spasm_patterns::TemplateSet;
use spasm_serve::loadgen::{seeded_x, TraceEvent, TraceGen};
use spasm_serve::{
    BatchRecord, BreakerState, Completion, Deadline, FlushTrigger, Output, QueueConfig, Rejected,
    ServeError, ServerConfig, SpmvServer, Tick,
};
use spasm_sparse::Coo;

/// An `n`×`n` scattered matrix, a few entries per row, `salt`-dependent
/// structure and values so distinct salts give distinct streams.
fn scatter(n: u32, per_row: u32, salt: u32) -> Coo {
    let mut t = Vec::new();
    for i in 0..n {
        for k in 0..per_row {
            let j = (i * 37 + k * 13 + salt) % n;
            t.push((i, j, ((i + k + salt) % 9 + 1) as f32 * 0.5));
        }
    }
    Coo::from_triplets(n, n, t).expect("valid triplets")
}

/// A pinned pipeline (fixed portfolio + schedule) so prepares are cheap
/// and every server/oracle in this file runs the identical plan.
fn pinned_pipeline() -> Pipeline {
    Pipeline::with_options(
        PipelineOptions::default()
            .fixed_portfolio(TemplateSet::table_v_set(0))
            .fixed_schedule(256, HwConfig::spasm_4_1()),
    )
}

fn server(max_batch: usize, max_delay: Tick, workers: usize) -> SpmvServer {
    SpmvServer::with_pipeline(
        ServerConfig {
            queue: QueueConfig {
                max_batch,
                max_delay,
                ..QueueConfig::default()
            },
            workers,
            ..ServerConfig::default()
        },
        pinned_pipeline(),
    )
}

fn bits(y: &[f32]) -> Vec<u32> {
    y.iter().map(|v| v.to_bits()).collect()
}

fn absorb(outputs: &mut BTreeMap<u64, Output>, completions: Vec<Completion>) {
    for c in completions {
        let out = c.result.expect("request must serve cleanly");
        assert!(outputs.insert(c.id, out).is_none(), "duplicate completion");
    }
}

#[test]
fn handcrafted_trace_flushes_exact_batches() {
    // max_batch 3, max_delay 10 ticks; trace:
    //   t=0 A, t=1 A, t=2 B, t=3 A  -> size-flush A = [0, 1, 3] at t=3
    //   t=4 B                       -> deadline-flush B = [2, 4] at t=12
    let s = server(3, 10, 1);
    let ma = scatter(96, 4, 0);
    let mb = scatter(80, 4, 5);
    let a = s.ingest_coo(&ma).expect("ingest A");
    let b = s.ingest_coo(&mb).expect("ingest B");
    let off = IntegrityPolicy::off();
    let xa = |seed| seeded_x(96, seed);
    let xb = |seed| seeded_x(80, seed);

    let (id0, c) = s.submit(a, xa(0), off).expect("submit");
    assert!(c.is_empty());
    assert!(s.advance_to(1).is_empty());
    let (id1, c) = s.submit(a, xa(1), off).expect("submit");
    assert!(c.is_empty());
    assert!(s.advance_to(2).is_empty());
    let (id2, c) = s.submit(b, xb(2), off).expect("submit");
    assert!(c.is_empty());
    assert!(s.advance_to(3).is_empty());
    let (id3, sized) = s.submit(a, xa(3), off).expect("submit");

    // The third A fills the group: flushed right on the submit, at t=3.
    assert_eq!(
        sized.iter().map(|c| c.id).collect::<Vec<_>>(),
        vec![id0, id1, id3]
    );
    let mut outputs = BTreeMap::new();
    absorb(&mut outputs, sized);
    for (id, queued) in [(id0, 3u64), (id1, 2), (id3, 0)] {
        let out = &outputs[&id];
        assert_eq!(out.trigger, FlushTrigger::Size);
        assert_eq!(out.flushed_at, 3);
        assert_eq!(out.queued_ticks, queued);
        assert_eq!(out.batch_size, 3);
    }

    assert!(s.advance_to(4).is_empty());
    let (id4, c) = s.submit(b, xb(4), off).expect("submit");
    assert!(c.is_empty());
    assert_eq!(s.pending(), 2);
    assert_eq!(s.next_deadline(), Some(12), "B's oldest arrived at t=2");

    // Advancing far past the deadline still stamps the flush *at* t=12.
    let late = s.advance_to(40);
    assert_eq!(
        late.iter().map(|c| c.id).collect::<Vec<_>>(),
        vec![id2, id4]
    );
    absorb(&mut outputs, late);
    for (id, queued) in [(id2, 10u64), (id4, 8)] {
        let out = &outputs[&id];
        assert_eq!(out.trigger, FlushTrigger::Deadline);
        assert_eq!(out.flushed_at, 12);
        assert_eq!(out.queued_ticks, queued);
        assert_eq!(out.batch_size, 2);
    }
    assert_eq!(s.pending(), 0);

    // The batch log is the exact composition record.
    assert_eq!(
        s.batch_log(),
        vec![
            BatchRecord {
                fingerprint: a,
                request_ids: vec![id0, id1, id3],
                flushed_at: 3,
                trigger: FlushTrigger::Size,
            },
            BatchRecord {
                fingerprint: b,
                request_ids: vec![id2, id4],
                flushed_at: 12,
                trigger: FlushTrigger::Deadline,
            },
        ]
    );

    // And every served vector is bit-identical to a serial batch-1 run.
    let mut oa = pinned_pipeline().prepare(&ma).expect("prepare A");
    let mut ob = pinned_pipeline().prepare(&mb).expect("prepare B");
    let oracle = |p: &mut Prepared, x: &[f32]| {
        let mut y = vec![0.0f32; p.plan.rows() as usize];
        p.execute(x, &mut y).expect("oracle execute");
        y
    };
    assert_eq!(bits(&outputs[&id0].y), bits(&oracle(&mut oa, &xa(0))));
    assert_eq!(bits(&outputs[&id1].y), bits(&oracle(&mut oa, &xa(1))));
    assert_eq!(bits(&outputs[&id3].y), bits(&oracle(&mut oa, &xa(3))));
    assert_eq!(bits(&outputs[&id2].y), bits(&oracle(&mut ob, &xb(2))));
    assert_eq!(bits(&outputs[&id4].y), bits(&oracle(&mut ob, &xb(4))));
}

/// Replays `events` against a fresh server with `workers` execution
/// threads; returns the batch log and the per-request outputs. Request
/// ids are assigned in submission order, so id `i` serves `events[i]`.
fn serve_trace(
    workers: usize,
    events: &[TraceEvent],
    corpus: &[Coo],
    policy: IntegrityPolicy,
) -> (Vec<BatchRecord>, BTreeMap<u64, Output>) {
    let s = server(3, 25, workers);
    let fps: Vec<_> = corpus
        .iter()
        .map(|m| (s.ingest_coo(m).expect("ingest"), m.cols() as usize))
        .collect();
    let mut outputs = BTreeMap::new();
    for e in events {
        while let Some(d) = s.next_deadline().filter(|&d| d <= e.at) {
            absorb(&mut outputs, s.advance_to(d));
        }
        s.clock().advance_to(e.at);
        let (fp, cols) = fps[e.matrix];
        let (_, done) = s
            .submit(fp, seeded_x(cols, e.x_seed), policy)
            .expect("submit");
        absorb(&mut outputs, done);
    }
    while let Some(d) = s.next_deadline() {
        absorb(&mut outputs, s.advance_to(d));
    }
    absorb(&mut outputs, s.drain());
    (s.batch_log(), outputs)
}

#[test]
fn seeded_trace_is_bit_identical_for_any_worker_count() {
    let corpus = [scatter(96, 4, 0), scatter(80, 4, 5), scatter(120, 3, 11)];
    let events: Vec<TraceEvent> = TraceGen::new(0xC0FFEE, corpus.len(), 1.0, 7)
        .take(48)
        .collect();

    // Serial batch-1 oracle: one prepared plan per matrix, one
    // single-vector execute per request, zeroed destination.
    let mut oracles: Vec<Prepared> = corpus
        .iter()
        .map(|m| pinned_pipeline().prepare(m).expect("prepare"))
        .collect();
    let expected: Vec<Vec<u32>> = events
        .iter()
        .map(|e| {
            let p = &mut oracles[e.matrix];
            let x = seeded_x(corpus[e.matrix].cols() as usize, e.x_seed);
            let mut y = vec![0.0f32; p.plan.rows() as usize];
            p.execute(&x, &mut y).expect("oracle execute");
            bits(&y)
        })
        .collect();

    let (log1, out1) = serve_trace(1, &events, &corpus, IntegrityPolicy::off());
    assert_eq!(out1.len(), events.len(), "every request completes");
    let mut coalesced = 0usize;
    for i in 0..events.len() {
        let out = &out1[&(i as u64)];
        assert_eq!(bits(&out.y), expected[i], "request {i} bits");
        if out.batch_size > 1 {
            coalesced += 1;
        }
    }
    assert!(coalesced > 0, "trace never coalesced; tune the trace");
    assert!(
        log1.iter().any(|r| r.trigger == FlushTrigger::Size),
        "no size flush in trace"
    );
    assert!(
        log1.iter().any(|r| r.trigger == FlushTrigger::Deadline),
        "no deadline flush in trace"
    );

    // Worker threads may change execution concurrency, never batch
    // composition or a single output bit.
    for workers in [2usize, 7] {
        let (log, out) = serve_trace(workers, &events, &corpus, IntegrityPolicy::off());
        assert_eq!(log, log1, "batch log differs with {workers} workers");
        assert_eq!(out.len(), out1.len());
        for (id, o1) in &out1 {
            let o = &out[id];
            assert_eq!(bits(&o.y), bits(&o1.y), "id {id}, {workers} workers");
            assert_eq!(o.batch_size, o1.batch_size);
            assert_eq!(o.flushed_at, o1.flushed_at);
            assert_eq!(o.trigger, o1.trigger);
        }
    }

    // Same seed + same virtual-clock schedule -> same compositions,
    // every run.
    let (log_again, _) = serve_trace(1, &events, &corpus, IntegrityPolicy::off());
    assert_eq!(log_again, log1);
}

/// The outcome of the handcrafted overload trace for one worker count:
/// batch log, served outputs, and the typed refusals, keyed by id.
struct OverloadRun {
    log: Vec<BatchRecord>,
    served: BTreeMap<u64, Output>,
    shed: BTreeMap<u64, Rejected>,
    rejected: BTreeMap<u64, Rejected>,
    stats: spasm_serve::OverloadStats,
    breaker_states: Vec<BreakerState>,
}

/// Replays the handcrafted overload trace with `workers` execution
/// threads. Bounded queue (3 requests globally), no rate limiter,
/// completion deadlines, a late-checking driver, and a shutdown —
/// every id's fate is decided by the trace alone.
fn overload_trace(workers: usize) -> OverloadRun {
    let ma = scatter(96, 4, 0);
    let mb = scatter(80, 4, 5);
    let s = SpmvServer::with_pipeline(
        ServerConfig {
            queue: QueueConfig {
                max_batch: 8,
                max_delay: 50,
                group_capacity: 8,
                global_capacity: 3,
                rate: None,
            },
            workers,
            ..ServerConfig::default()
        },
        pinned_pipeline(),
    );
    let a = s.ingest_coo(&ma).expect("ingest A");
    let b = s.ingest_coo(&mb).expect("ingest B");
    let off = IntegrityPolicy::off();
    let xa = |seed| seeded_x(96, seed);
    let xb = |seed| seeded_x(80, seed);

    let mut served = BTreeMap::new();
    let mut shed = BTreeMap::new();
    let mut rejected = BTreeMap::new();
    let mut next_id = 0u64;
    let mut take = |r: Result<(u64, Vec<Completion>), ServeError>,
                    served: &mut BTreeMap<u64, Output>,
                    shed: &mut BTreeMap<u64, Rejected>,
                    rejected: &mut BTreeMap<u64, Rejected>| {
        // Ids are allocated per submission, admitted or not, so id i is
        // always trace event i.
        let id = next_id;
        next_id += 1;
        match r {
            Ok((got, completions)) => {
                assert_eq!(got, id, "ids are allocated in submission order");
                for c in completions {
                    match c.result {
                        Ok(out) => assert!(served.insert(c.id, out).is_none()),
                        Err(ServeError::Rejected(rej)) => {
                            assert!(shed.insert(c.id, rej).is_none());
                        }
                        Err(e) => panic!("unexpected completion error: {e}"),
                    }
                }
            }
            Err(ServeError::Rejected(rej)) => {
                assert!(rejected.insert(id, rej).is_none());
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    };
    let absorb = |done: Vec<Completion>,
                  served: &mut BTreeMap<u64, Output>,
                  shed: &mut BTreeMap<u64, Rejected>| {
        for c in done {
            match c.result {
                Ok(out) => assert!(served.insert(c.id, out).is_none()),
                Err(ServeError::Rejected(rej)) => {
                    assert!(shed.insert(c.id, rej).is_none());
                }
                Err(e) => panic!("unexpected completion error: {e}"),
            }
        }
    };

    // t=0: id0 on A, no deadline (coalesce flush would be t=50).
    take(
        s.submit(a, xa(0), off),
        &mut served,
        &mut shed,
        &mut rejected,
    );
    // t=5: id1 on B, due at 30 -> B's urgent flush tick is 29.
    s.clock().advance_to(5);
    take(
        s.submit_with_deadline(b, xb(1), off, Deadline { at: 30 }),
        &mut served,
        &mut shed,
        &mut rejected,
    );
    // t=10: id2 on A, due at 20 -> A's urgent flush tick becomes 19.
    s.clock().advance_to(10);
    take(
        s.submit_with_deadline(a, xa(2), off, Deadline { at: 20 }),
        &mut served,
        &mut shed,
        &mut rejected,
    );
    // t=12: id3 on A -> the global queue (3) is full; the retry hint
    // points at the earliest pending flush (A at t=19).
    s.clock().advance_to(12);
    take(
        s.submit(a, xa(3), off),
        &mut served,
        &mut shed,
        &mut rejected,
    );
    // The driver checks in late, at t=25: A's batch flushes stamped at
    // its urgent tick 19, but id2 (due at 20) has really expired while
    // queued — it is shed, 5 ticks late; id0 still serves.
    absorb(s.advance_to(25), &mut served, &mut shed);
    // t=29: B's urgent flush, exactly at its last runnable tick.
    absorb(s.advance_to(29), &mut served, &mut shed);
    // t=35: id4 arrives already expired (due exactly at now).
    s.clock().advance_to(35);
    take(
        s.submit_with_deadline(a, xa(4), off, Deadline { at: 35 }),
        &mut served,
        &mut shed,
        &mut rejected,
    );
    // t=40: id5 on A, queued. t=45: graceful shutdown drains it.
    s.clock().advance_to(40);
    take(
        s.submit(a, xa(5), off),
        &mut served,
        &mut shed,
        &mut rejected,
    );
    s.clock().advance_to(45);
    absorb(s.shutdown(), &mut served, &mut shed);
    // t=45+: id6 is refused — the server is shutting down.
    take(
        s.submit(a, xa(6), off),
        &mut served,
        &mut shed,
        &mut rejected,
    );

    let breaker_states = [a, b]
        .iter()
        .map(|fp| s.catalog().get(fp).expect("plan resident").breaker_state())
        .collect();
    OverloadRun {
        log: s.batch_log(),
        served,
        shed,
        rejected,
        stats: s.overload_stats(),
        breaker_states,
    }
}

#[test]
fn overload_trace_has_exact_typed_fates_for_any_worker_count() {
    let ma = scatter(96, 4, 0);
    let mb = scatter(80, 4, 5);
    let run1 = overload_trace(1);

    // Exact fates: ids 0, 1, 5 serve; id2 is shed; ids 3, 4, 6 are
    // rejected at admission with typed reasons.
    assert_eq!(
        run1.served.keys().copied().collect::<Vec<_>>(),
        vec![0, 1, 5]
    );
    assert_eq!(run1.shed.len(), 1);
    assert_eq!(run1.shed[&2], Rejected::DeadlineExceeded { late_by: 5 });
    assert_eq!(run1.rejected.len(), 3);
    assert_eq!(run1.rejected[&3], Rejected::QueueFull { retry_after: 7 });
    assert_eq!(run1.rejected[&4], Rejected::DeadlineExceeded { late_by: 0 });
    assert_eq!(run1.rejected[&6], Rejected::ShuttingDown);

    // Exact flush ticks and triggers, shed members excluded from the log.
    let summary: Vec<(Vec<u64>, Tick, FlushTrigger)> = run1
        .log
        .iter()
        .map(|r| (r.request_ids.clone(), r.flushed_at, r.trigger))
        .collect();
    assert_eq!(
        summary,
        vec![
            (vec![0], 19, FlushTrigger::Urgent),
            (vec![1], 29, FlushTrigger::Urgent),
            (vec![5], 45, FlushTrigger::Drain),
        ]
    );
    assert_eq!(run1.served[&0].queued_ticks, 19);
    assert_eq!(run1.served[&1].queued_ticks, 24);
    assert_eq!(run1.served[&5].queued_ticks, 5);

    // The server's ledger agrees, and nothing was degraded or panicked;
    // the clean trace never touches the circuit breaker.
    assert_eq!(run1.stats.rejected_queue_full, 1);
    assert_eq!(run1.stats.rejected_expired, 1);
    assert_eq!(run1.stats.rejected_shutdown, 1);
    assert_eq!(run1.stats.rejected_rate_limited, 0);
    assert_eq!(run1.stats.shed_expired, 1);
    assert_eq!(run1.stats.quarantine_trips, 0);
    assert_eq!(run1.stats.quarantine_recoveries, 0);
    assert_eq!(run1.stats.served_degraded, 0);
    assert_eq!(run1.stats.worker_panics, 0);
    for state in &run1.breaker_states {
        assert_eq!(*state, BreakerState::Healthy);
    }
    for out in run1.served.values() {
        assert!(!out.degraded);
    }

    // Accepted outputs are bit-identical to a serial batch-1 oracle.
    let mut oa = pinned_pipeline().prepare(&ma).expect("prepare A");
    let mut ob = pinned_pipeline().prepare(&mb).expect("prepare B");
    let oracle = |p: &mut Prepared, x: &[f32]| {
        let mut y = vec![0.0f32; p.plan.rows() as usize];
        p.execute(x, &mut y).expect("oracle execute");
        bits(&y)
    };
    assert_eq!(bits(&run1.served[&0].y), oracle(&mut oa, &seeded_x(96, 0)));
    assert_eq!(bits(&run1.served[&1].y), oracle(&mut ob, &seeded_x(80, 1)));
    assert_eq!(bits(&run1.served[&5].y), oracle(&mut oa, &seeded_x(96, 5)));

    // Worker count changes nothing: not the fates, not the flush ticks,
    // not one output bit.
    for workers in [2usize, 7] {
        let run = overload_trace(workers);
        assert_eq!(run.log, run1.log, "{workers} workers: batch log");
        assert_eq!(run.shed, run1.shed, "{workers} workers: sheds");
        assert_eq!(run.rejected, run1.rejected, "{workers} workers: rejections");
        assert_eq!(run.stats, run1.stats, "{workers} workers: ledger");
        assert_eq!(
            run.served.keys().copied().collect::<Vec<_>>(),
            run1.served.keys().copied().collect::<Vec<_>>()
        );
        for (id, o1) in &run1.served {
            let o = &run.served[id];
            assert_eq!(bits(&o.y), bits(&o1.y), "id {id}, {workers} workers");
            assert_eq!(o.flushed_at, o1.flushed_at);
            assert_eq!(o.trigger, o1.trigger);
        }
    }
}

#[test]
fn full_integrity_policy_serves_clean_and_bit_identical() {
    let corpus = [scatter(96, 4, 0), scatter(80, 4, 5), scatter(120, 3, 11)];
    let events: Vec<TraceEvent> = TraceGen::new(0xBEEF, corpus.len(), 1.0, 9)
        .take(24)
        .collect();
    let (_, verified) = serve_trace(2, &events, &corpus, IntegrityPolicy::full());
    let (_, unchecked) = serve_trace(2, &events, &corpus, IntegrityPolicy::off());
    assert_eq!(verified.len(), events.len());
    for (id, v) in &verified {
        assert!(v.health.is_clean(), "id {id} not clean: {:?}", v.health);
        assert!(!v.health.fallback, "id {id} took fallback unfaulted");
        assert_eq!(
            bits(&v.y),
            bits(&unchecked[id].y),
            "id {id}: verification changed bits"
        );
    }
}

#[test]
fn delta_mid_flight_serves_old_version_then_new_without_evicting_leases() {
    use spasm::DeltaOutcome;
    use spasm_sparse::MatrixDelta;

    // scatter(96, 4, 0) row 0 holds entries at columns {0, 13, 26, 39}
    // (j = k·13 % 96) with value ((k) % 9 + 1)·0.5. The delta patches one,
    // deletes one, and inserts into an absent cell — exercising the
    // structural splice path through the serving stack.
    let base = scatter(96, 4, 0);
    let delta = MatrixDelta::new()
        .patch(0, 0, 2.5)
        .delete(0, 13)
        .insert(0, 1, 1.75);
    let mutated = {
        let mut t: Vec<(u32, u32, f32)> = base
            .iter()
            .filter(|&(r, c, _)| !(r == 0 && c == 13))
            .map(|(r, c, v)| {
                if (r, c) == (0, 0) {
                    (r, c, 2.5)
                } else {
                    (r, c, v)
                }
            })
            .collect();
        t.push((0, 1, 1.75));
        Coo::from_triplets(96, 96, t).expect("mutated triplets")
    };

    // Serial baselines on both sides of the update.
    let mut old_oracle = pinned_pipeline().prepare(&base).expect("prepare base");
    let mut new_oracle = pinned_pipeline()
        .prepare(&mutated)
        .expect("prepare mutated");
    let x = seeded_x(96, 0xFEED);
    let oracle = |p: &mut Prepared| {
        let mut y = vec![0.0f32; 96];
        p.execute(&x, &mut y).expect("oracle execute");
        bits(&y)
    };
    let old_bits = oracle(&mut old_oracle);
    let new_bits = oracle(&mut new_oracle);
    assert_ne!(old_bits, new_bits, "delta must be observable in row 0");

    let s = server(2, 10, 1);
    let fp = s.ingest_coo(&base).expect("ingest");
    let off = IntegrityPolicy::off();
    let prepares_before = s.catalog().prepares_performed();

    // Hold a lease across the update: repricing must not evict it.
    let lease = s.catalog().get(&fp).expect("resident");

    // A batch already executing when the delta lands finishes on the old
    // values: execution holds the plan lock, so the delta waits for it.
    // The channel guarantees the batch really is in flight before the
    // delta is submitted.
    let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
    let (new_fp, outcome, inflight) = std::thread::scope(|scope| {
        let inflight = scope.spawn(|| {
            s.with_prepared(fp, |p| {
                started_tx.send(()).expect("signal");
                std::thread::sleep(std::time::Duration::from_millis(20));
                let mut y = vec![0.0f32; 96];
                p.execute(&x, &mut y).expect("in-flight execute");
                y
            })
            .expect("plan resident")
        });
        started_rx.recv().expect("in-flight batch started");
        let (new_fp, outcome) = s.apply_delta(&fp, &delta).expect("apply delta");
        (new_fp, outcome, inflight.join().expect("in-flight thread"))
    });
    assert_eq!(
        bits(&inflight),
        old_bits,
        "the in-flight batch must serve the pre-delta values"
    );
    assert!(
        matches!(outcome, DeltaOutcome::Spliced { .. }),
        "three touched submatrices must splice, got {outcome:?}"
    );

    // The catalog re-keyed the entry to the mutated content address and
    // repriced it in place: no eviction, no re-prepare, and the old lease
    // still reaches the (updated) plan.
    assert_ne!(new_fp.token(), fp.token(), "content address must advance");
    assert!(s.catalog().get(&new_fp).is_some(), "new key resident");
    assert!(s.catalog().get(&fp).is_none(), "old key retired");
    assert_eq!(
        s.catalog().prepares_performed(),
        prepares_before,
        "an in-place delta must not re-run the pipeline"
    );
    assert_eq!(
        s.catalog().resident_bytes(),
        lease.entry().bytes(),
        "the residency ledger must carry the repriced figure"
    );
    assert_eq!(lease.entry().fingerprint().token(), new_fp.token());
    assert_eq!(lease.entry().breaker_state(), BreakerState::Healthy);

    // Submitting under the retired key is a typed refusal...
    assert!(matches!(
        s.submit(fp, x.clone(), off),
        Err(ServeError::UnknownMatrix(_))
    ));

    // ...and the next flush under the new key serves the new values, bit
    // for bit against the from-scratch baseline.
    let (id, done) = s.submit(new_fp, x.clone(), off).expect("submit post-delta");
    assert!(done.is_empty());
    let mut outputs = BTreeMap::new();
    let deadline = s.next_deadline().expect("queued request has a deadline");
    absorb(&mut outputs, s.advance_to(deadline));
    assert_eq!(
        bits(&outputs[&id].y),
        new_bits,
        "post-delta flush must serve the updated matrix"
    );
}

#[test]
fn wire_ingest_skips_resident_plans_and_maps_v3_without_preparing() {
    let m = scatter(96, 3, 7);
    let mut fresh = pinned_pipeline().prepare(&m).expect("prepare");
    let v2 = fresh.encoded.to_bytes().to_vec();

    // First v2 ingest pays exactly one full pipeline prepare.
    let srv = server(4, 8, 1);
    let fp = srv.ingest_wire(&v2).expect("first ingest");
    assert_eq!(srv.catalog().prepares_performed(), 1);

    // Re-ingesting the identical bytes is a pure residency hit: the
    // fingerprint comes from the stream header and *no* prepare runs.
    let fp2 = srv.ingest_wire(&v2).expect("second ingest");
    assert_eq!(fp2.token(), fp.token());
    assert_eq!(
        srv.catalog().prepares_performed(),
        1,
        "re-ingest of resident bytes re-ran the pipeline"
    );

    // A frozen v3 container takes the mapped fast path: zero prepares,
    // the mapped stream bytes are priced on the entry, and the restored
    // plan serves bit-identically to the fresh one.
    let v3 = spasm_store::save_v3(&fresh.encoded, &fresh.plan).expect("save_v3");
    let srv3 = server(4, 8, 1);
    let fp3 = srv3.ingest_wire(&v3).expect("v3 ingest");
    assert_eq!(fp3.token(), fp.token());
    assert_eq!(
        srv3.catalog().prepares_performed(),
        0,
        "v3 ingest fell back to a full prepare"
    );
    {
        let lease = srv3.catalog().get(&fp3).expect("resident");
        assert!(
            lease.entry().mapped_bytes() > 0,
            "v3 entry prices no mapped bytes"
        );
    }

    // Residency short-circuit holds for v3 bytes too.
    srv3.ingest_wire(&v3).expect("v3 re-ingest");
    assert_eq!(srv3.catalog().prepares_performed(), 0);

    let x = seeded_x(m.cols() as usize, 0xC0FFEE);
    let mut want = vec![0.0f32; m.rows() as usize];
    fresh.execute(&x, &mut want).expect("fresh execute");
    let got = srv3
        .with_prepared(fp3, |p| {
            let mut y = vec![0.0f32; 96];
            p.execute(&x, &mut y).expect("mapped execute");
            y
        })
        .expect("plan resident");
    assert_eq!(
        bits(&got),
        bits(&want),
        "mapped v3 plan diverged in serving"
    );
}
