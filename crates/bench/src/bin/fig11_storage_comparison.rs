//! Fig. 11 + Table VI: storage cost of the SPASM data format versus COO,
//! CSR, BSR (2×2) and the HiSparse/Serpens stream formats, normalised to
//! COO.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin fig11_storage_comparison [-- --scale paper]
//! ```

use spasm_bench::{geomean, rule, scale_from_args, scale_name};
use spasm_format::{SpasmMatrix, SubmatrixMap};
use spasm_patterns::selection::TopN;
use spasm_patterns::{select_template_set, GridSize, PatternHistogram, TemplateSet};
use spasm_sparse::{storage, Bsr, Csr, StorageCost};

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 11 / Table VI — storage improvement vs COO ({})",
        scale_name(scale)
    );
    rule(76);
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>18} {:>8}",
        "matrix", "COO", "CSR", "BSR", "HiSparse&Serpens", "SPASM"
    );
    rule(76);
    let candidates = TemplateSet::table_v_candidates();
    let mut cols: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    spasm_bench::for_each_workload(scale, |w, m| {
        let coo = m.storage_bytes();
        let csr = Csr::from(&m).storage_bytes();
        let bsr = Bsr::from_coo(&m, 2).expect("block size 2").storage_bytes();
        let hs = storage::hisparse_serpens_bytes(m.nnz());

        let hist = PatternHistogram::analyze(&m, GridSize::S4);
        let outcome = select_template_set(&hist, &candidates, TopN::All);
        let map = SubmatrixMap::from_coo(&m);
        // Tile size does not change the second-level stream size; use 1024.
        let spasm = SpasmMatrix::encode(&map, &outcome.table, 1024)
            .expect("coverable")
            .storage_bytes();

        let imp = |b: usize| coo as f64 / b as f64;
        let (i_csr, i_bsr, i_hs, i_spasm) = (imp(csr), imp(bsr), imp(hs), imp(spasm));
        println!(
            "{:<14} {:>7.2}x {:>7.2}x {:>7.2}x {:>17.2}x {:>7.2}x",
            w.to_string(),
            1.0,
            i_csr,
            i_bsr,
            i_hs,
            i_spasm
        );
        cols[0].push(i_csr);
        cols[1].push(i_bsr);
        cols[2].push(i_hs);
        cols[3].push(i_spasm);
    });
    rule(76);
    let summary = |v: &[f64]| {
        (
            v.iter().copied().fold(f64::INFINITY, f64::min),
            v.iter().copied().fold(0.0f64, f64::max),
            geomean(v.iter().copied()),
        )
    };
    println!("Table VI — overall improvement (min / max / geomean):");
    for (name, v) in [
        ("CSR", &cols[0]),
        ("BSR", &cols[1]),
        ("HiSparse & Serpens", &cols[2]),
        ("SPASM", &cols[3]),
    ] {
        let (min, max, geo) = summary(v);
        println!("  {name:<20} {min:>5.2}x / {max:>5.2}x / {geo:>5.2}x");
    }
    println!(
        "(paper: CSR 1.36/1.49/1.46, BSR 0.39/2.81/1.16, HiSparse&Serpens \
         1.50/1.50/1.50, SPASM 0.98/2.40/1.79)"
    );
}
