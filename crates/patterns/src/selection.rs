//! Template pattern selection — workflow step ② (Algorithm 3).
//!
//! Given the local-pattern histogram of a matrix and a list of candidate
//! portfolios (Table V), picks the portfolio minimising the total number of
//! padded slots over the top-n patterns. Decomposing only the top-n
//! patterns is the paper's preprocessing optimisation: the dominant
//! patterns account for most blocks (Fig. 3), so the tail need not be
//! scored during selection.

use crate::analysis::PatternHistogram;
use crate::decompose::DecompositionTable;
use crate::templates::TemplateSet;

/// The outcome of Algorithm 3 for one matrix.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// The winning portfolio.
    pub set: TemplateSet,
    /// Its precomputed decomposition table (reused by the encoder).
    pub table: DecompositionTable,
    /// Weighted paddings of the winner over the scored histogram.
    pub paddings: u64,
    /// Weighted paddings of every candidate, in candidate order — the
    /// series behind Fig. 10. `None` marks a portfolio that could not cover
    /// some scored pattern.
    pub candidate_paddings: Vec<Option<u64>>,
}

/// How many top patterns Algorithm 3 scores during selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopN {
    /// Score a fixed number of patterns.
    Count(usize),
    /// Score however many patterns are needed to reach this coverage
    /// fraction of all observed blocks.
    Coverage(f64),
    /// Score every observed pattern.
    All,
}

impl TopN {
    fn resolve(self, histogram: &PatternHistogram) -> usize {
        match self {
            TopN::Count(n) => n,
            TopN::Coverage(f) => histogram.n_for_coverage(f),
            TopN::All => histogram.distinct_patterns(),
        }
    }
}

/// Runs Algorithm 3: scores every candidate portfolio on the top-n
/// patterns of `histogram` and returns the one with the fewest weighted
/// paddings (ties broken by candidate order, matching the `<` comparison of
/// the algorithm).
///
/// # Examples
///
/// ```
/// use spasm_patterns::selection::TopN;
/// use spasm_patterns::{select_template_set, GridSize, PatternHistogram, TemplateSet};
///
/// // A histogram dominated by full rows: any set with row templates wins
/// // with zero paddings.
/// let h = PatternHistogram::from_counts(GridSize::S4, [(0b1111u16, 100)]);
/// let out = select_template_set(&h, &TemplateSet::table_v_candidates(), TopN::All);
/// assert_eq!(out.paddings, 0);
/// ```
///
/// # Panics
///
/// Panics if `candidates` is empty, if a candidate's grid size differs from
/// the histogram's, or if *no* candidate covers the scored patterns (cannot
/// happen for portfolios built via [`TemplateSet::new`]).
pub fn select_template_set(
    histogram: &PatternHistogram,
    candidates: &[TemplateSet],
    top_n: TopN,
) -> SelectionOutcome {
    assert!(
        !candidates.is_empty(),
        "need at least one candidate portfolio"
    );
    let n = top_n.resolve(histogram);
    let subset = histogram.top_n_histogram(n);

    for set in candidates {
        assert_eq!(
            set.size(),
            histogram.size(),
            "candidate {} targets a different grid size",
            set.name()
        );
    }
    // Candidates are independent: build and score their decomposition
    // tables in parallel (each table is a ~65k-state dynamic program).
    // Scores come back in candidate order for every thread count, so the
    // argmin below (first strict minimum wins) is deterministic.
    let scored = score_candidates(candidates, &subset);

    let mut best: Option<(usize, u64, DecompositionTable)> = None;
    let mut candidate_paddings = Vec::with_capacity(candidates.len());
    for (i, (paddings, table)) in scored.into_iter().enumerate() {
        candidate_paddings.push(paddings);
        if let Some(p) = paddings {
            let better = match &best {
                None => true,
                Some((_, bp, _)) => p < *bp,
            };
            if better {
                best = Some((i, p, table));
            }
        }
    }
    let (idx, paddings, table) =
        best.expect("at least one candidate must cover the scored patterns");
    SelectionOutcome {
        set: candidates[idx].clone(),
        table,
        paddings,
        candidate_paddings,
    }
}

/// Builds and scores every candidate's decomposition table, preserving
/// candidate order.
fn score_one(set: &TemplateSet, subset: &PatternHistogram) -> (Option<u64>, DecompositionTable) {
    let table = DecompositionTable::build(set);
    let paddings = table.weighted_paddings(subset.iter());
    (paddings, table)
}

#[cfg(feature = "parallel")]
fn score_candidates(
    candidates: &[TemplateSet],
    subset: &PatternHistogram,
) -> Vec<(Option<u64>, DecompositionTable)> {
    use rayon::prelude::*;
    candidates
        .par_iter()
        .map(|set| score_one(set, subset))
        .collect()
}

#[cfg(not(feature = "parallel"))]
fn score_candidates(
    candidates: &[TemplateSet],
    subset: &PatternHistogram,
) -> Vec<(Option<u64>, DecompositionTable)> {
    candidates
        .iter()
        .map(|set| score_one(set, subset))
        .collect()
}

/// Selects one portfolio for a *set* of expected input matrices — the
/// abstract's deployment model ("SPASM can optimize the pattern portfolio
/// for a particular set of expected input matrices").
///
/// Each matrix's histogram is normalised to per-mille shares before
/// merging so a large matrix cannot drown out a small one, then
/// Algorithm 3 runs on the merged histogram.
///
/// # Panics
///
/// Panics if `histograms` is empty, mixes grid sizes, or `candidates` is
/// empty.
pub fn select_for_matrix_set(
    histograms: &[PatternHistogram],
    candidates: &[TemplateSet],
    top_n: TopN,
) -> SelectionOutcome {
    assert!(!histograms.is_empty(), "need at least one matrix histogram");
    let size = histograms[0].size();
    let mut merged: std::collections::HashMap<crate::grid::Mask, u64> =
        std::collections::HashMap::new();
    for h in histograms {
        assert_eq!(h.size(), size, "histograms must share one grid size");
        let total = h.total_blocks().max(1);
        for (&mask, &freq) in h.iter() {
            // Per-mille share, rounded up so rare-but-present patterns
            // keep non-zero weight.
            let share = (freq * 1000).div_ceil(total);
            *merged.entry(mask).or_insert(0) += share;
        }
    }
    let merged = PatternHistogram::from_counts(size, merged);
    select_template_set(&merged, candidates, top_n)
}

/// Extension beyond the paper's ten fixed candidates: greedily grow a
/// custom portfolio from the full shape family, always keeping coverage.
///
/// Starts from the four row templates (guaranteeing coverage) and
/// repeatedly swaps in the shape — any row, column, diagonal, anti-diagonal
/// or block placement — that most reduces the weighted paddings of the
/// top-n histogram, until the 16-slot budget is full or no candidate
/// improves. This is the "customization of template patterns" the
/// framework exposes for workload-specific tuning.
pub fn greedy_custom_set(histogram: &PatternHistogram, top_n: TopN) -> SelectionOutcome {
    use crate::grid::GridSize;
    use crate::templates::Template;
    assert_eq!(
        histogram.size(),
        GridSize::S4,
        "custom portfolio search is defined for the 4x4 grid"
    );
    let s = GridSize::S4;
    let n = top_n.resolve(histogram);
    let subset = histogram.top_n_histogram(n);

    let mut pool: Vec<Template> = Vec::new();
    pool.extend((0..4).map(|r| Template::row(s, r)));
    pool.extend((0..4).map(|c| Template::col(s, c)));
    pool.extend((0..4).map(|k| Template::diag(s, k)));
    pool.extend((0..4).map(|k| Template::anti_diag(s, k)));
    pool.extend((0..4).flat_map(|r| (0..4).map(move |c| Template::block2(r, c))));

    // Rows guarantee coverage; grow greedily from there.
    let mut chosen: Vec<Template> = (0..4).map(|r| Template::row(s, r)).collect();
    let score = |ts: &[Template]| {
        let masks: Vec<_> = ts.iter().map(|t| t.mask()).collect();
        DecompositionTable::build_raw(4, 16, &masks)
            .weighted_paddings(subset.iter())
            .expect("row templates always cover")
    };
    let mut current = score(&chosen);
    while chosen.len() < TemplateSet::MAX_TEMPLATES {
        let mut best: Option<(u64, Template)> = None;
        for &cand in &pool {
            if chosen.contains(&cand) {
                continue;
            }
            let mut trial = chosen.clone();
            trial.push(cand);
            let p = score(&trial);
            if p < current && best.as_ref().is_none_or(|&(bp, _)| p < bp) {
                best = Some((p, cand));
            }
        }
        match best {
            Some((p, t)) => {
                chosen.push(t);
                current = p;
            }
            None => break,
        }
    }
    let set = TemplateSet::new(s, "greedy-custom", chosen);
    let table = DecompositionTable::build(&set);
    SelectionOutcome {
        set,
        table,
        paddings: current,
        candidate_paddings: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSize;
    use crate::templates::Template;

    fn anti_mask(k: u32) -> u16 {
        Template::anti_diag(GridSize::S4, k).mask()
    }

    #[test]
    fn anti_diagonal_matrix_selects_an_anti_diagonal_set() {
        // Histogram dominated by anti-diagonal patterns, like c-73 in the
        // paper's ablation discussion.
        let h = PatternHistogram::from_counts(GridSize::S4, (0..4).map(|k| (anti_mask(k), 100)));
        let out = select_template_set(&h, &TemplateSet::table_v_candidates(), TopN::All);
        assert_eq!(out.paddings, 0);
        let has_anti = out
            .set
            .templates()
            .iter()
            .any(|t| matches!(t.kind(), crate::templates::TemplateKind::AntiDiag));
        assert!(
            has_anti,
            "winner {} should contain anti-diagonals",
            out.set.name()
        );
    }

    #[test]
    fn block_matrix_selects_zero_padding_set() {
        let block = Template::block2(0, 0).mask();
        let h = PatternHistogram::from_counts(GridSize::S4, [(block, 1000)]);
        let out = select_template_set(&h, &TemplateSet::table_v_candidates(), TopN::All);
        assert_eq!(out.paddings, 0);
    }

    #[test]
    fn candidate_paddings_align_with_candidates() {
        let h = PatternHistogram::from_counts(GridSize::S4, [(0b1, 10)]);
        let cands = TemplateSet::table_v_candidates();
        let out = select_template_set(&h, &cands, TopN::All);
        assert_eq!(out.candidate_paddings.len(), cands.len());
        // A single cell costs 3 paddings under every 16-template portfolio.
        for p in &out.candidate_paddings {
            assert_eq!(*p, Some(30));
        }
    }

    #[test]
    fn winner_is_minimal() {
        let h = PatternHistogram::from_counts(
            GridSize::S4,
            [(anti_mask(0), 50), (0xFFFF, 5), (0x8001, 3)],
        );
        let out = select_template_set(&h, &TemplateSet::table_v_candidates(), TopN::All);
        let min = out
            .candidate_paddings
            .iter()
            .flatten()
            .min()
            .copied()
            .unwrap();
        assert_eq!(out.paddings, min);
    }

    #[test]
    fn top_n_modes() {
        let h = PatternHistogram::from_counts(GridSize::S4, [(0xFFFF, 90), (0x1, 5), (0x2, 5)]);
        assert_eq!(TopN::Count(2).resolve(&h), 2);
        assert_eq!(TopN::Coverage(0.9).resolve(&h), 1);
        assert_eq!(TopN::All.resolve(&h), 3);
    }

    #[test]
    fn matrix_set_selection_balances_members() {
        // One huge diagonal-dominated matrix + one small anti-diagonal
        // one: per-mille normalisation keeps the small matrix's needs
        // visible, so the winner must cover both shapes without drowning
        // the minority member.
        let diag = Template::diag(GridSize::S4, 0).mask();
        let big = PatternHistogram::from_counts(GridSize::S4, [(diag, 1_000_000)]);
        let small = PatternHistogram::from_counts(GridSize::S4, (0..4).map(|k| (anti_mask(k), 10)));
        let out =
            select_for_matrix_set(&[big, small], &TemplateSet::table_v_candidates(), TopN::All);
        // Set 4 (RW+CW+diag+anti) covers both with zero padding; any
        // winner must achieve zero.
        assert_eq!(out.paddings, 0, "winner {}", out.set.name());
    }

    #[test]
    #[should_panic(expected = "at least one matrix")]
    fn empty_matrix_set_rejected() {
        select_for_matrix_set(&[], &TemplateSet::table_v_candidates(), TopN::All);
    }

    #[test]
    fn greedy_custom_beats_or_matches_rows_only() {
        let h = PatternHistogram::from_counts(GridSize::S4, (0..4).map(|k| (anti_mask(k), 100)));
        let out = greedy_custom_set(&h, TopN::All);
        assert_eq!(out.paddings, 0, "greedy should discover the anti-diagonals");
    }

    #[test]
    fn greedy_stays_within_budget() {
        let h = PatternHistogram::from_counts(
            GridSize::S4,
            (1u16..200).map(|m| (m, (m % 7 + 1) as u64)),
        );
        let out = greedy_custom_set(&h, TopN::Count(32));
        assert!(out.set.len() <= TemplateSet::MAX_TEMPLATES);
    }
}
