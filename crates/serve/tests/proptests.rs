//! Property tests for the plan catalog and the matrix fingerprint.
//!
//! Invariants under arbitrary insert / lease / drop / remove
//! interleavings:
//!
//! * resident bytes never exceed the configured budget;
//! * a leased (in-flight) plan is never evicted — over-budget inserts
//!   against a fully pinned catalog fail with `BudgetPinned` instead;
//! * fingerprint equality is exactly byte-stream equality, and any
//!   payload corruption changes the fingerprint.

use proptest::prelude::*;
use spasm::{Pipeline, PipelineOptions, Prepared};
use spasm_format::{MatrixFingerprint, CHECKSUM_BYTES, HEADER_BYTES};
use spasm_hw::HwConfig;
use spasm_patterns::TemplateSet;
use spasm_serve::{CatalogConfig, CatalogError, PlanCatalog, PlanLease};
use spasm_sparse::Coo;

fn pinned_pipeline() -> Pipeline {
    Pipeline::with_options(
        PipelineOptions::default()
            .fixed_portfolio(TemplateSet::table_v_set(0))
            .fixed_schedule(256, HwConfig::spasm_4_1()),
    )
}

fn scatter(n: u32, per_row: u32, salt: u32) -> Coo {
    let mut t = Vec::new();
    for i in 0..n {
        for k in 0..per_row {
            let j = (i * 37 + k * 13 + salt) % n;
            t.push((i, j, ((i + k + salt) % 9 + 1) as f32 * 0.5));
        }
    }
    Coo::from_triplets(n, n, t).expect("valid triplets")
}

/// Four distinct prepared plans to shuffle through the catalog.
fn corpus() -> Vec<Prepared> {
    let pipeline = pinned_pipeline();
    [(64, 3, 0), (72, 3, 1), (80, 4, 2), (96, 4, 3)]
        .into_iter()
        .map(|(n, per_row, salt)| {
            pipeline
                .prepare(&scatter(n, per_row, salt))
                .expect("prepare corpus plan")
        })
        .collect()
}

fn arb_matrix() -> impl Strategy<Value = Coo> {
    (16u32..64, 16u32..64).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, (1i32..32).prop_map(|q| q as f32 * 0.25));
        proptest::collection::vec(entry, 1..96)
            .prop_map(move |t| Coo::from_triplets(rows, cols, t).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary interleavings of insert / lease / drop-lease / remove
    /// never overrun the byte budget and never evict a leased plan.
    #[test]
    fn catalog_respects_budget_and_pins(
        ops in proptest::collection::vec((0u8..4, 0usize..4), 1..24),
    ) {
        let plans = corpus();
        let fps: Vec<MatrixFingerprint> =
            plans.iter().map(|p| p.encoded.fingerprint()).collect();
        let sizes: Vec<usize> = plans.iter().map(spasm_serve::prepared_bytes).collect();
        // Roughly two plans fit: inserts beyond that must evict (or fail
        // loudly when everything resident is pinned).
        let budget = sizes.iter().copied().max().unwrap() * 2;
        let catalog = PlanCatalog::new(CatalogConfig { byte_budget: budget });
        let mut held: Vec<PlanLease> = Vec::new();

        for &(op, i) in &ops {
            match op {
                0 => match catalog.insert_prepared(plans[i].clone()) {
                    Ok(fp) => {
                        prop_assert_eq!(fp, fps[i]);
                        prop_assert!(catalog.contains(&fp));
                    }
                    Err(CatalogError::BudgetPinned { pinned, budget: b, .. }) => {
                        prop_assert!(!held.is_empty(), "BudgetPinned without a live lease");
                        prop_assert!(pinned <= b);
                    }
                    Err(e) => prop_assert!(false, "unexpected insert error: {e}"),
                },
                1 => {
                    if let Some(lease) = catalog.get(&fps[i]) {
                        prop_assert_eq!(lease.fingerprint(), fps[i]);
                        held.push(lease);
                    }
                }
                2 => {
                    if !held.is_empty() {
                        held.remove(0);
                    }
                }
                _ => {
                    // Removal always de-indexes; a leased entry's plan and
                    // bytes linger (doomed) until its last lease drops.
                    let resident = catalog.contains(&fps[i]);
                    let removed = catalog.remove(&fps[i]);
                    prop_assert_eq!(removed, resident, "remove reports de-indexing");
                    prop_assert!(!catalog.contains(&fps[i]), "removed fp still indexed");
                }
            }
            prop_assert!(
                catalog.resident_bytes() <= budget,
                "{} resident > {budget} budget",
                catalog.resident_bytes()
            );
            for lease in &held {
                // A leased plan is never freed mid-flight, removed or not:
                // the plan behind the lease must still be lockable.
                drop(lease.prepared());
            }
        }

        // Once every lease drops, the next catalog operation reaps any
        // doomed entries, and the byte ledger matches the entries
        // actually resident.
        drop(held);
        let resident_fps = catalog.fingerprints();
        let tally: usize = resident_fps
            .iter()
            .filter_map(|fp| catalog.get(fp).map(|l| l.bytes()))
            .sum();
        prop_assert_eq!(tally, catalog.resident_bytes());
    }

    /// Fingerprint equality is exactly canonical-byte-stream equality,
    /// the encoding is deterministic, and the wire-side fingerprint
    /// agrees with the matrix-side one.
    #[test]
    fn fingerprint_equality_iff_byte_equality(m1 in arb_matrix(), m2 in arb_matrix()) {
        let pipeline = pinned_pipeline();
        let p1 = pipeline.prepare(&m1).unwrap();
        let p2 = pipeline.prepare(&m2).unwrap();
        let (b1, b2) = (p1.encoded.to_bytes(), p2.encoded.to_bytes());
        prop_assert_eq!(
            p1.encoded.fingerprint() == p2.encoded.fingerprint(),
            b1 == b2,
            "fingerprint equality must track byte equality"
        );
        let p1_again = pipeline.prepare(&m1).unwrap();
        prop_assert_eq!(p1_again.encoded.fingerprint(), p1.encoded.fingerprint());
        prop_assert_eq!(p1_again.encoded.to_bytes(), b1.clone());
        prop_assert_eq!(
            MatrixFingerprint::of_wire_bytes(&b1).unwrap(),
            p1.encoded.fingerprint()
        );
    }

    /// Flipping any payload byte (header fields, stream body — anything
    /// covered by the fingerprint CRC) yields a different fingerprint.
    #[test]
    fn payload_corruption_changes_the_fingerprint(
        m in arb_matrix(),
        pos_sel in 0u32..,
        xor in 1u8..,
    ) {
        let p = pinned_pipeline().prepare(&m).unwrap();
        let bytes = p.encoded.to_bytes().to_vec();
        let fp = MatrixFingerprint::of_wire_bytes(&bytes).unwrap();
        // Corrupt strictly inside the CRC-covered payload, past the
        // header (magic/version flips are rejected as foreign streams,
        // which is its own kind of "different").
        let lo = HEADER_BYTES;
        let hi = bytes.len() - CHECKSUM_BYTES;
        prop_assert!(hi > lo, "encoded stream has no payload");
        let pos = lo + (pos_sel as usize) % (hi - lo);
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= xor;
        let fp2 = MatrixFingerprint::of_wire_bytes(&corrupt).unwrap();
        prop_assert!(fp2 != fp, "single-byte corruption at {pos} went unnoticed");
    }
}
