use crate::{Index, SparseError, Triplet, Value};

/// Coordinate-list (COO) sparse matrix.
///
/// The simplest format: three parallel arrays of row indices, column indices
/// and values. COO is the interchange format of this workspace — every other
/// format converts through it — and the normalisation baseline of the
/// paper's storage comparison (12 bytes per non-zero).
///
/// Invariants maintained by all constructors:
/// * entries are sorted by `(row, col)`,
/// * duplicate coordinates are summed into a single entry,
/// * all indices are within the declared shape.
///
/// Explicit zeros are kept (they are legitimate stored entries in the
/// SuiteSparse collection and affect storage-cost accounting).
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    rows: Index,
    cols: Index,
    row_idx: Vec<Index>,
    col_idx: Vec<Index>,
    values: Vec<Value>,
}

impl Coo {
    /// Creates an empty matrix of the given shape.
    pub fn new(rows: Index, cols: Index) -> Self {
        Coo {
            rows,
            cols,
            row_idx: Vec::new(),
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a COO matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may arrive in any order; duplicates are summed.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any triplet lies outside
    /// `rows × cols`.
    pub fn from_triplets(
        rows: Index,
        cols: Index,
        mut triplets: Vec<Triplet>,
    ) -> Result<Self, SparseError> {
        for &(r, c, _) in &triplets {
            if r >= rows || c >= cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values: Vec<Value> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            if let (Some(&lr), Some(&lc)) = (row_idx.last(), col_idx.last()) {
                if lr == r && lc == c {
                    *values.last_mut().expect("values parallel to indices") += v;
                    continue;
                }
            }
            row_idx.push(r);
            col_idx.push(c);
            values.push(v);
        }
        Ok(Coo {
            rows,
            cols,
            row_idx,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> Index {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> Index {
        self.cols
    }

    /// Number of stored entries (including explicit zeros).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Density: `nnz / (rows * cols)`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Row indices, sorted by `(row, col)`.
    pub fn row_indices(&self) -> &[Index] {
        &self.row_idx
    }

    /// Column indices, parallel to [`Coo::row_indices`].
    pub fn col_indices(&self) -> &[Index] {
        &self.col_idx
    }

    /// Stored values, parallel to the index arrays.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterates over the stored entries in `(row, col)` order.
    pub fn iter(&self) -> impl Iterator<Item = Triplet> + '_ {
        self.row_idx
            .iter()
            .zip(&self.col_idx)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Consumes the matrix and returns its triplets in `(row, col)` order.
    pub fn into_triplets(self) -> Vec<Triplet> {
        self.row_idx
            .into_iter()
            .zip(self.col_idx)
            .zip(self.values)
            .map(|((r, c), v)| (r, c, v))
            .collect()
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Coo {
        let triplets = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        Coo::from_triplets(self.cols, self.rows, triplets)
            .expect("transposed entries stay in bounds")
    }

    /// Number of stored entries in each row.
    pub fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.rows as usize];
        for &r in &self.row_idx {
            counts[r as usize] += 1;
        }
        counts
    }
}

impl FromIterator<Triplet> for Coo {
    /// Collects triplets into a matrix whose shape is the tight bounding box
    /// of the entries. Panics only on allocation failure; out-of-bounds is
    /// impossible by construction.
    fn from_iter<I: IntoIterator<Item = Triplet>>(iter: I) -> Self {
        let triplets: Vec<Triplet> = iter.into_iter().collect();
        let rows = triplets.iter().map(|&(r, _, _)| r + 1).max().unwrap_or(0);
        let cols = triplets.iter().map(|&(_, c, _)| c + 1).max().unwrap_or(0);
        Coo::from_triplets(rows, cols, triplets).expect("bounding-box shape fits all entries")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let m = Coo::new(4, 5);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
    }

    #[test]
    fn from_triplets_sorts_and_sums_duplicates() {
        let m = Coo::from_triplets(
            3,
            3,
            vec![(2, 2, 1.0), (0, 1, 2.0), (2, 2, 3.0), (0, 0, -1.0)],
        )
        .unwrap();
        assert_eq!(m.nnz(), 3);
        let t: Vec<_> = m.iter().collect();
        assert_eq!(t, vec![(0, 0, -1.0), (0, 1, 2.0), (2, 2, 4.0)]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let err = Coo::from_triplets(2, 2, vec![(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn transpose_round_trip() {
        let m = Coo::from_triplets(2, 3, vec![(0, 2, 1.0), (1, 0, 2.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn explicit_zeros_are_kept() {
        let m = Coo::from_triplets(2, 2, vec![(0, 0, 0.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn row_counts() {
        let m = Coo::from_triplets(3, 3, vec![(0, 0, 1.0), (0, 2, 1.0), (2, 1, 1.0)]).unwrap();
        assert_eq!(m.row_counts(), vec![2, 0, 1]);
    }

    #[test]
    fn from_iterator_bounding_box() {
        let m: Coo = vec![(1, 4, 1.0), (3, 0, 2.0)].into_iter().collect();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 5);
    }
}
