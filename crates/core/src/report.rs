//! Uniform reporting: wraps a simulated SPASM execution in the same
//! [`PlatformReport`] shape the baseline models emit, so the figure
//! harnesses can tabulate all platforms together.

use spasm_baselines::{power, PlatformReport};
use spasm_hw::ExecReport;

use crate::framework::Prepared;

/// Builds a [`PlatformReport`] for a SPASM execution.
///
/// Bandwidth efficiency is computed against the *selected* configuration's
/// aggregate bandwidth (the paper computes it per selected hardware
/// version); energy efficiency uses the measured 58 W of Table VII.
pub fn spasm_report(prepared: &Prepared, exec: &ExecReport) -> PlatformReport {
    let cfg = &prepared.best.config;
    PlatformReport {
        name: cfg.name.clone(),
        seconds: exec.seconds,
        gflops: exec.gflops,
        bandwidth_eff: exec.gflops / cfg.bandwidth_gbs(),
        energy_eff: exec.gflops / power::SPASM_W,
        compute_utilization: exec.gflops / cfg.peak_gflops(),
        bandwidth_utilization: exec.bandwidth_utilization,
    }
}

/// Builds the *amortised per-vector* [`PlatformReport`] for a batched
/// SPASM execution: timings come from [`spasm_hw::BatchReport`]'s
/// amortised-per-vector figures, so throughput metrics (gflops, both
/// efficiencies, utilisation) reflect what each right-hand side costs
/// inside the batch rather than what a standalone run would cost.
///
/// Returns `None` when `exec` does not carry batch pricing (the most
/// recent execution was single-vector).
pub fn spasm_batch_report(prepared: &Prepared, exec: &ExecReport) -> Option<PlatformReport> {
    let batch = exec.batch?;
    let cfg = &prepared.best.config;
    // Same flop count per vector; only the amortised time changes.
    let gflops = if batch.amortised_seconds_per_vector > 0.0 {
        exec.gflops * exec.seconds / batch.amortised_seconds_per_vector
    } else {
        0.0
    };
    let scale = if exec.gflops > 0.0 {
        gflops / exec.gflops
    } else {
        1.0
    };
    Some(PlatformReport {
        name: cfg.name.clone(),
        seconds: batch.amortised_seconds_per_vector,
        gflops,
        bandwidth_eff: gflops / cfg.bandwidth_gbs(),
        energy_eff: gflops / power::SPASM_W,
        compute_utilization: gflops / cfg.peak_gflops(),
        bandwidth_utilization: exec.bandwidth_utilization * scale,
    })
}

#[cfg(test)]
mod tests {
    use crate::Pipeline;
    use spasm_sparse::Coo;

    #[test]
    fn report_fields_consistent() {
        let mut t = Vec::new();
        for i in 0..128u32 {
            t.push((i, i, 2.0));
            t.push((i, (i + 3) % 128, 1.0));
        }
        let a = Coo::from_triplets(128, 128, t).unwrap();
        let mut prepared = Pipeline::new().prepare(&a).unwrap();
        let mut y = vec![0.0f32; 128];
        let exec = prepared.execute(&vec![1.0; 128], &mut y).unwrap();
        let report = super::spasm_report(&prepared, &exec);
        assert_eq!(report.name, prepared.best.config.name);
        assert!(report.gflops > 0.0);
        assert!(
            (report.energy_eff - report.gflops / 58.0).abs() < 1e-12,
            "Table VII power constant"
        );
        assert!(report.compute_utilization <= 1.0);
    }

    #[test]
    fn batch_report_amortises_per_vector() {
        let mut t = Vec::new();
        for i in 0..128u32 {
            t.push((i, i, 2.0));
            t.push((i, (i + 5) % 128, 1.0));
        }
        let a = Coo::from_triplets(128, 128, t).unwrap();
        let mut prepared = Pipeline::new().prepare(&a).unwrap();

        let mut y = vec![0.0f32; 128];
        let single = prepared.execute(&vec![1.0; 128], &mut y).unwrap();
        assert!(
            super::spasm_batch_report(&prepared, &single).is_none(),
            "single runs carry no batch pricing"
        );

        let xs = vec![vec![1.0f32; 128]; 8];
        let mut ys = vec![vec![0.0f32; 128]; 8];
        let exec = prepared.execute_batch(&xs, &mut ys).unwrap();
        let report = super::spasm_batch_report(&prepared, &exec).unwrap();
        let solo = super::spasm_report(&prepared, &single);
        // Amortising initialisation over 8 vectors makes each one cheaper
        // and faster than a standalone run.
        assert!(report.seconds < solo.seconds);
        assert!(report.gflops > solo.gflops);
        assert_eq!(report.name, solo.name);
    }
}
