//! Local-pattern decomposition (step ③ of the workflow).
//!
//! [`find_best_decomp`] is a faithful transcription of the paper's Listing 1:
//! exhaustive search over all `2^n` template subsets, counting padded cells
//! with the `remain`/`overlap` bookkeeping of the original Python.
//!
//! The listing's padding arithmetic has a useful closed form: every slot of
//! every chosen template either covers a pattern cell for the first time or
//! is padding, so for a covering subset `S`,
//! `paddings = template_len·|S| − popcount(pattern)`. Minimising padding is
//! therefore a *minimum set cover*, which [`DecompositionTable`] solves for
//! all `2^(p²)` patterns at once with a dynamic program — the same answers
//! as Listing 1 at a tiny fraction of the cost (the equivalence is asserted
//! by tests and exploited for the multi-minute preprocessing budgets of
//! Table VIII).

use crate::grid::Mask;
use crate::templates::TemplateSet;

/// The result of decomposing one local pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Chosen templates, as indices (`t_idx`) into the portfolio, in
    /// emission order.
    pub template_ids: Vec<u8>,
    /// Number of padded (zero-filled) value slots across the chosen
    /// template instances.
    pub paddings: u32,
}

impl Decomposition {
    /// Number of template instances used.
    pub fn instances(&self) -> usize {
        self.template_ids.len()
    }
}

/// Faithful port of the paper's Listing 1.
///
/// Iterates all `2^n` subsets of the portfolio, replays the
/// `remain`/`overlap` padding count, and returns the covering subset with
/// the fewest paddings (`None` if no subset covers the pattern — impossible
/// for portfolios built through [`TemplateSet::new`], which requires full
/// grid coverage, but kept for direct mask-list experimentation).
///
/// # Examples
///
/// ```
/// use spasm_patterns::find_best_decomp;
///
/// // Templates: row 0 and column 0 of the 4x4 grid.
/// let templates = [0b0000_0000_0000_1111u16, 0b0001_0001_0001_0001];
/// // An L-shape needs both templates; they overlap at cell (0,0), so one
/// // slot of the 8 is padding beyond the 7 distinct cells.
/// let l_shape = templates[0] | templates[1];
/// let d = find_best_decomp(l_shape, &templates).unwrap();
/// assert_eq!(d.instances(), 2);
/// assert_eq!(d.paddings, 1);
/// ```
///
/// The subset is returned in portfolio order, matching the `for t_id in
/// range(n)` application order of the listing.
pub fn find_best_decomp(pattern: Mask, templates: &[Mask]) -> Option<Decomposition> {
    let n = templates.len();
    assert!(n <= 16, "at most 16 templates (4-bit t_idx)");
    if pattern == 0 {
        return Some(Decomposition {
            template_ids: Vec::new(),
            paddings: 0,
        });
    }
    let mut best: Option<(u32, u32)> = None; // (paddings, subset bits)
    for subset in 1u32..(1 << n) {
        let mut remain = pattern;
        let mut overlap: Mask = 0;
        let mut paddings = 0u32;
        for (t_id, &t) in templates.iter().enumerate() {
            if subset & (1 << t_id) != 0 {
                let padding = (!remain | overlap) & t;
                overlap |= t;
                remain &= !t;
                paddings += padding.count_ones();
            }
        }
        if remain != 0 {
            continue; // subset does not cover the pattern
        }
        // Tie-break on fewer templates, then lower subset id, for
        // deterministic output.
        let better = match best {
            None => true,
            Some((bp, bs)) => {
                paddings < bp
                    || (paddings == bp && (subset.count_ones(), subset) < (bs.count_ones(), bs))
            }
        };
        if better {
            best = Some((paddings, subset));
        }
    }
    best.map(|(paddings, subset)| Decomposition {
        template_ids: (0..n as u8).filter(|t| subset & (1 << t) != 0).collect(),
        paddings,
    })
}

/// Precomputed optimal decompositions for *every* local pattern under one
/// portfolio.
///
/// `dp[m]` = minimum number of template instances whose union covers mask
/// `m`; `choice[m]` remembers one optimal first template. Table
/// construction is `O(2^(p²) · n)` — about one million steps for the 4×4
/// grid — after which each decomposition is a table walk.
#[derive(Debug, Clone)]
pub struct DecompositionTable {
    template_len: u32,
    masks: Vec<Mask>,
    /// Minimal instance count per mask; `u8::MAX` marks "uncoverable".
    dp: Vec<u8>,
    /// Index of the template to apply first on each mask (undefined where
    /// `dp` is `u8::MAX` or the mask is 0).
    choice: Vec<u8>,
}

impl DecompositionTable {
    /// Builds the table for a portfolio.
    pub fn build(portfolio: &TemplateSet) -> Self {
        let masks: Vec<Mask> = portfolio.masks().collect();
        Self::build_raw(
            portfolio.size().template_len(),
            portfolio.size().cells(),
            &masks,
        )
    }

    /// Builds the table from raw template masks over a grid with
    /// `cell_count` cells; `template_len` is the slot count per instance.
    ///
    /// # Panics
    ///
    /// Panics if more than 16 templates are supplied or `cell_count > 16`.
    pub fn build_raw(template_len: u32, cell_count: u32, templates: &[Mask]) -> Self {
        assert!(templates.len() <= 16, "at most 16 templates (4-bit t_idx)");
        assert!(cell_count <= 16, "local patterns are at most 4x4");
        let states = 1usize << cell_count;
        let mut dp = vec![u8::MAX; states];
        let mut choice = vec![0u8; states];
        dp[0] = 0;
        for m in 1..states {
            let mut best = u8::MAX;
            let mut pick = 0u8;
            for (t_id, &t) in templates.iter().enumerate() {
                let covered = m as Mask & t;
                if covered == 0 {
                    continue; // template contributes nothing to this mask
                }
                let rest = dp[m & !(t as usize)];
                if rest != u8::MAX && rest + 1 < best {
                    best = rest + 1;
                    pick = t_id as u8;
                }
            }
            dp[m] = best;
            choice[m] = pick;
        }
        DecompositionTable {
            template_len,
            masks: templates.to_vec(),
            dp,
            choice,
        }
    }

    /// The portfolio's template masks, in `t_idx` order.
    pub fn template_masks(&self) -> &[Mask] {
        &self.masks
    }

    /// Slots per template instance (`p`).
    pub fn template_len(&self) -> u32 {
        self.template_len
    }

    /// Minimum number of template instances covering `pattern`, or `None`
    /// if the portfolio cannot cover it.
    pub fn instance_count(&self, pattern: Mask) -> Option<u32> {
        match self.dp[pattern as usize] {
            u8::MAX => None,
            k => Some(k as u32),
        }
    }

    /// Number of padded slots in the optimal decomposition of `pattern`.
    pub fn padding_count(&self, pattern: Mask) -> Option<u32> {
        self.instance_count(pattern)
            .map(|k| k * self.template_len - pattern.count_ones())
    }

    /// The optimal decomposition of `pattern` (template ids in application
    /// order), or `None` if uncoverable.
    pub fn decompose(&self, pattern: Mask) -> Option<Decomposition> {
        if self.dp[pattern as usize] == u8::MAX {
            return None;
        }
        let mut ids = Vec::with_capacity(self.dp[pattern as usize] as usize);
        let mut m = pattern;
        while m != 0 {
            let t = self.choice[m as usize];
            ids.push(t);
            m &= !self.masks[t as usize];
        }
        let paddings = ids.len() as u32 * self.template_len - pattern.count_ones();
        Some(Decomposition {
            template_ids: ids,
            paddings,
        })
    }

    /// Total paddings over a weighted pattern histogram — the inner loop of
    /// Algorithm 3. Patterns the portfolio cannot cover return `None`.
    pub fn weighted_paddings<'a>(
        &self,
        histogram: impl IntoIterator<Item = (&'a Mask, &'a u64)>,
    ) -> Option<u64> {
        let mut total = 0u64;
        for (&mask, &freq) in histogram {
            total += u64::from(self.padding_count(mask)?) * freq;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSize;
    use crate::templates::{Template, TemplateSet};

    fn set0() -> TemplateSet {
        TemplateSet::table_v_set(0)
    }

    #[test]
    fn single_row_needs_one_template_no_padding() {
        let table = DecompositionTable::build(&set0());
        let row0: Mask = 0b1111;
        let d = table.decompose(row0).unwrap();
        assert_eq!(d.instances(), 1);
        assert_eq!(d.paddings, 0);
    }

    #[test]
    fn full_grid_needs_four_rows() {
        let table = DecompositionTable::build(&set0());
        let d = table.decompose(0xFFFF).unwrap();
        assert_eq!(d.instances(), 4);
        assert_eq!(d.paddings, 0);
    }

    #[test]
    fn single_cell_costs_three_paddings() {
        let table = DecompositionTable::build(&set0());
        let d = table.decompose(0b1).unwrap();
        assert_eq!(d.instances(), 1);
        assert_eq!(d.paddings, 3);
    }

    #[test]
    fn listing1_and_dp_agree_on_paddings() {
        let set = set0();
        let masks: Vec<Mask> = set.masks().collect();
        let table = DecompositionTable::build(&set);
        // Exhaustive agreement is too slow for Listing 1; sample a spread of
        // patterns including adversarial ones.
        let probes: Vec<Mask> = (0..=16)
            .flat_map(|k| {
                [
                    (1u32 << k) as u16,
                    0x8421,
                    0x1248,
                    0x9669,
                    0xF00F,
                    0x0FF0,
                    0x5A5A,
                ]
            })
            .chain((1..200).map(|i| (i * 331) as Mask))
            .filter(|&m| m != 0)
            .collect();
        for pattern in probes {
            let slow = find_best_decomp(pattern, &masks).expect("covering portfolio");
            let fast = table.decompose(pattern).expect("covering portfolio");
            assert_eq!(slow.paddings, fast.paddings, "pattern {pattern:#06x}");
        }
    }

    #[test]
    fn decomposition_covers_exactly() {
        let table = DecompositionTable::build(&set0());
        for pattern in [0x0001u16, 0x8421, 0xBEEF, 0xFFFF, 0x0F0F] {
            let d = table.decompose(pattern).unwrap();
            let union = d
                .template_ids
                .iter()
                .fold(0u16, |u, &t| u | table.template_masks()[t as usize]);
            assert_eq!(union & pattern, pattern, "every nz covered");
            let slots = d.instances() as u32 * 4;
            assert_eq!(d.paddings, slots - pattern.count_ones());
        }
    }

    #[test]
    fn empty_pattern_decomposes_to_nothing() {
        let table = DecompositionTable::build(&set0());
        let d = table.decompose(0).unwrap();
        assert!(d.template_ids.is_empty());
        assert_eq!(d.paddings, 0);
        assert_eq!(find_best_decomp(0, &[0b1111]).unwrap().instances(), 0);
    }

    #[test]
    fn uncoverable_pattern_returns_none() {
        // A raw template list that misses cell 15.
        let masks = [0b1111u16, 0b1111_0000, 0b1111_0000_0000];
        let table = DecompositionTable::build_raw(4, 16, &masks);
        assert!(table.decompose(1 << 15).is_none());
        assert!(find_best_decomp(1 << 15, &masks).is_none());
        assert!(table.instance_count(0b1).is_some());
    }

    #[test]
    fn diagonal_pattern_prefers_diagonal_template() {
        let table = DecompositionTable::build(&set0());
        let diag = Template::diag(GridSize::S4, 0).mask();
        let d = table.decompose(diag).unwrap();
        assert_eq!(d.instances(), 1);
        assert_eq!(d.paddings, 0);
    }

    #[test]
    fn anti_diagonal_pads_under_set0_but_not_set1() {
        let anti = Template::anti_diag(GridSize::S4, 3).mask();
        let t0 = DecompositionTable::build(&TemplateSet::table_v_set(0));
        let t1 = DecompositionTable::build(&TemplateSet::table_v_set(1));
        assert!(
            t0.padding_count(anti).unwrap() > 0,
            "set 0 lacks anti-diagonals"
        );
        assert_eq!(
            t1.padding_count(anti).unwrap(),
            0,
            "set 1 has anti-diagonals"
        );
    }

    #[test]
    fn weighted_paddings_sums() {
        let table = DecompositionTable::build(&set0());
        let hist: Vec<(Mask, u64)> = vec![(0b1111, 10), (0b1, 2)];
        let total = table
            .weighted_paddings(hist.iter().map(|(m, f)| (m, f)))
            .unwrap();
        assert_eq!(total, 6); // 10 full rows pad 0 each, 2 singles pad 3 each
    }
}
