//! Property tests over the whole pipeline: correctness and schedule
//! optimality for arbitrary matrices.

use std::collections::BTreeMap;

use proptest::prelude::*;
use spasm::{Pipeline, PipelineError, PipelineOptions};
use spasm_hw::HwConfig;
use spasm_patterns::TemplateSet;
use spasm_sparse::{Coo, Csr, DeltaOp, MatrixDelta, SpMv};

fn arb_matrix() -> impl Strategy<Value = Coo> {
    (16u32..128, 16u32..128).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, (1i32..32).prop_map(|q| q as f32 * 0.25));
        proptest::collection::vec(entry, 1..256)
            .prop_map(move |t| Coo::from_triplets(rows, cols, t).unwrap())
    })
}

/// A matrix plus a stream of raw delta encodings: `(kind, row, col,
/// value)` with coordinates that may overshoot the shape, values that may
/// be the banned explicit zero, repeated cells within one delta
/// (conflicts), ops targeting absent entries, and empty deltas — the full
/// space of hostile changesets.
#[allow(clippy::type_complexity)]
fn arb_update_case() -> impl Strategy<Value = (Coo, Vec<Vec<(u8, u32, u32, f32)>>)> {
    (16u32..48, 16u32..48).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, (1i32..32).prop_map(|q| q as f32 * 0.25));
        let matrix = proptest::collection::vec(entry, 1..128)
            .prop_map(move |t| Coo::from_triplets(rows, cols, t).unwrap());
        let op = (
            0u8..3,
            0..rows + 8,
            0..cols + 8,
            // Mostly valid quantised values, ~1-in-8 the banned zero.
            (0i32..256).prop_map(|q| {
                if q < 32 {
                    0.0
                } else {
                    (q % 31 + 1) as f32 * 0.25
                }
            }),
        );
        let deltas = proptest::collection::vec(proptest::collection::vec(op, 0..6), 1..6);
        (matrix, deltas)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end: prepare + execute equals CSR SpMV.
    #[test]
    fn pipeline_is_correct(m in arb_matrix()) {
        let mut prepared = Pipeline::new().prepare(&m).unwrap();
        let x: Vec<f32> = (0..m.cols()).map(|i| ((i % 11) as f32) * 0.5 - 2.0).collect();
        let mut want = vec![0.0f32; m.rows() as usize];
        Csr::from(&m).spmv(&x, &mut want).unwrap();
        let mut got = vec![0.0f32; m.rows() as usize];
        prepared.execute(&x, &mut got).unwrap();
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() <= 2e-3 * (1.0 + w.abs()), "{g} vs {w}");
        }
    }

    /// The encoded stream is lossless and its padding accounting balances.
    #[test]
    fn pipeline_encoding_invariants(m in arb_matrix()) {
        let prepared = Pipeline::new().prepare(&m).unwrap();
        prop_assert_eq!(prepared.encoded.to_coo(), m.clone());
        prop_assert_eq!(
            4 * prepared.encoded.n_instances() as u64,
            m.nnz() as u64 + prepared.encoded.paddings()
        );
    }

    /// The explored winner is never beaten by any other explored point.
    #[test]
    fn schedule_winner_is_optimal(m in arb_matrix()) {
        let prepared = Pipeline::new().prepare(&m).unwrap();
        let winner = prepared.best.config.cycles_to_seconds(prepared.best.predicted_cycles);
        for c in &prepared.explored {
            prop_assert!(winner <= c.predicted_seconds + 1e-15);
        }
    }

    /// The dynamic portfolio minimises scored paddings across the
    /// candidates (Algorithm 3's contract), and a pinned single-candidate
    /// pipeline respects its pin.
    #[test]
    fn dynamic_selection_minimises_scored_paddings(m in arb_matrix()) {
        let full = Pipeline::new().prepare(&m).unwrap();
        let min = full
            .selection
            .candidate_paddings
            .iter()
            .flatten()
            .min()
            .copied()
            .unwrap();
        prop_assert_eq!(full.selection.paddings, min);

        let fixed = Pipeline::with_options(
            PipelineOptions::default()
                .fixed_portfolio(TemplateSet::table_v_set(0))
                .fixed_schedule(1024, HwConfig::spasm_4_1()),
        )
        .prepare(&m)
        .unwrap();
        prop_assert_eq!(fixed.selection.set.name(), "set-0");
        prop_assert_eq!(fixed.best.tile_size, 1024);
    }

    /// Batched execution over arbitrary batch shapes: any well-formed
    /// batch (including empty and singleton) equals looped execution bit
    /// for bit; malformed shapes error without touching any output.
    #[test]
    fn batched_execution_handles_arbitrary_shapes(
        m in arb_matrix(),
        batch in 0usize..6,
        defect in 0usize..4,
    ) {
        let mut prepared = Pipeline::new().prepare(&m).unwrap();
        let (rows, cols) = (m.rows() as usize, m.cols() as usize);
        let xs: Vec<Vec<f32>> = (0..batch)
            .map(|j| (0..cols).map(|i| (((i + j) % 7) as f32) * 0.5 - 1.5).collect())
            .collect();

        // Well-formed batch: bit-identical to the looped single path.
        let mut want = vec![vec![0.25f32; rows]; batch];
        for (xj, yj) in xs.iter().zip(want.iter_mut()) {
            prepared.execute_into(xj, yj).unwrap();
        }
        let mut got = vec![vec![0.25f32; rows]; batch];
        prepared.execute_batch_into(&xs, &mut got).unwrap();
        for (g, w) in got.iter().zip(&want) {
            let gb: Vec<u32> = g.iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = w.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, wb);
        }
        prop_assert_eq!(prepared.batch_health().len(), batch);

        // Malformed shapes: an error, never a panic, and never a partial
        // write — every output still holds its sentinel afterwards.
        let mut bad_xs = xs.clone();
        let mut bad_ys = vec![vec![0.125f32; rows]; batch];
        // `(operand, vector index named by the error)`: per-vector shape
        // defects carry the offending index, batch-length defects do not.
        let expected_defect = match defect {
            // One x too short.
            0 if batch > 0 => {
                bad_xs[batch - 1] = vec![0.0; cols.saturating_sub(1)];
                Some(("x", Some(batch - 1)))
            }
            // One y too long.
            1 if batch > 0 => {
                bad_ys[0] = vec![0.125f32; rows + 1];
                Some(("y", Some(0)))
            }
            // ys shorter than xs.
            2 if batch > 0 => {
                bad_ys.pop();
                Some(("batch", None))
            }
            // ys longer than xs.
            3 => {
                bad_ys.push(vec![0.125f32; rows]);
                Some(("batch", None))
            }
            _ => None,
        };
        if let Some((operand, vector)) = expected_defect {
            let err = prepared.execute_batch_into(&bad_xs, &mut bad_ys);
            match (err, vector) {
                (Err(PipelineError::DimensionMismatch { operand: o, .. }), None) => {
                    prop_assert_eq!(o, operand);
                }
                (
                    Err(PipelineError::BatchDimensionMismatch {
                        vector: v,
                        operand: o,
                        ..
                    }),
                    Some(want),
                ) => {
                    prop_assert_eq!(o, operand);
                    prop_assert_eq!(v, want);
                }
                (other, _) => prop_assert!(false, "expected a shape error, got {:?}", other),
            }
            prop_assert!(
                bad_ys.iter().flatten().all(|&v| v == 0.125),
                "a malformed batch wrote partial results"
            );
        }
    }

    /// Streaming updates under arbitrary — and arbitrarily invalid —
    /// changesets: `apply_delta` never panics, every rejection is the
    /// typed [`PipelineError::Delta`] and leaves the plan untouched, and
    /// the accepted subsequence lands the plan bit-identical to preparing
    /// the mutated matrix from scratch.
    #[test]
    fn arbitrary_changesets_never_corrupt_the_plan(
        (m, raw_deltas) in arb_update_case(),
    ) {
        let opts = PipelineOptions::default()
            .fixed_portfolio(TemplateSet::table_v_set(0))
            .fixed_schedule(256, HwConfig::spasm_4_1());
        let mut live = Pipeline::with_options(opts.clone()).prepare(&m).unwrap();
        let mut cells: BTreeMap<(u32, u32), f32> =
            m.iter().map(|(r, c, v)| ((r, c), v)).collect();

        for raw in &raw_deltas {
            let delta: MatrixDelta = raw
                .iter()
                .map(|&(kind, row, col, value)| match kind {
                    0 => DeltaOp::Patch { row, col, value },
                    1 => DeltaOp::Insert { row, col, value },
                    _ => DeltaOp::Delete { row, col },
                })
                .collect();
            let version = live.plan.version();
            match live.apply_delta(&delta) {
                Ok(_) => {
                    for op in delta.ops() {
                        match *op {
                            DeltaOp::Patch { row, col, value }
                            | DeltaOp::Insert { row, col, value } => {
                                cells.insert((row, col), value);
                            }
                            DeltaOp::Delete { row, col } => {
                                cells.remove(&(row, col));
                            }
                        }
                    }
                }
                Err(PipelineError::Delta(_)) => {
                    // Typed rejection: the plan must be exactly as before.
                    prop_assert_eq!(live.plan.version(), version);
                }
                Err(other) => {
                    prop_assert!(false, "expected PipelineError::Delta, got {:?}", other)
                }
            }
        }

        // The surviving plan equals a from-scratch prepare of the state
        // the accepted deltas describe, bit for bit. (If every entry was
        // deleted there is nothing left to compare.)
        if !cells.is_empty() {
            let triplets: Vec<(u32, u32, f32)> =
                cells.into_iter().map(|((r, c), v)| (r, c, v)).collect();
            let mutated = Coo::from_triplets(m.rows(), m.cols(), triplets).unwrap();
            let mut fresh = Pipeline::with_options(opts).prepare(&mutated).unwrap();
            let x: Vec<f32> = (0..m.cols()).map(|i| ((i % 11) as f32) * 0.5 - 2.0).collect();
            let mut got = vec![0.0f32; m.rows() as usize];
            let mut want = vec![0.0f32; m.rows() as usize];
            live.execute_into(&x, &mut got).unwrap();
            fresh.execute_into(&x, &mut want).unwrap();
            let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, wb, "accepted changesets must equal re-prepare");
        }
    }
}
