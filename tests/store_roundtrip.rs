//! Storage round-trip contract for wire v3 (`spasm-store`): a plan that
//! went through `save_v3 → FrozenPlan → ExecutionPlan → Prepared::restore`
//! must be **bit-identical** to the freshly prepared one — for every
//! workload-zoo matrix, for batch sizes 1 and 8, under serial and parallel
//! thread budgets — and hostile bytes must always surface as a typed
//! error, never a panic and never a silently wrong answer.
//!
//! Registered in `crates/store` (`[[test]] name = "store_roundtrip"`).

use proptest::prelude::*;
use spasm::{IntegrityPolicy, Parallelism, Pipeline, PipelineOptions, Prepared};
use spasm_sparse::Coo;
use spasm_store::{save_v3, FrozenPlan, PlanBuffer};
use spasm_workloads::{Scale, Workload};

/// Thaws a v3 byte stream all the way back to a servable `Prepared`.
/// Every failure mode — container, plan or restore — is a typed error
/// rendered to its display string; none of them may panic.
fn thaw(bytes: &[u8], parallelism: Parallelism) -> Result<Prepared, String> {
    let frozen = FrozenPlan::open(PlanBuffer::from_bytes(bytes)).map_err(|e| e.to_string())?;
    let encoded = frozen.matrix().map_err(|e| e.to_string())?;
    let plan = frozen.into_plan().map_err(|e| e.to_string())?;
    Prepared::restore(encoded, plan, parallelism, IntegrityPolicy::off()).map_err(|e| e.to_string())
}

fn bits(y: &[f32]) -> Vec<u32> {
    y.iter().map(|v| v.to_bits()).collect()
}

/// Deterministic batch of dense x vectors for an `n`-column matrix.
fn xs_for(n: usize, batch: usize) -> Vec<Vec<f32>> {
    (0..batch)
        .map(|j| {
            (0..n)
                .map(|i| (((i + 5 * j) % 11) as f32) * 0.5 - 2.0)
                .collect()
        })
        .collect()
}

/// Asserts the thawed plan reproduces the fresh plan bit-for-bit on
/// batch 1 and batch 8, at every requested thread budget.
fn assert_roundtrip(m: &Coo, pipeline: &Pipeline, budgets: &[Parallelism]) {
    let mut fresh = pipeline.prepare(m).expect("pipeline prepare");
    let v3 = save_v3(&fresh.encoded, &fresh.plan).expect("save_v3");

    let rows = m.rows() as usize;
    for &parallelism in budgets {
        let mut thawed = thaw(&v3, parallelism).expect("thaw");
        for batch in [1usize, 8] {
            let xs = xs_for(m.cols() as usize, batch);
            let mut want = vec![vec![0.0f32; rows]; batch];
            let mut got = vec![vec![0.0f32; rows]; batch];
            fresh.execute_batch(&xs, &mut want).expect("fresh batch");
            thawed.execute_batch(&xs, &mut got).expect("thawed batch");
            for (j, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    bits(g),
                    bits(w),
                    "batch {batch} vector {j}: thawed plan diverged from fresh prepare"
                );
            }
        }
    }

    // The frozen container also carries the canonical v2 stream: the
    // decoded matrix and its fingerprint must match the source.
    let frozen = FrozenPlan::open(PlanBuffer::from_bytes(&v3)).expect("reopen");
    assert_eq!(
        frozen.fingerprint().expect("fingerprint").token(),
        fresh.encoded.fingerprint().token()
    );
    assert_eq!(frozen.matrix().expect("matrix").to_coo(), *m);
}

/// Every Table II workload round-trips bit-identically, at both thread
/// budgets the serving layer uses.
#[test]
fn workload_zoo_roundtrips_bit_identical() {
    let pipeline =
        Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Serial));
    for w in Workload::ALL {
        let m = w.generate(Scale::Small);
        assert_roundtrip(&m, &pipeline, &[Parallelism::Serial, Parallelism::Auto]);
    }
}

/// Corruption sweep: flipping any single bit of a v3 container must yield
/// a typed `StoreError` (or, at worst, a *detected* mismatch) — never a
/// panic, and never an `Ok` plan that computes different answers.
#[test]
fn corruption_is_always_detected() {
    // Hand-rolled matrix: small enough that the sweep stays fast, busy
    // enough that every section of the container is non-trivial.
    let n = 256u32;
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 2.0));
        t.push((i, (i * 37 + 11) % n, ((i % 7) + 1) as f32 * 0.25));
        t.push(((i * 53 + 5) % n, i, -0.5));
    }
    let m = Coo::from_triplets(n, n, t).expect("valid triplets");
    let pipeline =
        Pipeline::with_options(PipelineOptions::default().parallelism(Parallelism::Serial));
    let mut fresh = pipeline.prepare(&m).expect("pipeline prepare");
    let v3 = save_v3(&fresh.encoded, &fresh.plan).expect("save_v3");

    let rows = m.rows() as usize;
    let xs = xs_for(m.cols() as usize, 1);
    let mut want = vec![vec![0.0f32; rows]; 1];
    fresh.execute_batch(&xs, &mut want).expect("fresh batch");
    let want = bits(&want[0]);

    // Exhaustive (all 8 bits) over the header + directory, then strided
    // with a rotating bit position across the CRC-covered bulk — cheap,
    // yet every section of the container gets hit.
    let dense_prefix = v3.len().min(256);
    let offsets = (0..dense_prefix)
        .flat_map(|off| (0..8u8).map(move |bit| (off, bit)))
        .chain(
            (dense_prefix..v3.len())
                .step_by(7)
                .map(|off| (off, (off % 8) as u8)),
        );
    for (off, bit) in offsets {
        let mut evil = v3.clone();
        evil[off] ^= 1 << bit;
        match thaw(&evil, Parallelism::Serial) {
            Err(_) => {} // typed rejection: the contract holds
            Ok(mut p) => {
                // The flip survived validation (e.g. it landed in the
                // padding interpretation of an unchecked float and
                // cancelled out) — the answers must still be exact.
                let mut got = vec![vec![0.0f32; rows]; 1];
                p.execute_batch(&xs, &mut got).expect("execute");
                assert_eq!(
                    bits(&got[0]),
                    want,
                    "bit flip at {off}:{bit} produced a silently wrong plan"
                );
            }
        }
    }

    // Truncations at every section-ish granularity are typed errors too.
    for cut in [0, 1, 63, 64, 135, 136, v3.len() - 1] {
        assert!(
            FrozenPlan::open(PlanBuffer::from_bytes(&v3[..cut])).is_err(),
            "truncation to {cut} bytes was accepted"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary matrices (not just the zoo) round-trip bit-identically.
    #[test]
    fn arbitrary_matrices_roundtrip(
        (rows, cols, t) in (16u32..96, 16u32..96).prop_flat_map(|(r, c)| {
            let entry = (0..r, 0..c, (1i32..32).prop_map(|q| q as f32 * 0.25));
            (Just(r), Just(c), proptest::collection::vec(entry, 1..192))
        })
    ) {
        let m = Coo::from_triplets(rows, cols, t).unwrap();
        let pipeline = Pipeline::with_options(
            PipelineOptions::default().parallelism(Parallelism::Serial),
        );
        assert_roundtrip(&m, &pipeline, &[Parallelism::Serial]);
    }
}
