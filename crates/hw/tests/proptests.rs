//! Property tests: the accelerator's functional output equals the CSR
//! reference, and the perf model equals simulated cycles, for arbitrary
//! matrices, portfolios, tile sizes and hardware configurations.

use proptest::prelude::*;
use spasm_format::{SpasmMatrix, SubmatrixMap, TilingSummary};
use spasm_hw::{perf, Accelerator, HwConfig};
use spasm_patterns::{DecompositionTable, TemplateSet};
use spasm_sparse::{Coo, Csr, SpMv};

fn arb_case() -> impl Strategy<Value = (Coo, Vec<f32>, usize, u32)> {
    (8u32..96, 8u32..96)
        .prop_flat_map(|(rows, cols)| {
            let entry = (0..rows, 0..cols, (1i32..32).prop_map(|q| q as f32 * 0.25));
            let m = proptest::collection::vec(entry, 1..160)
                .prop_map(move |t| Coo::from_triplets(rows, cols, t).unwrap());
            let x = proptest::collection::vec(
                (-8i32..8).prop_map(|q| q as f32 * 0.5),
                cols as usize..=cols as usize,
            );
            (m, x)
        })
        .prop_flat_map(|(m, x)| {
            (
                Just(m),
                Just(x),
                0usize..10,
                prop_oneof![Just(8u32), Just(16), Just(64)],
            )
        })
}

fn arb_config() -> impl Strategy<Value = HwConfig> {
    prop_oneof![
        Just(HwConfig::spasm_4_1()),
        Just(HwConfig::spasm_3_4()),
        Just(HwConfig::spasm_3_2()),
        Just(HwConfig::new(1, 1, 200.0)),
        Just(HwConfig::new(2, 3, 300.0)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulator_matches_csr(
        (m, x, set_id, tile) in arb_case(),
        cfg in arb_config(),
    ) {
        let table = DecompositionTable::build(&TemplateSet::table_v_set(set_id));
        let map = SubmatrixMap::from_coo(&m);
        let spasm = SpasmMatrix::encode(&map, &table, tile).unwrap();

        let mut want = vec![0.25f32; m.rows() as usize];
        Csr::from(&m).spmv(&x, &mut want).unwrap();

        let mut got = vec![0.25f32; m.rows() as usize];
        let rep = Accelerator::new(cfg.clone()).run(&spasm, &x, &mut got).unwrap();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!((g - w).abs() <= 1e-3 * (1.0 + w.abs()), "row {i}: {g} vs {w}");
        }

        // Perf model equals simulation.
        let summary = TilingSummary::analyze(&map, &table, tile).unwrap();
        prop_assert_eq!(perf::estimate_cycles(&summary, &cfg), rep.cycles);

        // Utilisations stay in (0, 1].
        prop_assert!(rep.compute_utilization > 0.0 && rep.compute_utilization <= 1.0);
        prop_assert!(rep.bandwidth_utilization > 0.0 && rep.bandwidth_utilization <= 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Class bucketing is a stable per-block permutation: within every
    /// `EXEC_BLOCK` chunk of a tile row's instance range the bucketed
    /// order visits each instance exactly once, opcode classes are
    /// contiguous and ascending, and equal-class instances keep their
    /// stream order (the stability the deferred-verify replay relies on).
    #[test]
    fn bucketing_is_a_stable_block_permutation(
        (m, _x, set_id, tile) in arb_case(),
        cfg in arb_config(),
    ) {
        let table = DecompositionTable::build(&TemplateSet::table_v_set(set_id));
        let map = SubmatrixMap::from_coo(&m);
        let spasm = SpasmMatrix::encode(&map, &table, tile).unwrap();
        let plan = Accelerator::new(cfg).prepare(&spasm).unwrap();

        let order = plan.bucket_order();
        let classes = plan.opcode_classes();
        prop_assert_eq!(order.len(), classes.len());

        let mut covered = 0usize;
        let mut r = 0usize;
        while let Some((i0, i1)) = plan.instance_range(r) {
            let mut blk = i0;
            while blk < i1 {
                let end = (blk + spasm_hw::ExecutionPlan::EXEC_BLOCK).min(i1);
                let mut seen = vec![false; end - blk];
                let mut prev: Option<(u8, u32)> = None;
                for &gi in &order[blk..end] {
                    let g = gi as usize;
                    prop_assert!(
                        (blk..end).contains(&g),
                        "bucket index {g} escapes block {blk}..{end}"
                    );
                    prop_assert!(!seen[g - blk], "instance {g} bucketed twice");
                    seen[g - blk] = true;
                    let c = classes[g];
                    if let Some((pc, pg)) = prev {
                        prop_assert!(c >= pc, "classes not ascending within a block");
                        if c == pc {
                            prop_assert!(gi > pg, "equal-class order not stable");
                        }
                    }
                    prev = Some((c, gi));
                }
                covered += end - blk;
                blk = end;
            }
            r += 1;
        }
        prop_assert_eq!(covered, order.len(), "every instance bucketed exactly once");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The execution trace totals equal the perf model, its group
    /// timelines are gap-free, and the critical-group breakdown sums to
    /// the slowest group's busy cycles.
    #[test]
    fn trace_invariants((m, _x, set_id, tile) in arb_case(), cfg in arb_config()) {
        let table = DecompositionTable::build(&TemplateSet::table_v_set(set_id));
        let map = SubmatrixMap::from_coo(&m);
        let summary = TilingSummary::analyze(&map, &table, tile).unwrap();
        let trace = spasm_hw::ExecutionTrace::capture(&summary, &cfg);
        prop_assert_eq!(trace.total_cycles(), perf::estimate_cycles(&summary, &cfg));
        let (c, x, s) = trace.critical_group_breakdown();
        let max_busy = trace.per_group_busy().iter().copied().max().unwrap_or(0);
        prop_assert_eq!(c + x + s, max_busy);
        let b = trace.balance();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&b));
    }
}
