//! ASCII spy plots: the occupancy thumbnails of the paper's Table II "GC"
//! column, rendered as text.

use crate::Coo;

/// Density characters from empty to full.
const SHADES: [char; 5] = [' ', '.', ':', '+', '#'];

/// Renders the matrix's occupancy into a `width × height` character
/// raster. Each cell aggregates the density of its sub-rectangle and maps
/// it to a shade (` .:+#`), giving the global-composition thumbnail the
/// paper prints for each workload.
///
/// # Examples
///
/// ```
/// use spasm_sparse::{spy, Coo};
///
/// # fn main() -> Result<(), spasm_sparse::SparseError> {
/// let diag = Coo::from_triplets(4, 4, (0..4).map(|i| (i, i, 1.0)).collect())?;
/// let art = spy::render(&diag, 4, 4);
/// assert!(art.lines().next().unwrap().starts_with("|#"));
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
pub fn render(matrix: &Coo, width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "spy raster must be non-empty");
    let rows = matrix.rows().max(1) as f64;
    let cols = matrix.cols().max(1) as f64;
    let mut counts = vec![0u64; width * height];
    for (r, c, _) in matrix.iter() {
        let y = ((r as f64 / rows) * height as f64) as usize;
        let x = ((c as f64 / cols) * width as f64) as usize;
        counts[y.min(height - 1) * width + x.min(width - 1)] += 1;
    }
    // Shade by density relative to the densest cell so banded and blocked
    // structures stay visible at any sparsity.
    let max = counts.iter().copied().max().unwrap_or(0).max(1) as f64;
    let mut out = String::with_capacity((width + 3) * height);
    for y in 0..height {
        out.push('|');
        for x in 0..width {
            let d = counts[y * width + x] as f64 / max;
            let shade = if d == 0.0 {
                SHADES[0]
            } else {
                // Map (0, 1] onto the non-empty shades with a sqrt curve
                // so faint structure is not swallowed.
                let idx = 1 + ((d.sqrt()) * (SHADES.len() - 2) as f64).round() as usize;
                SHADES[idx.min(SHADES.len() - 1)]
            };
            out.push(shade);
        }
        out.push('|');
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_shows_a_diagonal() {
        let t: Vec<_> = (0..64u32).map(|i| (i, i, 1.0)).collect();
        let m = Coo::from_triplets(64, 64, t).unwrap();
        let s = render(&m, 8, 8);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 8);
        for (i, line) in lines.iter().enumerate() {
            let cell = line.chars().nth(1 + i).unwrap();
            assert_ne!(cell, ' ', "diagonal cell ({i},{i}) must be shaded");
        }
        // Off-diagonal corner stays empty.
        assert_eq!(lines[0].chars().nth(8).unwrap(), ' ');
    }

    #[test]
    fn empty_matrix_renders_blank() {
        let s = render(&Coo::new(16, 16), 4, 2);
        assert!(s
            .chars()
            .filter(|c| *c != '|' && *c != '\n')
            .all(|c| c == ' '));
    }

    #[test]
    fn dense_block_saturates() {
        let mut t = Vec::new();
        for r in 0..8u32 {
            for c in 0..8u32 {
                t.push((r, c, 1.0));
            }
        }
        let m = Coo::from_triplets(16, 16, t).unwrap();
        let s = render(&m, 4, 4);
        assert_eq!(s.lines().next().unwrap().chars().nth(1).unwrap(), '#');
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_raster_rejected() {
        render(&Coo::new(4, 4), 0, 4);
    }
}
