//! Fault-injection campaign: sweep seeded fault plans through the guarded
//! execute path and assert that **no injected fault is ever silent** — every
//! execution either produces the bit-exact clean result (fault healed or
//! harmless) or takes the golden CSR fallback (and says so in its
//! [`spasm::hw::HealthReport`]), or surfaces as an error when fallback is
//! disabled.
//!
//! Requires `--features fault-injection`; registered in `crates/core` with
//! `required-features` so plain `cargo test` skips it.

use spasm::hw::fault::{FaultPlan, FaultSpec};
use spasm::hw::HwConfig;
use spasm::sparse::{Coo, Csr, MatrixDelta, SpMv};
use spasm::{DeltaOutcome, IntegrityPolicy, Pipeline, PipelineError, PipelineOptions, Prepared};

/// A 600×600 scattered matrix: 5 entries per row, no duplicates, spanning
/// three 256-row tile rows under the pinned schedule.
fn campaign_matrix() -> Coo {
    let n = 600u32;
    let mut t = Vec::new();
    for i in 0..n {
        for k in 0..5u32 {
            let j = (i * 37 + k * 13) % n;
            t.push((i, j, ((i + k) % 9 + 1) as f32 * 0.5));
        }
    }
    Coo::from_triplets(n, n, t).unwrap()
}

fn campaign_vector(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i % 13) as f32 * 0.25 - 1.5).collect()
}

fn prepare(policy: IntegrityPolicy) -> Prepared {
    let opts = PipelineOptions::default()
        .fixed_schedule(256, HwConfig::spasm_4_1())
        .integrity(policy);
    Pipeline::with_options(opts)
        .prepare(&campaign_matrix())
        .unwrap()
}

/// The fault mix for one campaign seed: rotate through transient stream
/// faults, persistent lane faults and a mixed strike with timing faults.
fn spec_for(seed: u64) -> FaultSpec {
    match seed % 4 {
        0 => FaultSpec {
            encoding_flips: 3,
            ..FaultSpec::default()
        },
        1 => FaultSpec {
            value_flips: 3,
            ..FaultSpec::default()
        },
        2 => FaultSpec {
            lane_faults: 1,
            ..FaultSpec::default()
        },
        _ => FaultSpec {
            encoding_flips: 1,
            value_flips: 1,
            channel_stalls: 2,
            ..FaultSpec::default()
        },
    }
}

fn bits(y: &[f32]) -> Vec<u32> {
    y.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn campaign_no_injected_fault_is_silent() {
    let pristine = prepare(IntegrityPolicy::full());
    let n = pristine.golden().rows() as usize;
    let x = campaign_vector(n);

    let mut y_clean = vec![0.0f32; n];
    let mut base = pristine.clone();
    base.execute_into(&x, &mut y_clean).unwrap();
    assert!(base.health().is_clean());

    let mut y_csr = vec![0.0f32; n];
    pristine.golden().spmv(&x, &mut y_csr).unwrap();

    let (mut healed, mut fallbacks, mut harmless) = (0u32, 0u32, 0u32);
    for seed in 0..64u64 {
        let spec = spec_for(seed);
        let mut p = pristine.clone();
        let plan = FaultPlan::seeded(seed, &spec, p.plan.n_instances());
        let expected_faults = plan.faults().len() as u32;
        p.plan.arm_faults(plan);

        let mut y = vec![0.0f32; n];
        p.execute_into(&x, &mut y)
            .unwrap_or_else(|e| panic!("seed {seed}: guarded execute failed: {e}"));
        let health = p.health();
        assert_eq!(
            health.faults_injected, expected_faults,
            "seed {seed}: injection accounting"
        );

        // The never-silent invariant: whatever was injected, the caller
        // got the clean accelerator bits or the golden CSR bits with the
        // fallback flag raised. Anything else is silent corruption.
        if health.fallback {
            assert!(health.needs_fallback(), "seed {seed}: fallback unforced");
            assert_eq!(bits(&y), bits(&y_csr), "seed {seed}: fallback bits");
            fallbacks += 1;
        } else {
            assert_eq!(bits(&y), bits(&y_clean), "seed {seed}: clean bits");
            assert_eq!(health.tile_rows_uncorrected, 0, "seed {seed}");
            if health.tile_rows_corrected > 0 {
                healed += 1;
            } else {
                harmless += 1;
            }
        }
    }

    // The sweep must actually exercise every rung of the ladder.
    assert!(healed > 0, "no seed exercised quarantine-and-retry");
    assert!(fallbacks > 0, "no seed exercised the golden fallback");
    assert!(
        healed + fallbacks + harmless == 64,
        "{healed} + {fallbacks} + {harmless} != 64"
    );
}

#[test]
fn campaign_without_fallback_errors_instead_of_lying() {
    let pristine = prepare(IntegrityPolicy::full().with_fallback(false));
    let n = pristine.golden().rows() as usize;
    let x = campaign_vector(n);

    let mut y_clean = vec![0.0f32; n];
    pristine.clone().execute_into(&x, &mut y_clean).unwrap();

    // Persistent lane faults survive the pristine-stream retry, so with
    // fallback disabled each seed must either leave the output bit-clean
    // (the stuck lane happened to carry only zeros) or refuse loudly.
    let mut errors = 0u32;
    for seed in 0..16u64 {
        let spec = FaultSpec {
            lane_faults: 1,
            ..FaultSpec::default()
        };
        let mut p = pristine.clone();
        p.plan
            .arm_faults(FaultPlan::seeded(seed, &spec, p.plan.n_instances()));
        let mut y = vec![0.0f32; n];
        match p.execute_into(&x, &mut y) {
            Ok(_) => assert_eq!(bits(&y), bits(&y_clean), "seed {seed}: silent corruption"),
            Err(PipelineError::Integrity { .. }) => {
                errors += 1;
                assert_eq!(bits(&y), bits(&vec![0.0f32; n]), "seed {seed}: y touched");
            }
            Err(e) => panic!("seed {seed}: unexpected error {e}"),
        }
    }
    assert!(errors > 0, "no lane fault was ever refused");
}

#[test]
fn campaign_on_a_just_spliced_stream_is_never_silent() {
    // A structural delta splices the value/encoding streams in place;
    // seeded strikes landing on the freshly spliced stream must still be
    // caught by the verify-and-heal ladder, and the golden fallback must
    // recompute against the *mutated* matrix (the lazily-rebuilt golden
    // CSR), never the pre-delta values.
    let pristine = prepare(IntegrityPolicy::full());

    // campaign_matrix row 0 holds entries at columns {0, 13, 26, 39, 52}
    // (j = k·13 % 600): patch one, delete one, insert into an empty cell.
    let delta = MatrixDelta::new()
        .patch(0, 0, 2.25)
        .delete(0, 13)
        .insert(0, 1, 1.75);
    let mut updated = pristine.clone();
    let outcome = updated.apply_delta(&delta).unwrap();
    assert!(
        matches!(outcome, DeltaOutcome::Spliced { .. }),
        "three touched submatrices must splice, got {outcome:?}"
    );

    // The lazily-rebuilt golden CSR must describe the mutated matrix.
    let mutated = {
        let mut t: Vec<(u32, u32, f32)> = campaign_matrix()
            .iter()
            .filter(|&(r, c, _)| !(r == 0 && c == 13))
            .map(|(r, c, v)| {
                if (r, c) == (0, 0) {
                    (r, c, 2.25)
                } else {
                    (r, c, v)
                }
            })
            .collect();
        t.push((0, 1, 1.75));
        Coo::from_triplets(600, 600, t).unwrap()
    };
    let n = 600usize;
    let x = campaign_vector(n);
    let mut y_csr = vec![0.0f32; n];
    Csr::from(&mutated).spmv(&x, &mut y_csr).unwrap();
    let mut y_golden = vec![0.0f32; n];
    updated.golden().spmv(&x, &mut y_golden).unwrap();
    assert_eq!(
        bits(&y_golden),
        bits(&y_csr),
        "post-splice golden must track the mutated matrix"
    );

    // Clean post-splice baseline bits.
    let mut y_clean = vec![0.0f32; n];
    updated.clone().execute_into(&x, &mut y_clean).unwrap();

    let (mut healed, mut fallbacks, mut harmless) = (0u32, 0u32, 0u32);
    for seed in 0..32u64 {
        let spec = spec_for(seed);
        let mut p = updated.clone();
        let plan = FaultPlan::seeded(seed, &spec, p.plan.n_instances());
        let expected_faults = plan.faults().len() as u32;
        p.plan.arm_faults(plan);

        let mut y = vec![0.0f32; n];
        p.execute_into(&x, &mut y)
            .unwrap_or_else(|e| panic!("seed {seed}: guarded execute failed: {e}"));
        let health = p.health();
        assert_eq!(
            health.faults_injected, expected_faults,
            "seed {seed}: injection accounting on the spliced stream"
        );
        if health.fallback {
            assert_eq!(
                bits(&y),
                bits(&y_csr),
                "seed {seed}: fallback must use updated values"
            );
            fallbacks += 1;
        } else {
            assert_eq!(bits(&y), bits(&y_clean), "seed {seed}: clean bits");
            assert_eq!(health.tile_rows_uncorrected, 0, "seed {seed}");
            if health.tile_rows_corrected > 0 {
                healed += 1;
            } else {
                harmless += 1;
            }
        }
    }
    assert!(
        healed > 0,
        "no seed exercised quarantine-and-retry post-splice"
    );
    assert!(
        fallbacks > 0,
        "no seed exercised the golden fallback post-splice"
    );
    assert_eq!(healed + fallbacks + harmless, 32);
}

#[test]
fn sampled_policy_detects_persistent_corruption_on_checked_rows() {
    // Sampled mode verifies the tile rows containing the drawn rows; a
    // persistent all-lane fault corrupts every tile row, so any sample
    // must catch it and force the fallback.
    let pristine = prepare(IntegrityPolicy::sampled(8, 0xFEED));
    let n = pristine.golden().rows() as usize;
    let x = campaign_vector(n);
    let mut y_csr = vec![0.0f32; n];
    pristine.golden().spmv(&x, &mut y_csr).unwrap();

    let mut p = pristine.clone();
    let spec = FaultSpec {
        lane_faults: 4,
        ..FaultSpec::default()
    };
    p.plan
        .arm_faults(FaultPlan::seeded(7, &spec, p.plan.n_instances()));
    let mut y = vec![0.0f32; n];
    p.execute_into(&x, &mut y).unwrap();
    let health = p.health();
    assert!(health.fallback, "sampled policy missed an all-lane fault");
    assert_eq!(bits(&y), bits(&y_csr));
}
