//! Shared plumbing for the figure/table harness binaries.
//!
//! Every binary accepts `--scale {small,medium,paper}` (default `medium`)
//! and regenerates one table or figure of the paper, printing the same
//! rows/series the paper reports. See DESIGN.md §5 for the experiment
//! index.

use spasm_workloads::{Scale, Workload};

/// Parses `--scale {small,medium,paper}` from the process arguments
/// (default: medium).
///
/// # Panics
///
/// Panics with a usage message on an unknown scale value.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        None => Scale::Medium,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("small") => Scale::Small,
            Some("medium") => Scale::Medium,
            Some("paper") => Scale::Paper,
            other => panic!(
                "usage: --scale {{small,medium,paper}} (got {:?})",
                other.unwrap_or("<missing>")
            ),
        },
    }
}

/// Parses `--smoke` from the process arguments and, when present, switches
/// the timing harness to single-iteration mode (see [`timing::set_smoke`]).
/// Returns whether smoke mode is active. CI runs every bench binary with
/// `--smoke` so they cannot bit-rot without paying a full measurement run.
pub fn smoke_from_args() -> bool {
    let smoke = std::env::args().any(|a| a == "--smoke");
    timing::set_smoke(smoke);
    if smoke {
        eprintln!("  [smoke] single-iteration mode: timings are not meaningful");
    }
    smoke
}

/// Whether the opt-in performance floors are armed (`SPASM_BENCH_ASSERT=1`
/// in the environment). Off by default so ordinary bench runs only report.
pub fn assertions_requested() -> bool {
    std::env::var("SPASM_BENCH_ASSERT").is_ok_and(|v| v == "1")
}

/// Opt-in speedup floor: when `SPASM_BENCH_ASSERT=1`, asserts the measured
/// `speedup` clears `floor`. Skipped (with a note on stderr) when the
/// assertions are not requested, when the harness runs in `--smoke` mode
/// (single-iteration timings are noise), or when the host has fewer than 4
/// cores — laptop-class CI runners produce unstable ratios that would make
/// the floor flaky.
///
/// # Panics
///
/// Panics when assertions are armed and the floor is not met.
pub fn maybe_assert_speedup(label: &str, speedup: f64, floor: f64) {
    if !assertions_requested() {
        return;
    }
    if timing::is_smoke() {
        eprintln!("  [assert] {label}: skipped in --smoke mode");
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores < 4 {
        eprintln!("  [assert] {label}: skipped on {cores}-core host (need >= 4)");
        return;
    }
    assert!(
        speedup >= floor,
        "{label}: measured speedup {speedup:.3}x below the {floor:.2}x floor"
    );
    eprintln!("  [assert] {label}: {speedup:.3}x >= {floor:.2}x floor — ok");
}

/// The host's core count as the benches see it.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// JSON fragment recording the active cargo feature set and the host core
/// count — spliced into every bench artifact so JSONs produced by
/// different CI configurations (serial vs parallel, scalar vs simd,
/// laptop vs runner) are distinguishable after the fact. The fragment is
/// two complete `"key": value,` lines, indented for a top-level object.
pub fn metadata_json() -> String {
    format!(
        "  \"features\": {{\"parallel\": {}, \"simd\": {}}},\n  \"cores\": {},\n",
        cfg!(feature = "parallel"),
        cfg!(feature = "simd"),
        host_cores()
    )
}

/// Human label for a scale.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small (~1/32 edge)",
        Scale::Medium => "medium (~1/8 edge)",
        Scale::Paper => "paper (Table II sizes)",
    }
}

/// Geometric mean (re-exported for harness summaries).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    spasm_sparse::storage::geometric_mean(values)
}

/// Iterates the full Table II suite with a progress note on stderr.
pub fn for_each_workload(scale: Scale, mut f: impl FnMut(Workload, spasm_sparse::Coo)) {
    for w in Workload::ALL {
        eprintln!("  [gen] {w} ...");
        let m = w.generate(scale);
        f(w, m);
    }
}

/// Prints a horizontal rule sized to a table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// A tiny self-contained timing harness for the `harness = false` benches.
///
/// The environment cannot fetch `criterion`, so the benches measure with
/// `std::time::Instant` directly: one warm-up call calibrates an iteration
/// count that fills a ~200 ms window, then mean and minimum wall-clock are
/// reported. Minimums are the robust statistic to compare across runs.
pub mod timing {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    static SMOKE: AtomicBool = AtomicBool::new(false);

    /// Switches the harness to smoke mode: every [`bench`] runs exactly one
    /// measured iteration (after the warm-up call) instead of calibrating a
    /// ~200 ms window. For CI liveness checks, not for measurement.
    pub fn set_smoke(smoke: bool) {
        SMOKE.store(smoke, Ordering::SeqCst);
    }

    /// Whether smoke mode is active.
    pub fn is_smoke() -> bool {
        SMOKE.load(Ordering::SeqCst)
    }

    /// One benchmark result.
    #[derive(Debug, Clone)]
    pub struct Measurement {
        /// Benchmark label.
        pub label: String,
        /// Iterations measured (after one warm-up call).
        pub iters: u32,
        /// Mean wall-clock per iteration.
        pub mean: Duration,
        /// Minimum wall-clock over all iterations.
        pub min: Duration,
    }

    impl Measurement {
        /// `other`'s minimum divided by this one's — how many times faster
        /// `self` is.
        pub fn speedup_over(&self, other: &Measurement) -> f64 {
            other.min.as_secs_f64() / self.min.as_secs_f64().max(1e-12)
        }
    }

    /// Times `f`, prints one table row, and returns the measurement.
    pub fn bench<T>(label: &str, mut f: impl FnMut() -> T) -> Measurement {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed();
        let target = Duration::from_millis(200);
        let iters = if is_smoke() {
            1
        } else {
            (target.as_secs_f64() / once.as_secs_f64().max(1e-9)).clamp(1.0, 1000.0) as u32
        };

        let mut min = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(f());
            let d = t.elapsed();
            total += d;
            if d < min {
                min = d;
            }
        }
        let m = Measurement {
            label: label.to_string(),
            iters,
            mean: total / iters,
            min,
        };
        println!(
            "{:<44} {:>12.3?} mean {:>12.3?} min  ({:>4} iters)",
            m.label, m.mean, m.min, m.iters
        );
        m
    }

    /// Prints a `serial vs parallel` comparison line. On single-core
    /// machines (or serial builds) the ratio hovers around 1.0 — the
    /// benches report, they do not assert.
    pub fn report_speedup(what: &str, serial: &Measurement, parallel: &Measurement) {
        println!(
            "  -> {what}: parallel is {:.2}x vs serial (min {:?} vs {:?})",
            parallel.speedup_over(serial),
            parallel.min,
            serial.min
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_passthrough() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scale_names() {
        assert!(scale_name(Scale::Paper).contains("paper"));
    }

    #[test]
    fn metadata_fragment_reflects_build() {
        let md = metadata_json();
        assert!(md.contains("\"features\""));
        assert!(md.contains(&format!("\"parallel\": {}", cfg!(feature = "parallel"))));
        assert!(md.contains(&format!("\"simd\": {}", cfg!(feature = "simd"))));
        assert!(md.contains(&format!("\"cores\": {}", host_cores())));
    }
}
