//! Hardware configurations (Table IV).

use std::fmt;

/// Bandwidth of one HBM pseudo-channel on the Alveo U280:
/// 460 GB/s total across 32 channels.
pub const HBM_CHANNEL_GBS: f64 = 460.0 / 32.0;

/// PEs per PE group (fixed by the architecture).
pub const PES_PER_GROUP: u32 = 16;

/// PEs sharing one HBM channel for the matrix value stream.
pub const PES_PER_VALUE_CHANNEL: u32 = 4;

/// FLOPs one PE retires per fully-fed cycle: 4 multiplies + up to 4 adds.
pub const FLOPS_PER_PE_CYCLE: f64 = 8.0;

/// Static board power: FPGA shell, HBM refresh, host link (watts).
///
/// Together with [`DYNAMIC_POWER_W`] this reproduces the paper's measured
/// 58 W (Table VII) at the suite's typical ~50 % compute utilisation.
pub const STATIC_POWER_W: f64 = 40.0;

/// Dynamic power of the fully-active datapath (watts at 100 % compute
/// utilisation).
pub const DYNAMIC_POWER_W: f64 = 36.0;

/// A SPASM hardware configuration, parameterised by `NUM_PE_GROUP` and
/// `NUM_XVEC_CH` (Section IV-D3).
///
/// Channel budget: `1 + NUM_PE_GROUP × (NUM_XVEC_CH + 6)` HBM channels —
/// per group, 4 value channels + 1 position-encoding channel + 1 merge
/// channel + `NUM_XVEC_CH` x channels, plus one global y channel.
///
/// The three shipped bitstreams of Table IV are provided as constants;
/// their frequency, bandwidth and peak-performance figures match the
/// paper's table when run through [`HwConfig::bandwidth_gbs`] and
/// [`HwConfig::peak_gflops`].
#[derive(Debug, Clone, PartialEq)]
pub struct HwConfig {
    /// Configuration name, `SPASM_{groups}_{xvec}` for the shipped ones.
    pub name: String,
    /// Number of PE groups (16 PEs each).
    pub num_pe_groups: u32,
    /// HBM channels per group dedicated to loading x.
    pub num_xvec_ch: u32,
    /// Post-route clock frequency in MHz.
    pub frequency_mhz: f64,
}

impl HwConfig {
    /// Builds a custom configuration with a synthesised name.
    ///
    /// # Panics
    ///
    /// Panics if `num_pe_groups` or `num_xvec_ch` is zero, or the channel
    /// budget exceeds the U280's 32 HBM channels.
    pub fn new(num_pe_groups: u32, num_xvec_ch: u32, frequency_mhz: f64) -> Self {
        assert!(
            num_pe_groups > 0 && num_xvec_ch > 0,
            "need at least one group and x channel"
        );
        let cfg = HwConfig {
            name: format!("SPASM_{num_pe_groups}_{num_xvec_ch}"),
            num_pe_groups,
            num_xvec_ch,
            frequency_mhz,
        };
        assert!(
            cfg.hbm_channels() <= 32,
            "{} needs {} HBM channels, U280 has 32",
            cfg.name,
            cfg.hbm_channels()
        );
        cfg
    }

    /// Validates an already-constructed configuration without panicking —
    /// the deserialisation path for configurations read from untrusted
    /// wire bytes. Checks the same invariants as [`HwConfig::new`] plus
    /// that the clock frequency is finite and positive.
    pub fn checked(self) -> Result<Self, &'static str> {
        if self.num_pe_groups == 0 || self.num_xvec_ch == 0 {
            return Err("need at least one group and x channel");
        }
        if self.hbm_channels() > 32 {
            return Err("channel budget exceeds the U280's 32 HBM channels");
        }
        if !self.frequency_mhz.is_finite() || self.frequency_mhz <= 0.0 {
            return Err("clock frequency must be finite and positive");
        }
        Ok(self)
    }

    /// `SPASM_4_1` (Table IV): 252 MHz, 417 GB/s, 129 GFLOP/s.
    pub fn spasm_4_1() -> Self {
        HwConfig::new(4, 1, 252.0)
    }

    /// `SPASM_3_4` (Table IV): 265 MHz, 446 GB/s, 102 GFLOP/s.
    pub fn spasm_3_4() -> Self {
        HwConfig::new(3, 4, 265.0)
    }

    /// `SPASM_3_2` (Table IV): 251 MHz, 360 GB/s, 96.4 GFLOP/s.
    pub fn spasm_3_2() -> Self {
        HwConfig::new(3, 2, 251.0)
    }

    /// The three pre-synthesised bitstreams the paper's scheduler selects
    /// among.
    pub fn shipped() -> Vec<HwConfig> {
        vec![Self::spasm_4_1(), Self::spasm_3_4(), Self::spasm_3_2()]
    }

    /// Total PEs (`16 × groups`).
    pub fn num_pes(&self) -> u32 {
        PES_PER_GROUP * self.num_pe_groups
    }

    /// HBM channels consumed: `1 + groups × (xvec + 6)`.
    pub fn hbm_channels(&self) -> u32 {
        1 + self.num_pe_groups * (self.num_xvec_ch + 6)
    }

    /// Aggregate bandwidth in GB/s.
    pub fn bandwidth_gbs(&self) -> f64 {
        self.hbm_channels() as f64 * HBM_CHANNEL_GBS
    }

    /// Peak arithmetic throughput in GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.num_pes() as f64 * FLOPS_PER_PE_CYCLE * self.frequency_mhz / 1000.0
    }

    /// Bytes one HBM channel delivers per accelerator clock cycle.
    pub fn channel_bytes_per_cycle(&self) -> f64 {
        HBM_CHANNEL_GBS * 1e9 / (self.frequency_mhz * 1e6)
    }

    /// Steady-state template instances a fed PE issues per cycle.
    ///
    /// Both shared streams impose the same bound: a value channel feeds 4
    /// PEs at 16 B/instance and the position-encoding channel feeds 16 PEs
    /// at 4 B/instance, each allowing `channel_bytes_per_cycle / 64`
    /// instances per PE per cycle; the VALU caps it at 1.
    pub fn issue_rate(&self) -> f64 {
        (self.channel_bytes_per_cycle() / 64.0).min(1.0)
    }

    /// Bytes per cycle of x-vector bandwidth available to one PE
    /// (`NUM_XVEC_CH` channels shared by the group's 16 PEs).
    pub fn xvec_bytes_per_cycle_per_pe(&self) -> f64 {
        self.num_xvec_ch as f64 * self.channel_bytes_per_cycle() / PES_PER_GROUP as f64
    }

    /// Converts a cycle count to seconds at this configuration's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.frequency_mhz * 1e6)
    }

    /// Activity-based power estimate: static board power plus dynamic
    /// power scaled by compute utilisation. At the workload suite's
    /// typical ~50 % utilisation this gives the paper's measured 58 W.
    pub fn power_estimate_w(&self, compute_utilization: f64) -> f64 {
        STATIC_POWER_W + DYNAMIC_POWER_W * compute_utilization.clamp(0.0, 1.0)
    }

    /// The HBM channel assignment of Fig. 7: per group, 4 value channels,
    /// one position-encoding channel, one partial-sum merge channel and
    /// `NUM_XVEC_CH` x channels; one global y channel at index 0.
    pub fn channel_map(&self) -> Vec<ChannelRole> {
        let mut map = vec![ChannelRole::YVector];
        for group in 0..self.num_pe_groups {
            for ch in 0..PES_PER_GROUP / PES_PER_VALUE_CHANNEL {
                map.push(ChannelRole::MatrixValues {
                    group,
                    first_pe: ch * PES_PER_VALUE_CHANNEL,
                });
            }
            map.push(ChannelRole::PositionEncodings { group });
            map.push(ChannelRole::PartialSumMerge { group });
            for ch in 0..self.num_xvec_ch {
                map.push(ChannelRole::XVector { group, channel: ch });
            }
        }
        debug_assert_eq!(map.len(), self.hbm_channels() as usize);
        map
    }
}

/// The role of one HBM channel in the accelerator's memory map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelRole {
    /// The single channel loading and updating the y vector.
    YVector,
    /// Matrix value stream for 4 PEs of a group, starting at `first_pe`.
    MatrixValues {
        /// PE group index.
        group: u32,
        /// First of the 4 PEs this channel feeds.
        first_pe: u32,
    },
    /// The group-shared position-encoding stream.
    PositionEncodings {
        /// PE group index.
        group: u32,
    },
    /// The group's partial-sum merge traffic.
    PartialSumMerge {
        /// PE group index.
        group: u32,
    },
    /// One of the group's x-vector load channels.
    XVector {
        /// PE group index.
        group: u32,
        /// Channel index within the group's x set.
        channel: u32,
    },
}

impl fmt::Display for HwConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} PEs, {:.0} GB/s, {:.1} GFLOP/s @ {:.0} MHz)",
            self.name,
            self.num_pes(),
            self.bandwidth_gbs(),
            self.peak_gflops(),
            self.frequency_mhz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_figures_reproduce() {
        let c41 = HwConfig::spasm_4_1();
        assert_eq!(c41.hbm_channels(), 29);
        assert!(
            (c41.bandwidth_gbs() - 417.0).abs() < 1.0,
            "{}",
            c41.bandwidth_gbs()
        );
        assert!(
            (c41.peak_gflops() - 129.0).abs() < 0.1,
            "{}",
            c41.peak_gflops()
        );

        let c34 = HwConfig::spasm_3_4();
        assert_eq!(c34.hbm_channels(), 31);
        assert!(
            (c34.bandwidth_gbs() - 446.0).abs() < 1.0,
            "{}",
            c34.bandwidth_gbs()
        );
        assert!(
            (c34.peak_gflops() - 102.0).abs() < 0.5,
            "{}",
            c34.peak_gflops()
        );

        let c32 = HwConfig::spasm_3_2();
        assert_eq!(c32.hbm_channels(), 25);
        assert!(
            (c32.bandwidth_gbs() - 360.0).abs() < 1.0,
            "{}",
            c32.bandwidth_gbs()
        );
        assert!(
            (c32.peak_gflops() - 96.4).abs() < 0.1,
            "{}",
            c32.peak_gflops()
        );
    }

    #[test]
    fn issue_rate_below_one_for_shipped_configs() {
        for c in HwConfig::shipped() {
            let r = c.issue_rate();
            assert!(r > 0.8 && r < 1.0, "{}: {r}", c.name);
        }
    }

    #[test]
    #[should_panic(expected = "32")]
    fn channel_budget_enforced() {
        HwConfig::new(4, 2, 250.0); // 1 + 4*8 = 33 channels
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_groups_rejected() {
        HwConfig::new(0, 1, 250.0);
    }

    #[test]
    fn cycles_to_seconds() {
        let c = HwConfig::new(1, 1, 250.0);
        assert!((c.cycles_to_seconds(250_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_model_hits_table_vii_at_half_utilisation() {
        let c = HwConfig::spasm_4_1();
        assert!((c.power_estimate_w(0.5) - 58.0).abs() < 1e-9);
        assert_eq!(c.power_estimate_w(-1.0), STATIC_POWER_W);
        assert_eq!(c.power_estimate_w(2.0), STATIC_POWER_W + DYNAMIC_POWER_W);
    }

    #[test]
    fn channel_map_covers_budget_exactly() {
        for c in HwConfig::shipped() {
            let map = c.channel_map();
            assert_eq!(map.len(), c.hbm_channels() as usize, "{}", c.name);
            assert_eq!(
                map.iter()
                    .filter(|r| matches!(r, ChannelRole::YVector))
                    .count(),
                1
            );
            let values = map
                .iter()
                .filter(|r| matches!(r, ChannelRole::MatrixValues { .. }))
                .count();
            assert_eq!(values as u32, 4 * c.num_pe_groups);
            let xch = map
                .iter()
                .filter(|r| matches!(r, ChannelRole::XVector { .. }))
                .count();
            assert_eq!(xch as u32, c.num_xvec_ch * c.num_pe_groups);
        }
    }

    #[test]
    fn value_channels_partition_the_pes() {
        let c = HwConfig::spasm_4_1();
        let mut firsts: Vec<(u32, u32)> = c
            .channel_map()
            .into_iter()
            .filter_map(|r| match r {
                ChannelRole::MatrixValues { group, first_pe } => Some((group, first_pe)),
                _ => None,
            })
            .collect();
        firsts.sort_unstable();
        let expect: Vec<(u32, u32)> = (0..4)
            .flat_map(|g| (0..4).map(move |k| (g, k * 4)))
            .collect();
        assert_eq!(firsts, expect);
    }
}
