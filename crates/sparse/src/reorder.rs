//! Matrix reordering: permutations that concentrate non-zeros, improving
//! both classic banded formats and SPASM's local-pattern density.
//!
//! The paper's amortisation discussion builds on reordering studies
//! (Trotter et al., SC'23): in iterative scientific computing the same
//! matrix is reused across thousands of SpMVs, so a one-off permutation is
//! free in the same sense SPASM preprocessing is. Reverse Cuthill–McKee
//! is the standard bandwidth-reducing choice.

use std::collections::VecDeque;

use crate::{Coo, Index, SparseError};

/// A symmetric permutation of a square matrix: `new_index[old_index]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<Index>,
}

impl Permutation {
    /// The identity permutation of length `n`.
    pub fn identity(n: Index) -> Self {
        Permutation {
            forward: (0..n).collect(),
        }
    }

    /// Builds a permutation from the `new_index[old_index]` mapping.
    ///
    /// # Errors
    ///
    /// Returns an error if the mapping is not a bijection on `0..len`.
    pub fn from_forward(forward: Vec<Index>) -> Result<Self, SparseError> {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &t in &forward {
            if t as usize >= n || seen[t as usize] {
                return Err(SparseError::ParseError {
                    line: 0,
                    message: "permutation is not a bijection".into(),
                });
            }
            seen[t as usize] = true;
        }
        Ok(Permutation { forward })
    }

    /// Number of elements permuted.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether this permutes nothing.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The new index of `old`.
    ///
    /// # Panics
    ///
    /// Panics if `old` is out of range.
    pub fn apply(&self, old: Index) -> Index {
        self.forward[old as usize]
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as Index; self.forward.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            inv[new as usize] = old as Index;
        }
        Permutation { forward: inv }
    }

    /// Permutes a dense vector: `out[p(i)] = v[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.len()`.
    pub fn permute_vec<T: Copy + Default>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.forward.len(), "vector length mismatch");
        let mut out = vec![T::default(); v.len()];
        for (old, &x) in v.iter().enumerate() {
            out[self.forward[old] as usize] = x;
        }
        out
    }
}

/// Applies a symmetric permutation to a square matrix:
/// `B[p(i)][p(j)] = A[i][j]`.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if the matrix is not square
/// or the permutation length differs from the dimension.
pub fn permute_symmetric(matrix: &Coo, p: &Permutation) -> Result<Coo, SparseError> {
    if matrix.rows() != matrix.cols() {
        return Err(SparseError::DimensionMismatch {
            expected: matrix.rows() as usize,
            actual: matrix.cols() as usize,
            operand: "x",
        });
    }
    if p.len() != matrix.rows() as usize {
        return Err(SparseError::DimensionMismatch {
            expected: matrix.rows() as usize,
            actual: p.len(),
            operand: "x",
        });
    }
    let triplets = matrix
        .iter()
        .map(|(r, c, v)| (p.apply(r), p.apply(c), v))
        .collect();
    Coo::from_triplets(matrix.rows(), matrix.cols(), triplets)
}

/// The matrix bandwidth: `max |i − j|` over stored entries (0 for empty
/// or diagonal matrices).
pub fn bandwidth(matrix: &Coo) -> u32 {
    matrix
        .iter()
        .map(|(r, c, _)| r.abs_diff(c))
        .max()
        .unwrap_or(0)
}

/// Reverse Cuthill–McKee ordering of a square matrix's structure
/// (symmetrised as `A + Aᵀ`): BFS from a low-degree vertex per component,
/// neighbours visited in ascending degree, final order reversed.
///
/// Returns the `new_index[old_index]` permutation.
///
/// # Examples
///
/// ```
/// use spasm_sparse::reorder::{bandwidth, permute_symmetric, rcm};
/// use spasm_sparse::Coo;
///
/// # fn main() -> Result<(), spasm_sparse::SparseError> {
/// // An arrow matrix: terrible bandwidth until reordered.
/// let mut t = vec![(0u32, 7u32, 1.0f32), (7, 0, 1.0)];
/// for i in 0..8 { t.push((i, i, 2.0)); }
/// let a = Coo::from_triplets(8, 8, t)?;
/// let p = rcm(&a)?;
/// let b = permute_symmetric(&a, &p)?;
/// assert!(bandwidth(&b) <= bandwidth(&a));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if the matrix is not square.
pub fn rcm(matrix: &Coo) -> Result<Permutation, SparseError> {
    if matrix.rows() != matrix.cols() {
        return Err(SparseError::DimensionMismatch {
            expected: matrix.rows() as usize,
            actual: matrix.cols() as usize,
            operand: "x",
        });
    }
    let n = matrix.rows() as usize;
    // Symmetrised adjacency (structure only, self-loops dropped).
    let mut adj: Vec<Vec<Index>> = vec![Vec::new(); n];
    for (r, c, _) in matrix.iter() {
        if r != c {
            adj[r as usize].push(c);
            adj[c as usize].push(r);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let degree = |v: usize| adj[v].len();

    let mut order: Vec<Index> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // Process components from their minimum-degree vertex, scanning
    // vertices in index order for determinism.
    let mut by_degree: Vec<Index> = (0..n as Index).collect();
    by_degree.sort_by_key(|&v| (degree(v as usize), v));
    for &start in &by_degree {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut next: Vec<Index> = adj[v as usize]
                .iter()
                .copied()
                .filter(|&u| !visited[u as usize])
                .collect();
            next.sort_by_key(|&u| (degree(u as usize), u));
            for u in next {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    // order[k] = old index placed at new position k → forward map.
    let mut forward = vec![0 as Index; n];
    for (new_pos, &old) in order.iter().enumerate() {
        forward[old as usize] = new_pos as Index;
    }
    Ok(Permutation { forward })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpMv;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn banded(n: u32, half_band: u32) -> Coo {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            for k in 1..=half_band {
                if i + k < n {
                    t.push((i, i + k, -1.0));
                    t.push((i + k, i, -1.0));
                }
            }
        }
        Coo::from_triplets(n, n, t).unwrap()
    }

    fn shuffled(m: &Coo, seed: u64) -> (Coo, Permutation) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut fwd: Vec<u32> = (0..m.rows()).collect();
        fwd.shuffle(&mut rng);
        let p = Permutation::from_forward(fwd).unwrap();
        (permute_symmetric(m, &p).unwrap(), p)
    }

    #[test]
    fn permutation_validation() {
        assert!(Permutation::from_forward(vec![0, 1, 2]).is_ok());
        assert!(Permutation::from_forward(vec![0, 0, 2]).is_err());
        assert!(Permutation::from_forward(vec![0, 5, 1]).is_err());
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::from_forward(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.apply(p.apply(i)), i);
        }
        let v = [10.0f32, 20.0, 30.0, 40.0];
        assert_eq!(inv.permute_vec(&p.permute_vec(&v)), v);
    }

    #[test]
    fn rcm_recovers_band_after_shuffle() {
        let m = banded(256, 2);
        let original_bw = bandwidth(&m);
        let (scrambled, _) = shuffled(&m, 9);
        assert!(
            bandwidth(&scrambled) > 10 * original_bw,
            "shuffle must destroy the band"
        );
        let p = rcm(&scrambled).unwrap();
        let restored = permute_symmetric(&scrambled, &p).unwrap();
        assert!(
            bandwidth(&restored) <= 2 * original_bw,
            "RCM bandwidth {} vs original {original_bw}",
            bandwidth(&restored)
        );
    }

    #[test]
    fn permutation_preserves_spmv_semantics() {
        let m = banded(64, 3);
        let (scrambled, p) = shuffled(&m, 11);
        // y' on the permuted system equals P·y of the original when x is
        // permuted the same way.
        let x: Vec<f32> = (0..64).map(|i| (i as f32) * 0.25 - 4.0).collect();
        let mut y = vec![0.0f32; 64];
        m.spmv(&x, &mut y).unwrap();

        let xp = p.permute_vec(&x);
        let mut yp = vec![0.0f32; 64];
        scrambled.spmv(&xp, &mut yp).unwrap();
        for i in 0..64u32 {
            let a = yp[p.apply(i) as usize];
            let b = y[i as usize];
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn rcm_handles_disconnected_and_empty() {
        // Two components + an isolated vertex.
        let m = Coo::from_triplets(
            5,
            5,
            vec![(0, 1, 1.0), (1, 0, 1.0), (3, 4, 1.0), (4, 3, 1.0)],
        )
        .unwrap();
        let p = rcm(&m).unwrap();
        assert_eq!(p.len(), 5);
        assert!(permute_symmetric(&m, &p).is_ok());
        assert_eq!(rcm(&Coo::new(0, 0)).unwrap().len(), 0);
    }

    #[test]
    fn rectangular_rejected() {
        let m = Coo::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap();
        assert!(rcm(&m).is_err());
        let p = Permutation::identity(2);
        assert!(permute_symmetric(&m, &p).is_err());
    }
}
