//! Property tests: the SPASM encoding is lossless and its SpMV agrees with
//! the reference for arbitrary matrices, portfolios and tile sizes.

use proptest::prelude::*;
use spasm_format::{SpasmMatrix, SubmatrixMap, TilingSummary};
use spasm_patterns::{DecompositionTable, TemplateSet};
use spasm_sparse::{Coo, SpMv};

fn arb_matrix() -> impl Strategy<Value = Coo> {
    (4u32..64, 4u32..64).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, (1i32..64).prop_map(|q| q as f32 * 0.25));
        proptest::collection::vec(entry, 0..128)
            .prop_map(move |t| Coo::from_triplets(rows, cols, t).unwrap())
    })
}

fn arb_table() -> impl Strategy<Value = DecompositionTable> {
    (0usize..10).prop_map(|i| DecompositionTable::build(&TemplateSet::table_v_set(i)))
}

fn arb_tile() -> impl Strategy<Value = u32> {
    prop_oneof![Just(4u32), Just(8), Just(16), Just(32), Just(64), Just(128)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity on matrices without explicit zeros.
    #[test]
    fn encode_decode_identity(
        m in arb_matrix(), table in arb_table(), tile in arb_tile()
    ) {
        let spasm = SpasmMatrix::encode(&SubmatrixMap::from_coo(&m), &table, tile).unwrap();
        prop_assert_eq!(spasm.to_coo(), m);
    }

    /// SpMV on the encoded stream equals CSR SpMV.
    #[test]
    fn spmv_equals_reference(
        (m, x) in arb_matrix().prop_flat_map(|m| {
            let cols = m.cols() as usize;
            let x = proptest::collection::vec(
                (-16i32..16).prop_map(|q| q as f32 * 0.5), cols..=cols);
            (Just(m), x)
        }),
        table in arb_table(),
        tile in arb_tile(),
    ) {
        let spasm = SpasmMatrix::encode(&SubmatrixMap::from_coo(&m), &table, tile).unwrap();
        let mut want = vec![0.0f32; m.rows() as usize];
        spasm_sparse::Csr::from(&m).spmv(&x, &mut want).unwrap();
        let got = spasm.spmv_alloc(&x).unwrap();
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() <= 1e-3 * (1.0 + w.abs()), "{g} vs {w}");
        }
    }

    /// Padding identity: slots = 4·instances = nnz + paddings (each nz is
    /// carried exactly once).
    #[test]
    fn slot_accounting(m in arb_matrix(), table in arb_table(), tile in arb_tile()) {
        let spasm = SpasmMatrix::encode(&SubmatrixMap::from_coo(&m), &table, tile).unwrap();
        prop_assert_eq!(
            4 * spasm.n_instances() as u64,
            m.nnz() as u64 + spasm.paddings()
        );
    }

    /// The instance stream is invariant in total size across tile sizes
    /// (tiling regroups instances but never changes the decomposition).
    #[test]
    fn instance_count_tile_invariant(m in arb_matrix(), table in arb_table()) {
        let map = SubmatrixMap::from_coo(&m);
        let counts: Vec<usize> = [4u32, 16, 64]
            .iter()
            .map(|&t| SpasmMatrix::encode(&map, &table, t).unwrap().n_instances())
            .collect();
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    /// TilingSummary agrees with the full encoder on every tile's counts.
    #[test]
    fn summary_matches_encode(m in arb_matrix(), table in arb_table(), tile in arb_tile()) {
        let map = SubmatrixMap::from_coo(&m);
        let s = TilingSummary::analyze(&map, &table, tile).unwrap();
        let full = SpasmMatrix::encode(&map, &table, tile).unwrap();
        prop_assert_eq!(s.n_instances(), full.n_instances());
        let a: Vec<_> = s.tiles().iter().map(|t| (t.tile_row, t.tile_col, t.n_instances)).collect();
        let b: Vec<_> = full.tiles().iter().map(|t| (t.tile_row, t.tile_col, t.n_instances)).collect();
        prop_assert_eq!(a, b);
    }

    /// Exactly one CE flag per tile; RE implies it is the last tile of its
    /// row.
    #[test]
    fn flag_invariants(m in arb_matrix(), table in arb_table(), tile in arb_tile()) {
        let spasm = SpasmMatrix::encode(&SubmatrixMap::from_coo(&m), &table, tile).unwrap();
        for t in spasm.tiles() {
            let insts: Vec<_> = spasm.tile_instances(t).collect();
            let ces = insts.iter().filter(|i| i.encoding.ce()).count();
            prop_assert_eq!(ces, 1, "one CE per non-empty tile");
            prop_assert!(insts.last().unwrap().encoding.ce());
        }
        let re_tiles: Vec<u32> = spasm
            .tiles()
            .iter()
            .filter(|t| spasm.tile_instances(t).last().unwrap().encoding.re())
            .map(|t| t.tile_row)
            .collect();
        // one RE per distinct tile row
        let mut rows: Vec<u32> = spasm.tiles().iter().map(|t| t.tile_row).collect();
        rows.dedup();
        prop_assert_eq!(re_tiles, rows);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wire serialisation round-trips and preserves SpMV semantics.
    #[test]
    fn wire_round_trip(m in arb_matrix(), table in arb_table(), tile in arb_tile()) {
        let spasm = SpasmMatrix::encode(&SubmatrixMap::from_coo(&m), &table, tile).unwrap();
        let bytes = spasm.to_bytes();
        let back = SpasmMatrix::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &spasm);
        let x = vec![0.5f32; m.cols() as usize];
        prop_assert_eq!(spasm.spmv_alloc(&x).unwrap(), back.spmv_alloc(&x).unwrap());
    }

    /// Any truncation of a valid stream is rejected, never mis-parsed.
    #[test]
    fn wire_truncation_rejected(
        m in arb_matrix(), table in arb_table(), cut_frac in 0.0f64..1.0
    ) {
        let spasm = SpasmMatrix::encode(&SubmatrixMap::from_coo(&m), &table, 64).unwrap();
        let bytes = spasm.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(SpasmMatrix::from_bytes(&bytes[..cut]).is_err());
        }
    }

    /// Flipping any bit anywhere in a valid stream never panics the
    /// decoder: it returns an error (normally the checksum catching the
    /// flip) or a matrix that re-serialises and round-trips.
    #[test]
    fn wire_bit_flips_never_panic(
        m in arb_matrix(), table in arb_table(),
        pos_frac in 0.0f64..1.0, bit in 0u8..8
    ) {
        let spasm = SpasmMatrix::encode(&SubmatrixMap::from_coo(&m), &table, 64).unwrap();
        let mut bytes = spasm.to_bytes().to_vec();
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        if let Ok(back) = SpasmMatrix::from_bytes(&bytes) {
            let again = SpasmMatrix::from_bytes(&back.to_bytes()).unwrap();
            prop_assert_eq!(again, back);
        }
    }

    /// Corruption behind a *valid* checksum (the adversarial case: the
    /// payload is mutated and the CRC restamped — covering the tile
    /// directory's count fields among everything else) still never
    /// panics: the structural validators reject it or the decoded matrix
    /// round-trips.
    #[test]
    fn wire_restamped_mutations_never_panic(
        m in arb_matrix(), table in arb_table(),
        pos_frac in 0.0f64..1.0, xor in 1u8..=255
    ) {
        use spasm_format::{crc32, CHECKSUM_BYTES};
        let spasm = SpasmMatrix::encode(&SubmatrixMap::from_coo(&m), &table, 64).unwrap();
        let mut bytes = spasm.to_bytes().to_vec();
        let payload = bytes.len() - CHECKSUM_BYTES;
        // Mutate past the magic/version words so the corruption lands in
        // the size fields, template table, tile directory or stream.
        let lo = 8.min(payload - 1);
        let pos = lo + (((payload - 1 - lo) as f64) * pos_frac) as usize;
        bytes[pos] ^= xor;
        let crc = crc32(&bytes[..payload]).to_le_bytes();
        bytes[payload..].copy_from_slice(&crc);
        if let Ok(back) = SpasmMatrix::from_bytes(&bytes) {
            let again = SpasmMatrix::from_bytes(&back.to_bytes()).unwrap();
            prop_assert_eq!(again, back);
        }
    }
}
