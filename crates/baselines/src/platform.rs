//! The [`Platform`] trait and the three baseline models.

use crate::calib;
use crate::profile::MatrixProfile;

/// Static specification of a platform (Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformSpec {
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Aggregate memory bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Peak arithmetic throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Average power draw in watts (Table VII).
    pub power_w: f64,
}

/// Metrics of one SpMV execution on a platform, in the units the paper
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformReport {
    /// Platform name.
    pub name: String,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Throughput `(2·nnz + rows) / time`, GFLOP/s.
    pub gflops: f64,
    /// Bandwidth efficiency, (GFLOP/s)/(GB/s).
    pub bandwidth_eff: f64,
    /// Energy efficiency, (GFLOP/s)/W.
    pub energy_eff: f64,
    /// Fraction of peak compute used.
    pub compute_utilization: f64,
    /// Fraction of the platform's aggregate bandwidth used
    /// (modelled traffic / time / bandwidth).
    pub bandwidth_utilization: f64,
}

/// An SpMV execution platform: a spec plus a time estimator.
pub trait Platform {
    /// Platform name as it appears in the paper's figures.
    fn name(&self) -> &str;

    /// Static specification.
    fn spec(&self) -> PlatformSpec;

    /// Estimated SpMV execution time in seconds for a matrix profile.
    fn estimate_seconds(&self, profile: &MatrixProfile) -> f64;

    /// Modelled HBM/DRAM traffic for one SpMV, in bytes. The default is
    /// the common FPGA stream footprint (8 B/nnz plus x and y vectors).
    fn estimate_traffic_bytes(&self, profile: &MatrixProfile) -> f64 {
        calib::FPGA_STREAM_BYTES_PER_NNZ * profile.nnz as f64
            + 4.0 * profile.cols as f64
            + 8.0 * profile.rows as f64
    }

    /// Full report with the paper's derived metrics.
    fn report(&self, profile: &MatrixProfile) -> PlatformReport {
        let spec = self.spec();
        let seconds = self.estimate_seconds(profile);
        let flops = 2.0 * profile.nnz as f64 + profile.rows as f64;
        let gflops = flops / seconds / 1e9;
        let bw_used = self.estimate_traffic_bytes(profile) / seconds / 1e9;
        PlatformReport {
            name: self.name().to_string(),
            seconds,
            gflops,
            bandwidth_eff: gflops / spec.bandwidth_gbs,
            energy_eff: gflops / spec.power_w,
            compute_utilization: gflops / spec.peak_gflops,
            bandwidth_utilization: bw_used / spec.bandwidth_gbs,
        }
    }
}

/// The Serpens accelerator \[25\]: a general-purpose HBM SpMV design
/// streaming an 8-byte-per-nonzero format through `a` matrix channels into
/// row-interleaved accumulator lanes.
///
/// # Examples
///
/// ```
/// use spasm_baselines::{MatrixProfile, Platform, Serpens};
/// use spasm_sparse::Coo;
///
/// # fn main() -> Result<(), spasm_sparse::SparseError> {
/// let m = Coo::from_triplets(64, 64, (0..64).map(|i| (i, i, 1.0)).collect())?;
/// let profile = MatrixProfile::from_coo(&m);
/// let report = Serpens::a24().report(&profile);
/// assert!(report.gflops > 0.0);
/// assert!(report.gflops < Serpens::a24().spec().peak_gflops);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Serpens {
    a_channels: u32,
}

impl Serpens {
    /// `Serpens_a16`: 16 matrix channels (Table III: 282 MHz, 288 GB/s,
    /// 72.2 GFLOP/s peak).
    pub fn a16() -> Self {
        Serpens { a_channels: 16 }
    }

    /// `Serpens_a24`: 24 matrix channels (Table III: 276 MHz, 403 GB/s,
    /// 106 GFLOP/s peak).
    pub fn a24() -> Self {
        Serpens { a_channels: 24 }
    }

    /// Number of HBM channels carrying the matrix stream.
    pub fn a_channels(&self) -> u32 {
        self.a_channels
    }
}

impl Platform for Serpens {
    fn name(&self) -> &str {
        match self.a_channels {
            16 => "Serpens_a16",
            24 => "Serpens_a24",
            _ => "Serpens",
        }
    }

    fn spec(&self) -> PlatformSpec {
        match self.a_channels {
            16 => PlatformSpec {
                frequency_mhz: 282.0,
                bandwidth_gbs: 288.0,
                peak_gflops: 72.2,
                power_w: crate::power::SERPENS_W,
            },
            _ => PlatformSpec {
                frequency_mhz: 276.0,
                bandwidth_gbs: 403.0,
                peak_gflops: 106.0,
                power_w: crate::power::SERPENS_W,
            },
        }
    }

    fn estimate_seconds(&self, p: &MatrixProfile) -> f64 {
        let a_bw = self.a_channels as f64 * calib::HBM_CHANNEL_GBS * 1e9;
        let stream_bytes = calib::FPGA_STREAM_BYTES_PER_NNZ * p.nnz as f64;
        let stream_s = stream_bytes / (a_bw * calib::SERPENS_STREAM_EFF);
        // x/y traffic moves through a fixed set of auxiliary channels,
        // independent of the matrix-channel count.
        let aux_bw = calib::SERPENS_AUX_CHANNELS * calib::HBM_CHANNEL_GBS * 1e9;
        let aux_s = (8.0 * p.rows as f64 + 4.0 * p.cols as f64) / aux_bw;
        let hazard = 1.0 + calib::SERPENS_HAZARD_K / p.mean_row_len.max(1.0);
        let lanes = self.a_channels * calib::SERPENS_LANES_PER_CH;
        let imbalance = p.lane_imbalance(lanes);
        (stream_s + aux_s) * hazard * imbalance + calib::SERPENS_OVERHEAD_S
    }
}

/// The HiSparse accelerator \[7\]: an earlier HLS SpMV design with a
/// blocked x-vector buffer and a shuffle/arbiter pipeline that stalls more
/// aggressively than Serpens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HiSparse;

impl HiSparse {
    /// Creates the HiSparse model.
    pub fn new() -> Self {
        HiSparse
    }
}

impl Platform for HiSparse {
    fn name(&self) -> &str {
        "HiSparse"
    }

    fn spec(&self) -> PlatformSpec {
        PlatformSpec {
            frequency_mhz: 237.0,
            bandwidth_gbs: 273.0,
            peak_gflops: 60.7,
            power_w: crate::power::HISPARSE_W,
        }
    }

    fn estimate_seconds(&self, p: &MatrixProfile) -> f64 {
        let bw = self.spec().bandwidth_gbs * 1e9;
        let stream_bytes = calib::FPGA_STREAM_BYTES_PER_NNZ * p.nnz as f64;
        let stream_s = stream_bytes / (bw * calib::HISPARSE_STREAM_EFF);
        let hazard = 1.0 + calib::HISPARSE_HAZARD_K / p.mean_row_len.max(1.0);
        let imbalance = p.lane_imbalance(calib::HISPARSE_LANES);
        // Matrices wider than the x buffer run in column-block passes.
        let passes = (p.cols as f64 / calib::HISPARSE_XBUF_ELEMS as f64)
            .ceil()
            .max(1.0);
        let pass_overhead = (passes - 1.0) * calib::HISPARSE_PASS_OVERHEAD_S;
        stream_s * hazard * imbalance + pass_overhead + calib::HISPARSE_OVERHEAD_S
    }
}

/// cuSPARSE CSR SpMV on an NVIDIA RTX 3090: a cache-aware roofline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CusparseGpu;

impl CusparseGpu {
    /// Creates the GPU model.
    pub fn new() -> Self {
        CusparseGpu
    }
}

impl Platform for CusparseGpu {
    fn name(&self) -> &str {
        "RTX 3090 (cuSPARSE)"
    }

    fn spec(&self) -> PlatformSpec {
        PlatformSpec {
            frequency_mhz: 1560.0,
            bandwidth_gbs: 935.8,
            peak_gflops: 35_580.0,
            power_w: crate::power::RTX_3090_W,
        }
    }

    fn estimate_seconds(&self, p: &MatrixProfile) -> f64 {
        let bw = self.spec().bandwidth_gbs * 1e9 * calib::GPU_STREAM_EFF;
        // CSR streaming traffic: 8 B/nnz (value + column) + row pointers +
        // y read/write.
        let stream_bytes = 8.0 * p.nnz as f64 + 4.0 * (p.rows as f64 + 1.0) + 8.0 * p.rows as f64;
        // x gathers: every distinct touched cache line that misses L2.
        let gather_bytes =
            p.lines_per_nnz * p.nnz as f64 * calib::GPU_CACHE_LINE_B * (1.0 - calib::GPU_L2_HIT);
        (stream_bytes + gather_bytes) / bw + calib::GPU_LAUNCH_OVERHEAD_S
    }

    fn estimate_traffic_bytes(&self, p: &MatrixProfile) -> f64 {
        8.0 * p.nnz as f64
            + 4.0 * (p.rows as f64 + 1.0)
            + 8.0 * p.rows as f64
            + p.lines_per_nnz * p.nnz as f64 * calib::GPU_CACHE_LINE_B * (1.0 - calib::GPU_L2_HIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_sparse::Coo;

    fn banded_profile(n: u32, band: u32) -> MatrixProfile {
        let mut t = Vec::new();
        for i in 0..n {
            for k in 0..band {
                let c = (i + k) % n;
                t.push((i, c, 1.0));
            }
        }
        MatrixProfile::from_coo(&Coo::from_triplets(n, n, t).unwrap())
    }

    fn skewed_profile(n: u32) -> MatrixProfile {
        // One megarow plus a sparse diagonal.
        let mut t: Vec<_> = (0..n).map(|c| (0, c, 1.0)).collect();
        t.extend((1..n).map(|i| (i, i, 1.0)));
        MatrixProfile::from_coo(&Coo::from_triplets(n, n, t).unwrap())
    }

    #[test]
    fn table_iii_specs() {
        assert_eq!(HiSparse::new().spec().bandwidth_gbs, 273.0);
        assert_eq!(Serpens::a16().spec().bandwidth_gbs, 288.0);
        assert_eq!(Serpens::a24().spec().bandwidth_gbs, 403.0);
        assert_eq!(CusparseGpu::new().spec().bandwidth_gbs, 935.8);
        assert_eq!(Serpens::a24().spec().peak_gflops, 106.0);
    }

    #[test]
    fn a24_faster_than_a16() {
        let p = banded_profile(4096, 16);
        assert!(Serpens::a24().estimate_seconds(&p) < Serpens::a16().estimate_seconds(&p));
    }

    #[test]
    fn serpens_beats_hisparse_on_regular_matrices() {
        let p = banded_profile(4096, 16);
        assert!(Serpens::a16().estimate_seconds(&p) < HiSparse::new().estimate_seconds(&p));
    }

    #[test]
    fn imbalance_slows_fpga_baselines() {
        let good = banded_profile(4096, 8);
        let bad = skewed_profile(4096);
        // Same-ish nnz; the skewed one must be much slower per nnz.
        let per_nnz = |s: f64, p: &MatrixProfile| s / p.nnz as f64;
        let g = Serpens::a24().estimate_seconds(&good);
        let b = Serpens::a24().estimate_seconds(&bad);
        assert!(per_nnz(b, &bad) > 2.0 * per_nnz(g, &good));
    }

    #[test]
    fn gpu_gather_penalty() {
        let banded = banded_profile(4096, 8);
        // Scattered columns: every access a new line.
        let t: Vec<_> = (0..4096u32).map(|i| (i, (i * 997) % 4096, 1.0)).collect();
        let scattered = MatrixProfile::from_coo(&Coo::from_triplets(4096, 4096, t).unwrap());
        let g = CusparseGpu::new();
        assert!(
            g.estimate_seconds(&scattered) / scattered.nnz as f64
                > g.estimate_seconds(&banded) / banded.nnz as f64
        );
    }

    #[test]
    fn report_metrics_consistent() {
        let p = banded_profile(1024, 8);
        let r = Serpens::a24().report(&p);
        let spec = Serpens::a24().spec();
        assert!((r.bandwidth_eff - r.gflops / spec.bandwidth_gbs).abs() < 1e-12);
        assert!((r.energy_eff - r.gflops / spec.power_w).abs() < 1e-12);
        assert!(r.gflops > 0.0 && r.gflops < spec.peak_gflops);
    }

    #[test]
    fn throughput_below_roofline() {
        // No platform may exceed bandwidth-limited throughput for its
        // format (2 FLOPs per 8 streamed bytes).
        let p = banded_profile(8192, 32);
        for r in [
            Serpens::a16().report(&p),
            Serpens::a24().report(&p),
            HiSparse::new().report(&p),
        ] {
            let spec_bw = match r.name.as_str() {
                "Serpens_a16" => 16.0 * calib::HBM_CHANNEL_GBS,
                "Serpens_a24" => 24.0 * calib::HBM_CHANNEL_GBS,
                _ => 273.0,
            };
            let roofline = 2.0 * spec_bw / 8.0;
            assert!(
                r.gflops <= roofline,
                "{}: {} vs {roofline}",
                r.name,
                r.gflops
            );
        }
    }
}
