//! Fig. 12: SpMV throughput (GFLOP/s) and bandwidth efficiency
//! ((GFLOP/s)/(GB/s)) of SPASM versus HiSparse, Serpens_a16, Serpens_a24
//! and cuSPARSE on an RTX 3090, plus the speedup summaries of
//! Section V-E1/2. Also prints the platform spec tables (Table III/IV).
//!
//! ```text
//! cargo run --release -p spasm-bench --bin fig12_throughput [-- --scale paper]
//! ```

use spasm::{spasm_report, Pipeline};
use spasm_baselines::{CusparseGpu, HiSparse, MatrixProfile, Platform, PlatformReport, Serpens};
use spasm_bench::{geomean, rule, scale_from_args, scale_name};
use spasm_hw::HwConfig;

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 12 — throughput & bandwidth efficiency ({})",
        scale_name(scale)
    );

    println!("\nTable III — baseline platform specs:");
    let hisparse = HiSparse::new();
    let a16 = Serpens::a16();
    let a24 = Serpens::a24();
    let gpu = CusparseGpu::new();
    for (name, s) in [
        ("HiSparse", hisparse.spec()),
        ("Serpens_a16", a16.spec()),
        ("Serpens_a24", a24.spec()),
        ("RTX 3090", gpu.spec()),
    ] {
        println!(
            "  {name:<12} {:>6.0} MHz {:>7.1} GB/s {:>9.1} GFLOP/s peak",
            s.frequency_mhz, s.bandwidth_gbs, s.peak_gflops
        );
    }
    println!("\nTable IV — SPASM configurations:");
    for c in HwConfig::shipped() {
        println!(
            "  {:<12} {:>6.0} MHz {:>7.1} GB/s {:>9.1} GFLOP/s peak",
            c.name,
            c.frequency_mhz,
            c.bandwidth_gbs(),
            c.peak_gflops()
        );
    }

    println!("\nThroughput (GFLOP/s):");
    rule(96);
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10} {:>12} {:>8}",
        "matrix", "HiSparse", "Srp_a16", "Srp_a24", "RTX3090", "SPASM", "cfg", "tile"
    );
    rule(96);

    let pipeline = Pipeline::new();
    let mut spasm_reports: Vec<PlatformReport> = Vec::new();
    let mut base_reports: Vec<[PlatformReport; 4]> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    spasm_bench::for_each_workload(scale, |w, m| {
        let profile = MatrixProfile::from_coo(&m);
        let r_h = hisparse.report(&profile);
        let r_16 = a16.report(&profile);
        let r_24 = a24.report(&profile);
        let r_g = gpu.report(&profile);

        let mut prepared = pipeline.prepare(&m).expect("pipeline");
        let x = vec![1.0f32; m.cols() as usize];
        let mut y = vec![0.0f32; m.rows() as usize];
        let exec = prepared.execute(&x, &mut y).expect("simulate");
        let r_s = spasm_report(&prepared, &exec);

        println!(
            "{:<14} {:>10.2} {:>10.2} {:>12.2} {:>12.2} {:>10.2} {:>12} {:>8}",
            w.to_string(),
            r_h.gflops,
            r_16.gflops,
            r_24.gflops,
            r_g.gflops,
            r_s.gflops,
            prepared.best.config.name,
            prepared.best.tile_size
        );
        names.push(w.to_string());
        spasm_reports.push(r_s);
        base_reports.push([r_h, r_16, r_24, r_g]);
    });
    rule(96);

    // Speedup summaries (Section V-E1).
    println!("\nSPASM speedup over each baseline:");
    let labels = [
        "HiSparse",
        "Serpens_a16",
        "Serpens_a24",
        "RTX 3090 (cuSPARSE)",
    ];
    let paper = [6.74, 3.21, 2.81, 0.75];
    for (b, label) in labels.iter().enumerate() {
        let ratios: Vec<f64> = spasm_reports
            .iter()
            .zip(&base_reports)
            .map(|(s, bs)| s.gflops / bs[b].gflops)
            .collect();
        let max = ratios.iter().copied().fold(0.0f64, f64::max);
        println!(
            "  vs {label:<22} geomean {:>5.2}x  max {:>6.2}x   (paper geomean {:.2}x)",
            geomean(ratios.iter().copied()),
            max,
            paper[b]
        );
    }

    // Bandwidth efficiency (Section V-E2).
    println!("\nBandwidth efficiency ((GFLOP/s)/(GB/s)):");
    rule(76);
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "matrix", "HiSparse", "Srp_a16", "Srp_a24", "RTX3090", "SPASM"
    );
    rule(76);
    for (i, name) in names.iter().enumerate() {
        let b = &base_reports[i];
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>12.3} {:>12.3} {:>10.3}",
            name,
            b[0].bandwidth_eff,
            b[1].bandwidth_eff,
            b[2].bandwidth_eff,
            b[3].bandwidth_eff,
            spasm_reports[i].bandwidth_eff
        );
    }
    rule(76);
    let paper_bw = [4.18, 2.21, 2.71, 1.68];
    println!("\nSPASM bandwidth-efficiency improvement:");
    for (b, label) in labels.iter().enumerate() {
        let ratios: Vec<f64> = spasm_reports
            .iter()
            .zip(&base_reports)
            .map(|(s, bs)| s.bandwidth_eff / bs[b].bandwidth_eff)
            .collect();
        let max = ratios.iter().copied().fold(0.0f64, f64::max);
        println!(
            "  vs {label:<22} geomean {:>5.2}x  max {:>6.2}x   (paper geomean {:.2}x)",
            geomean(ratios.iter().copied()),
            max,
            paper_bw[b]
        );
    }
}
