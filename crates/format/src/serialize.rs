//! Binary (wire/HBM) layout of the SPASM format.
//!
//! This is the byte stream a host would DMA into the accelerator's HBM
//! channels: a fixed header, the portfolio's template masks (the opcode
//! LUT content), the COO tile directory, then per tile the interleaved
//! position-encoding words and value quadruples, all little-endian.
//!
//! Layout:
//!
//! ```text
//! header   : magic "SPSM" | version u32 | rows u32 | cols u32 |
//!            tile_size u32 | nnz u64 | paddings u64 |
//!            n_templates u32 | n_tiles u32 | n_instances u64
//! templates: n_templates × u16 (padded to 4-byte alignment)
//! tiles    : n_tiles × (tile_row u32 | tile_col u32 | n_instances u32)
//! stream   : n_instances × (encoding u32 | 4 × f32)
//! ```
//!
//! Deserialisation validates the header, directory consistency and field
//! ranges, so a corrupted stream is rejected rather than mis-executed.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::encoding::PositionEncoding;
use crate::matrix::{SpasmMatrix, Tile};

/// Magic number opening every serialised SPASM stream.
pub const MAGIC: [u8; 4] = *b"SPSM";

/// Current wire-format version.
pub const VERSION: u32 = 1;

/// Size of the fixed header in bytes.
pub const HEADER_BYTES: usize = 52;

/// Errors when decoding a serialised stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The stream does not start with the SPASM magic.
    BadMagic,
    /// Unsupported wire-format version.
    BadVersion(u32),
    /// The stream ended before the declared payload.
    Truncated {
        /// What was being read.
        reading: &'static str,
    },
    /// A header or directory field is inconsistent.
    Inconsistent(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "stream does not start with the SPSM magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated { reading } => {
                write!(f, "stream truncated while reading {reading}")
            }
            WireError::Inconsistent(what) => write!(f, "inconsistent stream: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl SpasmMatrix {
    /// Serialises the matrix into its wire/HBM byte layout.
    ///
    /// # Examples
    ///
    /// ```
    /// use spasm_format::{SpasmMatrix, SubmatrixMap};
    /// use spasm_patterns::{DecompositionTable, TemplateSet};
    /// use spasm_sparse::Coo;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let coo = Coo::from_triplets(4, 4, vec![(1, 2, 3.0)])?;
    /// let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
    /// let m = SpasmMatrix::encode(&SubmatrixMap::from_coo(&coo), &table, 4)?;
    /// let bytes = m.to_bytes();
    /// assert_eq!(SpasmMatrix::from_bytes(&bytes)?, m);
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_bytes(&self) -> Bytes {
        let n_instances = self.n_instances();
        let mut buf = BytesMut::with_capacity(
            HEADER_BYTES
                + self.template_masks().len() * 2
                + self.tiles().len() * 12
                + n_instances * 20,
        );
        buf.put_slice(&MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.rows());
        buf.put_u32_le(self.cols());
        buf.put_u32_le(self.tile_size());
        buf.put_u64_le(self.nnz() as u64);
        buf.put_u64_le(self.paddings());
        buf.put_u32_le(self.template_masks().len() as u32);
        buf.put_u32_le(self.tiles().len() as u32);
        buf.put_u64_le(n_instances as u64);
        for &mask in self.template_masks() {
            buf.put_u16_le(mask);
        }
        if self.template_masks().len() % 2 == 1 {
            buf.put_u16_le(0); // alignment pad
        }
        for t in self.tiles() {
            buf.put_u32_le(t.tile_row);
            buf.put_u32_le(t.tile_col);
            buf.put_u32_le(t.n_instances as u32);
        }
        let values = self.values();
        for (i, e) in self.encodings().iter().enumerate() {
            buf.put_u32_le(e.bits());
            for k in 0..4 {
                buf.put_f32_le(values[i * 4 + k]);
            }
        }
        buf.freeze()
    }

    /// Reconstructs a matrix from its wire layout.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on bad magic/version, truncation, or any
    /// internal inconsistency (directory sums, field ranges).
    pub fn from_bytes(mut data: &[u8]) -> Result<SpasmMatrix, WireError> {
        fn need(data: &[u8], n: usize, reading: &'static str) -> Result<(), WireError> {
            if data.len() < n {
                Err(WireError::Truncated { reading })
            } else {
                Ok(())
            }
        }
        need(data, HEADER_BYTES, "header")?;
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let rows = data.get_u32_le();
        let cols = data.get_u32_le();
        let tile_size = data.get_u32_le();
        let nnz = data.get_u64_le() as usize;
        let paddings = data.get_u64_le();
        let n_templates = data.get_u32_le() as usize;
        let n_tiles = data.get_u32_le() as usize;
        let n_instances = data.get_u64_le() as usize;

        if tile_size == 0 || !tile_size.is_multiple_of(4) || tile_size > crate::MAX_TILE_SIZE {
            return Err(WireError::Inconsistent("tile size out of range"));
        }
        if n_templates == 0 || n_templates > 16 {
            return Err(WireError::Inconsistent("template count out of range"));
        }
        if 4 * n_instances < nnz {
            return Err(WireError::Inconsistent("fewer value slots than non-zeros"));
        }

        let padded_templates = n_templates + n_templates % 2;
        need(data, padded_templates * 2, "template masks")?;
        let mut templates = Vec::with_capacity(n_templates);
        for i in 0..padded_templates {
            let m = data.get_u16_le();
            if i < n_templates {
                templates.push(m);
            }
        }

        need(data, n_tiles * 12, "tile directory")?;
        let mut tiles = Vec::with_capacity(n_tiles);
        let mut cursor = 0usize;
        let mut last: Option<(u32, u32)> = None;
        for _ in 0..n_tiles {
            let tile_row = data.get_u32_le();
            let tile_col = data.get_u32_le();
            let count = data.get_u32_le() as usize;
            if let Some(prev) = last {
                if prev >= (tile_row, tile_col) {
                    return Err(WireError::Inconsistent("tile directory not sorted"));
                }
            }
            last = Some((tile_row, tile_col));
            tiles.push(Tile {
                tile_row,
                tile_col,
                first_instance: cursor,
                n_instances: count,
            });
            cursor += count;
        }
        if cursor != n_instances {
            return Err(WireError::Inconsistent(
                "tile directory does not sum to stream",
            ));
        }

        need(data, n_instances * 20, "instance stream")?;
        let mut encodings = Vec::with_capacity(n_instances);
        let mut values = Vec::with_capacity(n_instances * 4);
        for _ in 0..n_instances {
            let e = PositionEncoding::from_bits(data.get_u32_le());
            if usize::from(e.t_idx()) >= n_templates {
                return Err(WireError::Inconsistent("t_idx beyond portfolio"));
            }
            encodings.push(e);
            for _ in 0..4 {
                values.push(data.get_f32_le());
            }
        }

        Ok(SpasmMatrix::from_raw_parts(
            rows, cols, tile_size, nnz, paddings, templates, tiles, encodings, values,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submatrix::SubmatrixMap;
    use spasm_patterns::{DecompositionTable, TemplateSet};
    use spasm_sparse::Coo;

    fn sample() -> SpasmMatrix {
        let mut t = vec![];
        for r in 0..4u32 {
            for c in 0..4u32 {
                t.push((r, c, (r * 4 + c + 1) as f32));
            }
        }
        t.push((10, 3, -2.5));
        t.push((3, 12, 7.0));
        let coo = Coo::from_triplets(16, 16, t).unwrap();
        let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
        SpasmMatrix::encode(&SubmatrixMap::from_coo(&coo), &table, 8).unwrap()
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = SpasmMatrix::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn stream_size_matches_accounting() {
        let m = sample();
        let bytes = m.to_bytes();
        let expected = HEADER_BYTES
            + (m.template_masks().len() + m.template_masks().len() % 2) * 2
            + m.tiles().len() * 12
            + m.n_instances() * 20;
        assert_eq!(bytes.len(), expected);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = sample().to_bytes().to_vec();
        b[0] = b'X';
        assert_eq!(SpasmMatrix::from_bytes(&b), Err(WireError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = sample().to_bytes().to_vec();
        b[4] = 99;
        assert!(matches!(
            SpasmMatrix::from_bytes(&b),
            Err(WireError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_rejected_at_every_boundary() {
        let b = sample().to_bytes();
        for cut in [3usize, 20, 47, 50, 70, b.len() - 1] {
            let r = SpasmMatrix::from_bytes(&b[..cut.min(b.len() - 1)]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_directory_rejected() {
        let m = sample();
        let mut b = m.to_bytes().to_vec();
        // The tile directory starts after header + padded templates;
        // corrupt a tile's instance count.
        let dir_off = HEADER_BYTES + (m.template_masks().len() + m.template_masks().len() % 2) * 2;
        b[dir_off + 8] = 0xFF;
        assert!(matches!(
            SpasmMatrix::from_bytes(&b),
            Err(WireError::Inconsistent(_)) | Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn out_of_range_t_idx_rejected() {
        let m = sample();
        let mut b = m.to_bytes().to_vec();
        // Declare a 15-template portfolio (the 16-slot padded layout is
        // unchanged) and point the first instance at t_idx 15.
        b[36] = 15; // n_templates, little-endian u32 at offset 36
        let stream_off = HEADER_BYTES + 16 * 2 + m.tiles().len() * 12;
        b[stream_off + 3] = 0xF0 | (b[stream_off + 3] & 0x0F);
        assert_eq!(
            SpasmMatrix::from_bytes(&b),
            Err(WireError::Inconsistent("t_idx beyond portfolio"))
        );
    }

    #[test]
    fn decoded_stream_executes_identically() {
        let m = sample();
        let back = SpasmMatrix::from_bytes(&m.to_bytes()).unwrap();
        let x: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
        assert_eq!(m.spmv_alloc(&x).unwrap(), back.spmv_alloc(&x).unwrap());
    }
}
