//! Benchmarks of host-side SpMV across storage formats and of the
//! simulated accelerator — the substrate behind the throughput figures.
//! Includes the row-partitioned parallel CSR kernel next to its serial
//! counterpart (bit-identical output; see `tests/determinism.rs`).
//!
//! Run with `cargo bench -p spasm-bench --bench spmv_formats`.

use spasm_bench::timing::{bench, report_speedup};
use spasm_format::{SpasmMatrix, SubmatrixMap};
use spasm_hw::{Accelerator, HwConfig};
use spasm_patterns::{DecompositionTable, TemplateSet};
use spasm_sparse::{Bsr, Csc, Csr, Dia, Ell, SpMv};
use spasm_workloads::{Scale, Workload};

fn main() {
    spasm_bench::smoke_from_args();
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "host threads: {threads} | parallel feature: {}",
        cfg!(feature = "parallel")
    );

    let m = Workload::Raefsky3.generate(Scale::Small);
    let n = m.cols() as usize;
    let x: Vec<f32> = (0..n).map(|i| (i % 13) as f32 * 0.25).collect();
    let rows = m.rows() as usize;

    let csr = Csr::from(&m);
    let csc = Csc::from(&m);
    let bsr = Bsr::from_coo(&m, 4).unwrap();
    let dia = Dia::from_coo(&m);
    let ell = Ell::from_coo(&m);
    let table = DecompositionTable::build(&TemplateSet::table_v_set(0));
    let spasm = SpasmMatrix::encode(&SubmatrixMap::from_coo(&m), &table, 1024).unwrap();

    println!("== host SpMV, {} nnz ==", m.nnz());
    macro_rules! row {
        ($name:literal, $m:expr) => {
            bench($name, || {
                let mut y = vec![0.0f32; rows];
                $m.spmv(&x, &mut y).unwrap();
                y
            })
        };
    }
    row!("coo", m);
    let csr_serial = row!("csr", csr);
    row!("csc", csc);
    row!("bsr4", bsr);
    row!("dia", dia);
    row!("ell", ell);
    bench("spasm_stream", || {
        let mut y = vec![0.0f32; rows];
        spasm.spmv(&x, &mut y).unwrap();
        y
    });

    let csr_parallel = bench("csr_parallel", || {
        let mut y = vec![0.0f32; rows];
        csr.spmv_parallel(&x, &mut y).unwrap();
        y
    });
    report_speedup("csr parallel kernel", &csr_serial, &csr_parallel);

    println!("\n== simulator, {} nnz ==", m.nnz());
    for cfg in HwConfig::shipped() {
        let acc = Accelerator::new(cfg.clone());
        bench(&cfg.name, || {
            let mut y = vec![0.0f32; rows];
            acc.run(&spasm, &x, &mut y).unwrap()
        });
    }
}
