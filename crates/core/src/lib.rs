//! # SPASM — Structured Pattern-Aware SpMV
//!
//! A reproduction of *"A Hardware-Software Design Framework for SpMV
//! Acceleration with Flexible Access Pattern Portfolio"* (HPCA 2025): a
//! hardware–software framework that accelerates `y = A·x + y` by
//! decomposing a sparse matrix's recurring 4×4 *local patterns* into a
//! customisable 16-entry *template pattern portfolio*, encoding the matrix
//! into a hardware-friendly two-level format, and scheduling execution on
//! a parameterised, HBM-attached accelerator (simulated here).
//!
//! This crate is the framework front-end tying together the workflow of
//! the paper's Fig. 6:
//!
//! 1. **① Local pattern analysis** — [`spasm_patterns::PatternHistogram`];
//! 2. **② Template pattern selection** — Algorithm 3 over the Table V
//!    candidate portfolios;
//! 3. **③ Local pattern decomposition** — memoised optimal set cover;
//! 4. **④ Global composition analysis** — two-level tiling;
//! 5. **⑤ Workload schedule exploration** — Algorithm 4: sweep tile sizes
//!    × pre-synthesised hardware configurations with the performance
//!    model;
//! 6. **⑥ Hardware execution** — the cycle-approximate simulator.
//!
//! # Quickstart
//!
//! ```
//! use spasm::Pipeline;
//! use spasm_sparse::Coo;
//!
//! # fn main() -> Result<(), spasm::PipelineError> {
//! // A small block-diagonal matrix.
//! let mut t = Vec::new();
//! for b in 0..8u32 {
//!     for r in 0..4 {
//!         for c in 0..4 {
//!             t.push((b * 4 + r, b * 4 + c, 1.0 + (r * 4 + c) as f32));
//!         }
//!     }
//! }
//! let a = Coo::from_triplets(32, 32, t).unwrap();
//!
//! // Preprocess: analyse, select templates, decompose, tile, schedule —
//! // and build the reusable execution plan for the winning schedule.
//! let mut prepared = Pipeline::new().prepare(&a)?;
//!
//! // Execute on the selected hardware configuration (repeated calls
//! // reuse the prepared plan: no per-call decode or allocation).
//! let x = vec![1.0f32; 32];
//! let mut y = vec![0.0f32; 32];
//! let exec = prepared.execute(&x, &mut y)?;
//! assert!(exec.gflops > 0.0);
//!
//! // Serve a batch of right-hand sides in one call: initialisation and
//! // the decoded instance stream are amortised across the whole batch,
//! // and each output is bit-identical to a looped `execute`.
//! let xs = vec![vec![1.0f32; 32]; 4];
//! let mut ys = vec![vec![0.0f32; 32]; 4];
//! let batched = prepared.execute_batch(&xs, &mut ys)?;
//! assert_eq!(batched.batch.unwrap().vectors, 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod error;
mod framework;
mod integrity;
mod report;
mod schedule;

pub use error::PipelineError;
pub use framework::{DeltaOutcome, Parallelism, Pipeline, PipelineOptions, Prepared, StageTimings};
pub use integrity::{IntegrityMode, IntegrityPolicy};
pub use report::{spasm_batch_report, spasm_report};
pub use schedule::{default_tile_sizes, explore_schedule, ScheduleCandidate, ScheduleChoice};

// Re-export the component crates under one roof for downstream users.
pub use spasm_baselines as baselines;
pub use spasm_format as format;
pub use spasm_hw as hw;
pub use spasm_patterns as patterns;
pub use spasm_sparse as sparse;
