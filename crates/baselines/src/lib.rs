//! Baseline platform models for the SPASM evaluation.
//!
//! The paper measures HiSparse \[7\], Serpens \[25\] (16- and 24-channel
//! variants) and cuSPARSE on an RTX 3090. None of those artifacts (two
//! FPGA bitstreams and a GPU) are available here, so this crate models each
//! as an analytic, bandwidth-centred performance estimate built from:
//!
//! * the platform specs of Table III (frequency, bandwidth, peak GFLOP/s);
//! * the architecture's stream format footprint (both FPGA baselines use
//!   8-byte-per-nonzero two-level formats — the constant 1.50×-vs-COO line
//!   of Table VI);
//! * per-architecture efficiency terms driven by measurable matrix
//!   features ([`MatrixProfile`]): accumulator hazards on short rows,
//!   round-robin lane imbalance, x-gather locality and vector-buffer
//!   reloads.
//!
//! The calibration constants live in [`calib`] with their rationale;
//! EXPERIMENTS.md records the resulting paper-vs-measured geomeans.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calib;
mod platform;
mod profile;

pub use platform::{CusparseGpu, HiSparse, Platform, PlatformReport, Serpens};
pub use profile::MatrixProfile;

/// Average power draw of each platform (Table VII), in watts.
pub mod power {
    /// NVIDIA RTX 3090 under cuSPARSE SpMV load.
    pub const RTX_3090_W: f64 = 333.0;
    /// HiSparse bitstream on the U280.
    pub const HISPARSE_W: f64 = 45.0;
    /// Serpens bitstreams on the U280.
    pub const SERPENS_W: f64 = 48.0;
    /// SPASM bitstreams on the U280.
    pub const SPASM_W: f64 = 58.0;
}
