//! The VALU (Vector Arithmetic Logic Unit) — Section IV-D1.
//!
//! A VALU multiplies one template-pattern instance (4 values) by the packed
//! x-vector segment of its submatrix column and routes the products into
//! the 4-row output vector. Hardware resources: 4 multipliers whose second
//! operand comes from a 4-to-1 mux over the x segment, 3 adders (two pair
//! adders and one total adder), and four 8-to-1 output muxes selecting from
//! the eight nodes {p0, p1, p2, p3, p0+p1, p2+p3, Σp, 0}.
//!
//! Not every 4-cell shape is realisable on this datapath: each output row
//! must receive one of the eight nodes, so the products feeding one row
//! must be `{}`, a single product, the pair {p0,p1}, the pair {p2,p3}, or
//! all four. Rows, columns, diagonals, anti-diagonals and 2×2 blocks all
//! satisfy this (verified in tests for every Table V portfolio); an
//! arbitrary mask may not, and compilation reports it.

use std::fmt;

/// Node selected by an output mux.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutNode {
    /// Constant zero (row receives no contribution).
    Zero,
    /// A single product `p[i]`.
    Product(u8),
    /// The pair sum `p0 + p1`.
    Pair01,
    /// The pair sum `p2 + p3`.
    Pair23,
    /// The total sum `p0 + p1 + p2 + p3`.
    Total,
}

impl OutNode {
    /// The node's 3-bit selector code.
    fn code(self) -> u32 {
        match self {
            OutNode::Product(i) => i as u32,
            OutNode::Pair01 => 4,
            OutNode::Pair23 => 5,
            OutNode::Total => 6,
            OutNode::Zero => 7,
        }
    }
}

/// Error compiling a template mask to a VALU opcode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OpcodeError {
    /// The mask does not have exactly 4 cells.
    WrongCellCount {
        /// The offending mask.
        mask: u16,
        /// Its population count.
        cells: u32,
    },
    /// Some output row needs a product combination the adder/mux network
    /// cannot produce.
    Unrealizable {
        /// The offending mask.
        mask: u16,
        /// The row whose product set has no matching node.
        row: u32,
    },
}

impl fmt::Display for OpcodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpcodeError::WrongCellCount { mask, cells } => {
                write!(
                    f,
                    "template {mask:#06x} has {cells} cells, VALU needs exactly 4"
                )
            }
            OpcodeError::Unrealizable { mask, row } => write!(
                f,
                "template {mask:#06x}: row {row} needs a product set outside the VALU mux nodes"
            ),
        }
    }
}

impl std::error::Error for OpcodeError {}

/// A compiled VALU opcode: per-multiplier x selector plus per-row output
/// node, packed into at most 30 bits (Section IV-D1's "30-bit long
/// opcode").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValuOpcode {
    /// x-mux selector of each multiplier: the submatrix column (0–3) of
    /// value slot `i`.
    col_sel: [u8; 4],
    /// Output-mux selector of each submatrix row.
    out_sel: [OutNode; 4],
}

impl ValuOpcode {
    /// Compiles a 4-cell template mask (bit `r·4 + c`) into an opcode.
    ///
    /// Value slots are assigned in bit order (row-major cell order),
    /// matching the encoder's slot layout.
    ///
    /// # Examples
    ///
    /// ```
    /// use spasm_hw::ValuOpcode;
    ///
    /// // Row 0 of the 4x4 grid: all four products sum into output row 0.
    /// let op = ValuOpcode::compile(0b1111).unwrap();
    /// let out = op.execute([1.0, 2.0, 3.0, 4.0], [1.0, 1.0, 1.0, 1.0]);
    /// assert_eq!(out, [10.0, 0.0, 0.0, 0.0]);
    /// ```
    ///
    /// # Errors
    ///
    /// * [`OpcodeError::WrongCellCount`] unless the mask has 4 cells;
    /// * [`OpcodeError::Unrealizable`] if a row's product set is not one of
    ///   the eight mux nodes.
    pub fn compile(mask: u16) -> Result<Self, OpcodeError> {
        let cells = mask.count_ones();
        if cells != 4 {
            return Err(OpcodeError::WrongCellCount { mask, cells });
        }
        let mut col_sel = [0u8; 4];
        let mut row_products: [u8; 4] = [0; 4]; // bitmask of slots per row
        let mut slot = 0usize;
        for bit in 0..16u32 {
            if mask & (1 << bit) != 0 {
                let (r, c) = (bit / 4, bit % 4);
                col_sel[slot] = c as u8;
                row_products[r as usize] |= 1 << slot;
                slot += 1;
            }
        }
        let mut out_sel = [OutNode::Zero; 4];
        for r in 0..4usize {
            out_sel[r] = match row_products[r] {
                0b0000 => OutNode::Zero,
                0b0001 => OutNode::Product(0),
                0b0010 => OutNode::Product(1),
                0b0100 => OutNode::Product(2),
                0b1000 => OutNode::Product(3),
                0b0011 => OutNode::Pair01,
                0b1100 => OutNode::Pair23,
                0b1111 => OutNode::Total,
                _ => {
                    return Err(OpcodeError::Unrealizable {
                        mask,
                        row: r as u32,
                    })
                }
            };
        }
        Ok(ValuOpcode { col_sel, out_sel })
    }

    /// Packs the opcode into its hardware bit representation:
    /// 4 × 2-bit column selectors + 4 × 3-bit output selectors = 20 bits
    /// (the remaining bits of the paper's 30-bit budget carry the adder
    /// operand selectors, which this fixed-topology model folds into the
    /// output nodes).
    pub fn bits(self) -> u32 {
        let mut w = 0u32;
        for (i, &c) in self.col_sel.iter().enumerate() {
            w |= (c as u32) << (2 * i);
        }
        for (i, &o) in self.out_sel.iter().enumerate() {
            w |= o.code() << (8 + 3 * i);
        }
        w
    }

    /// The x-mux selectors.
    pub fn col_selectors(self) -> [u8; 4] {
        self.col_sel
    }

    /// The output-mux selections.
    pub fn out_selectors(self) -> [OutNode; 4] {
        self.out_sel
    }

    /// Executes the datapath: multiplies the four value slots by their
    /// selected x elements and routes sums to the 4-row output vector.
    ///
    /// `x` is the packed x segment for the submatrix's four columns.
    pub fn execute(self, values: [f32; 4], x: [f32; 4]) -> [f32; 4] {
        let p = [
            values[0] * x[self.col_sel[0] as usize],
            values[1] * x[self.col_sel[1] as usize],
            values[2] * x[self.col_sel[2] as usize],
            values[3] * x[self.col_sel[3] as usize],
        ];
        let pair01 = p[0] + p[1];
        let pair23 = p[2] + p[3];
        let total = pair01 + pair23;
        let mut out = [0.0f32; 4];
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = match self.out_sel[r] {
                OutNode::Zero => 0.0,
                OutNode::Product(i) => p[i as usize],
                OutNode::Pair01 => pair01,
                OutNode::Pair23 => pair23,
                OutNode::Total => total,
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spasm_patterns::{GridSize, Template, TemplateSet};

    #[test]
    fn row_template_sums_all_products() {
        let mask = Template::row(GridSize::S4, 2).mask();
        let op = ValuOpcode::compile(mask).unwrap();
        let out = op.execute([1.0, 2.0, 3.0, 4.0], [1.0, 10.0, 100.0, 1000.0]);
        assert_eq!(out, [0.0, 0.0, 1.0 + 20.0 + 300.0 + 4000.0, 0.0]);
    }

    #[test]
    fn col_template_routes_single_products() {
        let mask = Template::col(GridSize::S4, 1).mask();
        let op = ValuOpcode::compile(mask).unwrap();
        let out = op.execute([1.0, 2.0, 3.0, 4.0], [9.0, 5.0, 9.0, 9.0]);
        assert_eq!(out, [5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn diag_template() {
        let mask = Template::diag(GridSize::S4, 0).mask();
        let op = ValuOpcode::compile(mask).unwrap();
        let out = op.execute([1.0, 1.0, 1.0, 1.0], [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn block_template_uses_pair_sums() {
        let mask = Template::block2(0, 0).mask();
        let op = ValuOpcode::compile(mask).unwrap();
        assert_eq!(op.out_selectors()[0], OutNode::Pair01);
        assert_eq!(op.out_selectors()[1], OutNode::Pair23);
        let out = op.execute([1.0, 2.0, 3.0, 4.0], [10.0, 100.0, 0.0, 0.0]);
        assert_eq!(out, [10.0 + 200.0, 30.0 + 400.0, 0.0, 0.0]);
    }

    #[test]
    fn every_table_v_template_compiles() {
        for set in TemplateSet::table_v_candidates() {
            for t in set.templates() {
                ValuOpcode::compile(t.mask()).unwrap_or_else(|e| panic!("{}: {e}", set.name()));
            }
        }
    }

    #[test]
    fn wrong_cell_count_rejected() {
        assert!(matches!(
            ValuOpcode::compile(0b111),
            Err(OpcodeError::WrongCellCount { cells: 3, .. })
        ));
        assert!(matches!(
            ValuOpcode::compile(0xFFFF),
            Err(OpcodeError::WrongCellCount { cells: 16, .. })
        ));
    }

    #[test]
    fn unrealizable_shape_rejected() {
        // Three cells in row 0 (slots 0,1,2) + one in row 1: row 0 needs
        // p0+p1+p2, which no mux node provides.
        let mask = 0b0000_0000_0001_0111u16;
        assert!(matches!(
            ValuOpcode::compile(mask),
            Err(OpcodeError::Unrealizable { row: 0, .. })
        ));
    }

    #[test]
    fn opcode_fits_30_bits() {
        for set in TemplateSet::table_v_candidates() {
            for t in set.templates() {
                let bits = ValuOpcode::compile(t.mask()).unwrap().bits();
                assert!(bits < (1 << 30), "{bits:#x}");
            }
        }
    }

    #[test]
    fn opcode_bits_distinguish_templates() {
        let set = TemplateSet::table_v_set(0);
        let mut seen: Vec<u32> = set
            .templates()
            .iter()
            .map(|t| ValuOpcode::compile(t.mask()).unwrap().bits())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), set.len());
    }
}
