//! Portfolio portability — the abstract's flexibility claim quantified:
//! "although SPASM can optimize the pattern portfolio for a particular set
//! of expected input matrices, the generated hardware can flexibly be used
//! to accelerate SpMV of different input patterns albeit with reduced
//! performance."
//!
//! For each *donor* workload class we select a portfolio (Algorithm 3),
//! then encode and execute every *recipient* workload with it — the
//! hardware only needs its opcode LUT reloaded, never a re-synthesis. The
//! matrix reports each recipient's throughput under the donor portfolio,
//! normalised to its own dynamically-selected portfolio.
//!
//! ```text
//! cargo run --release -p spasm-bench --bin portfolio_portability [-- --scale paper]
//! ```

use spasm::{Pipeline, PipelineOptions};
use spasm_bench::{geomean, rule, scale_from_args, scale_name};
use spasm_patterns::selection::TopN;
use spasm_patterns::{select_template_set, GridSize, PatternHistogram, TemplateSet};
use spasm_workloads::Workload;

/// One donor per structural class keeps the matrix readable.
const DONORS: [Workload; 5] = [
    Workload::Raefsky3,      // aligned FEM blocks
    Workload::TmtSym,        // diagonal stencil
    Workload::C73,           // anti-diagonal stencil
    Workload::Mip1,          // balanced mixed
    Workload::Mycielskian14, // scattered graph
];

const RECIPIENTS: [Workload; 6] = [
    Workload::Raefsky3,
    Workload::TmtSym,
    Workload::C73,
    Workload::Mip1,
    Workload::Mycielskian14,
    Workload::Chebyshev4,
];

fn main() {
    let scale = scale_from_args();
    println!(
        "Portfolio portability — donor portfolio vs recipient throughput ({})",
        scale_name(scale)
    );

    // Select each donor's portfolio once.
    let candidates = TemplateSet::table_v_candidates();
    let donor_sets: Vec<(String, TemplateSet)> = DONORS
        .iter()
        .map(|&d| {
            eprintln!("  [select] {d} ...");
            let m = d.generate(scale);
            let hist = PatternHistogram::analyze(&m, GridSize::S4);
            let out = select_template_set(&hist, &candidates, TopN::Coverage(0.95));
            (d.to_string(), out.set)
        })
        .collect();

    let width = 16 + donor_sets.len() * 12 + 12;
    rule(width);
    print!("{:<16}", "recipient \\ donor");
    for (d, set) in &donor_sets {
        print!(
            " {:>11}",
            format!("{d}:{}", set.name().trim_start_matches("set-"))
        );
    }
    println!(" {:>11}", "own (GF/s)");
    rule(width);

    let mut degradations: Vec<f64> = Vec::new(); // off-diagonal relative perf
    let mut storage_rows: Vec<(String, Vec<f64>, f64)> = Vec::new();
    for &r in &RECIPIENTS {
        eprintln!("  [run] {r} ...");
        let m = r.generate(scale);
        // Own, dynamically selected portfolio.
        let mut own = Pipeline::new().prepare(&m).expect("pipeline");
        let x = vec![1.0f32; m.cols() as usize];
        let mut y = vec![0.0f32; m.rows() as usize];
        let own_gflops = own.execute(&x, &mut y).expect("simulate").gflops;

        print!("{:<16}", r.to_string());
        let own_bytes = own.encoded.storage_bytes() as f64;
        let mut srow = Vec::new();
        for (donor_name, set) in &donor_sets {
            let pinned =
                Pipeline::with_options(PipelineOptions::default().fixed_portfolio(set.clone()));
            let mut prepared = pinned.prepare(&m).expect("pipeline");
            let mut y2 = vec![0.0f32; m.rows() as usize];
            let g = prepared.execute(&x, &mut y2).expect("simulate").gflops;
            let rel = g / own_gflops;
            print!(" {:>10.0}%", 100.0 * rel);
            if *donor_name != r.to_string() {
                degradations.push(rel);
            }
            srow.push(prepared.encoded.storage_bytes() as f64 / own_bytes);
        }
        println!(" {:>11.2}", own_gflops);
        storage_rows.push((r.to_string(), srow, own_bytes / m.nnz() as f64));
    }
    rule(width);
    println!(
        "cross-class performance retained (geomean of off-diagonal cells): {:.0}%",
        100.0 * geomean(degradations.iter().copied())
    );

    // Storage blow-up under a mismatched portfolio (the format pays for
    // the mismatch even when execution is bound elsewhere).
    println!(
        "
encoded stream size under donor portfolio (relative to own portfolio):"
    );
    rule(width);
    print!("{:<16}", "recipient \\ donor");
    for (d, set) in &donor_sets {
        print!(
            " {:>11}",
            format!("{d}:{}", set.name().trim_start_matches("set-"))
        );
    }
    println!(" {:>11}", "own B/nnz");
    rule(width);
    for (name, srow, own_bpn) in &storage_rows {
        print!("{:<16}", name);
        for rel in srow {
            print!(" {:>10.0}%", 100.0 * rel);
        }
        println!(" {:>11.2}", own_bpn);
    }
    rule(width);
    println!(
        "(the paper's flexibility claim: a portfolio tuned for one matrix class still \
         runs every other class — only the opcode LUT changes — at reduced performance; \
         100% = no loss, lower = the cost of a mismatched portfolio)"
    );
}
