//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) for wire-format
//! integrity.
//!
//! Version-2 SPASM streams carry a trailing CRC-32 over the header,
//! template, tile-directory and instance-stream sections, and every wire-v3
//! container section is CRC'd individually, so in-flight or at-rest
//! corruption is detected before any structural parsing trusts the bytes.
//!
//! The implementation is slicing-by-8: eight 256-entry tables built in a
//! `const` context (no runtime init), folding eight input bytes per step.
//! Cold-start latency is bounded by how fast a mapped container can be
//! checksummed, so this path is worth keeping at memory-bandwidth-ish
//! speed rather than the classic one-byte-per-step loop.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[t][b] extends tables[t-1][b] by one zero byte: table t gives
    // the contribution of a byte seen t positions before the current one.
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// The CRC-32 (IEEE) of `data`.
///
/// # Examples
///
/// ```
/// // The standard check vector.
/// assert_eq!(spasm_format::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_sensitivity() {
        let base = vec![0u8; 64];
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }

    /// The sliced fast path and the classic byte-at-a-time recurrence
    /// agree on every length around the 8-byte chunk boundary.
    #[test]
    fn sliced_path_matches_bytewise_reference() {
        fn reference(data: &[u8]) -> u32 {
            let mut crc = u32::MAX;
            for &b in data {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
            }
            !crc
        }
        let data: Vec<u8> = (0..257u32).map(|i| (i * 131 + 7) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }
}
