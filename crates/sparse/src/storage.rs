//! Storage-cost models for the paper's format comparison (Fig. 11 /
//! Table VI).
//!
//! The models follow Section V-D of the paper exactly: indices in COO, CSR
//! and BSR are 32-bit integers, values are `f32`, and the first-level tile
//! position encoding of the two-level formats (HiSparse, Serpens, SPASM) is
//! ignored as negligible.

use crate::{Bsr, Coo, Csc, Csr, Dia, Ell};

/// Bytes of storage a format needs for a particular matrix.
pub trait StorageCost {
    /// Total storage in bytes.
    fn storage_bytes(&self) -> usize;
}

impl StorageCost for Coo {
    /// `12 · nnz`: a 32-bit row index, 32-bit column index and `f32` value
    /// per entry. This is the normalisation baseline of Table VI.
    fn storage_bytes(&self) -> usize {
        12 * self.nnz()
    }
}

impl StorageCost for Csr {
    /// `4·(rows + 1) + 8·nnz`.
    fn storage_bytes(&self) -> usize {
        4 * (self.rows() as usize + 1) + 8 * self.nnz()
    }
}

impl StorageCost for Csc {
    /// `4·(cols + 1) + 8·nnz`.
    fn storage_bytes(&self) -> usize {
        4 * (self.cols() as usize + 1) + 8 * self.nnz()
    }
}

impl StorageCost for Bsr {
    /// `4·(block_rows + 1)` row pointers plus, per stored block, a 32-bit
    /// block column index and `b²` `f32` values (zero fill included).
    fn storage_bytes(&self) -> usize {
        let b = self.block_size() as usize;
        4 * (self.block_rows() + 1) + self.nblocks() * (4 + 4 * b * b)
    }
}

impl StorageCost for Dia {
    /// One `i64`-worth (8 bytes) per diagonal offset plus an `f32` per
    /// stored strip slot (padding included).
    fn storage_bytes(&self) -> usize {
        8 * self.ndiags() + 4 * self.stored_slots()
    }
}

impl StorageCost for Ell {
    /// `rows × width` slots of (32-bit column index + `f32` value).
    fn storage_bytes(&self) -> usize {
        8 * self.stored_slots()
    }
}

/// Storage of the HiSparse / Serpens stream formats.
///
/// Both use a two-level tiling scheme whose second level packs each non-zero
/// as a 32-bit value plus a 32-bit packed row/column offset — 8 bytes per
/// non-zero, a constant 1.50× improvement over COO (Table VI reports
/// min = max = avg = 1.50×).
pub fn hisparse_serpens_bytes(nnz: usize) -> usize {
    8 * nnz
}

/// Improvement factor of a format versus the COO baseline for the same
/// matrix (`> 1` means smaller than COO).
pub fn improvement_vs_coo(coo_bytes: usize, format_bytes: usize) -> f64 {
    if format_bytes == 0 {
        return f64::INFINITY;
    }
    coo_bytes as f64 / format_bytes as f64
}

/// Geometric mean of a series of improvement factors, as used for the
/// "Average" column of Table VI.
///
/// Returns 1.0 for an empty series.
pub fn geometric_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geometric mean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Coo {
        Coo::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 3.0),
                (1, 1, 4.0),
                (3, 3, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn coo_is_12_bytes_per_nnz() {
        assert_eq!(sample().storage_bytes(), 60);
    }

    #[test]
    fn csr_cost() {
        let csr = Csr::from(&sample());
        assert_eq!(csr.storage_bytes(), 4 * 5 + 8 * 5);
    }

    #[test]
    fn csr_beats_coo_for_wide_rows() {
        // With many nnz per row, CSR approaches 8/12 = 1.5x improvement.
        let t: Vec<_> = (0u32..100).map(|c| (0, c, 1.0)).collect();
        let coo = Coo::from_triplets(1, 100, t).unwrap();
        let csr = Csr::from(&coo);
        let imp = improvement_vs_coo(coo.storage_bytes(), csr.storage_bytes());
        assert!(imp > 1.4 && imp <= 1.5, "improvement {imp}");
    }

    #[test]
    fn bsr_cost_counts_fill() {
        let bsr = Bsr::from_coo(&sample(), 2).unwrap();
        // 2 block rows + 1 pointers, 2 blocks x (4 + 16) bytes
        assert_eq!(bsr.storage_bytes(), 4 * 3 + 2 * 20);
    }

    #[test]
    fn hisparse_serpens_is_exactly_1_5x() {
        let coo = sample();
        let imp = improvement_vs_coo(coo.storage_bytes(), hisparse_serpens_bytes(coo.nnz()));
        assert!((imp - 1.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(std::iter::empty()), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean([0.0]);
    }
}
