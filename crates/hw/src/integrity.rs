//! Stream-integrity verification: the detection half of the fault-tolerant
//! execution story.
//!
//! The accelerator streams position encodings and value quadruples out of
//! HBM with no end-to-end parity, so a flipped bit in the stream or a
//! faulted VALU lane would silently corrupt `y`. This module defines the
//! *detection* vocabulary shared by the plan and the framework front-end:
//!
//! * [`IntegrityCheck`] names each invariant the subsystem can report as
//!   violated — directory consistency and encoding ranges are checked once
//!   at prepare time ([`crate::Accelerator::prepare`]), residual checks run
//!   per execution;
//! * [`VerifyScope`] selects which tile rows a deferred run re-verifies
//!   against the pristine stream ([`crate::ExecutionPlan::run_deferred`]);
//! * [`HealthReport`] records what one execution observed: faults injected
//!   (only ever non-zero under the `fault-injection` feature), tile rows
//!   verified / quarantined / corrected, and whether the caller fell back
//!   to the golden CSR path.
//!
//! The repair ladder itself (quarantine → re-execute from the pristine
//! stream → golden fallback) lives in [`crate::ExecutionPlan`] and the
//! `spasm` front-end; this module only carries the bookkeeping types.

use std::fmt;

/// Which integrity invariant a check found violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IntegrityCheck {
    /// The tile directory's instance counts do not tile the stream: a
    /// tile's `first_instance` disagrees with the running sum, or the sum
    /// does not cover the stream exactly.
    InstanceCount,
    /// A position encoding addresses outside its tile (or outside the
    /// padded operand buffers), or names a template beyond the portfolio.
    EncodingRange,
    /// Executed output disagrees with the pristine stream (or the golden
    /// reference) even after the quarantine re-execution.
    Residual,
}

impl fmt::Display for IntegrityCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityCheck::InstanceCount => write!(f, "tile-directory instance count"),
            IntegrityCheck::EncodingRange => write!(f, "position-encoding range"),
            IntegrityCheck::Residual => write!(f, "execution residual"),
        }
    }
}

/// Which tile rows [`crate::ExecutionPlan::run_deferred`] verifies against
/// a pristine re-computation before the result may be committed.
#[derive(Debug, Clone, Copy)]
pub enum VerifyScope<'a> {
    /// Verify nothing (the production fast path).
    None,
    /// Verify the worked tile rows with these indices (as reported by
    /// [`crate::ExecutionPlan::tile_row_index_containing`]); out-of-range
    /// indices are ignored.
    TileRows(&'a [usize]),
    /// Verify every worked tile row.
    All,
}

/// What one guarded execution observed: injected faults, detection and
/// repair counts, and the degradation level that was ultimately taken.
///
/// A clean run (no faults, no quarantines, no fallback) is all zeros —
/// the `Default`. The report is attached to [`crate::ExecReport::health`]
/// by the framework front-end and also returned by
/// [`crate::ExecutionPlan::run_deferred`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Faults armed on the plan that applied to this execution (always 0
    /// without the `fault-injection` cargo feature).
    pub faults_injected: u32,
    /// Cycles lost to injected HBM channel stalls (timing-only faults;
    /// they never corrupt data).
    pub stall_cycles: u64,
    /// Worked tile rows re-verified against the pristine stream.
    pub tile_rows_verified: u32,
    /// Tile rows whose output disagreed with the pristine re-computation
    /// (every detected corruption is counted here).
    pub tile_rows_quarantined: u32,
    /// Quarantined tile rows whose one-shot re-execution from the pristine
    /// stream matched the reference (transient stream faults).
    pub tile_rows_corrected: u32,
    /// Quarantined tile rows still wrong after re-execution (persistent
    /// hardware faults) — these force the golden fallback or an error.
    pub tile_rows_uncorrected: u32,
    /// Output rows cross-checked against the golden CSR reference by the
    /// sampled residual policy.
    pub rows_cross_checked: u32,
    /// Sampled rows whose residual against the golden CSR reference
    /// exceeded the policy tolerance.
    pub rows_failed_cross_check: u32,
    /// Whether the whole product was recomputed on the golden CSR path.
    pub fallback: bool,
    /// The first tile row that failed verification beyond repair, if any.
    pub first_failed_tile_row: Option<u32>,
}

impl HealthReport {
    /// `true` when nothing was detected and no degradation was taken —
    /// the output is the plan's normal bit-exact result.
    pub fn is_clean(&self) -> bool {
        self.tile_rows_quarantined == 0 && self.rows_failed_cross_check == 0 && !self.fallback
    }

    /// `true` when a detected corruption could not be repaired in place
    /// (the caller must fall back or surface an error).
    pub fn needs_fallback(&self) -> bool {
        self.tile_rows_uncorrected > 0 || self.rows_failed_cross_check > 0
    }

    /// The report attached to a result computed *directly* on the golden
    /// CSR path, bypassing the accelerator entirely (e.g. a serving
    /// layer degrading a quarantined plan): bit-exact output, no ladder
    /// counters, `fallback` set so downstream accounting sees that the
    /// accelerator path was not exercised.
    pub fn degraded_golden() -> Self {
        HealthReport {
            fallback: true,
            ..HealthReport::default()
        }
    }
}

/// Merges per-vector [`HealthReport`]s into a batch aggregate: counters
/// sum, `fallback` ORs (any vector on the golden path marks the batch),
/// and the first failing tile row across the batch (in merge order) wins.
///
/// The merge is associative with [`HealthReport::default`] as identity,
/// so a fold over any number of vectors is well-defined.
pub fn merge_health(a: HealthReport, b: HealthReport) -> HealthReport {
    HealthReport {
        faults_injected: a.faults_injected + b.faults_injected,
        stall_cycles: a.stall_cycles + b.stall_cycles,
        tile_rows_verified: a.tile_rows_verified + b.tile_rows_verified,
        tile_rows_quarantined: a.tile_rows_quarantined + b.tile_rows_quarantined,
        tile_rows_corrected: a.tile_rows_corrected + b.tile_rows_corrected,
        tile_rows_uncorrected: a.tile_rows_uncorrected + b.tile_rows_uncorrected,
        rows_cross_checked: a.rows_cross_checked + b.rows_cross_checked,
        rows_failed_cross_check: a.rows_failed_cross_check + b.rows_failed_cross_check,
        fallback: a.fallback || b.fallback,
        first_failed_tile_row: a.first_failed_tile_row.or(b.first_failed_tile_row),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_clean() {
        let h = HealthReport::default();
        assert!(h.is_clean());
        assert!(!h.needs_fallback());
        assert_eq!(h.first_failed_tile_row, None);
    }

    #[test]
    fn uncorrected_rows_force_fallback() {
        let h = HealthReport {
            tile_rows_quarantined: 1,
            tile_rows_uncorrected: 1,
            ..HealthReport::default()
        };
        assert!(!h.is_clean());
        assert!(h.needs_fallback());
    }

    #[test]
    fn merge_health_sums_counters_and_ors_fallback() {
        let a = HealthReport {
            faults_injected: 2,
            stall_cycles: 100,
            tile_rows_verified: 4,
            tile_rows_quarantined: 1,
            tile_rows_corrected: 1,
            rows_cross_checked: 8,
            ..HealthReport::default()
        };
        let b = HealthReport {
            faults_injected: 1,
            stall_cycles: 7,
            tile_rows_verified: 3,
            tile_rows_quarantined: 2,
            tile_rows_uncorrected: 2,
            rows_failed_cross_check: 1,
            fallback: true,
            first_failed_tile_row: Some(5),
            ..HealthReport::default()
        };
        let m = merge_health(a, b);
        assert_eq!(m.faults_injected, 3);
        assert_eq!(m.stall_cycles, 107);
        assert_eq!(m.tile_rows_verified, 7);
        assert_eq!(m.tile_rows_quarantined, 3);
        assert_eq!(m.tile_rows_corrected, 1);
        assert_eq!(m.tile_rows_uncorrected, 2);
        assert_eq!(m.rows_cross_checked, 8);
        assert_eq!(m.rows_failed_cross_check, 1);
        assert!(m.fallback);
        assert_eq!(m.first_failed_tile_row, Some(5));
        assert!(!m.is_clean());
        assert!(m.needs_fallback());
    }

    #[test]
    fn merge_health_first_failure_wins_in_merge_order() {
        let early = HealthReport {
            first_failed_tile_row: Some(2),
            ..HealthReport::default()
        };
        let late = HealthReport {
            first_failed_tile_row: Some(9),
            ..HealthReport::default()
        };
        assert_eq!(
            merge_health(early, late).first_failed_tile_row,
            Some(2),
            "the earlier vector's failure is reported"
        );
        assert_eq!(merge_health(late, early).first_failed_tile_row, Some(9));
        assert_eq!(
            merge_health(HealthReport::default(), late).first_failed_tile_row,
            Some(9),
            "a clean report does not mask a later failure"
        );
    }

    #[test]
    fn merge_health_default_is_identity() {
        let h = HealthReport {
            faults_injected: 3,
            tile_rows_quarantined: 1,
            fallback: true,
            first_failed_tile_row: Some(1),
            ..HealthReport::default()
        };
        assert_eq!(merge_health(h, HealthReport::default()), h);
        assert_eq!(merge_health(HealthReport::default(), h), h);
    }

    #[test]
    fn check_names_render() {
        assert_eq!(
            IntegrityCheck::EncodingRange.to_string(),
            "position-encoding range"
        );
        assert_eq!(
            IntegrityCheck::InstanceCount.to_string(),
            "tile-directory instance count"
        );
        assert_eq!(IntegrityCheck::Residual.to_string(), "execution residual");
    }
}
