use std::fmt;

/// Errors produced when encoding or operating on the SPASM format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FormatError {
    /// Tile size must be a positive multiple of 4, at most
    /// [`crate::MAX_TILE_SIZE`].
    InvalidTileSize(u32),
    /// The portfolio cannot cover an occurring local pattern, so the matrix
    /// cannot be encoded losslessly.
    UncoverablePattern {
        /// The offending 16-bit occupancy mask.
        mask: u16,
    },
    /// A vector operand has the wrong length.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        actual: usize,
        /// Which operand (`"x"` or `"y"`).
        operand: &'static str,
    },
    /// A values-only patch targeted a cell that holds no stored value
    /// (out of bounds, in no encoded tile, or a padding slot).
    AbsentCell {
        /// Matrix row of the missing cell.
        row: u32,
        /// Matrix column of the missing cell.
        col: u32,
    },
    /// A values-only patch tried to write 0.0 — reserved for padding
    /// slots; removing an entry is a structural delete.
    ZeroPatch {
        /// Matrix row of the rejected write.
        row: u32,
        /// Matrix column of the rejected write.
        col: u32,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::InvalidTileSize(t) => write!(
                f,
                "tile size {t} must be a positive multiple of 4 and at most {}",
                crate::MAX_TILE_SIZE
            ),
            FormatError::UncoverablePattern { mask } => {
                write!(f, "portfolio cannot cover local pattern {mask:#06x}")
            }
            FormatError::DimensionMismatch {
                expected,
                actual,
                operand,
            } => {
                write!(
                    f,
                    "vector `{operand}` has length {actual}, expected {expected}"
                )
            }
            FormatError::AbsentCell { row, col } => {
                write!(f, "no stored value at ({row}, {col}) to patch")
            }
            FormatError::ZeroPatch { row, col } => {
                write!(
                    f,
                    "refusing to patch ({row}, {col}) to 0.0 (zero slots encode padding)"
                )
            }
        }
    }
}

impl std::error::Error for FormatError {}
